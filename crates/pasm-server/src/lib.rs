//! # pasm-server — a batched, cache-backed simulation service
//!
//! Serves `pasm` experiments over HTTP/JSON with explicit backpressure:
//!
//! * a **bounded admission queue** ([`queue::JobQueue`]) that rejects
//!   submissions with `429 queue_full` once `queue_depth` jobs are waiting,
//! * a **worker pool** ([`pasm::WorkerPool`]) executing [`pasm::run_keyed`]
//!   simulations,
//! * a **content-addressed result cache** ([`cache::ResultCache`]) keyed by
//!   the full [`pasm::ExperimentKey`] — sound because the simulator is
//!   deterministic — with hit/miss counters,
//! * **job lifecycle endpoints**: `POST /submit`, `GET /status/<id>`,
//!   `GET /result/<id>`, `POST /cancel/<id>`, `GET /healthz`, `GET /stats`,
//!   plus a hand-rolled Prometheus-text `GET /metrics` ([`metrics`]) with
//!   queue/cache gauges, split cold/hit latency histograms, and the
//!   aggregated simulation cycle buckets of the observability layer,
//! * per-job **deadlines** (`deadline_ms`: a job still queued past its
//!   deadline expires instead of simulating for nobody) and **graceful
//!   drain** on shutdown (every admitted job reaches a terminal state),
//! * one **JSONL accounting line** per completed job, surfaced by `/stats`
//!   and appended to an optional `--log` file.
//!
//! The whole service is `std`-only: no async runtime, no HTTP framework —
//! one thread per connection (connections are short: `Connection: close`),
//! which is plenty for a simulation backend whose unit of work is measured
//! in milliseconds to seconds.

pub mod cache;
pub mod http;
pub mod journal;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod stats;
pub mod store;

pub use cache::ResultCache;
pub use journal::{JobJournal, JournalReplay};
pub use protocol::{BadRequest, JobSpec, JobStatus};
pub use queue::{JobQueue, QueueFull};
pub use server::{Server, ServerConfig};
pub use store::{CrashFuse, FsyncPolicy, ReplayStats, ResultStore, SegmentLog};
