//! Hand-rolled Prometheus text exposition (`GET /metrics`).
//!
//! Renders the service counters, cache statistics, queue gauges, split
//! cold/hit job-latency histograms, and the aggregated simulation cycle
//! buckets in the [text exposition format], `std`-only like the rest of the
//! stack. Metric names and labels are documented in `docs/OBSERVABILITY.md`.
//!
//! [text exposition format]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::cache::ResultCache;
use crate::stats::{HistSnapshot, Stats, LATENCY_BOUNDS_MS};
use pasm_machine::BUCKET_NAMES;
use std::fmt::Write;
use std::sync::atomic::Ordering;

/// The Content-Type of the exposition payload.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Point-in-time durability counters for the exposition (present only when
/// the server runs with a data dir).
#[derive(Debug, Clone, Copy, Default)]
pub struct DurabilityMetrics {
    /// Results replayed from the durable store on startup.
    pub results_replayed: u64,
    /// Torn-tail records truncated during replay, both logs.
    pub records_truncated: u64,
    /// Corrupt records detected and skipped — never served — both logs.
    pub records_corrupt: u64,
    /// Journaled pending jobs re-enqueued on startup.
    pub jobs_reenqueued: u64,
    /// Startup recovery wall time in milliseconds.
    pub recovery_wall_ms: u64,
    /// Result-store records appended by this process.
    pub store_appends: u64,
    /// Result-store fsyncs issued by this process.
    pub store_fsyncs: u64,
    /// Journal events appended by this process.
    pub journal_appends: u64,
    /// Journal fsyncs issued by this process.
    pub journal_fsyncs: u64,
    /// Span records replayed into the query-tier index on startup.
    pub spans_replayed: u64,
    /// Span records appended to the span store by this process.
    pub span_appends: u64,
    /// Span-store fsyncs issued by this process.
    pub span_fsyncs: u64,
}

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    header(out, name, help, "counter");
    let _ = writeln!(out, "{name} {value}");
}

fn gauge(out: &mut String, name: &str, help: &str, value: u64) {
    header(out, name, help, "gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// One histogram in exposition form: cumulative `_bucket{le=…}` series per
/// `kind` label value, then `_sum` and `_count`.
fn histogram(out: &mut String, name: &str, help: &str, series: &[(&str, HistSnapshot)]) {
    header(out, name, help, "histogram");
    for (kind, snap) in series {
        let mut cumulative = 0u64;
        for (i, c) in snap.counts.iter().enumerate() {
            cumulative += c;
            let le = if i < LATENCY_BOUNDS_MS.len() {
                LATENCY_BOUNDS_MS[i].to_string()
            } else {
                "+Inf".to_string()
            };
            let _ = writeln!(
                out,
                "{name}_bucket{{kind=\"{kind}\",le=\"{le}\"}} {cumulative}"
            );
        }
        let _ = writeln!(out, "{name}_sum{{kind=\"{kind}\"}} {}", snap.sum);
        let _ = writeln!(out, "{name}_count{{kind=\"{kind}\"}} {}", snap.count);
    }
}

/// Render the full exposition payload.
#[allow(clippy::too_many_arguments)]
pub fn render(
    stats: &Stats,
    cache: &ResultCache,
    queue_len: usize,
    queue_capacity: usize,
    jobs_tracked: usize,
    workers: usize,
    draining: bool,
    recovering: bool,
    span_runs: u64,
    durability: Option<&DurabilityMetrics>,
) -> String {
    let mut out = String::with_capacity(4096);

    counter(
        &mut out,
        "pasm_jobs_submitted_total",
        "Jobs accepted by POST /submit (cache hits included).",
        stats.submitted.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "pasm_jobs_completed_total",
        "Jobs that reached the done state.",
        stats.completed.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "pasm_jobs_failed_total",
        "Jobs that failed in simulation.",
        stats.failed.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "pasm_jobs_canceled_total",
        "Jobs canceled while queued.",
        stats.canceled.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "pasm_jobs_expired_total",
        "Jobs whose deadline passed before a worker picked them up.",
        stats.expired.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "pasm_jobs_rejected_queue_full_total",
        "Submissions pushed back with 429 queue_full.",
        stats.rejected_queue_full.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "pasm_job_retries_total",
        "Worker attempts that panicked and were retried with backoff.",
        stats.retries.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "pasm_jobs_quarantined_total",
        "Jobs failed after a caught worker panic exhausted the retry budget.",
        stats.quarantined.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "pasm_watchdog_timeouts_total",
        "Running jobs interrupted by the deadline watchdog.",
        stats.watchdog_timeouts.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "pasm_fault_jobs_total",
        "Submissions that carried a non-empty fault plan.",
        stats.fault_jobs.load(Ordering::Relaxed),
    );

    gauge(
        &mut out,
        "pasm_queue_depth",
        "Jobs currently waiting in the admission queue.",
        queue_len as u64,
    );
    gauge(
        &mut out,
        "pasm_queue_capacity",
        "Bounded admission queue capacity.",
        queue_capacity as u64,
    );
    gauge(
        &mut out,
        "pasm_jobs_tracked",
        "Jobs in the job table (all states).",
        jobs_tracked as u64,
    );
    gauge(
        &mut out,
        "pasm_workers",
        "Simulation worker threads.",
        workers as u64,
    );
    gauge(
        &mut out,
        "pasm_draining",
        "1 while the server is shutting down.",
        draining as u64,
    );
    gauge(
        &mut out,
        "pasm_recovering",
        "1 while startup replay of the durable logs is in progress.",
        recovering as u64,
    );

    if let Some(d) = durability {
        counter(
            &mut out,
            "pasm_store_results_replayed_total",
            "Results replayed from the durable store into the cache on startup.",
            d.results_replayed,
        );
        counter(
            &mut out,
            "pasm_store_records_truncated_total",
            "Torn-tail log records truncated during replay (both logs).",
            d.records_truncated,
        );
        counter(
            &mut out,
            "pasm_store_records_corrupt_total",
            "Corrupt log records detected, skipped, and never served (both logs).",
            d.records_corrupt,
        );
        counter(
            &mut out,
            "pasm_jobs_reenqueued_total",
            "Journaled pending jobs re-enqueued on startup.",
            d.jobs_reenqueued,
        );
        gauge(
            &mut out,
            "pasm_recovery_wall_ms",
            "Startup recovery wall time in milliseconds.",
            d.recovery_wall_ms,
        );
        counter(
            &mut out,
            "pasm_store_appends_total",
            "Result records appended to the durable store by this process.",
            d.store_appends,
        );
        counter(
            &mut out,
            "pasm_store_fsyncs_total",
            "Result-store fsyncs issued by this process.",
            d.store_fsyncs,
        );
        counter(
            &mut out,
            "pasm_journal_appends_total",
            "Job-journal events appended by this process.",
            d.journal_appends,
        );
        counter(
            &mut out,
            "pasm_journal_fsyncs_total",
            "Job-journal fsyncs issued by this process.",
            d.journal_fsyncs,
        );
        counter(
            &mut out,
            "pasm_span_store_replayed_total",
            "Span records replayed into the query-tier index on startup.",
            d.spans_replayed,
        );
        counter(
            &mut out,
            "pasm_span_store_appends_total",
            "Span records appended to the span store by this process.",
            d.span_appends,
        );
        counter(
            &mut out,
            "pasm_span_store_fsyncs_total",
            "Span-store fsyncs issued by this process.",
            d.span_fsyncs,
        );
    }

    gauge(
        &mut out,
        "pasm_span_store_runs",
        "Runs indexed by the query tier (durable or in-memory).",
        span_runs,
    );
    counter(
        &mut out,
        "pasm_sim_runs_total",
        "Simulator invocations; query traffic must never move this.",
        stats.sim_runs.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "pasm_query_results_total",
        "GET /results queries served.",
        stats.results_queries.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "pasm_query_spans_total",
        "GET /spans/<fp> queries served.",
        stats.span_queries.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "pasm_query_span_misses_total",
        "GET /spans/<fp> queries that found no servable record.",
        stats.span_misses.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "pasm_query_sweeps_total",
        "GET /sweep/phases queries served.",
        stats.sweep_queries.load(Ordering::Relaxed),
    );

    counter(
        &mut out,
        "pasm_cache_hits_total",
        "Result-cache hits.",
        cache.hits(),
    );
    counter(
        &mut out,
        "pasm_cache_misses_total",
        "Result-cache misses.",
        cache.misses(),
    );
    gauge(
        &mut out,
        "pasm_cache_entries",
        "Result-cache entries resident.",
        cache.entries() as u64,
    );

    counter(
        &mut out,
        "pasm_sim_cycles_total",
        "Simulated cycles summed over completed jobs (cache hits included).",
        stats.total_cycles.load(Ordering::Relaxed),
    );

    let (cold, hit) = stats.latency_snapshots();
    histogram(
        &mut out,
        "pasm_job_wall_ms",
        "Job wall-clock latency in milliseconds, split by cache outcome.",
        &[("cold", cold), ("hit", hit)],
    );

    header(
        &mut out,
        "pasm_sim_cycle_bucket_total",
        "Per-PE simulation cycles by cause, aggregated over cold runs.",
        "counter",
    );
    for (name, value) in BUCKET_NAMES.iter().zip(stats.sim_bucket_totals().iter()) {
        let _ = writeln!(
            out,
            "pasm_sim_cycle_bucket_total{{bucket=\"{name}\"}} {value}"
        );
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_is_well_formed() {
        let stats = Stats::new(None).unwrap();
        let cache = ResultCache::new(16);
        let durability = DurabilityMetrics {
            results_replayed: 12,
            records_truncated: 1,
            records_corrupt: 2,
            jobs_reenqueued: 3,
            recovery_wall_ms: 4,
            store_appends: 5,
            store_fsyncs: 6,
            journal_appends: 7,
            journal_fsyncs: 8,
            spans_replayed: 9,
            span_appends: 10,
            span_fsyncs: 11,
        };
        let text = render(
            &stats,
            &cache,
            3,
            64,
            7,
            4,
            false,
            false,
            2,
            Some(&durability),
        );
        for line in text.lines() {
            assert!(
                line.starts_with("# HELP ")
                    || line.starts_with("# TYPE ")
                    || line
                        .split_once(' ')
                        .is_some_and(|(name, v)| !name.is_empty() && v.parse::<f64>().is_ok()),
                "malformed exposition line: {line:?}"
            );
        }
        assert!(text.contains("pasm_queue_depth 3"));
        assert!(text.contains("pasm_jobs_quarantined_total 0"));
        assert!(text.contains("pasm_job_retries_total 0"));
        assert!(text.contains("pasm_watchdog_timeouts_total 0"));
        assert!(text.contains("pasm_fault_jobs_total 0"));
        assert!(text.contains("pasm_queue_capacity 64"));
        assert!(text.contains("pasm_recovering 0"));
        assert!(text.contains("pasm_store_results_replayed_total 12"));
        assert!(text.contains("pasm_store_records_truncated_total 1"));
        assert!(text.contains("pasm_store_records_corrupt_total 2"));
        assert!(text.contains("pasm_jobs_reenqueued_total 3"));
        assert!(text.contains("pasm_recovery_wall_ms 4"));
        assert!(text.contains("pasm_journal_fsyncs_total 8"));
        assert!(text.contains("pasm_span_store_replayed_total 9"));
        assert!(text.contains("pasm_span_store_appends_total 10"));
        assert!(text.contains("pasm_span_store_fsyncs_total 11"));
        assert!(text.contains("pasm_span_store_runs 2"));
        assert!(text.contains("pasm_sim_runs_total 0"));
        assert!(text.contains("pasm_query_results_total 0"));
        assert!(text.contains("pasm_query_spans_total 0"));
        assert!(text.contains("pasm_query_span_misses_total 0"));
        assert!(text.contains("pasm_query_sweeps_total 0"));
        assert!(text.contains("pasm_sim_cycle_bucket_total{bucket=\"barrier_wait\"} 0"));
        assert!(text.contains("pasm_job_wall_ms_bucket{kind=\"cold\",le=\"+Inf\"} 0"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn memory_only_exposition_omits_durability_series() {
        let stats = Stats::new(None).unwrap();
        let cache = ResultCache::new(16);
        let text = render(&stats, &cache, 0, 64, 0, 4, false, false, 0, None);
        assert!(text.contains("pasm_recovering 0"));
        assert!(!text.contains("pasm_store_results_replayed_total"));
        assert!(!text.contains("pasm_journal_appends_total"));
        assert!(!text.contains("pasm_span_store_appends_total"));
        assert!(
            text.contains("pasm_span_store_runs 0"),
            "the query tier exists even memory-only"
        );
    }
}
