//! The content-addressed result cache.
//!
//! The simulator is deterministic: an [`ExperimentKey`] — machine config,
//! mode, parameters, workload seed — fully determines the result, so a
//! repeated figure request (the dominant access pattern: every figure sweep
//! re-runs the same `(n, p)` grid) can be served without re-simulating.
//! Entries are shared `Arc`s; eviction is FIFO once `capacity` distinct keys
//! are resident, which is enough for a working set of figure grids without
//! the bookkeeping of LRU.
//!
//! Internally the map is keyed by [`ExperimentKey::fingerprint`] (FNV-1a,
//! stable across processes) rather than the key itself: that is the same
//! address the durable result store persists under, so startup replay can
//! insert recovered results directly ([`ResultCache::insert_replayed`])
//! without reconstructing full `ExperimentKey`s from disk.

use pasm::{ExperimentKey, ExperimentResult};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct Inner {
    map: HashMap<u64, Arc<ExperimentResult>>,
    order: VecDeque<u64>,
}

/// Thread-safe keyed result store with hit/miss accounting.
pub struct ResultCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up a key, counting the outcome.
    pub fn get(&self, key: &ExperimentKey) -> Option<Arc<ExperimentResult>> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner.map.get(&key.fingerprint()) {
            Some(hit) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(hit))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Peek without touching the counters (used by duplicate-submission
    /// coalescing on the worker path, which already counted its miss).
    pub fn peek(&self, key: &ExperimentKey) -> Option<Arc<ExperimentResult>> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.map.get(&key.fingerprint()).map(Arc::clone)
    }

    /// Peek by raw fingerprint without touching the counters (the
    /// `/result/<fp>` content-addressed lookup — the client already holds
    /// the fingerprint, so a miss is not a caching failure).
    pub fn peek_fingerprint(&self, fingerprint: u64) -> Option<Arc<ExperimentResult>> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.map.get(&fingerprint).map(Arc::clone)
    }

    /// Insert a freshly computed result, evicting the oldest entry if full.
    pub fn insert(&self, key: ExperimentKey, result: Arc<ExperimentResult>) {
        self.insert_replayed(key.fingerprint(), result);
    }

    /// Insert a result recovered from the durable store (keyed by the
    /// persisted fingerprint; no full `ExperimentKey` exists at replay time).
    pub fn insert_replayed(&self, fingerprint: u64, result: Arc<ExperimentResult>) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.map.insert(fingerprint, result).is_none() {
            inner.order.push_back(fingerprint);
            while inner.order.len() > self.capacity {
                if let Some(oldest) = inner.order.pop_front() {
                    inner.map.remove(&oldest);
                }
            }
        }
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn entries(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasm::{MachineConfig, Mode, Params};

    fn key(n: usize) -> ExperimentKey {
        ExperimentKey {
            config: MachineConfig::small(),
            mode: Mode::Simd,
            params: Params::new(n, 4),
            seed: 1,
            fault: Default::default(),
            workload: pasm::MATMUL,
        }
    }

    fn result(n: usize) -> Arc<ExperimentResult> {
        Arc::new(ExperimentResult {
            mode: Mode::Simd,
            n,
            p: 4,
            workload: pasm::MATMUL,
            extra_muls: 0,
            seed: 1,
            cycles: 100,
            millis: 0.0125,
            multiply_cycles: 50,
            communication_cycles: 25,
            pe_instrs: 10,
            pe_buckets: [0; pasm_machine::N_BUCKETS],
            c_checksum: 0,
            fault: String::new(),
            baseline_cycles: 0,
            slowdown: 1.0,
        })
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = ResultCache::new(8);
        assert!(cache.get(&key(4)).is_none());
        cache.insert(key(4), result(4));
        assert_eq!(cache.get(&key(4)).unwrap().n, 4);
        assert!(cache.get(&key(8)).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let cache = ResultCache::new(2);
        cache.insert(key(4), result(4));
        cache.insert(key(8), result(8));
        cache.insert(key(16), result(16));
        assert_eq!(cache.entries(), 2);
        assert!(cache.peek(&key(4)).is_none(), "oldest entry evicted");
        assert!(cache.peek(&key(16)).is_some());
    }

    #[test]
    fn different_configs_are_different_keys() {
        let cache = ResultCache::new(8);
        cache.insert(key(4), result(4));
        let other = ExperimentKey {
            config: MachineConfig::prototype(),
            ..key(4)
        };
        assert!(cache.peek(&other).is_none());
        assert_ne!(key(4).fingerprint(), other.fingerprint());
    }
}
