//! The bounded admission queue: backpressure instead of unbounded memory.
//!
//! Admission control is deliberately separate from execution (the worker
//! pool): `try_push` answers *whether* the service accepts a job — and
//! answers **no**, immediately, when `capacity` jobs are already waiting —
//! while `pop_blocking` hands admitted jobs to workers in FIFO order.
//! Rejected submissions surface to clients as `429 queue_full`, so a
//! saturated service degrades into fast, explicit rejections rather than
//! growing latency and memory without bound.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Returned by [`JobQueue::try_push`] when the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

struct Inner {
    items: VecDeque<u64>,
    closed: bool,
}

/// A bounded FIFO of job ids, closable for graceful drain.
pub struct JobQueue {
    capacity: usize,
    inner: Mutex<Inner>,
    ready: Condvar,
}

impl JobQueue {
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently waiting (not yet picked up by a worker).
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admit a job, or reject immediately if full or shutting down.
    pub fn try_push(&self, job_id: u64) -> Result<(), QueueFull> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(QueueFull);
        }
        inner.items.push_back(job_id);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Next job in FIFO order; blocks while the queue is open and empty.
    /// Returns `None` only when the queue is closed **and** drained — after
    /// which every worker can exit knowing no admitted job was dropped.
    pub fn pop_blocking(&self) -> Option<u64> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(id) = inner.items.pop_front() {
                return Some(id);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Re-admit a recovered job at the **head** of the queue. Recovery
    /// replay uses this so journaled jobs run before anything submitted
    /// after restart; capacity is not enforced — these jobs were already
    /// admitted once, and bouncing them would break the re-enqueue
    /// guarantee.
    pub fn push_front(&self, job_id: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.items.push_front(job_id);
        drop(inner);
        self.ready.notify_one();
    }

    /// Remove a specific queued job (cancellation). Returns whether it was
    /// still waiting.
    pub fn remove(&self, job_id: u64) -> bool {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let before = inner.items.len();
        inner.items.retain(|&id| id != job_id);
        inner.items.len() != before
    }

    /// Stop admitting; wake all waiting workers. Already-admitted jobs are
    /// still handed out (graceful drain).
    pub fn close(&self) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_and_capacity() {
        let q = JobQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(QueueFull));
        assert_eq!(q.pop_blocking(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop_blocking(), Some(2));
        assert_eq!(q.pop_blocking(), Some(3));
    }

    #[test]
    fn close_drains_then_returns_none() {
        let q = Arc::new(JobQueue::new(8));
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(QueueFull));
        assert_eq!(q.pop_blocking(), Some(1));
        assert_eq!(q.pop_blocking(), None);
    }

    #[test]
    fn blocked_pop_wakes_on_close() {
        let q = Arc::new(JobQueue::new(8));
        let q2 = Arc::clone(&q);
        let h = thread::spawn(move || q2.pop_blocking());
        thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn push_front_jumps_the_line_and_ignores_capacity() {
        let q = JobQueue::new(1);
        q.try_push(5).unwrap();
        q.push_front(3);
        assert_eq!(q.len(), 2, "recovery re-admission bypasses capacity");
        assert_eq!(q.pop_blocking(), Some(3));
        assert_eq!(q.pop_blocking(), Some(5));
    }

    #[test]
    fn cancellation_removes_queued() {
        let q = JobQueue::new(8);
        q.try_push(7).unwrap();
        assert!(q.remove(7));
        assert!(!q.remove(7));
        assert!(q.is_empty());
    }
}
