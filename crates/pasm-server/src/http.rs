//! Minimal HTTP/1.1 plumbing: just enough to parse one request from a stream
//! and write one JSON response back. Connections are `Connection: close`
//! (one request per connection), which keeps the server loop trivially
//! correct; at simulation-service request rates the extra handshake is noise
//! compared to a single simulated multiply.

use pasm_util::Json;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Maximum accepted request-body size (1 MiB — job specs are tiny).
const MAX_BODY: usize = 1 << 20;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path without query string.
    pub path: String,
    /// Raw query string (without the `?`; empty when absent).
    pub query: String,
    pub body: String,
}

impl Request {
    /// The value of query parameter `name` (`?a=1&b=2` form). Parameters the
    /// query tier accepts are plain tokens — names, integers — so no
    /// percent-decoding is applied; a flag given without `=` yields `""`.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }
}

/// Read and parse one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m.to_string(), t.to_string()),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "malformed request line",
            ))
        }
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body is not UTF-8"))?;
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

/// Write a JSON response with the given status code and close the connection.
pub fn write_json(stream: &mut TcpStream, status: u16, body: &Json) -> io::Result<()> {
    write_text(stream, status, "application/json", &body.dump())
}

/// Write a response with an arbitrary Content-Type (the `/metrics` endpoint
/// serves Prometheus exposition text) and close the connection.
pub fn write_text(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    payload: &str,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    )?;
    stream.flush()
}
