//! The simulation service itself: job lifecycle, worker execution, router.
//!
//! Data flow: `submit` validates a [`JobSpec`], consults the result cache,
//! and — on a miss — admits the job to the bounded [`JobQueue`] (or rejects
//! it with `queue_full`). Workers from a [`pasm::WorkerPool`] pop admitted
//! jobs in FIFO order, re-check the cache (duplicate coalescing), run the
//! simulation, publish the result into the cache and the job table, and emit
//! one JSONL accounting line. Shutdown closes the queue and joins the pool,
//! so every admitted job reaches a terminal state before the server returns.

use crate::cache::ResultCache;
use crate::http::{read_request, write_json, write_text, Request};
use crate::journal::JobJournal;
use crate::metrics;
use crate::protocol::{error_body, BadRequest, ChaosSpec, JobSpec, JobStatus};
use crate::queue::JobQueue;
use crate::stats::Stats;
use crate::store::{CrashFuse, FsyncPolicy, ResultStore};
use pasm::{run_keyed_traced, ExperimentResult, ExperimentTrace, Mode, WorkerPool};
use pasm_machine::RunError;
use pasm_store::{ResultsQuery, RunSummary, SpanRecord, SpanStore};
use pasm_util::{Json, ToJson};
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

/// Tunables of one service instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (tests).
    pub addr: String,
    /// Simulation worker threads.
    pub workers: usize,
    /// Bounded queue depth — the backpressure limit.
    pub queue_depth: usize,
    /// Result-cache capacity in entries.
    pub cache_capacity: usize,
    /// Optional JSONL job-log path.
    pub log_path: Option<PathBuf>,
    /// Durable data directory (`results/` and `journal/` segment logs plus a
    /// `stats.json` drain snapshot live inside). `None` runs memory-only.
    pub data_dir: Option<PathBuf>,
    /// Fsync policy of the durable logs (see `docs/DURABILITY.md`).
    pub fsync: FsyncPolicy,
    /// Test-only crash injector shared by both durable logs.
    #[doc(hidden)]
    pub test_fuse: Option<Arc<CrashFuse>>,
    /// Test-only: hold the startup recovery phase open this many extra
    /// milliseconds so readiness probes can observe the 503 window.
    #[doc(hidden)]
    pub recovery_hold_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8471".to_string(),
            workers: thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
            queue_depth: 256,
            cache_capacity: 4096,
            log_path: None,
            data_dir: None,
            fsync: FsyncPolicy::Interval(Duration::from_millis(FsyncPolicy::DEFAULT_INTERVAL_MS)),
            test_fuse: None,
            recovery_hold_ms: 0,
        }
    }
}

/// One tracked job.
struct Job {
    spec: JobSpec,
    status: JobStatus,
    cached: bool,
    error: Option<String>,
    submitted_at: Instant,
    result: Option<Arc<ExperimentResult>>,
    wall_ms: u64,
    /// Worker attempts consumed so far (1 = no retries).
    attempts: u32,
    /// A client asked to cancel while the job was running; the worker's
    /// interrupt flag is tripped and the job ends `canceled` when it stops.
    cancel_requested: bool,
    /// The deadline watchdog tripped this job's interrupt flag.
    watchdog_fired: bool,
}

/// The durable half of the service: result store + job journal, both over
/// crash-safe segment logs. Present only when a data dir is configured.
struct Durability {
    store: ResultStore,
    journal: JobJournal,
}

/// What the startup recovery phase found (rendered by `/metrics`).
#[derive(Debug, Clone, Copy, Default)]
struct RecoveryInfo {
    /// Results replayed from the store into the cache.
    results_replayed: u64,
    /// Span records replayed into the query-tier index.
    spans_replayed: u64,
    /// Torn-tail records truncated across both logs.
    records_truncated: u64,
    /// Corrupt (CRC/undecodable) records skipped across both logs.
    records_corrupt: u64,
    /// Journaled pending jobs re-enqueued.
    jobs_reenqueued: u64,
    /// Re-enqueued jobs that had already started when the crash hit.
    jobs_interrupted: u64,
    /// Recovery wall time in milliseconds.
    recovery_ms: u64,
}

struct AppState {
    queue: JobQueue,
    cache: ResultCache,
    stats: Stats,
    jobs: Mutex<HashMap<u64, Job>>,
    /// Interrupt flags of currently-running jobs, keyed by job id. Tripping
    /// a flag (cancel, watchdog) makes the simulation return `Interrupted`
    /// at its next scheduler check. Lock order: `jobs` before `interrupts`.
    interrupts: Mutex<HashMap<u64, Arc<AtomicBool>>>,
    next_id: AtomicU64,
    draining: AtomicBool,
    /// Tells the watchdog thread to exit (set after the worker pool joins,
    /// so deadlines keep firing while the drain finishes running jobs).
    watchdog_stop: AtomicBool,
    workers: usize,
    /// Set once by the recovery thread (or never, memory-only mode).
    durability: OnceLock<Durability>,
    /// The query tier: set at startup (memory-only mode) or by the recovery
    /// thread (disk backing). Workers ingest every cold completion; the
    /// `/results`, `/spans/<fp>` and `/sweep/phases` endpoints read it.
    spans: OnceLock<SpanStore>,
    /// True from bind until the durable logs are replayed; readiness, not
    /// liveness — `/healthz` answers 503 and `/submit` refuses meanwhile.
    recovering: AtomicBool,
    recovery: Mutex<RecoveryInfo>,
}

/// Run `f` against the journal if durability is enabled; a failed journal
/// write degrades to a warning (the job still runs — it is the *durability*
/// of its lifecycle that is lost, not the job).
fn with_journal(state: &AppState, f: impl FnOnce(&JobJournal) -> io::Result<()>) {
    if let Some(d) = state.durability.get() {
        if let Err(e) = f(&d.journal) {
            eprintln!("pasm-serve: journal write failed: {e}");
        }
    }
}

/// A running simulation service. Dropping it (or calling
/// [`Server::shutdown`]) drains admitted jobs and joins every thread.
pub struct Server {
    state: Arc<AppState>,
    addr: SocketAddr,
    data_dir: Option<PathBuf>,
    pool: Option<WorkerPool>,
    accept: Option<thread::JoinHandle<()>>,
    watchdog: Option<thread::JoinHandle<()>>,
    recovery: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the worker pool and the accept loop, and return.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        // Non-blocking accept so the loop can observe the drain flag.
        listener.set_nonblocking(true)?;

        let state = Arc::new(AppState {
            queue: JobQueue::new(config.queue_depth),
            cache: ResultCache::new(config.cache_capacity),
            stats: Stats::new(config.log_path.as_deref())?,
            jobs: Mutex::new(HashMap::new()),
            interrupts: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            watchdog_stop: AtomicBool::new(false),
            workers: config.workers.max(1),
            durability: OnceLock::new(),
            spans: OnceLock::new(),
            recovering: AtomicBool::new(config.data_dir.is_some()),
            recovery: Mutex::new(RecoveryInfo::default()),
        });
        // Memory-only servers still get the query tier — just not durable.
        // With a data dir, the recovery thread installs the disk-backed
        // store instead (before any worker can complete a job).
        if config.data_dir.is_none() {
            let _ = state.spans.set(SpanStore::in_memory());
        }

        // Recovery phase: replay the durable logs off the request path, so
        // the listener can answer (503 `recovering`) from the first instant.
        // Until the flag flips, `/submit` refuses and `/healthz` is not
        // ready; workers idle on the empty queue.
        let recovery = match config.data_dir.clone() {
            Some(dir) => {
                let state = Arc::clone(&state);
                let policy = config.fsync;
                let fuse = config.test_fuse.clone();
                let hold_ms = config.recovery_hold_ms;
                Some(
                    thread::Builder::new()
                        .name("pasm-recovery".into())
                        .spawn(move || recover(&state, &dir, policy, fuse, hold_ms))?,
                )
            }
            None => None,
        };

        let pool = WorkerPool::new(state.workers);
        for _ in 0..state.workers {
            let state = Arc::clone(&state);
            pool.execute(move || {
                while let Some(job_id) = state.queue.pop_blocking() {
                    run_job(&state, job_id);
                }
            });
        }

        // Deadline watchdog: a *running* job past its deadline gets its
        // interrupt flag tripped and ends `failed` — no worker thread is
        // ever killed, the simulation stops cooperatively.
        let wd_state = Arc::clone(&state);
        let watchdog = thread::Builder::new()
            .name("pasm-watchdog".into())
            .spawn(move || {
                while !wd_state.watchdog_stop.load(Ordering::SeqCst) {
                    fire_watchdog(&wd_state);
                    thread::sleep(Duration::from_millis(5));
                }
            })?;

        let accept_state = Arc::clone(&state);
        let accept = thread::Builder::new()
            .name("pasm-accept".into())
            .spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let state = Arc::clone(&accept_state);
                        let _ = thread::Builder::new()
                            .name("pasm-conn".into())
                            .spawn(move || {
                                handle_connection(&state, stream);
                            });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if accept_state.draining.load(Ordering::SeqCst) {
                            break;
                        }
                        thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => thread::sleep(Duration::from_millis(5)),
                }
            })?;

        Ok(Server {
            state,
            addr,
            data_dir: config.data_dir,
            pool: Some(pool),
            accept: Some(accept),
            watchdog: Some(watchdog),
            recovery,
        })
    }

    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// JSON snapshot of the service counters (the `/stats` payload).
    /// Usable after [`Server::shutdown`], when the listener is gone.
    pub fn snapshot(&self) -> Json {
        stats(&self.state).1
    }

    /// True when every tracked job has reached a terminal state.
    pub fn all_jobs_terminal(&self) -> bool {
        let jobs = self.state.jobs.lock().unwrap_or_else(|e| e.into_inner());
        jobs.values().all(|job| job.status.is_terminal())
    }

    /// Graceful drain: stop admitting, finish every already-admitted job,
    /// flush every durable sink, join all threads. Idempotent; also runs on
    /// drop.
    pub fn shutdown(&mut self) {
        if self.state.draining.swap(true, Ordering::SeqCst) {
            return; // already drained — keep drop-after-shutdown a no-op
        }
        // Let an in-flight recovery finish first: its re-enqueued jobs must
        // land before the queue closes, or they would neither run nor stay
        // journaled as pending in a *new* journal write.
        if let Some(recovery) = self.recovery.take() {
            let _ = recovery.join();
        }
        self.state.queue.close();
        if let Some(mut pool) = self.pool.take() {
            pool.join();
        }
        // Every admitted job is terminal now: flush + fsync the durable
        // logs and the JSONL job log, and snapshot the final counters, so
        // nothing acknowledged rides only in OS buffers when we exit.
        if let Some(d) = self.state.durability.get() {
            if let Err(e) = d.store.sync() {
                eprintln!("pasm-serve: result store fsync failed on drain: {e}");
            }
            if let Err(e) = d.journal.sync() {
                eprintln!("pasm-serve: journal fsync failed on drain: {e}");
            }
        }
        if let Some(spans) = self.state.spans.get() {
            if let Err(e) = spans.sync() {
                eprintln!("pasm-serve: span store fsync failed on drain: {e}");
            }
        }
        self.state.stats.flush_sync();
        if let Some(dir) = &self.data_dir {
            let snapshot = stats(&self.state).1.dump();
            match std::fs::File::create(dir.join("stats.json")) {
                Ok(mut f) => {
                    let _ = f.write_all(snapshot.as_bytes());
                    let _ = f.write_all(b"\n");
                    let _ = f.sync_data();
                }
                Err(e) => eprintln!("pasm-serve: stats snapshot failed on drain: {e}"),
            }
        }
        // Stop the watchdog only after the workers are gone, so deadlines
        // keep bounding jobs that finish during the drain.
        self.state.watchdog_stop.store(true, Ordering::SeqCst);
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ----------------------------------------------------------------------
// Recovery path
// ----------------------------------------------------------------------

/// Startup recovery: replay the result store into the cache, replay the job
/// journal, re-enqueue pending jobs, then flip `recovering` off. Never
/// panics on damaged logs — torn and corrupt records are counted and
/// skipped. If the data dir is unusable the server degrades to memory-only
/// (loudly) rather than refusing to serve.
fn recover(
    state: &AppState,
    dir: &Path,
    policy: FsyncPolicy,
    fuse: Option<Arc<CrashFuse>>,
    hold_ms: u64,
) {
    let t0 = Instant::now();
    if hold_ms > 0 {
        thread::sleep(Duration::from_millis(hold_ms));
    }
    let mut info = RecoveryInfo::default();

    let store = ResultStore::open(&dir.join("results"), policy, fuse.clone(), |fp, result| {
        state.cache.insert_replayed(fp, Arc::new(result));
    });
    let (store, store_stats) = match store {
        Ok(v) => v,
        Err(e) => {
            eprintln!("pasm-serve: result store unusable ({e}); running memory-only");
            let _ = state.spans.set(SpanStore::in_memory());
            state.recovering.store(false, Ordering::SeqCst);
            return;
        }
    };
    let journal = match JobJournal::open(&dir.join("journal"), policy, fuse.clone()) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("pasm-serve: job journal unusable ({e}); running memory-only");
            let _ = state.spans.set(SpanStore::in_memory());
            state.recovering.store(false, Ordering::SeqCst);
            return;
        }
    };
    let (journal, replay, journal_stats) = journal;
    // The query tier recovers alongside: a failure here degrades spans to
    // memory (results and the journal stay durable) instead of refusing to
    // serve.
    let span_stats = match SpanStore::open(&dir.join("spans"), policy, fuse) {
        Ok((spans, span_stats)) => {
            let _ = state.spans.set(spans);
            span_stats
        }
        Err(e) => {
            eprintln!("pasm-serve: span store unusable ({e}); query tier is memory-only");
            let _ = state.spans.set(SpanStore::in_memory());
            Default::default()
        }
    };
    info.results_replayed = store_stats.replayed;
    info.spans_replayed = span_stats.replayed;
    info.records_truncated = store_stats.truncated + journal_stats.truncated + span_stats.truncated;
    info.records_corrupt =
        store_stats.corrupt + journal_stats.corrupt + span_stats.corrupt + replay.malformed;
    info.jobs_interrupted = replay.interrupted;

    // Durability must be live before any recovered job runs, so workers
    // journal its lifecycle and persist its result.
    let _ = state.durability.set(Durability { store, journal });
    let durability = state.durability.get().expect("just set");
    state.next_id.fetch_max(replay.next_id, Ordering::SeqCst);

    // Re-validate and re-enqueue every pending job under its original id.
    // Bodies come off disk, so a journal from an older build gets the same
    // scrutiny as a client request; an unparseable body is closed out in
    // the journal instead of replaying forever.
    let mut recovered = Vec::new();
    for (id, body) in &replay.pending {
        let spec = pasm_util::json::parse(body)
            .ok()
            .and_then(|v| JobSpec::from_json(&v).ok());
        let Some(spec) = spec else {
            eprintln!("pasm-serve: journaled job {id} no longer parses; marking failed");
            if let Err(e) = durability.journal.terminal("failed", *id) {
                eprintln!("pasm-serve: journal write failed: {e}");
            }
            continue;
        };
        let mut jobs = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
        jobs.insert(
            *id,
            Job {
                spec,
                status: JobStatus::Queued,
                cached: false,
                error: None,
                submitted_at: Instant::now(),
                result: None,
                wall_ms: 0,
                attempts: 0,
                cancel_requested: false,
                watchdog_fired: false,
            },
        );
        drop(jobs);
        recovered.push(*id);
    }
    info.jobs_reenqueued = recovered.len() as u64;
    // push_front prepends, so feed it in reverse to preserve FIFO order —
    // recovered jobs run before anything submitted after restart.
    for id in recovered.iter().rev() {
        state.queue.push_front(*id);
    }

    info.recovery_ms = t0.elapsed().as_millis() as u64;
    *state.recovery.lock().unwrap_or_else(|e| e.into_inner()) = info;
    state.recovering.store(false, Ordering::SeqCst);
}

// ----------------------------------------------------------------------
// Worker path
// ----------------------------------------------------------------------

/// Attempts per job: one initial try plus two panic retries.
const MAX_ATTEMPTS: u32 = 3;
/// Backoff before retry k is `RETRY_BACKOFF_MS << (k - 1)`.
const RETRY_BACKOFF_MS: u64 = 25;

/// Why a job did not produce a result.
enum JobFailure {
    /// The simulation returned an error (deterministic — never retried).
    Error(RunError),
    /// Every attempt panicked; the panic payload of the last one.
    Panic(String),
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    panic
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic".to_string())
}

/// One worker attempt: fire the test-only chaos hook, then simulate with a
/// cooperative interrupt attached. Every path that reaches the simulator
/// bumps `sim_runs` first — the counter the query-tier tests use to prove a
/// query never re-simulates.
fn attempt_job(
    state: &AppState,
    spec: &JobSpec,
    attempt: u32,
    interrupt: &Arc<AtomicBool>,
) -> Result<ExperimentTrace, RunError> {
    match spec.chaos {
        Some(ChaosSpec::Panic) => panic!("chaos: injected panic (attempt {attempt})"),
        Some(ChaosSpec::Transient { times }) if attempt < times => {
            panic!("chaos: injected transient failure (attempt {attempt} of {times})")
        }
        _ => {}
    }
    state.stats.sim_runs.fetch_add(1, Ordering::Relaxed);
    run_keyed_traced(&spec.key, Some(Arc::clone(interrupt)))
}

/// The mode's canonical wire spelling (`"Simd"`, …) — what the span store
/// indexes and the query endpoints filter by.
fn mode_label(mode: Mode) -> String {
    match mode.to_json() {
        Json::Str(s) => s,
        _ => unreachable!("mode serializes to a string"),
    }
}

/// Package one traced run as the span store's ingest unit.
fn span_record(fingerprint: u64, trace: &ExperimentTrace) -> SpanRecord {
    let r = &trace.result;
    SpanRecord {
        fingerprint,
        summary: RunSummary {
            workload: r.workload.to_string(),
            mode: mode_label(r.mode),
            n: r.n as u64,
            p: r.p as u64,
            seed: r.seed,
            cycles: r.cycles,
            fault: r.fault.clone(),
        },
        bucket_names: pasm_machine::BUCKET_NAMES
            .iter()
            .map(|s| s.to_string())
            .collect(),
        pe_buckets: trace.pe_buckets.iter().map(|row| row.to_vec()).collect(),
        mc_buckets: trace.mc_buckets.iter().map(|row| row.to_vec()).collect(),
        spans: trace.spans.clone(),
    }
}

fn run_job(state: &AppState, job_id: u64) {
    // Publish the interrupt flag first, so cancel/watchdog can reach this
    // run from the instant the job is marked running.
    let interrupt = Arc::new(AtomicBool::new(false));
    state
        .interrupts
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(job_id, Arc::clone(&interrupt));
    let unregister = |state: &AppState| {
        state
            .interrupts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&job_id);
    };

    // Claim the job: skip if canceled, expire if its deadline passed in the
    // queue, otherwise mark running.
    let spec = {
        let mut jobs = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
        let Some(job) = jobs.get_mut(&job_id) else {
            drop(jobs);
            unregister(state);
            return;
        };
        if job.status != JobStatus::Queued {
            drop(jobs);
            unregister(state);
            return;
        }
        if let Some(deadline_ms) = job.spec.deadline_ms {
            if job.submitted_at.elapsed() >= Duration::from_millis(deadline_ms) {
                job.status = JobStatus::Expired;
                state.stats.count(JobStatus::Expired);
                drop(jobs);
                with_journal(state, |j| j.terminal("expired", job_id));
                unregister(state);
                return;
            }
        }
        job.status = JobStatus::Running;
        // A cancel may have landed between the queue pop and the flag
        // registration above; honor it before burning simulation time.
        if job.cancel_requested {
            interrupt.store(true, Ordering::SeqCst);
        }
        job.spec.clone()
    };
    with_journal(state, |j| j.started(job_id));

    // Duplicate coalescing: an identical job may have completed while this
    // one waited in the queue — including a journal-recovered job whose
    // result was persisted before the crash (restart dedupe: the cache
    // answers, the simulator never re-runs).
    if let Some(hit) = state.cache.peek(&spec.key) {
        unregister(state);
        finish_done(state, job_id, hit, true, 0, 1);
        return;
    }

    // Quarantined retry loop: every attempt runs under `catch_unwind`, so a
    // worker panic becomes a recorded failure instead of a dead slot. Panics
    // are treated as transient up to the retry budget (with exponential
    // backoff); simulation *errors* are deterministic and never retried.
    let t0 = Instant::now();
    let mut attempt: u32 = 0;
    let outcome = loop {
        let run = catch_unwind(AssertUnwindSafe(|| {
            attempt_job(state, &spec, attempt, &interrupt)
        }));
        match run {
            Ok(Ok(trace)) => break Ok(trace),
            Ok(Err(e)) => break Err(JobFailure::Error(e)),
            Err(panic) => {
                let msg = panic_message(panic);
                // An interrupt that raced with a panicking attempt wins: the
                // client canceled (or the watchdog fired), so the job ends as
                // interrupted — not quarantined as a panic failure.
                if interrupt.load(Ordering::SeqCst) {
                    break Err(JobFailure::Error(RunError::Interrupted));
                }
                if attempt + 1 < MAX_ATTEMPTS {
                    state.stats.retries.fetch_add(1, Ordering::Relaxed);
                    // Backoff sleeps in slices, watching the interrupt flag:
                    // a cancel or watchdog deadline landing *between*
                    // attempts must end the job as interrupted, not burn
                    // another attempt and quarantine as a panic failure.
                    if backoff_interrupted(
                        &interrupt,
                        Duration::from_millis(RETRY_BACKOFF_MS << attempt),
                    ) {
                        break Err(JobFailure::Error(RunError::Interrupted));
                    }
                    attempt += 1;
                    continue;
                }
                state.stats.quarantined.fetch_add(1, Ordering::Relaxed);
                break Err(JobFailure::Panic(msg));
            }
        }
    };
    let wall_ms = t0.elapsed().as_millis() as u64;
    unregister(state);

    match outcome {
        Ok(trace) => {
            let fingerprint = spec.key.fingerprint();
            // Persistence order is spans → result → `completed` journal
            // event, so each durable fact implies the ones before it: a
            // crash after any prefix re-enqueues the job on restart, the
            // re-run is deduped by the cache (result durable) or re-ingested
            // idempotently (spans only), and a journaled completion always
            // has both its result and its span record on disk.
            if let Some(spans) = state.spans.get() {
                if let Err(e) = spans.ingest(&span_record(fingerprint, &trace)) {
                    eprintln!("pasm-serve: span store write failed: {e}");
                }
            }
            let result = Arc::new(trace.result);
            if let Some(d) = state.durability.get() {
                if let Err(e) = d.store.append(fingerprint, &result) {
                    eprintln!("pasm-serve: result store write failed: {e}");
                }
            }
            state.cache.insert(spec.key, Arc::clone(&result));
            finish_done(state, job_id, result, false, wall_ms, attempt + 1);
        }
        Err(failure) => finish_failed(state, job_id, failure, wall_ms, attempt + 1),
    }
}

/// Sleep out a retry backoff in slices, returning early — and `true` — the
/// moment the job's interrupt flag trips.
fn backoff_interrupted(interrupt: &AtomicBool, total: Duration) -> bool {
    let slice = Duration::from_millis(5);
    let deadline = Instant::now() + total;
    loop {
        if interrupt.load(Ordering::SeqCst) {
            return true;
        }
        let now = Instant::now();
        if now >= deadline {
            return false;
        }
        thread::sleep(slice.min(deadline - now));
    }
}

fn finish_done(
    state: &AppState,
    job_id: u64,
    result: Arc<ExperimentResult>,
    cache_hit: bool,
    wall_ms: u64,
    attempts: u32,
) {
    {
        let mut jobs = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
        let Some(job) = jobs.get_mut(&job_id) else {
            return;
        };
        job.status = JobStatus::Done;
        job.cached = cache_hit;
        job.wall_ms = wall_ms;
        job.attempts = attempts;
        job.result = Some(Arc::clone(&result));
    }
    state.stats.count(JobStatus::Done);
    state
        .stats
        .record_completion(job_id, &result, wall_ms, cache_hit);
    with_journal(state, |j| j.terminal("completed", job_id));
}

fn finish_failed(state: &AppState, job_id: u64, failure: JobFailure, wall_ms: u64, attempts: u32) {
    let terminal;
    {
        let mut jobs = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
        let Some(job) = jobs.get_mut(&job_id) else {
            return;
        };
        job.wall_ms = wall_ms;
        job.attempts = attempts;
        match failure {
            // An interrupted run is whatever the interrupter meant it to be:
            // a client cancellation or a watchdog deadline.
            JobFailure::Error(RunError::Interrupted) if job.cancel_requested => {
                job.status = JobStatus::Canceled;
                job.error = Some("canceled while running".to_string());
                state.stats.count(JobStatus::Canceled);
            }
            JobFailure::Error(RunError::Interrupted) if job.watchdog_fired => {
                job.status = JobStatus::Failed;
                job.error = Some("deadline exceeded while running".to_string());
                state.stats.count(JobStatus::Failed);
            }
            JobFailure::Error(e) => {
                job.status = JobStatus::Failed;
                job.error = Some(format!("simulation error: {e}"));
                state.stats.count(JobStatus::Failed);
            }
            JobFailure::Panic(msg) => {
                job.status = JobStatus::Failed;
                job.error = Some(format!("simulation panicked: {msg}"));
                state.stats.count(JobStatus::Failed);
            }
        }
        terminal = if job.status == JobStatus::Canceled {
            "canceled"
        } else {
            "failed"
        };
    }
    with_journal(state, |j| j.terminal(terminal, job_id));
}

/// One watchdog sweep: trip the interrupt of every running job whose
/// wall-clock deadline has passed.
fn fire_watchdog(state: &AppState) {
    let mut fired = Vec::new();
    {
        let mut jobs = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
        for (&id, job) in jobs.iter_mut() {
            if job.status == JobStatus::Running && !job.watchdog_fired {
                if let Some(deadline_ms) = job.spec.deadline_ms {
                    if job.submitted_at.elapsed() >= Duration::from_millis(deadline_ms) {
                        job.watchdog_fired = true;
                        fired.push(id);
                    }
                }
            }
        }
    }
    let interrupts = state.interrupts.lock().unwrap_or_else(|e| e.into_inner());
    for id in fired {
        state
            .stats
            .watchdog_timeouts
            .fetch_add(1, Ordering::Relaxed);
        if let Some(flag) = interrupts.get(&id) {
            flag.store(true, Ordering::SeqCst);
        }
    }
}

// ----------------------------------------------------------------------
// HTTP path
// ----------------------------------------------------------------------

fn handle_connection(state: &AppState, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let response = match read_request(&mut stream) {
        Ok(req) => {
            // `/metrics` is the one non-JSON endpoint: Prometheus text.
            if req.method == "GET" && req.path == "/metrics" {
                let _ = write_text(
                    &mut stream,
                    200,
                    metrics::CONTENT_TYPE,
                    &render_metrics(state),
                );
                return;
            }
            route(state, &req)
        }
        Err(e) => (400, error_body("bad_request", &e.to_string())),
    };
    let _ = write_json(&mut stream, response.0, &response.1);
}

fn render_metrics(state: &AppState) -> String {
    let jobs_tracked = state.jobs.lock().unwrap_or_else(|e| e.into_inner()).len();
    let spans = state.spans.get();
    let durability = state.durability.get().map(|d| {
        let info = *state.recovery.lock().unwrap_or_else(|e| e.into_inner());
        metrics::DurabilityMetrics {
            results_replayed: info.results_replayed,
            records_truncated: info.records_truncated,
            records_corrupt: info.records_corrupt,
            jobs_reenqueued: info.jobs_reenqueued,
            recovery_wall_ms: info.recovery_ms,
            store_appends: d.store.appends(),
            store_fsyncs: d.store.fsyncs(),
            journal_appends: d.journal.appends(),
            journal_fsyncs: d.journal.fsyncs(),
            spans_replayed: info.spans_replayed,
            span_appends: spans.map_or(0, |s| s.appends()),
            span_fsyncs: spans.map_or(0, |s| s.fsyncs()),
        }
    });
    metrics::render(
        &state.stats,
        &state.cache,
        state.queue.len(),
        state.queue.capacity(),
        jobs_tracked,
        state.workers,
        state.draining.load(Ordering::SeqCst),
        state.recovering.load(Ordering::SeqCst),
        spans.map_or(0, |s| s.len() as u64),
        durability.as_ref(),
    )
}

fn route(state: &AppState, req: &Request) -> (u16, Json) {
    let path = req.path.as_str();
    match (req.method.as_str(), path) {
        ("POST", "/submit") => submit(state, &req.body),
        ("GET", "/healthz") => healthz(state),
        ("GET", "/stats") => stats(state),
        ("GET", "/results") => results_list(state, req),
        ("GET", "/sweep/phases") => sweep_phases(state, req),
        ("GET", _) if path.starts_with("/spans/") => {
            span_get(state, path.strip_prefix("/spans/").unwrap_or(""))
        }
        ("GET", _) if path.starts_with("/status/") => {
            with_job_id(path, "/status/", |id| status(state, id))
        }
        // `/result/<16 hex digits>` is a content-addressed cache lookup;
        // any other tail is a job id (ids start at 1, so a 16-digit decimal
        // id can never occur in practice).
        ("GET", _) if path.starts_with("/result/") => {
            let tail = path.strip_prefix("/result/").unwrap_or("");
            match parse_fingerprint(tail) {
                Some(fp) => result_by_fingerprint(state, fp),
                None => with_job_id(path, "/result/", |id| result(state, id)),
            }
        }
        ("POST", _) if path.starts_with("/cancel/") => {
            with_job_id(path, "/cancel/", |id| cancel(state, id))
        }
        (
            "POST" | "GET",
            "/submit" | "/healthz" | "/stats" | "/metrics" | "/results" | "/sweep/phases",
        ) => (
            405,
            error_body("method_not_allowed", "wrong method for this endpoint"),
        ),
        _ => (404, error_body("not_found", "unknown endpoint")),
    }
}

/// Parse an exactly-16-hex-digit store fingerprint (`None` otherwise).
fn parse_fingerprint(tail: &str) -> Option<u64> {
    (tail.len() == 16 && tail.bytes().all(|b| b.is_ascii_hexdigit()))
        .then(|| u64::from_str_radix(tail, 16).ok())
        .flatten()
}

fn with_job_id(path: &str, prefix: &str, f: impl FnOnce(u64) -> (u16, Json)) -> (u16, Json) {
    match path
        .strip_prefix(prefix)
        .and_then(|s| s.parse::<u64>().ok())
    {
        Some(id) => f(id),
        None => (400, error_body("bad_request", "job id must be an integer")),
    }
}

fn submit(state: &AppState, body: &str) -> (u16, Json) {
    if state.draining.load(Ordering::SeqCst) {
        return (503, error_body("shutting_down", "server is draining"));
    }
    if state.recovering.load(Ordering::SeqCst) {
        return (
            503,
            error_body("recovering", "server is replaying its durable logs"),
        );
    }
    let parsed = match pasm_util::json::parse(body) {
        Ok(v) => v,
        Err(e) => return (400, error_body("bad_request", &e.to_string())),
    };
    let spec = match JobSpec::from_json(&parsed) {
        Ok(spec) => spec,
        Err(BadRequest { message }) => return (400, error_body("bad_request", &message)),
    };
    state.stats.submitted.fetch_add(1, Ordering::Relaxed);
    if !spec.key.fault.is_empty() {
        state.stats.fault_jobs.fetch_add(1, Ordering::Relaxed);
    }
    let fingerprint = format!("{:016x}", spec.key.fingerprint());

    // Cache hit: the job completes at submission time, no queue involved.
    if let Some(hit) = state.cache.get(&spec.key) {
        let job_id = state.next_id.fetch_add(1, Ordering::Relaxed);
        let mut jobs = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
        jobs.insert(
            job_id,
            Job {
                spec,
                status: JobStatus::Done,
                cached: true,
                error: None,
                submitted_at: Instant::now(),
                result: Some(Arc::clone(&hit)),
                wall_ms: 0,
                attempts: 0,
                cancel_requested: false,
                watchdog_fired: false,
            },
        );
        drop(jobs);
        state.stats.count(JobStatus::Done);
        state.stats.record_completion(job_id, &hit, 0, true);
        return (
            200,
            Json::obj(vec![
                ("job_id", Json::Int(job_id as i64)),
                ("status", Json::Str("done".into())),
                ("cached", Json::Bool(true)),
                ("key", Json::Str(fingerprint)),
                ("result", hit.to_json()),
            ]),
        );
    }

    // Miss: admit into the bounded queue, or push back.
    let job_id = state.next_id.fetch_add(1, Ordering::Relaxed);
    {
        let mut jobs = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
        jobs.insert(
            job_id,
            Job {
                spec,
                status: JobStatus::Queued,
                cached: false,
                error: None,
                submitted_at: Instant::now(),
                result: None,
                wall_ms: 0,
                attempts: 0,
                cancel_requested: false,
                watchdog_fired: false,
            },
        );
    }
    // Journal the submission (with the raw body, for replay) *before* the
    // queue admits it: once a client could learn of this job, the journal
    // already knows. If admission then fails, the entry is closed below.
    with_journal(state, |j| j.submitted(job_id, body));
    if state.queue.try_push(job_id).is_err() {
        state
            .jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&job_id);
        with_journal(state, |j| j.terminal("canceled", job_id));
        state
            .stats
            .rejected_queue_full
            .fetch_add(1, Ordering::Relaxed);
        return (
            429,
            Json::obj(vec![
                ("error", Json::Str("queue_full".into())),
                ("queue_depth", Json::Int(state.queue.capacity() as i64)),
            ]),
        );
    }
    (
        202,
        Json::obj(vec![
            ("job_id", Json::Int(job_id as i64)),
            ("status", Json::Str("queued".into())),
            ("key", Json::Str(fingerprint)),
        ]),
    )
}

fn job_summary(job_id: u64, job: &Job) -> Json {
    let mut fields = vec![
        ("job_id", Json::Int(job_id as i64)),
        ("status", Json::Str(job.status.as_str().into())),
        ("cached", Json::Bool(job.cached)),
        ("mode", job.spec.key.mode.to_json()),
        ("kernel", Json::Str(job.spec.key.workload.into())),
        ("n", Json::Int(job.spec.key.params.n as i64)),
        ("p", Json::Int(job.spec.key.params.p as i64)),
        (
            "key",
            Json::Str(format!("{:016x}", job.spec.key.fingerprint())),
        ),
    ];
    if !job.spec.key.fault.is_empty() {
        fields.push(("fault", Json::Str(job.spec.key.fault.to_string())));
    }
    if job.attempts > 1 {
        fields.push(("attempts", Json::Int(job.attempts as i64)));
    }
    if job.cancel_requested && !job.status.is_terminal() {
        fields.push(("cancel_requested", Json::Bool(true)));
    }
    if let Some(err) = &job.error {
        fields.push(("message", Json::Str(err.clone())));
    }
    Json::obj(fields)
}

fn status(state: &AppState, job_id: u64) -> (u16, Json) {
    let jobs = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
    match jobs.get(&job_id) {
        Some(job) => (200, job_summary(job_id, job)),
        None => (404, error_body("not_found", "unknown job id")),
    }
}

fn result(state: &AppState, job_id: u64) -> (u16, Json) {
    let jobs = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
    let Some(job) = jobs.get(&job_id) else {
        return (404, error_body("not_found", "unknown job id"));
    };
    match job.status {
        JobStatus::Done => (
            200,
            Json::obj(vec![
                ("job_id", Json::Int(job_id as i64)),
                ("cached", Json::Bool(job.cached)),
                ("wall_ms", Json::Int(job.wall_ms as i64)),
                (
                    "result",
                    job.result.as_ref().expect("done job has result").to_json(),
                ),
            ]),
        ),
        JobStatus::Queued | JobStatus::Running => (202, job_summary(job_id, job)),
        JobStatus::Failed => (
            500,
            error_body(
                "job_failed",
                job.error.as_deref().unwrap_or("simulation failed"),
            ),
        ),
        JobStatus::Canceled => (409, error_body("canceled", "job was canceled")),
        JobStatus::Expired => (
            409,
            error_body("expired", "job deadline passed before it ran"),
        ),
    }
}

// ----------------------------------------------------------------------
// Query tier: `/results`, `/spans/<fp>`, `/sweep/phases`, `/result/<fp>`
// ----------------------------------------------------------------------

/// The query tier's store, or the 503 to answer while startup replay is
/// still rebuilding its index.
fn span_store(state: &AppState) -> Result<&SpanStore, (u16, Json)> {
    state.spans.get().ok_or((
        503,
        error_body("recovering", "server is replaying its durable logs"),
    ))
}

/// One `/results` row: the run summary with its fingerprint up front.
fn result_row_json(fingerprint: u64, summary: &RunSummary) -> Json {
    let Json::Obj(mut members) = summary.to_json() else {
        unreachable!("run summaries serialize to objects")
    };
    members.insert(
        0,
        ("fp".to_string(), Json::Str(format!("{fingerprint:016x}"))),
    );
    Json::Obj(members)
}

fn results_list(state: &AppState, req: &Request) -> (u16, Json) {
    let store = match span_store(state) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    state.stats.results_queries.fetch_add(1, Ordering::Relaxed);
    let mut query = ResultsQuery {
        workload: req.query_param("workload").map(str::to_string),
        ..ResultsQuery::default()
    };
    if let Some(m) = req.query_param("mode") {
        // Accept any spelling `Mode::parse` does; filter on the canonical
        // label the store indexes.
        let Some(mode) = Mode::parse(m) else {
            return (400, error_body("bad_request", "unknown mode"));
        };
        query.mode = Some(mode_label(mode));
    }
    if let Some(raw) = req.query_param("p") {
        let Ok(v) = raw.parse::<u64>() else {
            return (
                400,
                error_body("bad_request", "`p` must be a non-negative integer"),
            );
        };
        query.p = Some(v);
    }
    if let Some(raw) = req.query_param("offset") {
        let Ok(v) = raw.parse::<usize>() else {
            return (
                400,
                error_body("bad_request", "`offset` must be a non-negative integer"),
            );
        };
        query.offset = v;
    }
    if let Some(raw) = req.query_param("limit") {
        let Ok(v) = raw.parse::<usize>() else {
            return (
                400,
                error_body("bad_request", "`limit` must be a non-negative integer"),
            );
        };
        query.limit = Some(v);
    }
    let page = store.list(&query);
    (
        200,
        Json::obj(vec![
            ("total", Json::Int(page.total as i64)),
            ("offset", Json::Int(query.offset as i64)),
            ("count", Json::Int(page.rows.len() as i64)),
            (
                "rows",
                Json::Arr(
                    page.rows
                        .iter()
                        .map(|r| result_row_json(r.fingerprint, &r.summary))
                        .collect(),
                ),
            ),
        ]),
    )
}

fn span_get(state: &AppState, tail: &str) -> (u16, Json) {
    let store = match span_store(state) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    state.stats.span_queries.fetch_add(1, Ordering::Relaxed);
    let Some(fingerprint) = parse_fingerprint(tail) else {
        return (
            400,
            error_body("bad_request", "span fingerprint must be 16 hex digits"),
        );
    };
    match store.get(fingerprint) {
        Ok(Some(record)) => (200, record.to_json()),
        // Unknown fingerprint and damaged-since-indexing bytes answer the
        // same way: there is nothing servable under this name.
        Ok(None) => {
            state.stats.span_misses.fetch_add(1, Ordering::Relaxed);
            (404, error_body("not_found", "unknown span fingerprint"))
        }
        Err(e) => (500, error_body("store_error", &e.to_string())),
    }
}

fn sweep_phases(state: &AppState, req: &Request) -> (u16, Json) {
    let store = match span_store(state) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    state.stats.sweep_queries.fetch_add(1, Ordering::Relaxed);
    let Some(workload) = req.query_param("workload") else {
        return (
            400,
            error_body("bad_request", "`workload` query parameter is required"),
        );
    };
    let mode = match req.query_param("mode") {
        Some(m) => match Mode::parse(m) {
            Some(mode) => Some(mode_label(mode)),
            None => return (400, error_body("bad_request", "unknown mode")),
        },
        None => None,
    };
    let groups = store.phase_sweep(workload, mode.as_deref());
    (
        200,
        Json::obj(vec![
            ("workload", Json::Str(workload.to_string())),
            (
                "groups",
                Json::Arr(
                    groups
                        .iter()
                        .map(|g| {
                            Json::obj(vec![
                                ("mode", Json::Str(g.mode.clone())),
                                ("p", Json::Int(g.p as i64)),
                                ("runs", Json::Int(g.runs as i64)),
                                ("total_cycles", Json::Int(g.total_cycles as i64)),
                                (
                                    "phases",
                                    Json::Arr(
                                        g.phases
                                            .iter()
                                            .map(|ph| {
                                                Json::obj(vec![
                                                    ("name", Json::Str(ph.name.clone())),
                                                    ("cycles", Json::Int(ph.cycles as i64)),
                                                    ("share", Json::Float(ph.share)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    )
}

/// Content-addressed result lookup: `GET /result/<16 hex digits>` answers
/// from the cache (which startup replay seeds from the durable store) —
/// an unknown fingerprint is a JSON 404, never a re-simulation.
fn result_by_fingerprint(state: &AppState, fingerprint: u64) -> (u16, Json) {
    match state.cache.peek_fingerprint(fingerprint) {
        Some(result) => (
            200,
            Json::obj(vec![
                ("key", Json::Str(format!("{fingerprint:016x}"))),
                ("cached", Json::Bool(true)),
                ("result", result.to_json()),
            ]),
        ),
        None => (404, error_body("not_found", "unknown result fingerprint")),
    }
}

fn cancel(state: &AppState, job_id: u64) -> (u16, Json) {
    let mut jobs = state.jobs.lock().unwrap_or_else(|e| e.into_inner());
    let Some(job) = jobs.get_mut(&job_id) else {
        return (404, error_body("not_found", "unknown job id"));
    };
    match job.status {
        JobStatus::Queued => {
            // A job still in the queue cancels immediately; if a worker has
            // already popped it, it is effectively running — fall through to
            // the cooperative path below.
            if state.queue.remove(job_id) {
                job.status = JobStatus::Canceled;
                state.stats.count(JobStatus::Canceled);
                with_journal(state, |j| j.terminal("canceled", job_id));
                (200, job_summary(job_id, job))
            } else {
                request_running_cancel(state, job_id, job)
            }
        }
        JobStatus::Running => request_running_cancel(state, job_id, job),
        // Terminal states: cancellation is a no-op, report the state.
        _ => (200, job_summary(job_id, job)),
    }
}

/// Cancel a job a worker is executing: trip its interrupt flag and let the
/// simulation stop at its next scheduler check. The response is 202 — the
/// job transitions to `canceled` asynchronously, when the worker notices.
fn request_running_cancel(state: &AppState, job_id: u64, job: &mut Job) -> (u16, Json) {
    job.cancel_requested = true;
    let interrupts = state.interrupts.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(flag) = interrupts.get(&job_id) {
        flag.store(true, Ordering::SeqCst);
    }
    (202, job_summary(job_id, job))
}

fn healthz(state: &AppState) -> (u16, Json) {
    let draining = state.draining.load(Ordering::SeqCst);
    // Readiness vs. liveness: while the startup replay runs the process is
    // alive but not ready — 503 tells orchestrators to hold traffic.
    let recovering = state.recovering.load(Ordering::SeqCst);
    let status = if recovering {
        "recovering"
    } else if draining {
        "draining"
    } else {
        "ok"
    };
    (
        if recovering { 503 } else { 200 },
        Json::obj(vec![
            ("status", Json::Str(status.into())),
            ("workers", Json::Int(state.workers as i64)),
            ("queue_len", Json::Int(state.queue.len() as i64)),
            ("queue_depth", Json::Int(state.queue.capacity() as i64)),
            (
                "jobs",
                Json::Int(state.jobs.lock().unwrap_or_else(|e| e.into_inner()).len() as i64),
            ),
        ]),
    )
}

fn stats(state: &AppState) -> (u16, Json) {
    let s = &state.stats;
    let (cold, hit) = s.latency_snapshots();
    let latency = |snap: &crate::stats::HistSnapshot| {
        Json::obj(vec![
            ("count", Json::Int(snap.count as i64)),
            ("total_ms", Json::Int(snap.sum as i64)),
            ("mean_ms", Json::Float(snap.mean_ms())),
        ])
    };
    let mut payload = (
        200,
        Json::obj(vec![
            (
                "submitted",
                Json::Int(s.submitted.load(Ordering::Relaxed) as i64),
            ),
            (
                "completed",
                Json::Int(s.completed.load(Ordering::Relaxed) as i64),
            ),
            ("failed", Json::Int(s.failed.load(Ordering::Relaxed) as i64)),
            (
                "canceled",
                Json::Int(s.canceled.load(Ordering::Relaxed) as i64),
            ),
            (
                "expired",
                Json::Int(s.expired.load(Ordering::Relaxed) as i64),
            ),
            (
                "rejected_queue_full",
                Json::Int(s.rejected_queue_full.load(Ordering::Relaxed) as i64),
            ),
            (
                "retries",
                Json::Int(s.retries.load(Ordering::Relaxed) as i64),
            ),
            (
                "quarantined",
                Json::Int(s.quarantined.load(Ordering::Relaxed) as i64),
            ),
            (
                "watchdog_timeouts",
                Json::Int(s.watchdog_timeouts.load(Ordering::Relaxed) as i64),
            ),
            (
                "fault_jobs",
                Json::Int(s.fault_jobs.load(Ordering::Relaxed) as i64),
            ),
            (
                "total_cycles",
                Json::Int(s.total_cycles.load(Ordering::Relaxed) as i64),
            ),
            (
                "total_wall_ms",
                Json::Int(s.total_wall_ms.load(Ordering::Relaxed) as i64),
            ),
            (
                "latency",
                Json::obj(vec![("cold", latency(&cold)), ("hit", latency(&hit))]),
            ),
            (
                "sim_cycle_buckets",
                Json::obj(
                    pasm_machine::BUCKET_NAMES
                        .iter()
                        .zip(s.sim_bucket_totals().iter())
                        .map(|(name, v)| (*name, Json::Int(*v as i64)))
                        .collect(),
                ),
            ),
            (
                "sim_runs",
                Json::Int(s.sim_runs.load(Ordering::Relaxed) as i64),
            ),
            (
                "queries",
                Json::obj(vec![
                    (
                        "results",
                        Json::Int(s.results_queries.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "spans",
                        Json::Int(s.span_queries.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "span_misses",
                        Json::Int(s.span_misses.load(Ordering::Relaxed) as i64),
                    ),
                    (
                        "sweeps",
                        Json::Int(s.sweep_queries.load(Ordering::Relaxed) as i64),
                    ),
                ]),
            ),
            (
                "span_store",
                match state.spans.get() {
                    Some(spans) => Json::obj(vec![
                        ("runs", Json::Int(spans.len() as i64)),
                        ("durable", Json::Bool(spans.is_durable())),
                        ("appends", Json::Int(spans.appends() as i64)),
                        ("fsyncs", Json::Int(spans.fsyncs() as i64)),
                    ]),
                    None => Json::Null,
                },
            ),
            (
                "cache",
                Json::obj(vec![
                    ("hits", Json::Int(state.cache.hits() as i64)),
                    ("misses", Json::Int(state.cache.misses() as i64)),
                    ("entries", Json::Int(state.cache.entries() as i64)),
                ]),
            ),
            (
                "recent",
                Json::Arr(s.recent_lines().into_iter().map(Json::Str).collect()),
            ),
        ]),
    );
    if let Some(d) = state.durability.get() {
        let info = *state.recovery.lock().unwrap_or_else(|e| e.into_inner());
        if let (code, Json::Obj(members)) = &mut payload {
            debug_assert_eq!(*code, 200);
            members.push((
                "durability".to_string(),
                Json::obj(vec![
                    (
                        "recovering",
                        Json::Bool(state.recovering.load(Ordering::SeqCst)),
                    ),
                    ("results_replayed", Json::Int(info.results_replayed as i64)),
                    ("spans_replayed", Json::Int(info.spans_replayed as i64)),
                    (
                        "records_truncated",
                        Json::Int(info.records_truncated as i64),
                    ),
                    ("records_corrupt", Json::Int(info.records_corrupt as i64)),
                    ("jobs_reenqueued", Json::Int(info.jobs_reenqueued as i64)),
                    ("jobs_interrupted", Json::Int(info.jobs_interrupted as i64)),
                    ("recovery_ms", Json::Int(info.recovery_ms as i64)),
                    ("store_appends", Json::Int(d.store.appends() as i64)),
                    ("store_fsyncs", Json::Int(d.store.fsyncs() as i64)),
                    ("journal_appends", Json::Int(d.journal.appends() as i64)),
                    ("journal_fsyncs", Json::Int(d.journal.fsyncs() as i64)),
                ]),
            ));
        }
    }
    payload
}
