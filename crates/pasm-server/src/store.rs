//! The **durable result store**: `fingerprint → ExperimentResult` records on
//! the shared [`pasm_store`] segment log.
//!
//! The segment-log machinery (PASMSEG1 framing, CRC records, torn-tail
//! truncation, fsync policies, crash-fuse injection) lives in the
//! [`pasm_store`] crate so the span store and this result store share one
//! implementation; this module re-exports the framing types under their old
//! paths and keeps only the result-record encoding on top.
//!
//! The simulator is deterministic and results are content-addressed
//! ([`pasm::ExperimentKey::fingerprint`]), so durability is purely a storage
//! problem: append `fingerprint → result` records to disk as they are
//! computed, replay them into the in-memory cache on startup. A CRC-intact
//! record whose JSON fails to decode — e.g. written by a different format
//! version — is folded into the `corrupt` counter: detected, skipped, never
//! served.

pub use pasm_store::{
    read_records, CrashFuse, FsyncPolicy, RecordLoc, ReplayStats, SegmentLog,
    DEFAULT_SEGMENT_BYTES, MAX_RECORD, SEGMENT_MAGIC,
};

use pasm::ExperimentResult;
use pasm_util::{json, Json, ToJson};
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Durable `fingerprint → ExperimentResult` store: JSON records
/// `{"fp":"<16 hex digits>","result":{…}}` on a [`SegmentLog`].
///
/// Replay hands `(fingerprint, result)` pairs to the caller (the in-memory
/// cache), last write wins.
pub struct ResultStore {
    log: SegmentLog,
}

impl ResultStore {
    /// Open (creating if needed) the result store under `dir`, replaying
    /// every decodable record through `deliver`.
    pub fn open(
        dir: &Path,
        policy: FsyncPolicy,
        fuse: Option<Arc<CrashFuse>>,
        mut deliver: impl FnMut(u64, ExperimentResult),
    ) -> io::Result<(ResultStore, ReplayStats)> {
        let mut malformed = 0u64;
        let (log, mut stats) =
            SegmentLog::open(dir, policy, DEFAULT_SEGMENT_BYTES, fuse, |payload, _loc| {
                match decode_result(payload) {
                    Some((fp, result)) => deliver(fp, result),
                    None => malformed += 1,
                }
            })?;
        stats.replayed -= malformed;
        stats.corrupt += malformed;
        Ok((ResultStore { log }, stats))
    }

    /// Persist one computed result under its fingerprint.
    pub fn append(&self, fingerprint: u64, result: &ExperimentResult) -> io::Result<()> {
        let record = Json::obj(vec![
            ("fp", Json::Str(format!("{fingerprint:016x}"))),
            ("result", result.to_json()),
        ]);
        self.log.append(record.dump().as_bytes()).map(|_| ())
    }

    /// Flush and fsync pending appends (graceful drain).
    pub fn sync(&self) -> io::Result<()> {
        self.log.sync()
    }

    /// Records appended by this process.
    pub fn appends(&self) -> u64 {
        self.log.appends()
    }

    /// Fsyncs issued by this process.
    pub fn fsyncs(&self) -> u64 {
        self.log.fsyncs()
    }
}

/// Decode one result record; `None` means undecodable (counted as corrupt).
fn decode_result(payload: &[u8]) -> Option<(u64, ExperimentResult)> {
    let text = std::str::from_utf8(payload).ok()?;
    let value = json::parse(text).ok()?;
    let fp = u64::from_str_radix(value.get("fp")?.as_str()?, 16).ok()?;
    let result = ExperimentResult::from_json(value.get("result")?).ok()?;
    Some((fp, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasm::ExperimentKey;
    use std::fs;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pasm-resultstore-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_result() -> (u64, ExperimentResult) {
        let key = ExperimentKey {
            config: pasm_machine::MachineConfig::prototype(),
            mode: pasm::Mode::Simd,
            params: pasm::Params::new(8, 4),
            seed: 7,
            fault: Default::default(),
            workload: pasm::MATMUL,
        };
        let result = pasm::run_keyed(&key).expect("tiny run succeeds");
        (key.fingerprint(), result)
    }

    #[test]
    fn results_replay_after_reopen() {
        let dir = tmpdir("replay");
        let (fp, result) = sample_result();
        {
            let (store, stats) =
                ResultStore::open(&dir, FsyncPolicy::Never, None, |_, _| {}).unwrap();
            assert_eq!(stats.replayed, 0);
            store.append(fp, &result).unwrap();
            store.sync().unwrap();
        }
        let mut seen = Vec::new();
        let (_, stats) = ResultStore::open(&dir, FsyncPolicy::Never, None, |f, r| {
            seen.push((f, r));
        })
        .unwrap();
        assert_eq!(stats.replayed, 1);
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].0, fp);
        assert_eq!(seen[0].1.cycles, result.cycles);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn undecodable_records_count_as_corrupt() {
        let dir = tmpdir("undecodable");
        let (fp, result) = sample_result();
        {
            let (store, _) = ResultStore::open(&dir, FsyncPolicy::Never, None, |_, _| {}).unwrap();
            store.append(fp, &result).unwrap();
            // A CRC-intact record that is not a result record.
            store.log.append(b"{\"not\":\"a result\"}").unwrap();
            store.sync().unwrap();
        }
        let mut seen = 0;
        let (_, stats) =
            ResultStore::open(&dir, FsyncPolicy::Never, None, |_, _| seen += 1).unwrap();
        assert_eq!(seen, 1);
        assert_eq!(stats.replayed, 1);
        assert_eq!(stats.corrupt, 1, "intact-but-foreign counts as corrupt");
        fs::remove_dir_all(&dir).unwrap();
    }
}
