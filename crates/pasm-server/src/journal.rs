//! The **job journal**: a durable record of every job's lifecycle, so a
//! restart re-enqueues queued-but-unfinished work instead of losing it.
//!
//! Each lifecycle transition appends one JSON event to a [`SegmentLog`]:
//!
//! ```text
//! {"ev":"submitted","id":7,"body":"<raw submit body>"}
//! {"ev":"started","id":7}
//! {"ev":"completed","id":7}          // or failed / canceled / expired
//! ```
//!
//! Replay groups events by id: a job with a `submitted` event but no
//! terminal event is **pending** and gets re-enqueued (its raw submit body
//! is re-validated through `JobSpec::from_json`, so a journal written by an
//! older build can never smuggle an invalid job into the queue). A pending
//! job that also has a `started` event was interrupted mid-run; the
//! deterministic simulator makes re-running it safe, and if its result was
//! already persisted the worker's cache check dedupes it without
//! re-simulating.
//!
//! The journal shares its [`CrashFuse`] with the result store, so crash
//! injection cuts both logs at one global byte offset — including exactly
//! between a result append and its `completed` record, the ordering the
//! recovery tests exercise hardest.

use crate::store::{CrashFuse, FsyncPolicy, ReplayStats, SegmentLog, DEFAULT_SEGMENT_BYTES};
use pasm_util::{json, Json};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Terminal event names (any of these closes a job's journal entry).
const TERMINAL_EVENTS: [&str; 4] = ["completed", "failed", "canceled", "expired"];

/// What one replay pass over the journal reconstructed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalReplay {
    /// Jobs with no terminal event, in submission order: `(id, raw body)`.
    /// These are re-enqueued on recovery.
    pub pending: Vec<(u64, String)>,
    /// First job id this process may assign (max journaled id + 1).
    pub next_id: u64,
    /// Pending jobs that had already `started` when the crash hit.
    pub interrupted: u64,
    /// CRC-intact records whose JSON didn't decode as a journal event —
    /// counted, skipped, never acted on.
    pub malformed: u64,
}

/// Append-only journal of job lifecycle events over a [`SegmentLog`].
pub struct JobJournal {
    log: SegmentLog,
}

impl JobJournal {
    /// Open (creating if needed) the journal under `dir`, replaying any
    /// existing events into a [`JournalReplay`].
    pub fn open(
        dir: &Path,
        policy: FsyncPolicy,
        fuse: Option<Arc<CrashFuse>>,
    ) -> io::Result<(JobJournal, JournalReplay, ReplayStats)> {
        struct Entry {
            body: String,
            started: bool,
            terminal: bool,
        }
        let mut jobs: BTreeMap<u64, Entry> = BTreeMap::new();
        let mut replay = JournalReplay::default();
        let (log, stats) =
            SegmentLog::open(dir, policy, DEFAULT_SEGMENT_BYTES, fuse, |payload, _loc| {
                let Some((ev, id, body)) = decode_event(payload) else {
                    replay.malformed += 1;
                    return;
                };
                match ev.as_str() {
                    "submitted" => {
                        jobs.entry(id).or_insert(Entry {
                            body: body.unwrap_or_default(),
                            started: false,
                            terminal: false,
                        });
                    }
                    "started" => {
                        if let Some(e) = jobs.get_mut(&id) {
                            e.started = true;
                        }
                    }
                    t if TERMINAL_EVENTS.contains(&t) => {
                        if let Some(e) = jobs.get_mut(&id) {
                            e.terminal = true;
                        }
                    }
                    _ => replay.malformed += 1,
                }
                replay.next_id = replay.next_id.max(id);
            })?;
        replay.next_id += 1; // ids start at 1; max journaled id + 1
        for (id, entry) in &jobs {
            if !entry.terminal {
                if entry.started {
                    replay.interrupted += 1;
                }
                replay.pending.push((*id, entry.body.clone()));
            }
        }
        Ok((JobJournal { log }, replay, stats))
    }

    /// Journal a submission, with the raw request body so recovery can
    /// re-validate and re-enqueue it.
    pub fn submitted(&self, id: u64, body: &str) -> io::Result<()> {
        self.append(Json::obj(vec![
            ("ev", Json::Str("submitted".to_string())),
            ("id", Json::Int(id as i64)),
            ("body", Json::Str(body.to_string())),
        ]))
    }

    /// Journal that a worker picked the job up.
    pub fn started(&self, id: u64) -> io::Result<()> {
        self.event("started", id)
    }

    /// Journal a terminal state; `status` must be one of
    /// `completed`/`failed`/`canceled`/`expired`.
    pub fn terminal(&self, status: &str, id: u64) -> io::Result<()> {
        debug_assert!(TERMINAL_EVENTS.contains(&status), "bad terminal {status}");
        self.event(status, id)
    }

    fn event(&self, ev: &str, id: u64) -> io::Result<()> {
        self.append(Json::obj(vec![
            ("ev", Json::Str(ev.to_string())),
            ("id", Json::Int(id as i64)),
        ]))
    }

    fn append(&self, event: Json) -> io::Result<()> {
        self.log.append(event.dump().as_bytes()).map(|_| ())
    }

    /// Flush and fsync pending events (graceful drain).
    pub fn sync(&self) -> io::Result<()> {
        self.log.sync()
    }

    /// Events appended by this process.
    pub fn appends(&self) -> u64 {
        self.log.appends()
    }

    /// Fsyncs issued by this process.
    pub fn fsyncs(&self) -> u64 {
        self.log.fsyncs()
    }
}

/// Decode one journal record into `(event, id, body)`. `None` means the
/// record is not a journal event (malformed — counted, never acted on).
fn decode_event(payload: &[u8]) -> Option<(String, u64, Option<String>)> {
    let text = std::str::from_utf8(payload).ok()?;
    let value = json::parse(text).ok()?;
    let ev = value.get("ev")?.as_str()?.to_string();
    let id = value.get("id")?.as_u64()?;
    let body = value.get("body").and_then(|b| b.as_str()).map(String::from);
    Some((ev, id, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pasm-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn open(dir: &Path) -> (JobJournal, JournalReplay, ReplayStats) {
        JobJournal::open(dir, FsyncPolicy::Never, None).unwrap()
    }

    #[test]
    fn fresh_journal_starts_at_id_one() {
        let dir = tmpdir("fresh");
        let (_, replay, stats) = open(&dir);
        assert_eq!(replay.next_id, 1);
        assert!(replay.pending.is_empty());
        assert_eq!(stats.replayed, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pending_jobs_survive_and_terminal_jobs_do_not() {
        let dir = tmpdir("pending");
        {
            let (j, _, _) = open(&dir);
            j.submitted(1, "{\"a\":1}").unwrap();
            j.started(1).unwrap();
            j.terminal("completed", 1).unwrap();
            j.submitted(2, "{\"b\":2}").unwrap();
            j.started(2).unwrap(); // interrupted: started, never finished
            j.submitted(3, "{\"c\":3}").unwrap(); // never even started
            j.submitted(4, "{\"d\":4}").unwrap();
            j.terminal("canceled", 4).unwrap();
            j.sync().unwrap();
        }
        let (_, replay, stats) = open(&dir);
        assert_eq!(stats.replayed, 8);
        assert_eq!(
            replay.pending,
            vec![(2, "{\"b\":2}".to_string()), (3, "{\"c\":3}".to_string())]
        );
        assert_eq!(replay.interrupted, 1);
        assert_eq!(replay.next_id, 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_terminal_event_closes_a_job() {
        let dir = tmpdir("terminals");
        {
            let (j, _, _) = open(&dir);
            for (id, status) in TERMINAL_EVENTS.iter().enumerate() {
                let id = id as u64 + 1;
                j.submitted(id, "{}").unwrap();
                j.terminal(status, id).unwrap();
            }
            j.sync().unwrap();
        }
        let (_, replay, _) = open(&dir);
        assert!(replay.pending.is_empty());
        assert_eq!(replay.next_id, 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_events_are_counted_not_obeyed() {
        let dir = tmpdir("malformed");
        {
            let (j, _, _) = open(&dir);
            j.submitted(1, "{}").unwrap();
            // CRC-intact garbage: not JSON, wrong shape, unknown event.
            j.log.append(b"not json at all").unwrap();
            j.log.append(b"{\"no\":\"ev\"}").unwrap();
            j.log.append(b"{\"ev\":\"vaporized\",\"id\":1}").unwrap();
            j.sync().unwrap();
        }
        let (_, replay, stats) = open(&dir);
        assert_eq!(stats.corrupt, 0, "records are CRC-intact");
        assert_eq!(replay.malformed, 3);
        assert_eq!(replay.pending.len(), 1, "job 1 still pending");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_journal_tail_loses_only_the_tail() {
        let dir = tmpdir("torn");
        {
            let (j, _, _) = open(&dir);
            j.submitted(1, "{}").unwrap();
            j.terminal("completed", 1).unwrap();
            j.submitted(2, "{}").unwrap();
            j.sync().unwrap();
        }
        // Chop into the last record: job 2's submission is lost (it was
        // never acknowledged durable), job 1 stays closed.
        let seg = dir.join("seg-000001.log");
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 4]).unwrap();
        let (_, replay, stats) = open(&dir);
        assert_eq!(stats.truncated, 1);
        assert!(replay.pending.is_empty());
        assert_eq!(replay.next_id, 2);
        fs::remove_dir_all(&dir).unwrap();
    }
}
