//! Service accounting: aggregate counters plus one JSONL line per completed
//! job. The lines back the `stats` endpoint (recent window) and, when the
//! server is started with a log path, an append-only file — the trajectory
//! future performance PRs compare against.
//!
//! Latency accounting is split by cache outcome: cache hits complete in
//! microseconds and would otherwise drown the cold-run distribution, so
//! [`Stats`] keeps **two** wall-clock histograms (`cold` and `hit`) and a
//! cold-only wall-time total. Aggregated simulation cycle buckets (fetch,
//! compute, multiply-variance, …) are accumulated from cold runs only —
//! a cache hit re-serves an already-counted simulation.

use crate::protocol::JobStatus;
use pasm::ExperimentResult;
use pasm_machine::N_BUCKETS;
use pasm_util::Json;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How many recent per-job lines the `stats` endpoint keeps in memory.
const RECENT_CAP: usize = 256;

/// Upper bounds (inclusive, milliseconds) of the latency histogram buckets;
/// an implicit `+Inf` bucket follows the last bound.
pub const LATENCY_BOUNDS_MS: [u64; 10] = [1, 2, 5, 10, 25, 50, 100, 250, 1000, 5000];

/// Number of histogram buckets including the `+Inf` overflow bucket.
pub const N_LATENCY_BUCKETS: usize = LATENCY_BOUNDS_MS.len() + 1;

/// A fixed-bucket latency histogram with atomic counters.
#[derive(Default)]
struct Hist {
    /// Per-bucket (non-cumulative) observation counts.
    buckets: [AtomicU64; N_LATENCY_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Hist {
    fn observe(&self, ms: u64) {
        let idx = LATENCY_BOUNDS_MS
            .iter()
            .position(|&b| ms <= b)
            .unwrap_or(LATENCY_BOUNDS_MS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ms, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistSnapshot {
        let mut counts = [0u64; N_LATENCY_BUCKETS];
        for (c, b) in counts.iter_mut().zip(self.buckets.iter()) {
            *c = b.load(Ordering::Relaxed);
        }
        HistSnapshot {
            counts,
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// A consistent-enough point-in-time copy of one histogram.
#[derive(Debug, Clone, Copy)]
pub struct HistSnapshot {
    /// Per-bucket counts aligned with [`LATENCY_BOUNDS_MS`] (last = `+Inf`).
    pub counts: [u64; N_LATENCY_BUCKETS],
    /// Sum of observed values in milliseconds.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistSnapshot {
    /// Mean observed latency in milliseconds (0 with no observations).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Aggregate service counters plus the per-job JSONL accounting stream.
#[derive(Default)]
pub struct Stats {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub canceled: AtomicU64,
    pub expired: AtomicU64,
    /// Submissions rejected with `queue_full`.
    pub rejected_queue_full: AtomicU64,
    /// Worker attempts that panicked and were retried with backoff.
    pub retries: AtomicU64,
    /// Jobs whose worker panicked past the retry budget — the panic was
    /// caught, the job failed, and the worker slot survived.
    pub quarantined: AtomicU64,
    /// Running jobs interrupted by the deadline watchdog.
    pub watchdog_timeouts: AtomicU64,
    /// Submissions that carried a non-empty fault plan.
    pub fault_jobs: AtomicU64,
    /// Simulated cycles summed over completed jobs (cache hits included —
    /// this measures *served* simulation volume).
    pub total_cycles: AtomicU64,
    /// Host wall-clock milliseconds summed over completed simulations.
    pub total_wall_ms: AtomicU64,
    /// Wall-clock milliseconds summed over **cold** (uncached) runs only.
    pub total_cold_wall_ms: AtomicU64,
    /// Completions served from the cache.
    pub completed_hit: AtomicU64,
    /// Completions that actually simulated.
    pub completed_cold: AtomicU64,
    /// Simulator invocations (one per worker attempt that reached the
    /// simulator). The query tier serves stored spans, so query traffic must
    /// never move this counter — the integration tests assert exactly that.
    pub sim_runs: AtomicU64,
    /// `GET /results` queries served.
    pub results_queries: AtomicU64,
    /// `GET /spans/<fp>` queries served.
    pub span_queries: AtomicU64,
    /// `GET /spans/<fp>` queries that found no (servable) record.
    pub span_misses: AtomicU64,
    /// `GET /sweep/phases` queries served.
    pub sweep_queries: AtomicU64,
    /// Simulation cycle buckets aggregated over cold runs, indexed like
    /// [`pasm_machine::BUCKET_NAMES`].
    sim_buckets: [AtomicU64; N_BUCKETS],
    cold_latency: Hist,
    hit_latency: Hist,
    recent: Mutex<std::collections::VecDeque<String>>,
    log_file: Mutex<Option<File>>,
}

impl Stats {
    /// Fresh counters; with a path, each completion is also appended there.
    pub fn new(log_path: Option<&Path>) -> std::io::Result<Self> {
        let stats = Stats::default();
        if let Some(path) = log_path {
            let file = OpenOptions::new().create(true).append(true).open(path)?;
            *stats.log_file.lock().unwrap_or_else(|e| e.into_inner()) = Some(file);
        }
        Ok(stats)
    }

    /// Bump the terminal-state counter for `status` (no-op for live states).
    pub fn count(&self, status: JobStatus) {
        match status {
            JobStatus::Done => self.completed.fetch_add(1, Ordering::Relaxed),
            JobStatus::Failed => self.failed.fetch_add(1, Ordering::Relaxed),
            JobStatus::Canceled => self.canceled.fetch_add(1, Ordering::Relaxed),
            JobStatus::Expired => self.expired.fetch_add(1, Ordering::Relaxed),
            JobStatus::Queued | JobStatus::Running => 0,
        };
    }

    /// Record one completed job: update the split latency accounting and
    /// emit a JSONL line.
    pub fn record_completion(
        &self,
        job_id: u64,
        result: &ExperimentResult,
        wall_ms: u64,
        cache_hit: bool,
    ) {
        self.total_cycles
            .fetch_add(result.cycles, Ordering::Relaxed);
        self.total_wall_ms.fetch_add(wall_ms, Ordering::Relaxed);
        if cache_hit {
            self.completed_hit.fetch_add(1, Ordering::Relaxed);
            self.hit_latency.observe(wall_ms);
        } else {
            self.completed_cold.fetch_add(1, Ordering::Relaxed);
            self.total_cold_wall_ms
                .fetch_add(wall_ms, Ordering::Relaxed);
            self.cold_latency.observe(wall_ms);
            for (total, v) in self.sim_buckets.iter().zip(result.pe_buckets.iter()) {
                total.fetch_add(*v, Ordering::Relaxed);
            }
        }
        let line = Json::obj(vec![
            ("job_id", Json::Int(job_id as i64)),
            ("mode", pasm_util::ToJson::to_json(&result.mode)),
            ("n", Json::Int(result.n as i64)),
            ("p", Json::Int(result.p as i64)),
            ("extra_muls", Json::Int(result.extra_muls as i64)),
            ("seed", Json::Int(result.seed as i64)),
            ("cycles", Json::Int(result.cycles as i64)),
            ("sim_ms", Json::Float(result.millis)),
            ("wall_ms", Json::Int(wall_ms as i64)),
            // Latency split by cache outcome: exactly one of these is the
            // job's wall time, the other is null — so downstream histogram
            // builders never mix ~0 ms hits into the cold distribution.
            (
                "cold_wall_ms",
                if cache_hit {
                    Json::Null
                } else {
                    Json::Int(wall_ms as i64)
                },
            ),
            (
                "hit_wall_ms",
                if cache_hit {
                    Json::Int(wall_ms as i64)
                } else {
                    Json::Null
                },
            ),
            (
                "cache",
                Json::Str(if cache_hit { "hit" } else { "miss" }.to_string()),
            ),
        ])
        .dump();
        if let Some(file) = self
            .log_file
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_mut()
        {
            let _ = writeln!(file, "{line}");
        }
        let mut recent = self.recent.lock().unwrap_or_else(|e| e.into_inner());
        recent.push_back(line);
        while recent.len() > RECENT_CAP {
            recent.pop_front();
        }
    }

    /// Flush and fsync the JSONL job log (graceful drain): completions
    /// acknowledged to clients must not ride only in OS buffers when the
    /// process exits.
    pub fn flush_sync(&self) {
        if let Some(file) = self
            .log_file
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_mut()
        {
            let _ = file.flush();
            let _ = file.sync_data();
        }
    }

    /// Snapshots of the two latency histograms: `(cold, hit)`.
    pub fn latency_snapshots(&self) -> (HistSnapshot, HistSnapshot) {
        (self.cold_latency.snapshot(), self.hit_latency.snapshot())
    }

    /// Aggregated simulation cycle buckets over all cold completions.
    pub fn sim_bucket_totals(&self) -> [u64; N_BUCKETS] {
        let mut out = [0u64; N_BUCKETS];
        for (o, b) in out.iter_mut().zip(self.sim_buckets.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// The recent JSONL lines, oldest first.
    pub fn recent_lines(&self) -> Vec<String> {
        self.recent
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_observe_into_the_right_slot() {
        let h = Hist::default();
        h.observe(0); // ≤ 1
        h.observe(1); // ≤ 1
        h.observe(3); // ≤ 5
        h.observe(9999); // ≤ +Inf
        let s = h.snapshot();
        assert_eq!(s.counts[0], 2);
        assert_eq!(s.counts[2], 1);
        assert_eq!(s.counts[N_LATENCY_BUCKETS - 1], 1);
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 10003);
        assert!((s.mean_ms() - 10003.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        assert_eq!(Hist::default().snapshot().mean_ms(), 0.0);
    }
}
