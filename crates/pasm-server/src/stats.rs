//! Service accounting: aggregate counters plus one JSONL line per completed
//! job. The lines back the `stats` endpoint (recent window) and, when the
//! server is started with a log path, an append-only file — the trajectory
//! future performance PRs compare against.

use crate::protocol::JobStatus;
use pasm::ExperimentResult;
use pasm_util::Json;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How many recent per-job lines the `stats` endpoint keeps in memory.
const RECENT_CAP: usize = 256;

#[derive(Default)]
pub struct Stats {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub canceled: AtomicU64,
    pub expired: AtomicU64,
    /// Submissions rejected with `queue_full`.
    pub rejected_queue_full: AtomicU64,
    /// Simulated cycles summed over completed jobs.
    pub total_cycles: AtomicU64,
    /// Host wall-clock milliseconds summed over completed simulations.
    pub total_wall_ms: AtomicU64,
    recent: Mutex<std::collections::VecDeque<String>>,
    log_file: Mutex<Option<File>>,
}

impl Stats {
    pub fn new(log_path: Option<&Path>) -> std::io::Result<Self> {
        let stats = Stats::default();
        if let Some(path) = log_path {
            let file = OpenOptions::new().create(true).append(true).open(path)?;
            *stats.log_file.lock().unwrap_or_else(|e| e.into_inner()) = Some(file);
        }
        Ok(stats)
    }

    pub fn count(&self, status: JobStatus) {
        match status {
            JobStatus::Done => self.completed.fetch_add(1, Ordering::Relaxed),
            JobStatus::Failed => self.failed.fetch_add(1, Ordering::Relaxed),
            JobStatus::Canceled => self.canceled.fetch_add(1, Ordering::Relaxed),
            JobStatus::Expired => self.expired.fetch_add(1, Ordering::Relaxed),
            JobStatus::Queued | JobStatus::Running => 0,
        };
    }

    /// Record one completed job as a JSONL line.
    pub fn record_completion(
        &self,
        job_id: u64,
        result: &ExperimentResult,
        wall_ms: u64,
        cache_hit: bool,
    ) {
        self.total_cycles
            .fetch_add(result.cycles, Ordering::Relaxed);
        self.total_wall_ms.fetch_add(wall_ms, Ordering::Relaxed);
        let line = Json::obj(vec![
            ("job_id", Json::Int(job_id as i64)),
            ("mode", pasm_util::ToJson::to_json(&result.mode)),
            ("n", Json::Int(result.n as i64)),
            ("p", Json::Int(result.p as i64)),
            ("extra_muls", Json::Int(result.extra_muls as i64)),
            ("seed", Json::Int(result.seed as i64)),
            ("cycles", Json::Int(result.cycles as i64)),
            ("sim_ms", Json::Float(result.millis)),
            ("wall_ms", Json::Int(wall_ms as i64)),
            (
                "cache",
                Json::Str(if cache_hit { "hit" } else { "miss" }.to_string()),
            ),
        ])
        .dump();
        if let Some(file) = self
            .log_file
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_mut()
        {
            let _ = writeln!(file, "{line}");
        }
        let mut recent = self.recent.lock().unwrap_or_else(|e| e.into_inner());
        recent.push_back(line);
        while recent.len() > RECENT_CAP {
            recent.pop_front();
        }
    }

    /// The recent JSONL lines, oldest first.
    pub fn recent_lines(&self) -> Vec<String> {
        self.recent
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }
}
