//! `pasm-serve` — run the PASM simulation service.
//!
//! ```text
//! pasm-serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!            [--cache-capacity N] [--log FILE]
//!            [--data-dir DIR] [--fsync always|interval[:ms]|never]
//! ```

use pasm_server::{FsyncPolicy, Server, ServerConfig};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
pasm-serve — batched, cache-backed PASM simulation service

USAGE:
    pasm-serve [OPTIONS]

OPTIONS:
    --addr HOST:PORT      bind address           [default: 127.0.0.1:8471]
    --workers N           simulation workers     [default: host parallelism]
    --queue-depth N       admission queue bound  [default: 256]
    --cache-capacity N    result cache entries   [default: 4096]
    --log FILE            append one JSONL line per completed job
    --data-dir DIR        durable result, span and journal logs under DIR;
                          on start, results, spans and pending jobs recover
    --fsync POLICY        durability/throughput trade of the durable logs:
                          always | interval[:ms] | never  [default: interval:100]
    -h, --help            print this help
";

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--workers" => {
                cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers must be a positive integer".to_string())?;
                if cfg.workers == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
            }
            "--queue-depth" => {
                cfg.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth must be a positive integer".to_string())?;
            }
            "--cache-capacity" => {
                cfg.cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|_| "--cache-capacity must be a positive integer".to_string())?;
            }
            "--log" => cfg.log_path = Some(PathBuf::from(value("--log")?)),
            "--data-dir" => cfg.data_dir = Some(PathBuf::from(value("--data-dir")?)),
            "--fsync" => {
                let spec = value("--fsync")?;
                cfg.fsync = FsyncPolicy::parse(&spec).ok_or_else(|| {
                    format!("--fsync must be always, interval[:ms], or never (got `{spec}`)")
                })?;
            }
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let workers = cfg.workers;
    let queue_depth = cfg.queue_depth;
    let durability = cfg
        .data_dir
        .as_ref()
        .map(|dir| format!("{} (fsync {})", dir.display(), cfg.fsync.label()));
    let server = match Server::start(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: failed to start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "pasm-serve listening on http://{} ({workers} workers, queue depth {queue_depth})",
        server.addr()
    );
    eprintln!(
        "endpoints: POST /submit, GET /status/<id>, GET /result/<id|fp>, POST /cancel/<id>, GET /healthz, GET /stats, GET /metrics"
    );
    eprintln!(
        "query tier: GET /results?workload=&mode=&p=&offset=&limit=, GET /spans/<fp>, GET /sweep/phases?workload=&mode="
    );
    eprintln!(
        "submit extras: \"fault\" (e.g. \"box:1:0,dead:3\" — see docs/FAULTS.md), \"deadline_ms\", test-only \"chaos\""
    );
    match durability {
        Some(d) => eprintln!("durability: {d} — recovery runs now; /healthz is 503 until done"),
        None => eprintln!("durability: off (memory-only; pass --data-dir to persist)"),
    }

    // Serve until the process is killed; the drain path is exercised through
    // the library API (tests call `Server::shutdown`). Parking the main
    // thread keeps the accept loop and workers alive.
    loop {
        std::thread::park();
    }
}
