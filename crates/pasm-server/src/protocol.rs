//! Wire types of the simulation service: job specifications in, job states
//! and results out. Everything crosses the wire as JSON through
//! `pasm_util::json`; validation happens here so the simulator's internal
//! `assert!`s never fire on user input.

use pasm::{ExperimentKey, FaultPlan, Mode, Params};
use pasm_machine::{MachineConfig, ReleaseMode};
use pasm_util::Json;

/// Default workload seed (the paper's).
pub const DEFAULT_SEED: u64 = pasm::figures::DEFAULT_SEED;

/// Cycle budget imposed on faulted jobs whose config has no budget of its
/// own: an injected fault can starve a transfer indefinitely (e.g. a stuck
/// network port under polling), and the simulator's deadlock detector only
/// catches *global* arrest. The cap turns such runs into a clean
/// `CycleLimit` failure instead of an unbounded simulation.
pub const FAULT_MAX_CYCLES: u64 = 50_000_000;

/// A validated submission: what to simulate and how long the client will wait.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    pub key: ExperimentKey,
    /// Wall-clock admission deadline in milliseconds from submission: a job
    /// still waiting in the queue when it expires is dropped as `expired`
    /// rather than simulated for nobody. A *running* job past its deadline
    /// is interrupted by the watchdog and fails.
    pub deadline_ms: Option<u64>,
    /// Test-only chaos hook: makes the worker misbehave *around* the
    /// simulation (panic, transient failure). Deliberately **not** part of
    /// the key — chaos must never poison the result cache.
    pub chaos: Option<ChaosSpec>,
}

/// What the chaos hook does to the worker processing this job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosSpec {
    /// Panic on every attempt — a deterministic bug. The job must end
    /// `failed` with the panic recorded, and the worker slot must survive.
    Panic,
    /// Panic on the first `times` attempts, then succeed — a transient
    /// failure the retry loop should absorb.
    Transient { times: u32 },
}

/// A client-facing rejection: HTTP status plus a stable error code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadRequest {
    pub message: String,
}

impl BadRequest {
    fn new(message: impl Into<String>) -> Self {
        BadRequest {
            message: message.into(),
        }
    }
}

fn field_u64(body: &Json, name: &str, default: u64) -> Result<u64, BadRequest> {
    match body.get(name) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| BadRequest::new(format!("`{name}` must be a non-negative integer"))),
    }
}

fn field_usize(body: &Json, name: &str) -> Result<Option<usize>, BadRequest> {
    match body.get(name) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_usize()
            .map(Some)
            .ok_or_else(|| BadRequest::new(format!("`{name}` must be a non-negative integer"))),
    }
}

impl JobSpec {
    /// Parse and validate a `submit` request body.
    pub fn from_json(body: &Json) -> Result<JobSpec, BadRequest> {
        if !matches!(body, Json::Obj(_)) {
            return Err(BadRequest::new("request body must be a JSON object"));
        }
        let mode_str = body
            .get("mode")
            .and_then(Json::as_str)
            .ok_or_else(|| BadRequest::new("`mode` is required (serial|simd|mimd|smimd)"))?;
        let mode = Mode::parse(mode_str)
            .ok_or_else(|| BadRequest::new(format!("unknown mode `{mode_str}`")))?;
        let n = field_usize(body, "n")?.ok_or_else(|| BadRequest::new("`n` is required"))?;
        let p = match mode {
            Mode::Serial => 1,
            _ => field_usize(body, "p")?.unwrap_or(4),
        };
        let extra_muls = field_usize(body, "extra_muls")?.unwrap_or(0);
        let kernel_name = match body.get("kernel") {
            None | Some(Json::Null) => pasm::MATMUL,
            Some(Json::Str(s)) => s.as_str(),
            Some(_) => return Err(BadRequest::new("`kernel` must be a workload name string")),
        };
        let kernel = pasm::kernels::find(kernel_name).ok_or_else(|| {
            BadRequest::new(format!(
                "unknown kernel `{kernel_name}` (registered: {})",
                pasm::kernels::names().join(", ")
            ))
        })?;
        let seed = field_u64(body, "seed", DEFAULT_SEED)?;
        let deadline_ms = match body.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| BadRequest::new("`deadline_ms` must be an integer"))?,
            ),
        };
        let mut config = machine_config(body.get("config"))?;

        // Re-state the simulator's own invariants as client errors.
        if !p.is_power_of_two() || p > config.n_pes {
            return Err(BadRequest::new(format!(
                "`p` must be a power of two ≤ n_pes (= {})",
                config.n_pes
            )));
        }
        if mode == Mode::Serial && !kernel.supports_serial() {
            return Err(BadRequest::new(format!(
                "kernel `{}` has no serial variant (parallel modes only)",
                kernel.name()
            )));
        }
        if mode != Mode::Serial {
            kernel
                .validate(n, p)
                .map_err(|e| BadRequest::new(format!("kernel `{}`: {e}", kernel.name())))?;
        } else if n == 0 || n > 512 {
            return Err(BadRequest::new("`n` must be in 1..=512"));
        }

        let fault = match body.get("fault") {
            None | Some(Json::Null) => FaultPlan::default(),
            Some(Json::Str(spec)) => {
                let plan =
                    FaultPlan::parse(spec).map_err(|e| BadRequest::new(format!("`fault`: {e}")))?;
                plan.validate(config.n_pes)
                    .map_err(|e| BadRequest::new(format!("`fault`: {e}")))?;
                plan
            }
            Some(_) => {
                return Err(BadRequest::new(
                    "`fault` must be a fault-spec string, e.g. \"box:1:0,dead:3\"",
                ))
            }
        };
        if !fault.is_empty() && config.max_cycles == u64::MAX {
            config.max_cycles = FAULT_MAX_CYCLES;
        }
        let chaos = chaos_spec(body.get("chaos"))?;

        Ok(JobSpec {
            key: ExperimentKey {
                config,
                mode,
                params: Params { n, p, extra_muls },
                seed,
                fault,
                workload: kernel.name(),
            },
            deadline_ms,
            chaos,
        })
    }
}

/// Parse the optional test-only `chaos` member:
/// `{"kind": "panic"|"transient", "times": k}`.
fn chaos_spec(spec: Option<&Json>) -> Result<Option<ChaosSpec>, BadRequest> {
    let spec = match spec {
        None | Some(Json::Null) => return Ok(None),
        Some(s) => s,
    };
    if !matches!(spec, Json::Obj(_)) {
        return Err(BadRequest::new("`chaos` must be a JSON object"));
    }
    match spec.get("kind").and_then(Json::as_str) {
        Some("panic") => Ok(Some(ChaosSpec::Panic)),
        Some("transient") => {
            let times = field_u64(spec, "times", 1)?;
            if times == 0 || times > 16 {
                return Err(BadRequest::new("`chaos.times` must be in 1..=16"));
            }
            Ok(Some(ChaosSpec::Transient {
                times: times as u32,
            }))
        }
        _ => Err(BadRequest::new(
            "`chaos.kind` must be \"panic\" or \"transient\"",
        )),
    }
}

/// Build the machine configuration from the optional `config` member:
/// `{"preset": "prototype"|"small", "release_mode": ..., "queue_capacity_words": ...}`.
fn machine_config(spec: Option<&Json>) -> Result<MachineConfig, BadRequest> {
    let mut cfg = MachineConfig::prototype();
    let Some(spec) = spec else { return Ok(cfg) };
    if matches!(spec, Json::Null) {
        return Ok(cfg);
    }
    if !matches!(spec, Json::Obj(_)) {
        return Err(BadRequest::new("`config` must be a JSON object"));
    }
    if let Some(preset) = spec.get("preset") {
        cfg = match preset.as_str() {
            Some("prototype") => MachineConfig::prototype(),
            Some("small") => MachineConfig::small(),
            _ => {
                return Err(BadRequest::new(
                    "`config.preset` must be \"prototype\" or \"small\"",
                ))
            }
        };
    }
    if let Some(rm) = spec.get("release_mode") {
        cfg.release_mode = match rm.as_str().map(str::to_ascii_lowercase).as_deref() {
            Some("lockstep") => ReleaseMode::Lockstep,
            Some("decoupled") => ReleaseMode::Decoupled,
            _ => {
                return Err(BadRequest::new(
                    "`config.release_mode` must be \"lockstep\" or \"decoupled\"",
                ))
            }
        };
    }
    if let Some(cap) = field_usize(spec, "queue_capacity_words")? {
        if !(4..=1 << 20).contains(&cap) {
            return Err(BadRequest::new(
                "`config.queue_capacity_words` must be in 4..=1048576",
            ));
        }
        cfg.queue_capacity_words = cap as u32;
    }
    Ok(cfg)
}

/// Lifecycle of one submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    Queued,
    Running,
    Done,
    Failed,
    Canceled,
    Expired,
}

impl JobStatus {
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Canceled => "canceled",
            JobStatus::Expired => "expired",
        }
    }

    /// Terminal states never change again.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobStatus::Queued | JobStatus::Running)
    }
}

/// Standard error body: `{"error": code, "message": ...}`.
pub fn error_body(code: &str, message: &str) -> Json {
    Json::obj(vec![
        ("error", Json::Str(code.to_string())),
        ("message", Json::Str(message.to_string())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasm_util::json::parse;

    #[test]
    fn minimal_submit_parses_with_defaults() {
        let spec = JobSpec::from_json(&parse(r#"{"mode":"simd","n":16}"#).unwrap()).unwrap();
        assert_eq!(spec.key.mode, Mode::Simd);
        assert_eq!(spec.key.params.n, 16);
        assert_eq!(spec.key.params.p, 4);
        assert_eq!(spec.key.seed, DEFAULT_SEED);
        assert_eq!(spec.key.config, MachineConfig::prototype());
        assert_eq!(spec.deadline_ms, None);
    }

    #[test]
    fn serial_forces_p_1() {
        let spec =
            JobSpec::from_json(&parse(r#"{"mode":"serial","n":10,"p":8}"#).unwrap()).unwrap();
        assert_eq!(spec.key.params.p, 1);
    }

    #[test]
    fn full_submit_parses() {
        let body = parse(
            r#"{"mode":"smimd","n":64,"p":8,"extra_muls":14,"seed":7,"deadline_ms":5000,
                "config":{"preset":"prototype","release_mode":"decoupled","queue_capacity_words":64}}"#,
        )
        .unwrap();
        let spec = JobSpec::from_json(&body).unwrap();
        assert_eq!(spec.key.params.extra_muls, 14);
        assert_eq!(spec.key.config.release_mode, ReleaseMode::Decoupled);
        assert_eq!(spec.key.config.queue_capacity_words, 64);
        assert_eq!(spec.deadline_ms, Some(5000));
    }

    #[test]
    fn invalid_submissions_are_client_errors() {
        for (body, why) in [
            (r#"{"n":16}"#, "missing mode"),
            (r#"{"mode":"warp","n":16}"#, "unknown mode"),
            (r#"{"mode":"simd"}"#, "missing n"),
            (r#"{"mode":"simd","n":16,"p":3}"#, "non-power-of-two p"),
            (r#"{"mode":"simd","n":18,"p":4}"#, "p does not divide n"),
            (r#"{"mode":"simd","n":16,"p":32}"#, "p exceeds n_pes"),
            (
                r#"{"mode":"simd","n":16,"config":{"preset":"huge"}}"#,
                "bad preset",
            ),
            (r#"{"mode":"simd","n":16,"seed":-4}"#, "negative seed"),
            (r#"[1,2]"#, "not an object"),
        ] {
            assert!(
                JobSpec::from_json(&parse(body).unwrap()).is_err(),
                "{why}: {body}"
            );
        }
    }

    #[test]
    fn fault_spec_parses_and_caps_cycles() {
        let spec = JobSpec::from_json(
            &parse(r#"{"mode":"smimd","n":16,"p":8,"fault":"box:1:0,dead:3"}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(spec.key.fault.net.len(), 1);
        assert_eq!(spec.key.fault.pe.len(), 1);
        assert_eq!(spec.key.config.max_cycles, FAULT_MAX_CYCLES);
        // Fault-free submissions keep the unbounded default.
        let clean = JobSpec::from_json(&parse(r#"{"mode":"simd","n":16}"#).unwrap()).unwrap();
        assert!(clean.key.fault.is_empty());
        assert_eq!(clean.key.config.max_cycles, u64::MAX);
    }

    #[test]
    fn bad_fault_specs_are_client_errors() {
        for body in [
            r#"{"mode":"simd","n":16,"fault":"warp:1"}"#,
            r#"{"mode":"simd","n":16,"fault":"dead:99"}"#,
            r#"{"mode":"simd","n":16,"fault":42}"#,
            r#"{"mode":"simd","n":16,"fault":"box:9:0"}"#,
        ] {
            assert!(JobSpec::from_json(&parse(body).unwrap()).is_err(), "{body}");
        }
    }

    #[test]
    fn chaos_parses_but_stays_out_of_the_key() {
        let a = JobSpec::from_json(
            &parse(r#"{"mode":"simd","n":16,"chaos":{"kind":"transient","times":2}}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(a.chaos, Some(ChaosSpec::Transient { times: 2 }));
        let b = JobSpec::from_json(&parse(r#"{"mode":"simd","n":16}"#).unwrap()).unwrap();
        assert_eq!(a.key, b.key, "chaos must not affect the cache key");
        let c = JobSpec::from_json(
            &parse(r#"{"mode":"simd","n":16,"chaos":{"kind":"panic"}}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(c.chaos, Some(ChaosSpec::Panic));
        assert!(JobSpec::from_json(
            &parse(r#"{"mode":"simd","n":16,"chaos":{"kind":"??"}}"#).unwrap()
        )
        .is_err());
    }

    #[test]
    fn kernel_member_selects_the_workload() {
        let spec = JobSpec::from_json(
            &parse(r#"{"mode":"mimd","kernel":"smooth","n":32,"p":4}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(spec.key.workload, "smooth");
        // Case-insensitive, like the CLI.
        let spec = JobSpec::from_json(
            &parse(r#"{"mode":"simd","kernel":"Bitonic","n":32,"p":4}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(spec.key.workload, "bitonic");
    }

    #[test]
    fn omitted_kernel_is_matmul_and_keeps_the_fingerprint() {
        let implicit = JobSpec::from_json(&parse(r#"{"mode":"simd","n":16}"#).unwrap()).unwrap();
        let explicit =
            JobSpec::from_json(&parse(r#"{"mode":"simd","kernel":"matmul","n":16}"#).unwrap())
                .unwrap();
        assert_eq!(implicit.key, explicit.key);
        assert_eq!(implicit.key.fingerprint(), explicit.key.fingerprint());
    }

    #[test]
    fn bad_kernel_submissions_are_client_errors() {
        for (body, why) in [
            (
                r#"{"mode":"simd","kernel":"warp","n":16}"#,
                "unknown kernel",
            ),
            (r#"{"mode":"simd","kernel":42,"n":16}"#, "non-string kernel"),
            (
                r#"{"mode":"serial","kernel":"reduce","n":16}"#,
                "no serial variant",
            ),
            (
                r#"{"mode":"simd","kernel":"bitonic","n":24,"p":4}"#,
                "block size not a power of two",
            ),
        ] {
            let err = JobSpec::from_json(&parse(body).unwrap());
            assert!(err.is_err(), "{why}: {body}");
        }
    }

    #[test]
    fn equal_specs_have_equal_fingerprints() {
        let a = JobSpec::from_json(&parse(r#"{"mode":"mimd","n":32,"p":4}"#).unwrap()).unwrap();
        let b = JobSpec::from_json(&parse(r#"{"mode":"mimd","n":32,"p":4,"seed":1988}"#).unwrap())
            .unwrap();
        assert_eq!(a.key, b.key);
        assert_eq!(a.key.fingerprint(), b.key.fingerprint());
        let c = JobSpec::from_json(&parse(r#"{"mode":"mimd","n":32,"p":4,"seed":2}"#).unwrap())
            .unwrap();
        assert_ne!(a.key.fingerprint(), c.key.fingerprint());
    }
}
