//! 1-D image smoothing: a communication-light, constant-time stencil.
//!
//! The signal is a circular line of `n` 16-bit samples, block-partitioned
//! over `p` PEs (`K = n/p` samples each). Every pass applies the 3-tap
//! binomial filter
//!
//! ```text
//! out[i] = (x[i] + 2·x[i+1] + x[i+2]) >> 2        (wrapping 16-bit adds)
//! ```
//!
//! shift-only arithmetic, so every sample costs *exactly* the same cycle
//! count regardless of data — the polar opposite of the matmul's `MULU`
//! variance. A pass needs just two halo samples from the right ring
//! neighbor (the ring's receive direction, so the fixed `PE i → PE (i−1)`
//! circuits of the other kernels are reused unchanged), then `K` independent
//! stencil evaluations.
//!
//! This is the workload SIMD should win: there is no execution-time variance
//! for MIMD autonomy to exploit, while the SIMD PEs get their control flow
//! for free from the MC queue. The `extra_muls` knob adds smoothing passes
//! (more compute per halo exchange) instead of multiplies.
//!
//! Memory map (word addresses, per PE):
//!
//! | range                 | contents                              |
//! |-----------------------|---------------------------------------|
//! | `BUF0 .. +2(K+2)`     | ping buffer: `K` samples + 2-word halo |
//! | `BUF1 .. +2(K+2)`     | pong buffer: `K` samples + 2-word halo |

use crate::Kernel;
use pasm_isa::{AddrReg, DataReg, Ea, Instr, Program, ProgramBuilder, ShiftCount, ShiftKind, Size};
use pasm_machine::{Machine, RunError};
use pasm_prog::codegen::{
    lea_abs, movea_a, movei_w, xfer_element, ProgSink, A_PTR, CNT_MID, CNT_OUT, C_PTR, PHASE_HALO,
    PHASE_STENCIL,
};
use pasm_prog::matmul::{CommSync, MatmulParams};
use pasm_prog::{Mode, VirtualMachine};

/// Ping buffer base (initial input lives here).
pub const BUF0: u32 = 0x2000;
/// Pong buffer base.
pub const BUF1: u32 = 0x3000;
/// Smoothing passes before `extra_muls` adds more.
pub const BASE_PASSES: usize = 4;

const CUR: AddrReg = AddrReg::A4;
const OUT: AddrReg = AddrReg::A5;
const SWAP: AddrReg = AddrReg::A6;
const S0: DataReg = DataReg::D0;
const S1: DataReg = DataReg::D1;

/// Number of smoothing passes for a parameter set.
pub fn passes(params: MatmulParams) -> usize {
    BASE_PASSES + params.extra_muls
}

/// Where the final samples live: ping for an even pass count, pong for odd.
pub fn result_base(params: MatmulParams) -> u32 {
    if passes(params).is_multiple_of(2) {
        BUF0
    } else {
        BUF1
    }
}

/// The eight-instruction stencil body: one output sample from `(A0)`,
/// writing through `(A1)+`. Constant-time by construction (loads, adds,
/// one shift).
fn stencil_body() -> Vec<Instr> {
    vec![
        Instr::Move {
            size: Size::Word,
            src: Ea::PostInc(A_PTR),
            dst: Ea::D(S0),
        },
        Instr::Move {
            size: Size::Word,
            src: Ea::Ind(A_PTR),
            dst: Ea::D(S1),
        },
        Instr::Add {
            size: Size::Word,
            src: Ea::D(S1),
            dst: S0,
        },
        Instr::Add {
            size: Size::Word,
            src: Ea::D(S1),
            dst: S0,
        },
        Instr::Move {
            size: Size::Word,
            src: Ea::Disp(2, A_PTR),
            dst: Ea::D(S1),
        },
        Instr::Add {
            size: Size::Word,
            src: Ea::D(S1),
            dst: S0,
        },
        Instr::Shift {
            kind: ShiftKind::Lsr,
            size: Size::Word,
            count: ShiftCount::Imm(2),
            dst: S0,
        },
        Instr::Move {
            size: Size::Word,
            src: Ea::D(S0),
            dst: Ea::PostInc(C_PTR),
        },
    ]
}

/// PE program for MIMD (polling) and S/MIMD (barrier) smoothing.
pub fn pe_program(params: MatmulParams, sync: CommSync) -> Program {
    let k = params.n / params.p;
    let halo_off = 2 * k as u32; // byte offset of the halo slots
    let mut b = ProgramBuilder::new();
    b.emit(lea_abs(BUF0, CUR));
    b.emit(lea_abs(BUF1, OUT));
    b.emit(movei_w(passes(params) as u32 - 1, CNT_OUT));
    let iter = b.here("pass");

    // Halo exchange: stage own first two samples in the halo slots, then ring-
    // swap them (each PE sends its pair left and receives its right
    // neighbor's pair into the same slots).
    b.emit(Instr::Mark {
        begin: true,
        phase: PHASE_HALO,
    });
    if sync == CommSync::Barrier {
        b.emit(Instr::Barrier);
    }
    b.emit(movea_a(CUR, A_PTR));
    b.emit(movea_a(CUR, C_PTR));
    b.emit(Instr::Adda {
        size: Size::Word,
        src: Ea::Imm(halo_off),
        dst: C_PTR,
    });
    for _ in 0..2 {
        b.emit(Instr::Move {
            size: Size::Word,
            src: Ea::PostInc(A_PTR),
            dst: Ea::PostInc(C_PTR),
        });
    }
    b.emit(movea_a(CUR, A_PTR));
    b.emit(Instr::Adda {
        size: Size::Word,
        src: Ea::Imm(halo_off),
        dst: A_PTR,
    });
    {
        let mut sink = ProgSink { b: &mut b };
        xfer_element(sync == CommSync::Polling, &mut sink);
        xfer_element(sync == CommSync::Polling, &mut sink);
    }
    b.emit(Instr::Mark {
        begin: false,
        phase: PHASE_HALO,
    });

    // Stencil sweep over the K owned samples.
    b.emit(Instr::Mark {
        begin: true,
        phase: PHASE_STENCIL,
    });
    b.emit(movea_a(CUR, A_PTR));
    b.emit(movea_a(OUT, C_PTR));
    b.emit(movei_w(k as u32 - 1, CNT_MID));
    let body = b.here("stencil");
    for i in stencil_body() {
        b.emit(i);
    }
    b.branch(
        Instr::Dbra {
            dst: CNT_MID,
            target: 0,
        },
        body,
    );
    b.emit(Instr::Mark {
        begin: false,
        phase: PHASE_STENCIL,
    });

    // Ping-pong swap and next pass.
    b.emit(movea_a(CUR, SWAP));
    b.emit(movea_a(OUT, CUR));
    b.emit(movea_a(SWAP, OUT));
    b.branch(
        Instr::Dbra {
            dst: CNT_OUT,
            target: 0,
        },
        iter,
    );
    b.emit(Instr::Halt);
    b.build().expect("smooth PE program")
}

/// MC program for MIMD / S-MIMD smoothing (start + one barrier word per pass).
pub fn mc_program(params: MatmulParams, sync: CommSync, mask: u16) -> Program {
    let mut b = ProgramBuilder::new();
    b.emit(Instr::SetMask { mask });
    if sync == CommSync::Barrier {
        b.emit(Instr::EnqueueWords {
            count: passes(params) as u16,
        });
    }
    b.emit(Instr::StartPes);
    b.emit(Instr::Halt);
    b.build().expect("smooth MC program")
}

/// SIMD smoothing: the MC unrolls the passes (parity-specific halo and
/// pointer-setup blocks, one shared stencil-body block enqueued `K` times).
/// Returns `(pe_bootstrap, mc_program)`.
pub fn simd_programs(params: MatmulParams, mask: u16) -> (Program, Program) {
    let k = params.n / params.p;
    let t = passes(params);
    let halo_off = 2 * k as u32;

    let mut pe = ProgramBuilder::new();
    pe.emit(Instr::JmpSimd);
    pe.emit(Instr::Halt);
    let pe = pe.build().expect("SIMD smooth bootstrap");

    let mut b = ProgramBuilder::new();
    let bases = [(BUF0, BUF1), (BUF1, BUF0)];
    let halo: Vec<_> = bases
        .iter()
        .map(|&(cur, _)| {
            let blk = b.begin_block();
            b.emit(Instr::Mark {
                begin: true,
                phase: PHASE_HALO,
            });
            b.emit(lea_abs(cur, A_PTR));
            b.emit(lea_abs(cur + halo_off, C_PTR));
            for _ in 0..2 {
                b.emit(Instr::Move {
                    size: Size::Word,
                    src: Ea::PostInc(A_PTR),
                    dst: Ea::PostInc(C_PTR),
                });
            }
            b.emit(lea_abs(cur + halo_off, A_PTR));
            {
                let mut sink = ProgSink { b: &mut b };
                xfer_element(false, &mut sink);
                xfer_element(false, &mut sink);
            }
            b.emit(Instr::Mark {
                begin: false,
                phase: PHASE_HALO,
            });
            b.end_block();
            blk
        })
        .collect();
    let cinit: Vec<_> = bases
        .iter()
        .map(|&(cur, out)| {
            let blk = b.begin_block();
            b.emit(Instr::Mark {
                begin: true,
                phase: PHASE_STENCIL,
            });
            b.emit(lea_abs(cur, A_PTR));
            b.emit(lea_abs(out, C_PTR));
            b.end_block();
            blk
        })
        .collect();
    let body = b.begin_block();
    for i in stencil_body() {
        b.emit(i);
    }
    b.end_block();
    let cend = b.begin_block();
    b.emit(Instr::Mark {
        begin: false,
        phase: PHASE_STENCIL,
    });
    b.end_block();
    let done = b.begin_block();
    b.emit(Instr::JmpMimd { target: 1 });
    b.end_block();

    b.emit(Instr::SetMask { mask });
    b.emit(Instr::StartPes);
    for pass in 0..t {
        let par = pass % 2;
        b.emit(Instr::Enqueue { block: halo[par].0 });
        b.emit(Instr::Enqueue {
            block: cinit[par].0,
        });
        b.emit(movei_w(k as u32 - 1, DataReg::D6));
        let l = b.here(format!("mcpass{pass}"));
        b.emit(Instr::Enqueue { block: body.0 });
        b.branch(
            Instr::Dbra {
                dst: DataReg::D6,
                target: 0,
            },
            l,
        );
        b.emit(Instr::Enqueue { block: cend.0 });
    }
    b.emit(Instr::Enqueue { block: done.0 });
    b.emit(Instr::Halt);
    (pe, b.build().expect("SIMD smooth MC program"))
}

/// The registered smoothing kernel (see module docs).
pub struct Smooth;

impl Kernel for Smooth {
    fn name(&self) -> &'static str {
        "smooth"
    }

    fn description(&self) -> &'static str {
        "circular 3-tap binomial smoothing, constant-time compute, 2-word halos"
    }

    fn phases(&self) -> (u8, u8) {
        (PHASE_STENCIL, PHASE_HALO)
    }

    fn validate(&self, n: usize, p: usize) -> Result<(), String> {
        if p < 2 || !p.is_power_of_two() {
            return Err(format!("smooth: p must be a power of two >= 2, got {p}"));
        }
        if !n.is_multiple_of(p) {
            return Err(format!("smooth: p must divide n (n={n}, p={p})"));
        }
        let k = n / p;
        if !(2..=1024).contains(&k) {
            return Err(format!(
                "smooth: samples per PE must be in 2..=1024, got {k} (n={n}, p={p})"
            ));
        }
        Ok(())
    }

    fn generate(&self, n: usize, seed: u64) -> Vec<u16> {
        let mut rng = pasm_util::Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_u16()).collect()
    }

    fn reference(&self, params: MatmulParams, input: &[u16]) -> Vec<u16> {
        let mut x = input.to_vec();
        for _ in 0..passes(params) {
            x = smooth_once(&x);
        }
        x
    }

    fn load(
        &self,
        machine: &mut Machine,
        mode: Mode,
        params: MatmulParams,
        vm: &VirtualMachine,
        input: &[u16],
    ) -> Result<(), RunError> {
        let k = params.n / params.p;
        assert_eq!(input.len(), params.n, "smooth input is n words");
        machine
            .connect_ring(&vm.pes)
            .map_err(|e| RunError::Net(e.to_string()))?;
        for (l, &pe) in vm.pes.iter().enumerate() {
            machine
                .pe_mem_mut(pe)
                .load_words(BUF0, &input[l * k..(l + 1) * k]);
        }
        match mode {
            Mode::Simd => {
                let (pe_prog, mc_prog) = simd_programs(params, vm.mask);
                for &pe in &vm.pes {
                    machine.load_pe_program(pe, pe_prog.clone());
                }
                for &mc in &vm.mcs {
                    machine.load_mc_program(mc, mc_prog.clone());
                }
            }
            Mode::Mimd | Mode::Smimd => {
                let sync = mode.comm_sync().expect("parallel mode");
                let pe_prog = pe_program(params, sync);
                for &pe in &vm.pes {
                    machine.load_pe_program(pe, pe_prog.clone());
                }
                let mc_prog = mc_program(params, sync, vm.mask);
                for &mc in &vm.mcs {
                    machine.load_mc_program(mc, mc_prog.clone());
                }
            }
            Mode::Serial => panic!("smooth is a parallel workload"),
        }
        Ok(())
    }

    fn read_output(
        &self,
        machine: &Machine,
        _mode: Mode,
        params: MatmulParams,
        vm: &VirtualMachine,
    ) -> Vec<u16> {
        let k = params.n / params.p;
        let base = result_base(params);
        let mut out = Vec::with_capacity(params.n);
        for &pe in &vm.pes {
            for i in 0..k {
                out.push(machine.pe_mem(pe).read_word(base + 2 * i as u32));
            }
        }
        out
    }
}

/// One host-side smoothing pass over the circular signal, with exactly the
/// machine's arithmetic (wrapping 16-bit adds, then a logical shift).
fn smooth_once(x: &[u16]) -> Vec<u16> {
    let n = x.len();
    (0..n)
        .map(|i| {
            let s = x[i]
                .wrapping_add(x[(i + 1) % n])
                .wrapping_add(x[(i + 1) % n])
                .wrapping_add(x[(i + 2) % n]);
            s >> 2
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_build_for_all_sizes() {
        for p in [2usize, 4, 8, 16] {
            let params = MatmulParams {
                n: 16 * p,
                p,
                extra_muls: 1,
            };
            pe_program(params, CommSync::Polling).validate().unwrap();
            pe_program(params, CommSync::Barrier).validate().unwrap();
            let (pe, mc) = simd_programs(params, 0xF);
            pe.validate().unwrap();
            mc.validate().unwrap();
        }
    }

    #[test]
    fn reference_smoothing_converges_toward_the_mean() {
        let k = Smooth;
        let input = vec![0u16, 0, 0, 0, 400, 400, 400, 400];
        let params = MatmulParams {
            n: 8,
            p: 4,
            extra_muls: 0,
        };
        let out = k.reference(params, &input);
        // Smoothing must contract the range.
        let (lo, hi) = (out.iter().min().unwrap(), out.iter().max().unwrap());
        assert!(hi - lo < 400, "range must shrink, got {out:?}");
    }

    #[test]
    fn result_base_alternates_with_pass_count() {
        let even = MatmulParams {
            n: 32,
            p: 4,
            extra_muls: 0,
        };
        let odd = MatmulParams {
            n: 32,
            p: 4,
            extra_muls: 1,
        };
        assert_eq!(result_base(even), BUF0); // BASE_PASSES = 4
        assert_eq!(result_base(odd), BUF1);
    }

    #[test]
    fn validate_bounds_block_size() {
        let k = Smooth;
        assert!(k.validate(64, 4).is_ok());
        assert!(k.validate(64, 64).is_err()); // K = 1
        assert!(k.validate(63, 4).is_err());
        assert!(k.validate(64, 1).is_err());
    }
}
