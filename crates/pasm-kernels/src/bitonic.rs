//! Bitonic sort / rank: the data-dependent, MIMD-favoring kernel.
//!
//! Each PE holds `K = n/p` keys. The run has three phases:
//!
//! 1. **Local bitonic network** (`bitonic_network` span): the classic
//!    Batcher network, driven by a host-built comparator table so every PE
//!    executes the identical instruction sequence over its own data.
//! 2. **Ring rotation** (`recirculation_transfer` span): the blocks travel
//!    the fixed `PE i → PE (i−1)` circuits; after step `s` each PE holds
//!    (a copy of) the block of its `s`-th right neighbor.
//! 3. **Rank counting** (`rank_count` span): against every foreign block the
//!    PE counts, per owned key, how many foreign keys are smaller. Summed
//!    with the key's local sorted position this yields its exact global rank.
//!
//! The ESC establishes circuits once per run, so the pairwise exchanges of a
//! *global* bitonic merge are out of reach; the rotation + counting scheme
//! keeps communication on the shared ring while the comparison work — the
//! quantity under study — stays data-dependent.
//!
//! Keys are unique by construction (see [`Bitonic::generate`]), so ranks are
//! a permutation of `0..n` and strict unsigned compares need no tie-breaking.
//! Keys are 15-bit, which keeps `y − x` exact in signed 16-bit arithmetic —
//! that is what lets the SIMD variant replace the data-dependent branch with
//! a branch-free sign-mask compare-exchange:
//!
//! * **MIMD/S-MIMD comparator:** `CMP` + `BCC` + two conditional stores —
//!   10 cycles when ordered, taken-branch-free swap path when not. Fast on
//!   average, variable per element.
//! * **SIMD comparator:** `d = y − x`; `ASR #8` + `ASR #7` smears the sign
//!   into a full-word mask; XOR-swap under the mask. Every comparator costs
//!   the identical (higher) cycle count — the price of lockstep.
//!
//! That asymmetry is the kernel's point: MIMD autonomy wins on branchy code.
//!
//! Memory map (byte addresses, per PE): `KEYS` (K words, sorted in place),
//! `RANKS` (K words), `XBUF` (K-word rotation buffer), `CTAB` (host-built
//! comparator table, `2·n_comp` word addresses).
//!
//! Output: per PE, its K sorted keys followed by their K global ranks.

use crate::Kernel;
use pasm_isa::{Cond, DataReg, Ea, Instr, Program, ProgramBuilder, ShiftCount, ShiftKind, Size};
use pasm_machine::{Machine, RunError};
use pasm_prog::codegen::{
    lea_abs, movei_w, xfer_element, ProgSink, A_PTR, B_PTR, CNT_MID, CNT_OUT, C_PTR, PHASE_COMM,
    PHASE_RANK, PHASE_SORT, TT_PTR,
};
use pasm_prog::matmul::{CommSync, MatmulParams};
use pasm_prog::{Mode, VirtualMachine};

/// Sorted keys (in place), word-aligned.
pub const KEYS: u32 = 0x2000;
/// Global ranks, parallel to `KEYS`.
pub const RANKS: u32 = 0x2400;
/// Rotation buffer the foreign blocks pass through.
pub const XBUF: u32 = 0x2800;
/// Comparator table: `n_comp` pairs of word addresses into `KEYS`.
pub const CTAB: u32 = 0x3000;

const X: DataReg = DataReg::D0;
const Y: DataReg = DataReg::D1;
const MASK: DataReg = DataReg::D2;
const ACC: DataReg = DataReg::D3;
const INNER: DataReg = DataReg::D6;

/// The comparator table of the K-key bitonic network: `(first, second)` byte
/// addresses meaning "make `mem[first] ≤ mem[second]`". Descending
/// comparators are encoded by swapping the addresses, so the PE code is one
/// uniform primitive.
pub fn comparators(k: usize) -> Vec<(u16, u16)> {
    assert!(k.is_power_of_two() && k >= 2);
    let addr = |i: usize| (KEYS + 2 * i as u32) as u16;
    let mut table = Vec::new();
    let mut span = 2;
    while span <= k {
        let mut j = span / 2;
        while j >= 1 {
            for i in 0..k {
                let l = i ^ j;
                if l > i {
                    if i & span == 0 {
                        table.push((addr(i), addr(l))); // ascending run
                    } else {
                        table.push((addr(l), addr(i))); // descending run
                    }
                }
            }
            j /= 2;
        }
        span *= 2;
    }
    table
}

/// PE program for MIMD (polling) and S/MIMD (barrier) sort+rank.
pub fn pe_program(params: MatmulParams, sync: CommSync) -> Program {
    let k = params.n / params.p;
    let n_comp = comparators(k).len();
    let mut b = ProgramBuilder::new();

    // Phase 1: table-driven local bitonic network, branchy comparator.
    b.emit(Instr::Mark {
        begin: true,
        phase: PHASE_SORT,
    });
    b.emit(lea_abs(CTAB, TT_PTR));
    b.emit(movei_w(n_comp as u32 - 1, CNT_OUT));
    let net = b.here("net");
    b.emit(Instr::Movea {
        size: Size::Word,
        src: Ea::PostInc(TT_PTR),
        dst: A_PTR,
    });
    b.emit(Instr::Movea {
        size: Size::Word,
        src: Ea::PostInc(TT_PTR),
        dst: C_PTR,
    });
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::Ind(A_PTR),
        dst: Ea::D(X),
    });
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::Ind(C_PTR),
        dst: Ea::D(Y),
    });
    b.emit(Instr::Cmp {
        size: Size::Word,
        src: Ea::D(X),
        dst: Y,
    });
    let ordered = b.new_label("ordered");
    b.branch(
        Instr::Bcc {
            cond: Cond::Cc, // y >= x (unsigned): already in order
            target: 0,
        },
        ordered,
    );
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::D(Y),
        dst: Ea::Ind(A_PTR),
    });
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::D(X),
        dst: Ea::Ind(C_PTR),
    });
    b.bind(ordered);
    b.branch(
        Instr::Dbra {
            dst: CNT_OUT,
            target: 0,
        },
        net,
    );
    b.emit(Instr::Mark {
        begin: false,
        phase: PHASE_SORT,
    });

    // RANKS[j] = j (the key's local sorted position seeds its global rank).
    b.emit(lea_abs(RANKS, C_PTR));
    b.emit(Instr::Clr {
        size: Size::Word,
        dst: Ea::D(X),
    });
    b.emit(movei_w(k as u32 - 1, CNT_MID));
    let rinit = b.here("rinit");
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::D(X),
        dst: Ea::PostInc(C_PTR),
    });
    b.emit(Instr::Addq {
        size: Size::Word,
        value: 1,
        dst: Ea::D(X),
    });
    b.branch(
        Instr::Dbra {
            dst: CNT_MID,
            target: 0,
        },
        rinit,
    );

    // Seed the rotation buffer with the own (sorted) block.
    b.emit(lea_abs(KEYS, A_PTR));
    b.emit(lea_abs(XBUF, C_PTR));
    b.emit(movei_w(k as u32 - 1, CNT_MID));
    let cp = b.here("cp");
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::PostInc(A_PTR),
        dst: Ea::PostInc(C_PTR),
    });
    b.branch(
        Instr::Dbra {
            dst: CNT_MID,
            target: 0,
        },
        cp,
    );

    // Phases 2+3, p−1 times: rotate XBUF one ring hop, count foreign keys.
    b.emit(movei_w(params.p as u32 - 2, CNT_OUT));
    let step = b.here("step");
    b.emit(Instr::Mark {
        begin: true,
        phase: PHASE_COMM,
    });
    if sync == CommSync::Barrier {
        b.emit(Instr::Barrier);
    }
    b.emit(lea_abs(XBUF, A_PTR));
    b.emit(movei_w(k as u32 - 1, CNT_MID));
    let rot = b.here("rot");
    {
        let mut sink = ProgSink { b: &mut b };
        xfer_element(sync == CommSync::Polling, &mut sink);
    }
    b.branch(
        Instr::Dbra {
            dst: CNT_MID,
            target: 0,
        },
        rot,
    );
    b.emit(Instr::Mark {
        begin: false,
        phase: PHASE_COMM,
    });
    b.emit(Instr::Mark {
        begin: true,
        phase: PHASE_RANK,
    });
    b.emit(lea_abs(KEYS, C_PTR));
    b.emit(lea_abs(RANKS, B_PTR));
    b.emit(movei_w(k as u32 - 1, CNT_MID));
    let outer = b.here("outer");
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::PostInc(C_PTR),
        dst: Ea::D(Y),
    });
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::Ind(B_PTR),
        dst: Ea::D(ACC),
    });
    b.emit(lea_abs(XBUF, A_PTR));
    b.emit(movei_w(k as u32 - 1, INNER));
    let inner = b.here("inner");
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::PostInc(A_PTR),
        dst: Ea::D(X),
    });
    b.emit(Instr::Cmp {
        size: Size::Word,
        src: Ea::D(Y),
        dst: X,
    });
    let noinc = b.new_label("noinc");
    b.branch(
        Instr::Bcc {
            cond: Cond::Cc, // foreign >= own: not smaller, no count
            target: 0,
        },
        noinc,
    );
    b.emit(Instr::Addq {
        size: Size::Word,
        value: 1,
        dst: Ea::D(ACC),
    });
    b.bind(noinc);
    b.branch(
        Instr::Dbra {
            dst: INNER,
            target: 0,
        },
        inner,
    );
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::D(ACC),
        dst: Ea::PostInc(B_PTR),
    });
    b.branch(
        Instr::Dbra {
            dst: CNT_MID,
            target: 0,
        },
        outer,
    );
    b.emit(Instr::Mark {
        begin: false,
        phase: PHASE_RANK,
    });
    b.branch(
        Instr::Dbra {
            dst: CNT_OUT,
            target: 0,
        },
        step,
    );
    b.emit(Instr::Halt);
    b.build().expect("bitonic PE program")
}

/// MC program for MIMD / S-MIMD (start + one barrier word per ring step).
pub fn mc_program(params: MatmulParams, sync: CommSync, mask: u16) -> Program {
    let mut b = ProgramBuilder::new();
    b.emit(Instr::SetMask { mask });
    if sync == CommSync::Barrier {
        b.emit(Instr::EnqueueWords {
            count: params.p as u16 - 1,
        });
    }
    b.emit(Instr::StartPes);
    b.emit(Instr::Halt);
    b.build().expect("bitonic MC program")
}

/// SIMD sort+rank: branch-free comparators, MC-driven loop nest.
/// Returns `(pe_bootstrap, mc_program)`.
pub fn simd_programs(params: MatmulParams, mask: u16) -> (Program, Program) {
    let k = params.n / params.p;
    let n_comp = comparators(k).len();

    let mut pe = ProgramBuilder::new();
    pe.emit(Instr::JmpSimd);
    pe.emit(Instr::Halt);
    let pe = pe.build().expect("SIMD bitonic bootstrap");

    let mut b = ProgramBuilder::new();
    let sort_init = b.begin_block();
    b.emit(Instr::Mark {
        begin: true,
        phase: PHASE_SORT,
    });
    b.emit(lea_abs(CTAB, TT_PTR));
    b.end_block();

    // The branch-free compare-exchange: sign-mask + XOR-swap. Constant time
    // whatever the data — and paying for it on every comparator.
    let sort_body = b.begin_block();
    b.emit(Instr::Movea {
        size: Size::Word,
        src: Ea::PostInc(TT_PTR),
        dst: A_PTR,
    });
    b.emit(Instr::Movea {
        size: Size::Word,
        src: Ea::PostInc(TT_PTR),
        dst: C_PTR,
    });
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::Ind(A_PTR),
        dst: Ea::D(X),
    });
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::Ind(C_PTR),
        dst: Ea::D(Y),
    });
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::D(Y),
        dst: Ea::D(MASK),
    });
    b.emit(Instr::Sub {
        size: Size::Word,
        src: Ea::D(X),
        dst: MASK,
    });
    // 15-bit keys: y − x fits signed 16-bit, so two ASRs (8 then 7 — the
    // immediate count maxes at 8) smear the sign across the word.
    b.emit(Instr::Shift {
        kind: ShiftKind::Asr,
        size: Size::Word,
        count: ShiftCount::Imm(8),
        dst: MASK,
    });
    b.emit(Instr::Shift {
        kind: ShiftKind::Asr,
        size: Size::Word,
        count: ShiftCount::Imm(7),
        dst: MASK,
    });
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::D(X),
        dst: Ea::D(ACC),
    });
    b.emit(Instr::Eor {
        size: Size::Word,
        src: Y,
        dst: Ea::D(ACC),
    });
    b.emit(Instr::And {
        size: Size::Word,
        src: Ea::D(MASK),
        dst: ACC,
    });
    b.emit(Instr::Eor {
        size: Size::Word,
        src: ACC,
        dst: Ea::D(X),
    });
    b.emit(Instr::Eor {
        size: Size::Word,
        src: ACC,
        dst: Ea::D(Y),
    });
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::D(X),
        dst: Ea::Ind(A_PTR),
    });
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::D(Y),
        dst: Ea::Ind(C_PTR),
    });
    b.end_block();

    let rinit_head = b.begin_block();
    b.emit(Instr::Mark {
        begin: false,
        phase: PHASE_SORT,
    });
    b.emit(lea_abs(RANKS, C_PTR));
    b.emit(Instr::Clr {
        size: Size::Word,
        dst: Ea::D(X),
    });
    b.end_block();
    let rinit_body = b.begin_block();
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::D(X),
        dst: Ea::PostInc(C_PTR),
    });
    b.emit(Instr::Addq {
        size: Size::Word,
        value: 1,
        dst: Ea::D(X),
    });
    b.end_block();

    let copy_head = b.begin_block();
    b.emit(lea_abs(KEYS, A_PTR));
    b.emit(lea_abs(XBUF, C_PTR));
    b.end_block();
    let copy_body = b.begin_block();
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::PostInc(A_PTR),
        dst: Ea::PostInc(C_PTR),
    });
    b.end_block();

    let rot_head = b.begin_block();
    b.emit(Instr::Mark {
        begin: true,
        phase: PHASE_COMM,
    });
    b.emit(lea_abs(XBUF, A_PTR));
    b.end_block();
    let rot_body = b.begin_block();
    {
        let mut sink = ProgSink { b: &mut b };
        xfer_element(false, &mut sink);
    }
    b.end_block();

    let rank_head = b.begin_block();
    b.emit(Instr::Mark {
        begin: false,
        phase: PHASE_COMM,
    });
    b.emit(Instr::Mark {
        begin: true,
        phase: PHASE_RANK,
    });
    b.emit(lea_abs(KEYS, C_PTR));
    b.emit(lea_abs(RANKS, B_PTR));
    b.end_block();
    let outer_head = b.begin_block();
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::PostInc(C_PTR),
        dst: Ea::D(Y),
    });
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::Ind(B_PTR),
        dst: Ea::D(ACC),
    });
    b.emit(lea_abs(XBUF, A_PTR));
    b.end_block();
    // Branch-free count: rank −= sign-mask(foreign − own), i.e. +1 exactly
    // when the foreign key is smaller.
    let inner_body = b.begin_block();
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::PostInc(A_PTR),
        dst: Ea::D(X),
    });
    b.emit(Instr::Sub {
        size: Size::Word,
        src: Ea::D(Y),
        dst: X,
    });
    b.emit(Instr::Shift {
        kind: ShiftKind::Asr,
        size: Size::Word,
        count: ShiftCount::Imm(8),
        dst: X,
    });
    b.emit(Instr::Shift {
        kind: ShiftKind::Asr,
        size: Size::Word,
        count: ShiftCount::Imm(7),
        dst: X,
    });
    b.emit(Instr::Sub {
        size: Size::Word,
        src: Ea::D(X),
        dst: ACC,
    });
    b.end_block();
    let outer_tail = b.begin_block();
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::D(ACC),
        dst: Ea::PostInc(B_PTR),
    });
    b.end_block();
    let rank_tail = b.begin_block();
    b.emit(Instr::Mark {
        begin: false,
        phase: PHASE_RANK,
    });
    b.end_block();
    let done = b.begin_block();
    b.emit(Instr::JmpMimd { target: 1 });
    b.end_block();

    // The MC drive loop nest.
    b.emit(Instr::SetMask { mask });
    b.emit(Instr::StartPes);
    b.emit(Instr::Enqueue { block: sort_init.0 });
    b.emit(movei_w(n_comp as u32 - 1, DataReg::D7));
    let mnet = b.here("mnet");
    b.emit(Instr::Enqueue { block: sort_body.0 });
    b.branch(
        Instr::Dbra {
            dst: DataReg::D7,
            target: 0,
        },
        mnet,
    );
    b.emit(Instr::Enqueue {
        block: rinit_head.0,
    });
    b.emit(movei_w(k as u32 - 1, DataReg::D6));
    let mrinit = b.here("mrinit");
    b.emit(Instr::Enqueue {
        block: rinit_body.0,
    });
    b.branch(
        Instr::Dbra {
            dst: DataReg::D6,
            target: 0,
        },
        mrinit,
    );
    b.emit(Instr::Enqueue { block: copy_head.0 });
    b.emit(movei_w(k as u32 - 1, DataReg::D6));
    let mcopy = b.here("mcopy");
    b.emit(Instr::Enqueue { block: copy_body.0 });
    b.branch(
        Instr::Dbra {
            dst: DataReg::D6,
            target: 0,
        },
        mcopy,
    );
    b.emit(movei_w(params.p as u32 - 2, DataReg::D7));
    let mstep = b.here("mstep");
    b.emit(Instr::Enqueue { block: rot_head.0 });
    b.emit(movei_w(k as u32 - 1, DataReg::D6));
    let mrot = b.here("mrot");
    b.emit(Instr::Enqueue { block: rot_body.0 });
    b.branch(
        Instr::Dbra {
            dst: DataReg::D6,
            target: 0,
        },
        mrot,
    );
    b.emit(Instr::Enqueue { block: rank_head.0 });
    b.emit(movei_w(k as u32 - 1, DataReg::D6));
    let mouter = b.here("mouter");
    b.emit(Instr::Enqueue {
        block: outer_head.0,
    });
    b.emit(movei_w(k as u32 - 1, DataReg::D5));
    let minner = b.here("minner");
    b.emit(Instr::Enqueue {
        block: inner_body.0,
    });
    b.branch(
        Instr::Dbra {
            dst: DataReg::D5,
            target: 0,
        },
        minner,
    );
    b.emit(Instr::Enqueue {
        block: outer_tail.0,
    });
    b.branch(
        Instr::Dbra {
            dst: DataReg::D6,
            target: 0,
        },
        mouter,
    );
    b.emit(Instr::Enqueue { block: rank_tail.0 });
    b.branch(
        Instr::Dbra {
            dst: DataReg::D7,
            target: 0,
        },
        mstep,
    );
    b.emit(Instr::Enqueue { block: done.0 });
    b.emit(Instr::Halt);
    (pe, b.build().expect("SIMD bitonic MC program"))
}

/// The registered bitonic sort/rank kernel (see module docs).
pub struct Bitonic;

impl Kernel for Bitonic {
    fn name(&self) -> &'static str {
        "bitonic"
    }

    fn description(&self) -> &'static str {
        "local bitonic network + ring rank counting; data-dependent compares"
    }

    fn phases(&self) -> (u8, u8) {
        (PHASE_RANK, PHASE_COMM)
    }

    fn validate(&self, n: usize, p: usize) -> Result<(), String> {
        if p < 2 || !p.is_power_of_two() {
            return Err(format!("bitonic: p must be a power of two >= 2, got {p}"));
        }
        if !n.is_multiple_of(p) {
            return Err(format!("bitonic: p must divide n (n={n}, p={p})"));
        }
        let k = n / p;
        if !k.is_power_of_two() || !(2..=128).contains(&k) {
            return Err(format!(
                "bitonic: keys per PE must be a power of two in 2..=128, got {k} (n={n}, p={p})"
            ));
        }
        Ok(())
    }

    /// `n` distinct 15-bit keys (rejection-sampled), so ranks are a
    /// permutation of `0..n` and compares need no tie-breaking.
    fn generate(&self, n: usize, seed: u64) -> Vec<u16> {
        assert!(n <= 16384, "need n distinct 15-bit keys");
        let mut rng = pasm_util::Rng::seed_from_u64(seed);
        let mut seen = std::collections::HashSet::with_capacity(n);
        let mut keys = Vec::with_capacity(n);
        while keys.len() < n {
            let v = rng.gen_u16() & 0x7FFF;
            if seen.insert(v) {
                keys.push(v);
            }
        }
        keys
    }

    fn reference(&self, params: MatmulParams, input: &[u16]) -> Vec<u16> {
        let k = params.n / params.p;
        let mut global = input.to_vec();
        global.sort_unstable();
        let mut out = Vec::with_capacity(2 * params.n);
        for block in input.chunks(k) {
            let mut sorted = block.to_vec();
            sorted.sort_unstable();
            out.extend_from_slice(&sorted);
            for key in &sorted {
                // Keys are unique, so the binary search is exact.
                out.push(global.binary_search(key).unwrap() as u16);
            }
        }
        out
    }

    fn load(
        &self,
        machine: &mut Machine,
        mode: Mode,
        params: MatmulParams,
        vm: &VirtualMachine,
        input: &[u16],
    ) -> Result<(), RunError> {
        let k = params.n / params.p;
        assert_eq!(input.len(), params.n, "bitonic input is n words");
        machine
            .connect_ring(&vm.pes)
            .map_err(|e| RunError::Net(e.to_string()))?;
        let table: Vec<u16> = comparators(k)
            .into_iter()
            .flat_map(|(a, b)| [a, b])
            .collect();
        for (l, &pe) in vm.pes.iter().enumerate() {
            let mem = machine.pe_mem_mut(pe);
            mem.load_words(KEYS, &input[l * k..(l + 1) * k]);
            mem.load_words(CTAB, &table);
        }
        match mode {
            Mode::Simd => {
                let (pe_prog, mc_prog) = simd_programs(params, vm.mask);
                for &pe in &vm.pes {
                    machine.load_pe_program(pe, pe_prog.clone());
                }
                for &mc in &vm.mcs {
                    machine.load_mc_program(mc, mc_prog.clone());
                }
            }
            Mode::Mimd | Mode::Smimd => {
                let sync = mode.comm_sync().expect("parallel mode");
                let pe_prog = pe_program(params, sync);
                for &pe in &vm.pes {
                    machine.load_pe_program(pe, pe_prog.clone());
                }
                let mc_prog = mc_program(params, sync, vm.mask);
                for &mc in &vm.mcs {
                    machine.load_mc_program(mc, mc_prog.clone());
                }
            }
            Mode::Serial => panic!("bitonic is a parallel workload"),
        }
        Ok(())
    }

    fn read_output(
        &self,
        machine: &Machine,
        _mode: Mode,
        params: MatmulParams,
        vm: &VirtualMachine,
    ) -> Vec<u16> {
        let k = params.n / params.p;
        let mut out = Vec::with_capacity(2 * params.n);
        for &pe in &vm.pes {
            let mem = machine.pe_mem(pe);
            for i in 0..k {
                out.push(mem.read_word(KEYS + 2 * i as u32));
            }
            for i in 0..k {
                out.push(mem.read_word(RANKS + 2 * i as u32));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Host-side execution of the comparator table proves the network sorts.
    #[test]
    fn comparator_table_sorts_every_block_size() {
        for k in [2usize, 4, 8, 16, 32, 64, 128] {
            let table = comparators(k);
            let log = k.trailing_zeros() as usize;
            assert_eq!(table.len(), k / 2 * log * (log + 1) / 2);
            let mut rng = pasm_util::Rng::seed_from_u64(k as u64);
            let mut data: Vec<u16> = (0..k).map(|_| rng.gen_u16() & 0x7FFF).collect();
            let mut expect = data.clone();
            expect.sort_unstable();
            for (a, bb) in &table {
                let (i, j) = (
                    ((*a as u32 - KEYS) / 2) as usize,
                    ((*bb as u32 - KEYS) / 2) as usize,
                );
                if data[i] > data[j] {
                    data.swap(i, j);
                }
            }
            assert_eq!(data, expect, "K={k} network failed to sort");
        }
    }

    #[test]
    fn generated_keys_are_distinct_15_bit() {
        let k = Bitonic;
        let keys = k.generate(256, 7);
        assert!(keys.iter().all(|&v| v < 0x8000));
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 256);
        assert_eq!(k.generate(256, 7), keys, "seeded generation is stable");
    }

    #[test]
    fn reference_ranks_are_a_permutation() {
        let k = Bitonic;
        let params = MatmulParams {
            n: 32,
            p: 4,
            extra_muls: 0,
        };
        let input = k.generate(32, 3);
        let out = k.reference(params, &input);
        assert_eq!(out.len(), 64);
        let mut ranks: Vec<u16> = (0..4)
            .flat_map(|l| out[l * 16 + 8..l * 16 + 16].to_vec())
            .collect();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..32).collect::<Vec<u16>>());
    }

    #[test]
    fn programs_build_for_all_shapes() {
        for p in [2usize, 4, 8, 16] {
            for k in [2usize, 16, 64] {
                let params = MatmulParams {
                    n: k * p,
                    p,
                    extra_muls: 0,
                };
                pe_program(params, CommSync::Polling).validate().unwrap();
                pe_program(params, CommSync::Barrier).validate().unwrap();
                let (pe, mc) = simd_programs(params, 0xFFFF);
                pe.validate().unwrap();
                mc.validate().unwrap();
            }
        }
    }

    #[test]
    fn validate_requires_power_of_two_blocks() {
        let b = Bitonic;
        assert!(b.validate(64, 4).is_ok());
        assert!(b.validate(48, 4).is_err()); // K = 12
        assert!(b.validate(4, 2).is_ok());
        assert!(b.validate(2, 2).is_err()); // K = 1
        assert!(b.validate(2048, 4).is_err()); // K = 512 > 128
    }
}
