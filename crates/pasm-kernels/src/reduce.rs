//! Global-sum reduction as a registered kernel.
//!
//! Thin registry adapter over [`pasm_prog::reduction`]: each PE sums its
//! `K = n/p` block locally (`local_sum` phase), then the partials circulate
//! the ring for `p − 1` synchronized steps with every PE forwarding and
//! accumulating (`recirculation_transfer` phase) until all PEs hold the
//! global wrapping 16-bit sum.
//!
//! O(K) constant-time adds against O(p) synchronized transfers: the
//! barrier-per-step cost structure the paper's S/MIMD protocol targets,
//! with almost no compute variance in the way.
//!
//! One note on topology: the ESC establishes its circuits once per run, so a
//! log-depth tree combine is out of reach — the reduction is realized as ring
//! forwarding on the same fixed `PE i → PE (i−1)` circuits every other kernel
//! uses, making its communication costs directly comparable.
//!
//! Output: `p` words, one per PE, all equal to the global sum.

use crate::Kernel;
use pasm_machine::{Machine, RunError};
use pasm_prog::codegen::{PHASE_COMM, PHASE_LSUM};
use pasm_prog::matmul::MatmulParams;
use pasm_prog::reduction::{self, ReduceParams, RESULT_ADDR, VEC_BASE};
use pasm_prog::{Mode, VirtualMachine};

/// The registered reduction kernel (see module docs).
pub struct Reduce;

impl Kernel for Reduce {
    fn name(&self) -> &'static str {
        "reduce"
    }

    fn description(&self) -> &'static str {
        "ring global sum: O(n/p) local adds, p-1 synchronized transfer steps"
    }

    fn phases(&self) -> (u8, u8) {
        (PHASE_LSUM, PHASE_COMM)
    }

    fn validate(&self, n: usize, p: usize) -> Result<(), String> {
        if p < 2 || !p.is_power_of_two() {
            return Err(format!("reduce: p must be a power of two >= 2, got {p}"));
        }
        if !n.is_multiple_of(p) {
            return Err(format!("reduce: p must divide n (n={n}, p={p})"));
        }
        let k = n / p;
        if !(1..=4096).contains(&k) {
            return Err(format!(
                "reduce: elements per PE must be in 1..=4096, got {k} (n={n}, p={p})"
            ));
        }
        Ok(())
    }

    fn generate(&self, n: usize, seed: u64) -> Vec<u16> {
        let mut rng = pasm_util::Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_u16()).collect()
    }

    fn reference(&self, params: MatmulParams, input: &[u16]) -> Vec<u16> {
        let sum = input.iter().fold(0u16, |a, &v| a.wrapping_add(v));
        vec![sum; params.p]
    }

    fn load(
        &self,
        machine: &mut Machine,
        mode: Mode,
        params: MatmulParams,
        vm: &VirtualMachine,
        input: &[u16],
    ) -> Result<(), RunError> {
        let k = params.n / params.p;
        assert_eq!(input.len(), params.n, "reduce input is n words");
        let rp = ReduceParams { k, p: params.p };
        machine
            .connect_ring(&vm.pes)
            .map_err(|e| RunError::Net(e.to_string()))?;
        for (l, &pe) in vm.pes.iter().enumerate() {
            machine
                .pe_mem_mut(pe)
                .load_words(VEC_BASE, &input[l * k..(l + 1) * k]);
        }
        match mode {
            Mode::Simd => {
                let (pe_prog, mc_prog) = reduction::simd_programs(rp, vm.mask);
                for &pe in &vm.pes {
                    machine.load_pe_program(pe, pe_prog.clone());
                }
                for &mc in &vm.mcs {
                    machine.load_mc_program(mc, mc_prog.clone());
                }
            }
            Mode::Mimd | Mode::Smimd => {
                let sync = mode.comm_sync().expect("parallel mode");
                let pe_prog = reduction::pe_program(rp, sync);
                for &pe in &vm.pes {
                    machine.load_pe_program(pe, pe_prog.clone());
                }
                let mc_prog = reduction::mc_program(rp, sync, vm.mask);
                for &mc in &vm.mcs {
                    machine.load_mc_program(mc, mc_prog.clone());
                }
            }
            Mode::Serial => panic!("reduce is a parallel workload"),
        }
        Ok(())
    }

    fn read_output(
        &self,
        machine: &Machine,
        _mode: Mode,
        _params: MatmulParams,
        vm: &VirtualMachine,
    ) -> Vec<u16> {
        vm.pes
            .iter()
            .map(|&pe| machine.pe_mem(pe).read_word(RESULT_ADDR))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_is_the_wrapping_sum_everywhere() {
        let k = Reduce;
        let params = MatmulParams {
            n: 4,
            p: 2,
            extra_muls: 0,
        };
        assert_eq!(
            k.reference(params, &[0xFFFF, 2, 3, 0]),
            vec![4, 4] // 0xFFFF + 2 wraps to 1, + 3 = 4
        );
    }

    #[test]
    fn validate_requires_a_ring() {
        let k = Reduce;
        assert!(k.validate(64, 4).is_ok());
        assert!(k.validate(64, 1).is_err());
        assert!(k.validate(63, 4).is_err());
    }
}
