//! # pasm-kernels — the registered workloads of the PASM experiments
//!
//! The paper measures its SIMD / MIMD / S/MIMD tradeoff on one program
//! (column-partitioned matrix multiplication). This crate turns "a PASM
//! experiment" into "any registered workload": a [`Kernel`] is a named
//! workload that knows how to generate its own seeded input, emit per-mode
//! programs through the shared `pasm-prog` code generators, read its output
//! back from PE memories, and verify that output against a scalar host
//! reference.
//!
//! Four kernels are registered, chosen for genuinely different
//! communication/compute signatures:
//!
//! | kernel    | compute                          | communication                | favors |
//! |-----------|----------------------------------|------------------------------|--------|
//! | `matmul`  | data-dependent `MULU` (38–70 cy) | O(n²/p) ring recirculation   | mode-dependent (the paper's crossover) |
//! | `smooth`  | constant-time shift/add stencil  | 2-word halo per iteration    | SIMD (no variance to equalize, free MC control flow) |
//! | `reduce`  | O(K) constant-time adds          | p−1 synchronized ring steps  | isolates the three comm protocols |
//! | `bitonic` | data-dependent compare-exchange  | (p−1)·K ring rotation        | MIMD (branchy CE beats the branch-free SIMD comparator) |
//!
//! The registry is static: [`kernels`] lists every kernel, [`find`] resolves a
//! client-supplied name (the `pasm-server` job field and `pasm-run --kernel`
//! both go through it, so an unknown name is rejected before any machine is
//! built).

pub mod bitonic;
pub mod matmul;
pub mod reduce;
pub mod smooth;

use pasm_machine::{Machine, RunError};
use pasm_prog::{MatmulParams, Mode, VirtualMachine};
use std::hash::Hasher;

/// Name of the default workload (the paper's matrix multiplication). An
/// `ExperimentKey` whose workload equals this hashes exactly as the
/// pre-registry keys did, so existing cache fingerprints stay valid.
pub const MATMUL: &str = "matmul";

/// A registered workload: everything an experiment runner needs to execute
/// and verify it in any mode, without knowing what it computes.
///
/// `params` reuses [`MatmulParams`]: `n` is the kernel's problem size
/// (elements or matrix dimension — see each kernel), `p` the PE count, and
/// `extra_muls` a kernel-specific extra-work knob (added multiplies for
/// `matmul`, added smoothing passes for `smooth`, unused elsewhere).
pub trait Kernel: Sync {
    /// Stable registry name (lowercase; what clients submit).
    fn name(&self) -> &'static str;

    /// One-line description for listings.
    fn description(&self) -> &'static str;

    /// `(compute_phase, comm_phase)` ids of this kernel's `Mark` spans (see
    /// `pasm_prog::codegen::phase_name`), used for result summaries.
    fn phases(&self) -> (u8, u8);

    /// Whether `Mode::Serial` is meaningful for this kernel.
    fn supports_serial(&self) -> bool {
        false
    }

    /// Check the structural constraints on `(n, p)` (divisibility, block-size
    /// bounds, power-of-two requirements) and return a client-displayable
    /// error. `p` range vs. the machine is checked by the caller.
    fn validate(&self, n: usize, p: usize) -> Result<(), String>;

    /// Deterministically generate the input words for problem size `n`.
    fn generate(&self, n: usize, seed: u64) -> Vec<u16>;

    /// Scalar host reference: the exact output words a correct run with
    /// these parameters produces.
    fn reference(&self, params: MatmulParams, input: &[u16]) -> Vec<u16>;

    /// Load data, programs and network circuits for one run onto `machine`'s
    /// virtual machine. Fails with [`RunError::Net`] when the circuits cannot
    /// be established (a real outcome on a faulted network).
    fn load(
        &self,
        machine: &mut Machine,
        mode: Mode,
        params: MatmulParams,
        vm: &VirtualMachine,
        input: &[u16],
    ) -> Result<(), RunError>;

    /// Read the output words back from PE memories after the run, in the
    /// same layout [`Kernel::reference`] produces. `mode` is the mode the
    /// run used (output placement may differ, e.g. the serial matmul layout).
    fn read_output(
        &self,
        machine: &Machine,
        mode: Mode,
        params: MatmulParams,
        vm: &VirtualMachine,
    ) -> Vec<u16>;
}

static REGISTRY: [&dyn Kernel; 4] = [
    &matmul::Matmul,
    &smooth::Smooth,
    &reduce::Reduce,
    &bitonic::Bitonic,
];

/// All registered kernels, `matmul` first.
pub fn kernels() -> &'static [&'static dyn Kernel] {
    &REGISTRY
}

/// Resolve a kernel by registry name (case-insensitive).
pub fn find(name: &str) -> Option<&'static dyn Kernel> {
    let lower = name.to_ascii_lowercase();
    kernels().iter().copied().find(|k| k.name() == lower)
}

/// The registered names, for error messages and listings.
pub fn names() -> Vec<&'static str> {
    kernels().iter().map(|k| k.name()).collect()
}

/// FNV-1a fingerprint of a word sequence (big-endian bytes — the same
/// convention `ExperimentResult` uses for the matmul product checksum).
pub fn checksum(words: &[u16]) -> u64 {
    let mut h = pasm_util::Fnv1a::new();
    for w in words {
        h.write(&w.to_be_bytes());
    }
    h.finish()
}

/// Compare a run's output against the kernel's scalar reference; the error
/// pinpoints the first mismatching word.
pub fn verify(
    kernel: &dyn Kernel,
    params: MatmulParams,
    input: &[u16],
    output: &[u16],
) -> Result<(), String> {
    let expect = kernel.reference(params, input);
    if output.len() != expect.len() {
        return Err(format!(
            "{}: output has {} words, reference has {}",
            kernel.name(),
            output.len(),
            expect.len()
        ));
    }
    for (i, (got, want)) in output.iter().zip(expect.iter()).enumerate() {
        if got != want {
            return Err(format!(
                "{}: output word {i} is {got:#06x}, reference says {want:#06x}",
                kernel.name()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_lowercase() {
        let names = names();
        assert_eq!(names.len(), 4);
        assert_eq!(names[0], MATMUL);
        for n in &names {
            assert_eq!(n.to_ascii_lowercase(), **n);
        }
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn find_is_case_insensitive_and_total() {
        assert_eq!(find("Bitonic").unwrap().name(), "bitonic");
        assert_eq!(find("MATMUL").unwrap().name(), "matmul");
        assert!(find("quicksort").is_none());
    }

    #[test]
    fn checksum_matches_manual_fnv() {
        let mut h = pasm_util::Fnv1a::new();
        h.write(&0x1234u16.to_be_bytes());
        h.write(&0x00FFu16.to_be_bytes());
        assert_eq!(checksum(&[0x1234, 0x00FF]), h.finish());
    }
}
