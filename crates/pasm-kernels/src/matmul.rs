//! The paper's workload as a registered kernel: column-partitioned matrix
//! multiplication with identity A and seeded uniform B (so C = B and results
//! are trivially checkable while `MULU` timing variance is fully driven by
//! the B data — paper §6).
//!
//! The kernel's input words are the row-major B matrix (`n²` words); the
//! output is the row-major C product read back from the PE column blocks.

use crate::Kernel;
use pasm_machine::{Machine, RunError};
use pasm_prog::codegen::{PHASE_COMM, PHASE_MUL};
use pasm_prog::matmul::{mimd, serial, simd, CommSync, MatmulParams};
use pasm_prog::{Layout, Matrix, Mode, VirtualMachine};

/// Load one matmul job onto a machine's virtual machine: data layout, network
/// circuits, PE and MC programs. Returns the layout for result read-back.
///
/// Fails with [`RunError::Net`] when the ring circuits cannot be established —
/// on a faulted network this is a real outcome, not a bug: a full-machine ring
/// uses every interior stage completely, so an interior-box fault leaves no
/// one-pass routing (the ESC permutation two-pass limit; see docs/FAULTS.md).
pub fn load_matmul(
    machine: &mut Machine,
    mode: Mode,
    params: MatmulParams,
    vm: &VirtualMachine,
    a: &Matrix,
    b: &Matrix,
) -> Result<Layout, RunError> {
    match mode {
        Mode::Serial => {
            let layout = Layout::serial(params.n);
            layout.load(machine, &vm.pes[..1], a, b);
            machine.load_pe_program(vm.pes[0], serial::pe_program(params));
            machine.load_mc_program(vm.mcs[0], serial::mc_program());
            Ok(layout)
        }
        Mode::Simd => {
            let layout = Layout::parallel(params.n, params.p);
            layout.load(machine, &vm.pes, a, b);
            machine
                .connect_ring(&vm.pes)
                .map_err(|e| RunError::Net(e.to_string()))?;
            for &pe in &vm.pes {
                machine.load_pe_program(pe, simd::pe_program());
            }
            let mc_prog = simd::mc_program(params, vm.mask);
            for &mc in &vm.mcs {
                machine.load_mc_program(mc, mc_prog.clone());
            }
            Ok(layout)
        }
        Mode::Mimd | Mode::Smimd => {
            let sync = if mode == Mode::Mimd {
                CommSync::Polling
            } else {
                CommSync::Barrier
            };
            let layout = Layout::parallel(params.n, params.p);
            layout.load(machine, &vm.pes, a, b);
            machine
                .connect_ring(&vm.pes)
                .map_err(|e| RunError::Net(e.to_string()))?;
            let pe_prog = mimd::pe_program(params, sync);
            for &pe in &vm.pes {
                machine.load_pe_program(pe, pe_prog.clone());
            }
            let mc_prog = mimd::mc_program(params, sync, vm.mask);
            for &mc in &vm.mcs {
                machine.load_mc_program(mc, mc_prog.clone());
            }
            Ok(layout)
        }
    }
}

/// The registered matmul kernel (see module docs).
pub struct Matmul;

impl Kernel for Matmul {
    fn name(&self) -> &'static str {
        crate::MATMUL
    }

    fn description(&self) -> &'static str {
        "column-partitioned n\u{d7}n matrix multiply, identity A (the paper's workload)"
    }

    fn phases(&self) -> (u8, u8) {
        (PHASE_MUL, PHASE_COMM)
    }

    fn supports_serial(&self) -> bool {
        true
    }

    fn validate(&self, n: usize, p: usize) -> Result<(), String> {
        if n == 0 || n > 512 {
            return Err(format!("matmul: n must be in 1..=512, got {n}"));
        }
        if !p.is_power_of_two() {
            return Err(format!("matmul: p must be a power of two, got {p}"));
        }
        if !n.is_multiple_of(p) || n < p {
            return Err(format!("matmul: p must divide n (n={n}, p={p})"));
        }
        Ok(())
    }

    fn generate(&self, n: usize, seed: u64) -> Vec<u16> {
        let b = Matrix::uniform(n, seed);
        let mut words = Vec::with_capacity(n * n);
        for r in 0..n {
            for c in 0..n {
                words.push(b.get(r, c));
            }
        }
        words
    }

    fn reference(&self, params: MatmulParams, input: &[u16]) -> Vec<u16> {
        // A is the identity, so C = B. Kept as an explicit multiply so the
        // reference stays honest if the A operand ever changes.
        let n = params.n;
        let a = Matrix::identity(n);
        let b = Matrix::from_fn(n, |r, c| input[r * n + c]);
        let c = a.multiply(&b);
        let mut words = Vec::with_capacity(n * n);
        for r in 0..n {
            for col in 0..n {
                words.push(c.get(r, col));
            }
        }
        words
    }

    fn load(
        &self,
        machine: &mut Machine,
        mode: Mode,
        params: MatmulParams,
        vm: &VirtualMachine,
        input: &[u16],
    ) -> Result<(), RunError> {
        assert_eq!(
            input.len(),
            params.n * params.n,
            "matmul input is n\u{b2} words"
        );
        let a = Matrix::identity(params.n);
        let b = Matrix::from_fn(params.n, |r, c| input[r * params.n + c]);
        load_matmul(machine, mode, params, vm, &a, &b)?;
        Ok(())
    }

    fn read_output(
        &self,
        machine: &Machine,
        mode: Mode,
        params: MatmulParams,
        vm: &VirtualMachine,
    ) -> Vec<u16> {
        let layout = if mode == Mode::Serial {
            Layout::serial(params.n)
        } else {
            Layout::parallel(params.n, params.p)
        };
        let c = layout.read_c(machine, &vm.pes[..layout.p]);
        let mut words = Vec::with_capacity(params.n * params.n);
        for r in 0..params.n {
            for col in 0..params.n {
                words.push(c.get(r, col));
            }
        }
        words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_is_the_input_under_identity_a() {
        let k = Matmul;
        let input = k.generate(8, 42);
        let params = MatmulParams {
            n: 8,
            p: 4,
            extra_muls: 0,
        };
        assert_eq!(k.reference(params, &input), input);
    }

    #[test]
    fn validate_enforces_divisibility() {
        let k = Matmul;
        assert!(k.validate(8, 4).is_ok());
        assert!(k.validate(8, 3).is_err());
        assert!(k.validate(6, 4).is_err());
        assert!(k.validate(0, 1).is_err());
    }
}
