//! # pasm-net — the Extra-Stage Cube interconnection network
//!
//! The PASM prototype's PEs communicate through a **circuit-switched
//! Extra-Stage Cube (ESC) network**, a fault-tolerant variant of the
//! multistage Generalized Cube network (Adams & Siegel). For N = 2^m PEs the
//! network has m stages of 2×2 interchange boxes plus one *extra* stage that
//! repeats the cube₀ interconnection; the extra stage and the output (cube₀)
//! stage each carry bypass multiplexers so either can be switched out of the
//! data path. With both cube₀ stages enabled there are exactly two disjoint
//! box-sets between any source and destination, so any single interior box
//! fault can be routed around.
//!
//! The experiments of the paper use the network in its simplest mode: a single
//! static circuit per PE implementing the ring `PE i → PE (i−1) mod p` (the
//! columns of the A matrix rotate left). Path set-up is "a time consuming
//! operation" but happens once; after that each 8-bit word crosses the
//! established circuit. This crate supplies:
//!
//! * [`topology`] — stage/box index arithmetic of the generalized cube,
//! * [`network::EscNetwork`] — stage enables, fault injection, destination-tag
//!   routing with the two-path ESC choice, and circuit-switched conflict
//!   accounting (claim/release of boxes in straight or exchange mode),
//! * [`network::ring_circuits`] — establishing the matmul ring permutation
//!   (with backtracking over the two-path choice, so the ring comes up under
//!   any tolerable single fault),
//! * [`fault`] — the fault taxonomy ([`fault::NetFault`]: interchange boxes
//!   and inter-stage links) and the exhaustive single-fault universe
//!   ([`fault::single_faults`]) that `bench --bin faultsweep` quantifies over.
//!
//! Timing (set-up cycles, per-byte transfer cycles, handshake polling) is the
//! machine simulator's concern; this crate is purely structural.

pub mod fault;
pub mod network;
pub mod topology;

pub use fault::{single_faults, NetFault};
pub use network::{ring_circuits, BoxMode, CircuitId, EscNetwork, Hop, NetError, Path};
pub use topology::{box_index, box_port, peer_line, Stage};
