//! The ESC network proper: stage enables, faults, routing, circuit switching.

use crate::fault::NetFault;
use crate::topology::{box_index, box_port, Stage};
use std::collections::HashMap;
use std::fmt;

/// Handle to an established circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CircuitId(pub u32);

/// Setting of a 2×2 interchange box used by a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoxMode {
    /// Upper→upper, lower→lower.
    Straight,
    /// Upper→lower, lower→upper.
    Exchange,
    /// One input drives **both** outputs (the broadcast setting of the
    /// generalized-cube interchange box). Monopolizes the box: no other
    /// circuit may share it.
    Broadcast,
}

/// One box traversal of a routed path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Stage position (0 = extra stage).
    pub stage: u32,
    /// Box index within the stage.
    pub box_idx: usize,
    /// Input port used (0 = upper, 1 = lower).
    pub port: usize,
    /// Box setting this traversal requires.
    pub mode: BoxMode,
}

/// A fully routed source→destination path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    pub src: usize,
    pub dst: usize,
    /// Whether the path exchanges in the extra stage (the "alternate" route).
    pub via_extra: bool,
    pub hops: Vec<Hop>,
    /// Line trajectory: `lines[b]` is the line entering stage position `b`
    /// (even across bypassed stages, whose inter-stage links are still
    /// traversed); `lines[m + 1]` is the destination. Empty for broadcast
    /// trees, whose link usage is checked at route time instead.
    pub lines: Vec<usize>,
}

/// Routing/establishment failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Source or destination out of range.
    BadEndpoint(usize),
    /// No fault-free, conflict-free route exists under the current configuration.
    Unroutable { src: usize, dst: usize },
    /// The route exists but a box is held in a conflicting mode by another circuit.
    Blocked { src: usize, dst: usize },
    /// Unknown circuit id passed to release.
    NoSuchCircuit(CircuitId),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::BadEndpoint(e) => write!(f, "endpoint {e} out of range"),
            NetError::Unroutable { src, dst } => write!(f, "no route {src} -> {dst}"),
            NetError::Blocked { src, dst } => write!(f, "route {src} -> {dst} blocked"),
            NetError::NoSuchCircuit(c) => write!(f, "no such circuit {c:?}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Occupancy of one interchange box by established circuits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct BoxState {
    /// Mode the box is latched in while any circuit holds it.
    mode: Option<BoxMode>,
    /// Which input ports are in use.
    port_used: [bool; 2],
    /// Hard fault: the box can carry no circuit.
    faulty: bool,
}

/// The Extra-Stage Cube network for N = 2^m endpoints.
///
/// In the fault-free default configuration the extra stage is bypassed and the
/// output stage enabled, making the network a plain Generalized Cube. Enabling
/// both cube₀ stages yields two box-disjoint route choices per pair, which is
/// how single interior faults are tolerated.
#[derive(Debug, Clone)]
pub struct EscNetwork {
    n: usize,
    m: u32,
    extra_enabled: bool,
    output_enabled: bool,
    /// `boxes[stage_position][box_index]`.
    boxes: Vec<Vec<BoxState>>,
    /// `link_faulty[boundary][line]`; only boundaries `1..=m` (the
    /// inter-stage bundles) are settable — PE-attached links are untolerable.
    link_faulty: Vec<Vec<bool>>,
    circuits: HashMap<CircuitId, Path>,
    next_id: u32,
}

impl EscNetwork {
    /// Build a fault-free network for `n` endpoints (`n` must be a power of two ≥ 2).
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "ESC size must be a power of two >= 2, got {n}"
        );
        let m = n.trailing_zeros();
        let boxes = (0..=m).map(|_| vec![BoxState::default(); n / 2]).collect();
        let link_faulty = (0..=m + 1).map(|_| vec![false; n]).collect();
        EscNetwork {
            n,
            m,
            extra_enabled: false,
            output_enabled: true,
            boxes,
            link_faulty,
            circuits: HashMap::new(),
            next_id: 0,
        }
    }

    /// Number of endpoints.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Number of stages (m + 1, counting the extra stage).
    pub fn stages(&self) -> usize {
        self.m as usize + 1
    }

    /// Enable/disable the extra (input cube₀) stage.
    pub fn set_extra_enabled(&mut self, on: bool) {
        assert!(
            self.circuits.is_empty(),
            "reconfigure only with no circuits up"
        );
        self.extra_enabled = on;
    }

    /// Enable/disable the output cube₀ stage.
    pub fn set_output_enabled(&mut self, on: bool) {
        assert!(
            self.circuits.is_empty(),
            "reconfigure only with no circuits up"
        );
        self.output_enabled = on;
    }

    /// Whether the extra stage is in the data path.
    pub fn extra_enabled(&self) -> bool {
        self.extra_enabled
    }

    /// Whether the output cube₀ stage is in the data path.
    pub fn output_enabled(&self) -> bool {
        self.output_enabled
    }

    /// Mark a box faulty (or repaired). Stage position 0 is the extra stage.
    pub fn set_fault(&mut self, stage: u32, box_idx: usize, faulty: bool) {
        self.boxes[stage as usize][box_idx].faulty = faulty;
    }

    /// Mark an inter-stage link faulty (or repaired). `boundary` names the
    /// bundle feeding stage position `boundary`; only `1..=m` is legal — the
    /// PE-attached input/output links are single points no network survives.
    pub fn set_link_fault(&mut self, boundary: u32, line: usize, faulty: bool) {
        assert!(
            boundary >= 1 && boundary <= self.m,
            "link boundary must be in 1..={}, got {boundary}",
            self.m
        );
        assert!(line < self.n, "link line {line} out of range 0..{}", self.n);
        self.link_faulty[boundary as usize][line] = faulty;
    }

    /// Inject a fault described by a [`NetFault`].
    pub fn inject(&mut self, fault: NetFault) {
        match fault {
            NetFault::Box { stage, box_idx } => self.set_fault(stage, box_idx, true),
            NetFault::Link { boundary, line } => self.set_link_fault(boundary, line, true),
        }
    }

    /// Inject every fault in the set, then [`Self::reconfigure_for_faults`].
    /// The canonical way to bring up a degraded network.
    pub fn apply_faults(&mut self, faults: &[NetFault]) {
        for &f in faults {
            self.inject(f);
        }
        self.reconfigure_for_faults();
    }

    /// True if any box or link is currently faulty.
    pub fn has_faults(&self) -> bool {
        self.boxes.iter().flatten().any(|b| b.faulty)
            || self.link_faulty.iter().flatten().any(|&f| f)
    }

    /// Reconfigure the bypass stages for the current fault set, per the ESC
    /// fault-tolerance rules:
    ///
    /// * fault-free → extra stage bypassed, output stage enabled (plain cube);
    /// * fault only in the extra stage → same (the bypass hides it);
    /// * fault in the output stage → extra stage enabled, output bypassed;
    /// * fault in an interior stage, or any **link** fault → both cube₀
    ///   stages enabled, so routing can pick whichever of the two paths
    ///   avoids the faulty element (the two paths differ in address bit 0 at
    ///   every interior boundary, so they never share an interior link).
    ///
    /// Panics if circuits are established (reconfiguration drops the data path).
    pub fn reconfigure_for_faults(&mut self) {
        assert!(
            self.circuits.is_empty(),
            "reconfigure only with no circuits up"
        );
        let extra_fault = self.boxes[0].iter().any(|b| b.faulty);
        let output_fault = self.boxes[self.m as usize].iter().any(|b| b.faulty);
        let interior_fault = (1..self.m as usize).any(|s| self.boxes[s].iter().any(|b| b.faulty));
        let link_fault = self.link_faulty.iter().flatten().any(|&f| f);
        if interior_fault || link_fault {
            self.extra_enabled = true;
            self.output_enabled = true;
        } else if output_fault {
            self.extra_enabled = true;
            self.output_enabled = false;
        } else {
            // Fault-free, or faults confined to the (bypassed) extra stage.
            self.extra_enabled = false;
            self.output_enabled = true;
        }
        let _ = extra_fault; // documented case: bypass already hides it
    }

    /// Compute the path for `src → dst`, optionally exchanging in the extra
    /// stage. Returns `None` if the configuration cannot realize the route
    /// (e.g. needs a bit-0 fix but the output stage is bypassed).
    pub fn route(&self, src: usize, dst: usize, via_extra: bool) -> Option<Path> {
        if src >= self.n || dst >= self.n {
            return None;
        }
        if via_extra && !self.extra_enabled {
            return None;
        }
        let mut line = src;
        let mut hops = Vec::with_capacity(self.stages());
        let mut lines = Vec::with_capacity(self.stages() + 1);
        for stage in Stage::all(self.m) {
            lines.push(line);
            let enabled = match stage.position {
                0 => self.extra_enabled,
                p if p == self.m => self.output_enabled,
                _ => true,
            };
            if !enabled {
                // Bypassed stage: the signal passes outside the boxes, so the
                // relevant address bit cannot change here.
                if stage.position == self.m && (line ^ dst) & 1 != 0 {
                    return None; // needs a cube_0 exchange but none available
                }
                continue;
            }
            let exchange = if stage.position == 0 {
                via_extra
            } else if stage.position == self.m && self.extra_enabled {
                // Output stage must undo whatever bit-0 state remains.
                (line ^ dst) & 1 != 0
            } else {
                (line >> stage.bit) & 1 != (dst >> stage.bit) & 1
            };
            let mode = if exchange {
                BoxMode::Exchange
            } else {
                BoxMode::Straight
            };
            hops.push(Hop {
                stage: stage.position,
                box_idx: box_index(line, stage.bit),
                port: box_port(line, stage.bit),
                mode,
            });
            if exchange {
                line ^= 1 << stage.bit;
            }
        }
        lines.push(line);
        (line == dst).then_some(Path {
            src,
            dst,
            via_extra,
            hops,
            lines,
        })
    }

    /// True if every box and every inter-stage link on the path is healthy.
    /// Links are traversed even across bypassed stages (the bypass routes
    /// around the boxes, not the wires), which is why the check walks the
    /// recorded line trajectory rather than the hop list.
    pub fn path_fault_free(&self, path: &Path) -> bool {
        let boxes_ok = path
            .hops
            .iter()
            .all(|h| !self.boxes[h.stage as usize][h.box_idx].faulty);
        let links_ok = (1..=self.m as usize).all(|b| {
            path.lines
                .get(b)
                .is_none_or(|&line| !self.link_faulty[b][line])
        });
        boxes_ok && links_ok
    }

    /// True if the path can be claimed given current circuit occupancy.
    pub fn path_available(&self, path: &Path) -> bool {
        path.hops.iter().all(|h| {
            let b = &self.boxes[h.stage as usize][h.box_idx];
            !b.faulty
                && !b.port_used[h.port]
                && (b.mode.is_none() || (b.mode == Some(h.mode) && h.mode != BoxMode::Broadcast))
        })
    }

    /// Compute the one-to-all broadcast tree from `src`: at every enabled
    /// stage each reached line's box is set to [`BoxMode::Broadcast`], doubling
    /// the reached set, until all N outputs are covered. In SIMD machines this
    /// is how a single PE's value (e.g. a pivot row) reaches every PE in one
    /// network pass; the paper's matmul deliberately *avoids* it (its §4
    /// discusses the p set-up cycles a broadcast approach would recur).
    ///
    /// Requires the output cube₀ stage to be enabled (the bypassed extra stage
    /// is simply skipped). Returns the hops in stage order.
    pub fn broadcast_route(&self, src: usize) -> Option<Vec<Hop>> {
        if src >= self.n || !self.output_enabled {
            return None;
        }
        let mut lines = vec![src];
        let mut hops = Vec::new();
        for stage in Stage::all(self.m) {
            // Inter-stage links are traversed whether or not the stage's boxes
            // are in the data path, so a faulted link kills the whole tree.
            if stage.position >= 1
                && lines
                    .iter()
                    .any(|&l| self.link_faulty[stage.position as usize][l])
            {
                return None;
            }
            let enabled = match stage.position {
                0 => self.extra_enabled,
                p if p == self.m => self.output_enabled,
                _ => true,
            };
            if !enabled {
                continue;
            }
            if stage.position == 0 {
                // The extra stage (when enabled) passes the single line
                // straight; broadcasting there would duplicate the cube_0 work.
                hops.push(Hop {
                    stage: 0,
                    box_idx: box_index(src, 0),
                    port: box_port(src, 0),
                    mode: BoxMode::Straight,
                });
                continue;
            }
            let mut next = Vec::with_capacity(lines.len() * 2);
            for &l in &lines {
                hops.push(Hop {
                    stage: stage.position,
                    box_idx: box_index(l, stage.bit),
                    port: box_port(l, stage.bit),
                    mode: BoxMode::Broadcast,
                });
                next.push(l);
                next.push(l ^ (1 << stage.bit));
            }
            lines = next;
        }
        debug_assert_eq!(lines.len(), self.n);
        Some(hops)
    }

    /// Establish a one-to-all broadcast circuit from `src`. Broadcast claims
    /// whole boxes, so it conflicts with *any* live circuit touching them.
    pub fn establish_broadcast(&mut self, src: usize) -> Result<CircuitId, NetError> {
        if src >= self.n {
            return Err(NetError::BadEndpoint(src));
        }
        let hops = self.broadcast_route(src).ok_or(NetError::Unroutable {
            src,
            dst: usize::MAX,
        })?;
        let path = Path {
            src,
            dst: usize::MAX,
            via_extra: false,
            hops,
            lines: vec![],
        };
        if !self.path_fault_free(&path) {
            return Err(NetError::Unroutable {
                src,
                dst: usize::MAX,
            });
        }
        // A broadcast box must be completely free (it drives both outputs).
        let free = path.hops.iter().all(|h| {
            let b = &self.boxes[h.stage as usize][h.box_idx];
            match h.mode {
                BoxMode::Broadcast => b.mode.is_none(),
                _ => !b.port_used[h.port] && (b.mode.is_none() || b.mode == Some(h.mode)),
            }
        });
        if !free {
            return Err(NetError::Blocked {
                src,
                dst: usize::MAX,
            });
        }
        let id = CircuitId(self.next_id);
        self.next_id += 1;
        for h in &path.hops {
            let b = &mut self.boxes[h.stage as usize][h.box_idx];
            b.mode = Some(h.mode);
            if h.mode == BoxMode::Broadcast {
                b.port_used = [true, true];
            } else {
                b.port_used[h.port] = true;
            }
        }
        self.circuits.insert(id, path);
        Ok(id)
    }

    /// Establish a circuit `src → dst`, trying the direct route first and the
    /// extra-stage alternate second. Distinguishes "physically unroutable or
    /// fault-hit" ([`NetError::Unroutable`]) from "blocked by live circuits"
    /// ([`NetError::Blocked`]).
    pub fn establish(&mut self, src: usize, dst: usize) -> Result<CircuitId, NetError> {
        if src >= self.n {
            return Err(NetError::BadEndpoint(src));
        }
        if dst >= self.n {
            return Err(NetError::BadEndpoint(dst));
        }
        let candidates: Vec<Path> = [false, true]
            .into_iter()
            .filter_map(|via| self.route(src, dst, via))
            .collect();
        if candidates.is_empty() {
            return Err(NetError::Unroutable { src, dst });
        }
        let mut saw_fault_free = false;
        for path in &candidates {
            if !self.path_fault_free(path) {
                continue;
            }
            saw_fault_free = true;
            if self.path_available(path) {
                return Ok(self.claim(path));
            }
        }
        if saw_fault_free {
            Err(NetError::Blocked { src, dst })
        } else {
            Err(NetError::Unroutable { src, dst })
        }
    }

    /// Establish a specific pre-routed path (e.g. one chosen by a global
    /// allocator such as [`ring_circuits`], which may need the alternate route
    /// for some pairs even when the direct one is individually claimable).
    pub fn establish_path(&mut self, path: &Path) -> Result<CircuitId, NetError> {
        if !self.path_fault_free(path) {
            return Err(NetError::Unroutable {
                src: path.src,
                dst: path.dst,
            });
        }
        if !self.path_available(path) {
            return Err(NetError::Blocked {
                src: path.src,
                dst: path.dst,
            });
        }
        Ok(self.claim(path))
    }

    /// Latch the path's boxes and register the circuit. Caller must have
    /// verified fault-freeness and availability.
    fn claim(&mut self, path: &Path) -> CircuitId {
        let id = CircuitId(self.next_id);
        self.next_id += 1;
        for h in &path.hops {
            let b = &mut self.boxes[h.stage as usize][h.box_idx];
            b.mode = Some(h.mode);
            b.port_used[h.port] = true;
        }
        self.circuits.insert(id, path.clone());
        id
    }

    /// Tear down a circuit, freeing its boxes.
    pub fn release(&mut self, id: CircuitId) -> Result<(), NetError> {
        let path = self
            .circuits
            .remove(&id)
            .ok_or(NetError::NoSuchCircuit(id))?;
        for h in &path.hops {
            let b = &mut self.boxes[h.stage as usize][h.box_idx];
            if h.mode == BoxMode::Broadcast {
                b.port_used = [false, false];
            } else {
                b.port_used[h.port] = false;
            }
            if !b.port_used[0] && !b.port_used[1] {
                b.mode = None;
            }
        }
        Ok(())
    }

    /// Look up an established circuit.
    pub fn circuit(&self, id: CircuitId) -> Option<&Path> {
        self.circuits.get(&id)
    }

    /// Number of live circuits.
    pub fn live_circuits(&self) -> usize {
        self.circuits.len()
    }

    /// Release everything.
    pub fn release_all(&mut self) {
        let ids: Vec<CircuitId> = self.circuits.keys().copied().collect();
        for id in ids {
            let _ = self.release(id);
        }
    }
}

/// Establish the matrix-multiplication ring on the given physical PEs:
/// `pes[i] → pes[(i + len − 1) % len]` (each PE sends its lowest-numbered A
/// column one logical position to the left). Returns the circuit ids in
/// logical order. All circuits are held simultaneously — the paper's algorithm
/// keeps "the network in one configuration", paying set-up once.
pub fn ring_circuits(net: &mut EscNetwork, pes: &[usize]) -> Result<Vec<CircuitId>, NetError> {
    let p = pes.len();
    // Pre-route the fault-free candidates of every logical pair. A faulted
    // network may force *particular* pairs onto their alternate route, and a
    // greedy left-to-right assignment can claim a box the only surviving path
    // of a later pair needs — so allocate globally with backtracking over the
    // (at most two) choices per pair. Fault-free networks still resolve on the
    // all-direct first branch, identical to the old greedy behaviour.
    let mut options: Vec<Vec<Path>> = Vec::with_capacity(p);
    for i in 0..p {
        let (src, dst) = (pes[i], pes[(i + p - 1) % p]);
        if src >= net.size() {
            return Err(NetError::BadEndpoint(src));
        }
        if dst >= net.size() {
            return Err(NetError::BadEndpoint(dst));
        }
        let cands: Vec<Path> = [false, true]
            .into_iter()
            .filter_map(|via| net.route(src, dst, via))
            .filter(|path| net.path_fault_free(path))
            .collect();
        if cands.is_empty() {
            return Err(NetError::Unroutable { src, dst });
        }
        options.push(cands);
    }
    fn dfs(
        net: &mut EscNetwork,
        options: &[Vec<Path>],
        i: usize,
        ids: &mut Vec<CircuitId>,
    ) -> bool {
        if i == options.len() {
            return true;
        }
        for path in &options[i] {
            if let Ok(id) = net.establish_path(path) {
                ids.push(id);
                if dfs(net, options, i + 1, ids) {
                    return true;
                }
                ids.pop();
                let _ = net.release(id);
            }
        }
        false
    }
    let mut ids = Vec::with_capacity(p);
    if dfs(net, &options, 0, &mut ids) {
        Ok(ids)
    } else {
        Err(NetError::Blocked {
            src: pes[0],
            dst: pes[(p - 1) % p],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(n: usize) -> EscNetwork {
        EscNetwork::new(n)
    }

    #[test]
    fn routes_all_pairs_default_config() {
        let net = fresh(16);
        for s in 0..16 {
            for d in 0..16 {
                let p = net.route(s, d, false).expect("route must exist");
                assert_eq!(p.src, s);
                assert_eq!(p.dst, d);
                // Default config: extra stage bypassed => m hops.
                assert_eq!(p.hops.len(), 4);
            }
        }
    }

    #[test]
    fn two_disjoint_paths_with_both_cube0_stages() {
        let mut net = fresh(16);
        net.set_extra_enabled(true);
        for s in 0..16 {
            for d in 0..16 {
                let a = net.route(s, d, false).unwrap();
                let b = net.route(s, d, true).unwrap();
                // Interior hops must differ in every interior stage.
                for (ha, hb) in a
                    .hops
                    .iter()
                    .zip(&b.hops)
                    .filter(|(h, _)| h.stage != 0 && h.stage != 4)
                {
                    assert_ne!(ha.box_idx, hb.box_idx, "{s}->{d} stage {}", ha.stage);
                }
            }
        }
    }

    #[test]
    fn circuit_claim_and_release() {
        let mut net = fresh(8);
        let id = net.establish(3, 5).unwrap();
        assert_eq!(net.live_circuits(), 1);
        assert!(net.circuit(id).is_some());
        net.release(id).unwrap();
        assert_eq!(net.live_circuits(), 0);
        assert!(matches!(net.release(id), Err(NetError::NoSuchCircuit(_))));
    }

    #[test]
    fn conflicting_circuits_block() {
        let mut net = fresh(4);
        // 0->2 and 1->3 share stage-entry boxes; whether they conflict depends
        // on modes, so instead force a known collision: 0->3 then 1->2 need the
        // same first-stage box in different modes.
        let a = net.establish(0, 3).unwrap();
        match net.establish(1, 2) {
            Err(NetError::Blocked { .. }) => {}
            Ok(_) => {
                // If compatible (same box mode), identity-check a genuinely
                // conflicting pair: 1->3 reuses port 1 of the first box.
                let r = net.establish(1, 3);
                assert!(matches!(r, Err(NetError::Blocked { .. })), "{r:?}");
            }
            Err(e) => panic!("unexpected error {e}"),
        }
        net.release(a).unwrap();
    }

    #[test]
    fn ring_permutation_establishes_for_prototype_sizes() {
        for p in [2usize, 4, 8, 16] {
            let mut net = fresh(16);
            let pes: Vec<usize> = (0..p).map(|l| l * (16 / p)).collect();
            let ids = ring_circuits(&mut net, &pes).unwrap_or_else(|e| panic!("ring p={p}: {e}"));
            assert_eq!(ids.len(), p);
        }
        // Contiguous PE numbering must work too.
        for p in [4usize, 8, 16] {
            let mut net = fresh(16);
            let pes: Vec<usize> = (0..p).collect();
            ring_circuits(&mut net, &pes).unwrap_or_else(|e| panic!("contiguous ring p={p}: {e}"));
        }
    }

    #[test]
    fn interior_fault_is_routed_around() {
        let mut net = fresh(16);
        // Fault a box in interior stage 2, then reconfigure.
        net.set_fault(2, 3, true);
        net.reconfigure_for_faults();
        assert!(net.extra_enabled());
        assert!(net.output_enabled());
        for s in 0..16 {
            for d in 0..16 {
                let id = net
                    .establish(s, d)
                    .unwrap_or_else(|e| panic!("{s}->{d} with interior fault: {e}"));
                net.release(id).unwrap();
            }
        }
    }

    #[test]
    fn output_stage_fault_uses_extra_stage() {
        let mut net = fresh(16);
        net.set_fault(4, 0, true);
        net.reconfigure_for_faults();
        assert!(net.extra_enabled());
        assert!(!net.output_enabled());
        for s in 0..16 {
            for d in 0..16 {
                let id = net
                    .establish(s, d)
                    .unwrap_or_else(|e| panic!("{s}->{d}: {e}"));
                net.release(id).unwrap();
            }
        }
    }

    #[test]
    fn extra_stage_fault_is_hidden_by_bypass() {
        let mut net = fresh(16);
        net.set_fault(0, 5, true);
        net.reconfigure_for_faults();
        assert!(!net.extra_enabled());
        let id = net.establish(10, 11).unwrap();
        net.release(id).unwrap();
    }

    #[test]
    fn bad_endpoints_rejected() {
        let mut net = fresh(8);
        assert!(matches!(net.establish(8, 0), Err(NetError::BadEndpoint(8))));
        assert!(matches!(net.establish(0, 9), Err(NetError::BadEndpoint(9))));
    }

    #[test]
    fn release_all_clears() {
        let mut net = fresh(16);
        let pes: Vec<usize> = (0..8).collect();
        ring_circuits(&mut net, &pes).unwrap();
        assert_eq!(net.live_circuits(), 8);
        net.release_all();
        assert_eq!(net.live_circuits(), 0);
        // Boxes are free again.
        ring_circuits(&mut net, &pes).unwrap();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = EscNetwork::new(6);
    }

    #[test]
    fn broadcast_reaches_all_outputs() {
        let net = fresh(16);
        for src in 0..16 {
            let hops = net.broadcast_route(src).unwrap();
            // 1 + 2 + 4 + 8 broadcast hops over the 4 enabled stages.
            assert_eq!(hops.len(), 15, "src {src}");
            assert!(hops.iter().all(|h| h.mode == BoxMode::Broadcast));
        }
    }

    #[test]
    fn broadcast_establish_and_release() {
        let mut net = fresh(8);
        let id = net.establish_broadcast(3).unwrap();
        // The broadcast monopolizes boxes: any unicast through them blocks.
        assert!(matches!(net.establish(0, 1), Err(NetError::Blocked { .. })));
        net.release(id).unwrap();
        // Fully restored.
        let id2 = net.establish(0, 1).unwrap();
        net.release(id2).unwrap();
    }

    #[test]
    fn broadcast_needs_the_output_stage() {
        let mut net = fresh(8);
        net.set_output_enabled(false);
        assert!(net.broadcast_route(0).is_none());
        assert!(net.establish_broadcast(0).is_err());
    }

    #[test]
    fn link_fault_forces_both_stages_and_disjoint_lines_survive() {
        let mut net = fresh(8);
        net.apply_faults(&[NetFault::Link {
            boundary: 2,
            line: 3,
        }]);
        assert!(net.extra_enabled() && net.output_enabled());
        for s in 0..8 {
            for d in 0..8 {
                let a = net.route(s, d, false).unwrap();
                let b = net.route(s, d, true).unwrap();
                // The two paths differ in address bit 0 at every interior
                // boundary, so they never share an inter-stage line.
                for bdy in 1..=3 {
                    assert_ne!(a.lines[bdy], b.lines[bdy], "{s}->{d} boundary {bdy}");
                }
                assert!(
                    net.path_fault_free(&a) || net.path_fault_free(&b),
                    "{s}->{d}: both paths hit the faulted link"
                );
            }
        }
    }

    #[test]
    fn every_single_fault_leaves_all_pairs_routable() {
        for n in [8usize, 16] {
            for fault in crate::fault::single_faults(n) {
                let mut net = fresh(n);
                net.apply_faults(&[fault]);
                for s in 0..n {
                    for d in 0..n {
                        let id = net
                            .establish(s, d)
                            .unwrap_or_else(|e| panic!("n={n} fault={fault} {s}->{d}: {e}"));
                        net.release(id).unwrap();
                    }
                }
            }
        }
    }

    #[test]
    fn spread_ring_establishes_under_every_single_fault() {
        // With PEs on every other line (p <= n/2) no two ring circuits share
        // an extra- or output-stage box, so each pair's via-extra choice is
        // free and the backtracking allocator always finds an assignment.
        for n in [8usize, 16] {
            for fault in crate::fault::single_faults(n) {
                let mut net = fresh(n);
                net.apply_faults(&[fault]);
                for p in [2usize, 4, 8].into_iter().filter(|&p| p <= n / 2) {
                    let pes: Vec<usize> = (0..p).map(|l| l * (n / p)).collect();
                    let ids = ring_circuits(&mut net, &pes)
                        .unwrap_or_else(|e| panic!("n={n} fault={fault} p={p}: {e}"));
                    assert_eq!(ids.len(), p);
                    net.release_all();
                }
            }
        }
    }

    #[test]
    fn full_ring_under_interior_fault_blocks_cleanly() {
        // The p = n ring covers every line, so every interior stage needs all
        // n/2 of its boxes: a single interior box fault makes the one-pass
        // permutation infeasible (the ESC theorem guarantees one-to-one
        // connections, and *two* passes for permutations). The allocator must
        // report Blocked, not panic or leak circuits.
        let mut net = fresh(4);
        net.apply_faults(&[NetFault::Box {
            stage: 1,
            box_idx: 0,
        }]);
        let pes: Vec<usize> = (0..4).collect();
        match ring_circuits(&mut net, &pes) {
            Err(NetError::Blocked { .. }) => {}
            other => panic!("expected Blocked, got {other:?}"),
        }
        assert_eq!(net.live_circuits(), 0);
        // The network is still fully usable pairwise.
        let id = net.establish(0, 3).unwrap();
        net.release(id).unwrap();
    }

    #[test]
    fn broadcast_killed_by_link_fault_but_unicast_survives() {
        let mut net = fresh(8);
        net.apply_faults(&[NetFault::Link {
            boundary: 3,
            line: 6,
        }]);
        // The tree reaches every line, so any link fault at an interior
        // boundary intersects it.
        assert!(net.broadcast_route(0).is_none());
        let id = net.establish(0, 6).unwrap();
        net.release(id).unwrap();
    }

    #[test]
    fn broadcast_with_extra_stage_enabled_passes_it_straight() {
        let mut net = fresh(16);
        net.set_extra_enabled(true);
        let hops = net.broadcast_route(5).unwrap();
        assert_eq!(hops[0].stage, 0);
        assert_eq!(hops[0].mode, BoxMode::Straight);
        assert_eq!(hops.len(), 16); // extra straight hop + 15 broadcast hops
    }
}
