//! Fault taxonomy of the ESC network: which hardware elements can fail, and
//! which single faults the extra stage tolerates.
//!
//! The ESC's fault model (Adams & Siegel) covers two element classes:
//!
//! * **interchange boxes** — any box in any of the m + 1 stages;
//! * **inter-stage links** — the line bundles *between* stages. The links
//!   connecting PEs to the network input and the network output to PEs are
//!   excluded: they are single points attached to exactly one PE, so no
//!   multistage network can route around them.
//!
//! With both cube₀ stages enabled the two candidate paths of every
//! source/destination pair differ in address bit 0 at every interior
//! boundary and use disjoint interior boxes, so any *single* fault in the
//! tolerable set leaves at least one path intact (`docs/FAULTS.md` walks
//! through the argument; `bench --bin faultsweep` asserts it empirically).

use std::fmt;

/// One faulty hardware element of the ESC network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetFault {
    /// A 2×2 interchange box. `stage` is the stage position from the input
    /// side (0 = the extra stage, m = the output stage).
    Box { stage: u32, box_idx: usize },
    /// An inter-stage link. `boundary` names the bundle feeding stage
    /// position `boundary` (valid range `1..=m`); `line` is the link number
    /// within the bundle (`0..N`).
    Link { boundary: u32, line: usize },
}

impl NetFault {
    /// Whether tolerating this fault forces traffic through the extra stage
    /// (one additional hop per transferred word). Extra-stage and
    /// output-stage box faults are *hidden*: the bypass multiplexers switch
    /// the faulted stage out of the data path and every route keeps its
    /// fault-free hop count. Interior box faults and all link faults are
    /// *rerouted*: both cube₀ stages must be enabled so routing can pick the
    /// path avoiding the fault, and every circuit pays the extra stage.
    pub fn reroutes(self, m: u32) -> bool {
        match self {
            NetFault::Box { stage, .. } => stage != 0 && stage != m,
            NetFault::Link { .. } => true,
        }
    }

    /// Validate the fault against a network of `n` endpoints.
    pub fn validate(self, n: usize) -> Result<(), String> {
        let m = n.trailing_zeros();
        match self {
            NetFault::Box { stage, box_idx } => {
                if stage > m {
                    return Err(format!("box stage {stage} out of range 0..={m}"));
                }
                if box_idx >= n / 2 {
                    return Err(format!("box index {box_idx} out of range 0..{}", n / 2));
                }
            }
            NetFault::Link { boundary, line } => {
                if boundary == 0 || boundary > m {
                    return Err(format!(
                        "link boundary {boundary} out of range 1..={m} \
                         (PE-attached links are untolerable single points)"
                    ));
                }
                if line >= n {
                    return Err(format!("link line {line} out of range 0..{n}"));
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for NetFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetFault::Box { stage, box_idx } => write!(f, "box:{stage}:{box_idx}"),
            NetFault::Link { boundary, line } => write!(f, "link:{boundary}:{line}"),
        }
    }
}

/// Every tolerable single fault of an `n`-endpoint ESC, in a stable order:
/// all boxes stage by stage, then all links boundary by boundary. This is
/// the exhaustive fault universe the single-fault theorem quantifies over.
pub fn single_faults(n: usize) -> Vec<NetFault> {
    assert!(n.is_power_of_two() && n >= 2);
    let m = n.trailing_zeros();
    let mut out = Vec::new();
    for stage in 0..=m {
        for box_idx in 0..n / 2 {
            out.push(NetFault::Box { stage, box_idx });
        }
    }
    for boundary in 1..=m {
        for line in 0..n {
            out.push(NetFault::Link { boundary, line });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_universe_size() {
        // n=8: 4 stages × 4 boxes + 3 boundaries × 8 lines = 16 + 24.
        assert_eq!(single_faults(8).len(), 40);
        // n=4: 3 stages × 2 boxes + 2 boundaries × 4 lines = 6 + 8.
        assert_eq!(single_faults(4).len(), 14);
    }

    #[test]
    fn classification_matches_the_bypass_rules() {
        let m = 3;
        assert!(!NetFault::Box {
            stage: 0,
            box_idx: 0
        }
        .reroutes(m));
        assert!(!NetFault::Box {
            stage: 3,
            box_idx: 2
        }
        .reroutes(m));
        assert!(NetFault::Box {
            stage: 1,
            box_idx: 0
        }
        .reroutes(m));
        assert!(NetFault::Box {
            stage: 2,
            box_idx: 3
        }
        .reroutes(m));
        assert!(NetFault::Link {
            boundary: 1,
            line: 5
        }
        .reroutes(m));
        assert!(NetFault::Link {
            boundary: 3,
            line: 0
        }
        .reroutes(m));
    }

    #[test]
    fn validation_rejects_out_of_range_elements() {
        assert!(NetFault::Box {
            stage: 4,
            box_idx: 0
        }
        .validate(8)
        .is_err());
        assert!(NetFault::Box {
            stage: 3,
            box_idx: 4
        }
        .validate(8)
        .is_err());
        assert!(NetFault::Link {
            boundary: 0,
            line: 0
        }
        .validate(8)
        .is_err());
        assert!(NetFault::Link {
            boundary: 4,
            line: 0
        }
        .validate(8)
        .is_err());
        assert!(NetFault::Link {
            boundary: 1,
            line: 8
        }
        .validate(8)
        .is_err());
        for f in single_faults(8) {
            f.validate(8).unwrap();
        }
    }

    #[test]
    fn display_is_the_cli_spelling() {
        assert_eq!(
            NetFault::Box {
                stage: 2,
                box_idx: 1
            }
            .to_string(),
            "box:2:1"
        );
        assert_eq!(
            NetFault::Link {
                boundary: 1,
                line: 7
            }
            .to_string(),
            "link:1:7"
        );
    }
}
