//! Index arithmetic of the generalized-cube / extra-stage-cube topology.
//!
//! Lines (links) between stages are numbered `0..N`. A stage implementing the
//! *cube_b* interconnection routes line `l` and line `l ⊕ 2^b` into the same
//! 2×2 interchange box; the box can pass them *straight* or *exchanged*.

/// A stage of the ESC network, identified by position from the input side.
///
/// For an N = 2^m network the stages are:
/// position 0 — the **extra** stage (cube₀, bypassable);
/// positions 1..=m — cube_{m−1} … cube₀, with the last (cube₀, the output
/// stage) also bypassable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Stage {
    /// Position from the input, 0 = extra stage.
    pub position: u32,
    /// Which address bit this stage's boxes exchange.
    pub bit: u32,
}

impl Stage {
    /// The full stage list for an N = 2^m network.
    pub fn all(m: u32) -> Vec<Stage> {
        let mut v = Vec::with_capacity(m as usize + 1);
        v.push(Stage {
            position: 0,
            bit: 0,
        }); // extra stage repeats cube_0
        for s in 1..=m {
            v.push(Stage {
                position: s,
                bit: m - s,
            });
        }
        v
    }

    /// True for the two bypassable cube₀ stages (the extra and output stages).
    pub fn is_bypassable(self, m: u32) -> bool {
        self.position == 0 || self.position == m
    }
}

/// The line paired with `line` at a stage exchanging `bit`.
#[inline]
pub fn peer_line(line: usize, bit: u32) -> usize {
    line ^ (1 << bit)
}

/// Box index (0..N/2) holding `line` at a stage exchanging `bit`: the line
/// number with bit `bit` squeezed out.
#[inline]
pub fn box_index(line: usize, bit: u32) -> usize {
    let low_mask = (1usize << bit) - 1;
    ((line >> (bit + 1)) << bit) | (line & low_mask)
}

/// Which box input port (0 = upper, 1 = lower) `line` occupies at a stage
/// exchanging `bit`.
#[inline]
pub fn box_port(line: usize, bit: u32) -> usize {
    (line >> bit) & 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_list_for_16_pes() {
        // The prototype: N = 16 => m = 4 => 5 stages of 8 boxes.
        let stages = Stage::all(4);
        assert_eq!(stages.len(), 5);
        assert_eq!(
            stages[0],
            Stage {
                position: 0,
                bit: 0
            }
        );
        assert_eq!(
            stages[1],
            Stage {
                position: 1,
                bit: 3
            }
        );
        assert_eq!(
            stages[4],
            Stage {
                position: 4,
                bit: 0
            }
        );
        assert!(stages[0].is_bypassable(4));
        assert!(stages[4].is_bypassable(4));
        assert!(!stages[2].is_bypassable(4));
    }

    #[test]
    fn peers_are_symmetric() {
        for bit in 0..4 {
            for line in 0..16 {
                let p = peer_line(line, bit);
                assert_ne!(p, line);
                assert_eq!(peer_line(p, bit), line);
                // Peers share a box and take different ports.
                assert_eq!(box_index(line, bit), box_index(p, bit));
                assert_ne!(box_port(line, bit), box_port(p, bit));
            }
        }
    }

    #[test]
    fn box_indices_cover_half_the_lines() {
        use std::collections::HashSet;
        for bit in 0..4u32 {
            let set: HashSet<usize> = (0..16).map(|l| box_index(l, bit)).collect();
            assert_eq!(set.len(), 8, "bit {bit}");
            assert!(set.iter().all(|&b| b < 8));
        }
    }

    #[test]
    fn box_index_examples() {
        // bit 0: lines 2k and 2k+1 share box k.
        assert_eq!(box_index(6, 0), 3);
        assert_eq!(box_index(7, 0), 3);
        // bit 3 (m=4): lines l and l+8 share a box indexed by low 3 bits.
        assert_eq!(box_index(5, 3), 5);
        assert_eq!(box_index(13, 3), 5);
        assert_eq!(box_port(13, 3), 1);
        assert_eq!(box_port(5, 3), 0);
    }
}
