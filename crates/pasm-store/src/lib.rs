//! `pasm-store` — the durable, fingerprint-keyed **span + bucket store**
//! behind the server's query tier.
//!
//! The result cache answers "what did this exact experiment produce?"; this
//! crate answers the *analytics* questions the paper's figures are made of:
//! which runs exist for a workload, how a run's cycles split across program
//! phases on every PE and MC, and how a phase's share moves across a
//! parameter sweep. Jobs ingest one [`SpanRecord`] per completed experiment
//! — the key summary, the per-PE/per-MC cycle buckets, and the full span
//! log — and the store serves three read paths without re-simulation:
//!
//! * [`SpanStore::list`] — filtered, paginated run summaries
//!   (`GET /results`);
//! * [`SpanStore::get`] — one run's complete phase breakdown
//!   (`GET /spans/<fp>`);
//! * [`SpanStore::phase_sweep`] — cross-run phase aggregation grouped by
//!   `(mode, p)` (`GET /sweep/phases`).
//!
//! ## Layout: WAL on disk, compact index in memory
//!
//! Records are JSON payloads on a [`SegmentLog`] (the PASMSEG1 framing every
//! durable tier shares — see [`segment`]). Full records are *big* (a span
//! per phase per component), so the in-memory index keeps only what queries
//! touch: `fingerprint → {key summary, per-phase cycle totals, record
//! location}`. Listing and sweep aggregation run entirely from the index;
//! only [`SpanStore::get`] goes back to disk, re-reading one record at its
//! remembered offset ([`segment::read_record_at`]) under the same CRC check
//! replay uses — a record damaged since indexing is refused, never served.
//!
//! Opening the store replays the log to rebuild the index, inheriting the
//! segment log's crash semantics: torn tails truncated, CRC-corrupt records
//! skipped and counted, CRC-intact records that fail JSON decoding (foreign
//! schema version, framing reuse) folded into the `corrupt` counter.
//!
//! Ingest is **idempotent by fingerprint**: the simulator is deterministic,
//! so a fingerprint fully determines its record, and re-ingesting after a
//! crash-and-rerun (the server re-executes jobs whose results never became
//! durable) is a no-op rather than a duplicate.
//!
//! A [`SpanStore::in_memory`] backing serves the same queries with no disk
//! at all — the query tier works in `--data-dir`-less servers too, just
//! without durability.

pub mod segment;

pub use segment::{
    read_record_at, read_records, CrashFuse, FsyncPolicy, RecordLoc, ReplayStats, SegmentLog,
    DEFAULT_SEGMENT_BYTES, MAX_RECORD, SEGMENT_MAGIC,
};

use pasm_util::span::{SpanEvent, SpanLog};
use pasm_util::{json, Json};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Version stamped into every on-disk span record. A record carrying a
/// different version is skipped (and counted) on replay, never half-read.
pub const STORE_SCHEMA_VERSION: i64 = 1;

/// The experiment-key summary indexed per record: the fields queries filter
/// and group by. This is deliberately a plain-data mirror of the relevant
/// `pasm::ExperimentResult` fields — the store must not depend on the
/// simulator crates, only on what the wire format needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Registered kernel name (`"matmul"` for the paper workload).
    pub workload: String,
    /// Execution mode spelling (`"serial"`, `"simd"`, `"mimd"`, `"smimd"`).
    pub mode: String,
    /// Problem size.
    pub n: u64,
    /// Processors used.
    pub p: u64,
    /// Input-generator seed.
    pub seed: u64,
    /// Simulated makespan in cycles.
    pub cycles: u64,
    /// Injected fault plan spelling (empty when fault-free).
    pub fault: String,
}

impl RunSummary {
    /// The summary as a JSON object (nested under `"run"` in the record).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("workload", Json::Str(self.workload.clone())),
            ("mode", Json::Str(self.mode.clone())),
            ("n", Json::Int(self.n as i64)),
            ("p", Json::Int(self.p as i64)),
            ("seed", Json::Int(self.seed as i64)),
            ("cycles", Json::Int(self.cycles as i64)),
            ("fault", Json::Str(self.fault.clone())),
        ])
    }

    fn from_json(v: &Json) -> Result<RunSummary, String> {
        let str_field = |name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("`{name}` must be a string"))
        };
        let u64_field = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("`{name}` must be a non-negative integer"))
        };
        Ok(RunSummary {
            workload: str_field("workload")?,
            mode: str_field("mode")?,
            n: u64_field("n")?,
            p: u64_field("p")?,
            seed: u64_field("seed")?,
            cycles: u64_field("cycles")?,
            fault: str_field("fault")?,
        })
    }

    /// Deterministic listing order: the sweep axes first, fingerprint last
    /// as the tie-breaker.
    fn sort_key(&self) -> (String, String, u64, u64, u64, String) {
        (
            self.workload.clone(),
            self.mode.clone(),
            self.p,
            self.n,
            self.seed,
            self.fault.clone(),
        )
    }
}

/// One completed experiment's full timing payload: the unit of ingest and
/// of `GET /spans/<fp>`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Content fingerprint of the experiment key (the store's primary key).
    pub fingerprint: u64,
    /// The key summary queries filter and group by.
    pub summary: RunSummary,
    /// Cycle-bucket names, indexing the rows of `pe_buckets`/`mc_buckets`
    /// (stored per record so the store never depends on the machine crate's
    /// bucket layout).
    pub bucket_names: Vec<String>,
    /// Per-PE cycle buckets: `pe_buckets[pe][bucket]`.
    pub pe_buckets: Vec<Vec<u64>>,
    /// Per-MC cycle buckets: `mc_buckets[mc][bucket]`.
    pub mc_buckets: Vec<Vec<u64>>,
    /// The run's named phase spans (`pe<i>`/`mc<i>` sources).
    pub spans: SpanLog,
}

impl SpanRecord {
    /// The on-disk (and on-wire) JSON form.
    pub fn to_json(&self) -> Json {
        let buckets = |rows: &[Vec<u64>]| {
            Json::Arr(
                rows.iter()
                    .map(|row| Json::Arr(row.iter().map(|&v| Json::Int(v as i64)).collect()))
                    .collect(),
            )
        };
        Json::obj(vec![
            ("schema_version", Json::Int(STORE_SCHEMA_VERSION)),
            ("fp", Json::Str(format!("{:016x}", self.fingerprint))),
            ("run", self.summary.to_json()),
            (
                "bucket_names",
                Json::Arr(
                    self.bucket_names
                        .iter()
                        .map(|n| Json::Str(n.clone()))
                        .collect(),
                ),
            ),
            ("pe_buckets", buckets(&self.pe_buckets)),
            ("mc_buckets", buckets(&self.mc_buckets)),
            (
                "spans",
                Json::Arr(self.spans.events.iter().map(SpanEvent::to_json).collect()),
            ),
        ])
    }

    /// Parse the [`SpanRecord::to_json`] form back. Strict: a record with a
    /// foreign schema version or a malformed field is an error (replay
    /// counts it as corrupt rather than serving a half-read breakdown).
    pub fn from_json(v: &Json) -> Result<SpanRecord, String> {
        let version = v
            .get("schema_version")
            .and_then(Json::as_i64)
            .ok_or("missing `schema_version`")?;
        if version != STORE_SCHEMA_VERSION {
            return Err(format!("unknown schema_version {version}"));
        }
        let fp_hex = v.get("fp").and_then(Json::as_str).ok_or("missing `fp`")?;
        if fp_hex.len() != 16 {
            return Err("`fp` must be 16 hex digits".to_string());
        }
        let fingerprint =
            u64::from_str_radix(fp_hex, 16).map_err(|_| "`fp` must be 16 hex digits")?;
        let summary = RunSummary::from_json(v.get("run").ok_or("missing `run`")?)?;
        let bucket_names = v
            .get("bucket_names")
            .and_then(Json::as_arr)
            .ok_or("missing `bucket_names`")?
            .iter()
            .map(|n| n.as_str().map(str::to_string))
            .collect::<Option<Vec<_>>>()
            .ok_or("`bucket_names` must be strings")?;
        let buckets = |name: &str| -> Result<Vec<Vec<u64>>, String> {
            v.get(name)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("missing `{name}`"))?
                .iter()
                .map(|row| {
                    let row = row
                        .as_arr()
                        .ok_or_else(|| format!("`{name}` rows must be arrays"))?;
                    if row.len() != bucket_names.len() {
                        return Err(format!("`{name}` row width mismatch"));
                    }
                    row.iter()
                        .map(|cell| {
                            cell.as_u64()
                                .ok_or_else(|| format!("`{name}` cells must be non-negative"))
                        })
                        .collect()
                })
                .collect()
        };
        let pe_buckets = buckets("pe_buckets")?;
        let mc_buckets = buckets("mc_buckets")?;
        let mut spans = SpanLog::new();
        for e in v
            .get("spans")
            .and_then(Json::as_arr)
            .ok_or("missing `spans`")?
        {
            spans.events.push(SpanEvent::from_json(e)?);
        }
        Ok(SpanRecord {
            fingerprint,
            summary,
            bucket_names,
            pe_buckets,
            mc_buckets,
            spans,
        })
    }

    /// Total cycles per phase name, in first-appearance order — the
    /// breakdown the index caches and the sweep aggregates.
    pub fn phase_totals(&self) -> Vec<(String, u64)> {
        let mut order: Vec<String> = Vec::new();
        let mut totals: HashMap<&str, u64> = HashMap::new();
        for e in &self.spans.events {
            if !totals.contains_key(e.name.as_str()) {
                order.push(e.name.clone());
            }
            *totals.entry(e.name.as_str()).or_insert(0) += e.cycles();
        }
        order
            .into_iter()
            .map(|name| {
                let total = totals[name.as_str()];
                (name, total)
            })
            .collect()
    }
}

/// What the index remembers per fingerprint: enough to answer listings and
/// sweeps without touching disk, plus where the full record lives.
#[derive(Debug, Clone)]
struct IndexEntry {
    summary: RunSummary,
    phase_totals: Vec<(String, u64)>,
    stored: Stored,
}

#[derive(Debug, Clone)]
enum Stored {
    /// Record location in the segment log (disk backing).
    Disk(RecordLoc),
    /// The whole record, held in memory (no-data-dir backing).
    Memory(Box<SpanRecord>),
}

enum Backing {
    Disk { dir: PathBuf, log: SegmentLog },
    Memory,
}

/// Filter + pagination for [`SpanStore::list`] (`GET /results`).
#[derive(Debug, Clone, Default)]
pub struct ResultsQuery {
    /// Keep only runs of this workload.
    pub workload: Option<String>,
    /// Keep only runs in this mode.
    pub mode: Option<String>,
    /// Keep only runs with this processor count.
    pub p: Option<u64>,
    /// Rows to skip (after filtering + sorting).
    pub offset: usize,
    /// Maximum rows to return (`None` = no cap).
    pub limit: Option<usize>,
}

/// One row of a [`SpanStore::list`] page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultRow {
    pub fingerprint: u64,
    pub summary: RunSummary,
}

/// A [`SpanStore::list`] page: the rows plus the total match count (so
/// clients can paginate without a second query).
#[derive(Debug, Clone)]
pub struct ResultsPage {
    /// Runs matching the filter, before offset/limit.
    pub total: usize,
    pub rows: Vec<ResultRow>,
}

/// One phase's aggregate within a [`SweepGroup`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPhase {
    pub name: String,
    /// Cycles in this phase, summed over the group's runs.
    pub cycles: u64,
    /// `cycles / Σ phase cycles` within the group — the "share vs. p" the
    /// sweep figures plot.
    pub share: f64,
}

/// Cross-run phase totals for one `(mode, p)` cell of a sweep
/// (`GET /sweep/phases`).
#[derive(Debug, Clone)]
pub struct SweepGroup {
    pub mode: String,
    pub p: u64,
    /// Runs aggregated into this cell.
    pub runs: u64,
    /// Σ phase cycles over the cell (the share denominator).
    pub total_cycles: u64,
    /// Phases sorted by name (deterministic output order).
    pub phases: Vec<SweepPhase>,
}

/// The store: a compact fingerprint index over a segment-log WAL (or over
/// memory when no data directory is configured). Thread-safe; the server
/// shares one instance across workers and request threads.
pub struct SpanStore {
    backing: Backing,
    index: Mutex<HashMap<u64, IndexEntry>>,
}

impl SpanStore {
    /// Open (creating if needed) the durable store under `dir`, replaying
    /// the log into a fresh index. Replay inherits the segment log's crash
    /// semantics; CRC-intact records that fail to decode are folded into
    /// the `corrupt` counter. Duplicate fingerprints keep the first record
    /// (the simulator is deterministic, so any duplicate is byte-identical
    /// modulo crash-rerun timing).
    pub fn open(
        dir: &Path,
        policy: FsyncPolicy,
        fuse: Option<Arc<CrashFuse>>,
    ) -> io::Result<(SpanStore, ReplayStats)> {
        let mut index: HashMap<u64, IndexEntry> = HashMap::new();
        let mut malformed = 0u64;
        let (log, mut stats) =
            SegmentLog::open(dir, policy, DEFAULT_SEGMENT_BYTES, fuse, |payload, loc| {
                match decode_record(payload) {
                    Some(record) => {
                        index
                            .entry(record.fingerprint)
                            .or_insert_with(|| IndexEntry {
                                phase_totals: record.phase_totals(),
                                summary: record.summary,
                                stored: Stored::Disk(loc),
                            });
                    }
                    None => malformed += 1,
                }
            })?;
        stats.replayed -= malformed;
        stats.corrupt += malformed;
        Ok((
            SpanStore {
                backing: Backing::Disk {
                    dir: dir.to_path_buf(),
                    log,
                },
                index: Mutex::new(index),
            },
            stats,
        ))
    }

    /// A store with no disk behind it: same queries, no durability. Used
    /// when the server runs without `--data-dir`.
    pub fn in_memory() -> SpanStore {
        SpanStore {
            backing: Backing::Memory,
            index: Mutex::new(HashMap::new()),
        }
    }

    /// Whether this store survives a restart.
    pub fn is_durable(&self) -> bool {
        matches!(self.backing, Backing::Disk { .. })
    }

    /// Ingest one completed run. Idempotent by fingerprint: returns `false`
    /// (and writes nothing) when the fingerprint is already indexed — the
    /// crash-rerun path re-ingests the same deterministic record, which must
    /// not duplicate it on disk.
    pub fn ingest(&self, record: &SpanRecord) -> io::Result<bool> {
        let mut index = self.index.lock().unwrap_or_else(|e| e.into_inner());
        if index.contains_key(&record.fingerprint) {
            return Ok(false);
        }
        let stored = match &self.backing {
            Backing::Disk { log, .. } => {
                let loc = log.append(record.to_json().dump().as_bytes())?;
                Stored::Disk(loc)
            }
            Backing::Memory => Stored::Memory(Box::new(record.clone())),
        };
        index.insert(
            record.fingerprint,
            IndexEntry {
                summary: record.summary.clone(),
                phase_totals: record.phase_totals(),
                stored,
            },
        );
        Ok(true)
    }

    /// Whether a fingerprint is indexed (one lock, no disk).
    pub fn contains(&self, fingerprint: u64) -> bool {
        self.index
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains_key(&fingerprint)
    }

    /// Fetch one run's full record. Disk backing re-reads the record at its
    /// indexed offset and re-verifies the CRC; `Ok(None)` means the
    /// fingerprint is unknown *or* the bytes were damaged since indexing —
    /// either way there is nothing servable.
    pub fn get(&self, fingerprint: u64) -> io::Result<Option<SpanRecord>> {
        let stored = {
            let index = self.index.lock().unwrap_or_else(|e| e.into_inner());
            match index.get(&fingerprint) {
                Some(entry) => entry.stored.clone(),
                None => return Ok(None),
            }
        };
        match stored {
            Stored::Memory(record) => Ok(Some(*record)),
            Stored::Disk(loc) => {
                let Backing::Disk { dir, log } = &self.backing else {
                    unreachable!("disk location in a memory-backed store");
                };
                // The record may still sit in an unflushed OS buffer only in
                // the fsync=never/interval window; sync first so the offset
                // read sees it.
                log.sync()?;
                match read_record_at(dir, loc)? {
                    Some(payload) => Ok(decode_record(&payload)),
                    None => Ok(None),
                }
            }
        }
    }

    /// Filtered, sorted, paginated run listing (`GET /results`).
    pub fn list(&self, query: &ResultsQuery) -> ResultsPage {
        let index = self.index.lock().unwrap_or_else(|e| e.into_inner());
        let mut rows: Vec<ResultRow> = index
            .iter()
            .filter(|(_, e)| {
                query
                    .workload
                    .as_ref()
                    .is_none_or(|w| &e.summary.workload == w)
                    && query.mode.as_ref().is_none_or(|m| &e.summary.mode == m)
                    && query.p.is_none_or(|p| e.summary.p == p)
            })
            .map(|(&fingerprint, e)| ResultRow {
                fingerprint,
                summary: e.summary.clone(),
            })
            .collect();
        drop(index);
        rows.sort_by(|a, b| {
            (a.summary.sort_key(), a.fingerprint).cmp(&(b.summary.sort_key(), b.fingerprint))
        });
        let total = rows.len();
        let rows = rows
            .into_iter()
            .skip(query.offset)
            .take(query.limit.unwrap_or(usize::MAX))
            .collect();
        ResultsPage { total, rows }
    }

    /// Cross-run phase aggregation for one workload, grouped by `(mode, p)`
    /// and sorted the same way (`GET /sweep/phases`). `mode` narrows to one
    /// mode when given. Fault-injected runs are excluded — their timing is
    /// not comparable to the clean sweep.
    pub fn phase_sweep(&self, workload: &str, mode: Option<&str>) -> Vec<SweepGroup> {
        let index = self.index.lock().unwrap_or_else(|e| e.into_inner());
        let mut groups: HashMap<(String, u64), (u64, HashMap<String, u64>)> = HashMap::new();
        for entry in index.values() {
            if entry.summary.workload != workload
                || !entry.summary.fault.is_empty()
                || mode.is_some_and(|m| entry.summary.mode != m)
            {
                continue;
            }
            let cell = groups
                .entry((entry.summary.mode.clone(), entry.summary.p))
                .or_default();
            cell.0 += 1;
            for (name, cycles) in &entry.phase_totals {
                *cell.1.entry(name.clone()).or_insert(0) += cycles;
            }
        }
        drop(index);
        let mut out: Vec<SweepGroup> = groups
            .into_iter()
            .map(|((mode, p), (runs, totals))| {
                let total_cycles: u64 = totals.values().sum();
                let mut phases: Vec<SweepPhase> = totals
                    .into_iter()
                    .map(|(name, cycles)| SweepPhase {
                        name,
                        cycles,
                        share: if total_cycles > 0 {
                            cycles as f64 / total_cycles as f64
                        } else {
                            0.0
                        },
                    })
                    .collect();
                phases.sort_by(|a, b| a.name.cmp(&b.name));
                SweepGroup {
                    mode,
                    p,
                    runs,
                    total_cycles,
                    phases,
                }
            })
            .collect();
        out.sort_by_key(|g| (g.mode.clone(), g.p));
        out
    }

    /// Every indexed fingerprint, sorted (test/inspection helper).
    pub fn fingerprints(&self) -> Vec<u64> {
        let mut fps: Vec<u64> = self
            .index
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .copied()
            .collect();
        fps.sort_unstable();
        fps
    }

    /// Indexed run count.
    pub fn len(&self) -> usize {
        self.index.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the store holds no runs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flush and fsync pending appends (graceful drain; no-op in memory).
    pub fn sync(&self) -> io::Result<()> {
        match &self.backing {
            Backing::Disk { log, .. } => log.sync(),
            Backing::Memory => Ok(()),
        }
    }

    /// Records appended by this process.
    pub fn appends(&self) -> u64 {
        match &self.backing {
            Backing::Disk { log, .. } => log.appends(),
            Backing::Memory => 0,
        }
    }

    /// Fsyncs issued by this process.
    pub fn fsyncs(&self) -> u64 {
        match &self.backing {
            Backing::Disk { log, .. } => log.fsyncs(),
            Backing::Memory => 0,
        }
    }
}

/// Decode one span record; `None` means undecodable (counted as corrupt).
fn decode_record(payload: &[u8]) -> Option<SpanRecord> {
    let text = std::str::from_utf8(payload).ok()?;
    let value = json::parse(text).ok()?;
    SpanRecord::from_json(&value).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pasm-spanstore-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A small synthetic record: p PEs, two phases, plausible buckets.
    fn record(workload: &str, mode: &str, p: u64, seed: u64) -> SpanRecord {
        let mut spans = SpanLog::new();
        for pe in 0..p {
            spans.record(&format!("pe{pe}"), "compute", 0, 1000 + 10 * pe);
            spans.record(
                &format!("pe{pe}"),
                "exchange",
                1000 + 10 * pe,
                1300 + 10 * pe,
            );
        }
        spans.record("mc0", "exchange", 990, 1310);
        let fingerprint = {
            // Any stable per-(workload,mode,p,seed) value works as a key.
            let mut h = pasm_util::Fnv1a::new();
            use std::hash::Hasher;
            h.write(workload.as_bytes());
            h.write(mode.as_bytes());
            h.write(&p.to_le_bytes());
            h.write(&seed.to_le_bytes());
            h.finish()
        };
        SpanRecord {
            fingerprint,
            summary: RunSummary {
                workload: workload.to_string(),
                mode: mode.to_string(),
                n: 4 * p,
                p,
                seed,
                cycles: 1310,
                fault: String::new(),
            },
            bucket_names: vec!["busy".into(), "wait".into()],
            pe_buckets: (0..p).map(|pe| vec![1200 + pe, 110]).collect(),
            mc_buckets: vec![vec![300, 20]],
            spans,
        }
    }

    #[test]
    fn record_json_round_trips_byte_identically() {
        let original = record("matmul", "simd", 4, 7);
        let parsed = SpanRecord::from_json(&original.to_json()).expect("round trip");
        assert_eq!(parsed, original);
        assert_eq!(parsed.to_json().dump(), original.to_json().dump());
    }

    #[test]
    fn record_json_rejects_damage() {
        let good = record("matmul", "simd", 2, 7).to_json();
        assert!(SpanRecord::from_json(&good).is_ok());
        for (field, bad, why) in [
            ("schema_version", Json::Int(99), "unknown version"),
            ("fp", Json::Str("xyz".into()), "bad fingerprint hex"),
            ("run", Json::obj(vec![]), "empty summary"),
            ("pe_buckets", Json::Arr(vec![Json::Int(1)]), "non-array row"),
            (
                "spans",
                Json::Arr(vec![Json::obj(vec![("source", Json::Int(1))])]),
                "malformed span",
            ),
        ] {
            let Json::Obj(mut members) = good.clone() else {
                unreachable!()
            };
            for (k, v) in members.iter_mut() {
                if k == field {
                    *v = bad.clone();
                }
            }
            assert!(SpanRecord::from_json(&Json::Obj(members)).is_err(), "{why}");
        }
    }

    #[test]
    fn phase_totals_sum_per_name_in_first_appearance_order() {
        let rec = record("matmul", "simd", 2, 7);
        let totals = rec.phase_totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].0, "compute");
        assert_eq!(totals[0].1, 1000 + 1010);
        assert_eq!(totals[1].0, "exchange");
        assert_eq!(totals[1].1, 300 + 300 + 320);
    }

    #[test]
    fn ingest_get_round_trips_and_survives_reopen() {
        let dir = tmpdir("reopen");
        let rec = record("matmul", "mimd", 4, 11);
        {
            let (store, stats) = SpanStore::open(&dir, FsyncPolicy::Always, None).unwrap();
            assert_eq!(stats, ReplayStats::default());
            assert!(store.ingest(&rec).unwrap());
            let got = store.get(rec.fingerprint).unwrap().expect("present");
            assert_eq!(got.to_json().dump(), rec.to_json().dump());
        }
        let (store, stats) = SpanStore::open(&dir, FsyncPolicy::Always, None).unwrap();
        assert_eq!(stats.replayed, 1);
        assert_eq!(store.len(), 1);
        let got = store.get(rec.fingerprint).unwrap().expect("recovered");
        assert_eq!(got.to_json().dump(), rec.to_json().dump());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ingest_is_idempotent_by_fingerprint() {
        let dir = tmpdir("idem");
        let rec = record("matmul", "simd", 2, 3);
        {
            let (store, _) = SpanStore::open(&dir, FsyncPolicy::Always, None).unwrap();
            assert!(store.ingest(&rec).unwrap());
            assert!(!store.ingest(&rec).unwrap(), "second ingest is a no-op");
            assert_eq!(store.appends(), 1, "nothing extra hit the disk");
        }
        // Re-ingest after a restart (the crash-rerun path) is also a no-op.
        let (store, _) = SpanStore::open(&dir, FsyncPolicy::Always, None).unwrap();
        assert!(!store.ingest(&rec).unwrap());
        assert_eq!(store.appends(), 0);
        assert_eq!(store.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_loses_only_the_torn_record() {
        let dir = tmpdir("torn");
        let first = record("matmul", "simd", 2, 1);
        let second = record("matmul", "simd", 4, 2);
        {
            let (store, _) = SpanStore::open(&dir, FsyncPolicy::Always, None).unwrap();
            store.ingest(&first).unwrap();
            store.ingest(&second).unwrap();
        }
        // Tear the tail mid-way through the second record.
        let path = dir.join("seg-000001.log");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 40]).unwrap();
        let (store, stats) = SpanStore::open(&dir, FsyncPolicy::Always, None).unwrap();
        assert_eq!(stats.truncated, 1);
        assert_eq!(store.fingerprints(), vec![first.fingerprint]);
        assert!(store.get(second.fingerprint).unwrap().is_none());
        // The torn record can be re-ingested now (crash-rerun path).
        assert!(store.ingest(&second).unwrap());
        assert_eq!(store.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc_corrupt_record_is_skipped_and_counted() {
        let dir = tmpdir("crc");
        let first = record("matmul", "simd", 2, 1);
        let second = record("matmul", "simd", 4, 2);
        {
            let (store, _) = SpanStore::open(&dir, FsyncPolicy::Always, None).unwrap();
            store.ingest(&first).unwrap();
            store.ingest(&second).unwrap();
        }
        // Flip a payload bit inside the *first* record.
        let path = dir.join("seg-000001.log");
        let mut bytes = fs::read(&path).unwrap();
        bytes[8 + 8 + 20] ^= 0x08;
        fs::write(&path, &bytes).unwrap();
        let (store, stats) = SpanStore::open(&dir, FsyncPolicy::Always, None).unwrap();
        assert_eq!(stats.corrupt, 1);
        assert_eq!(stats.replayed, 1);
        assert_eq!(store.fingerprints(), vec![second.fingerprint]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn intact_but_undecodable_record_counts_as_corrupt() {
        let dir = tmpdir("foreign");
        {
            // Write CRC-valid garbage straight through the framing layer.
            let (log, _) = SegmentLog::open(
                &dir,
                FsyncPolicy::Always,
                DEFAULT_SEGMENT_BYTES,
                None,
                |_, _| {},
            )
            .unwrap();
            log.append(b"{\"schema_version\":99,\"fp\":\"0000000000000000\"}")
                .unwrap();
            log.append(b"not json at all").unwrap();
        }
        let (store, stats) = SpanStore::open(&dir, FsyncPolicy::Always, None).unwrap();
        assert_eq!(stats.corrupt, 2);
        assert_eq!(stats.replayed, 0);
        assert!(store.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_bytes_under_an_index_entry_are_refused_not_served() {
        let dir = tmpdir("damage");
        let rec = record("matmul", "smimd", 2, 5);
        let (store, _) = SpanStore::open(&dir, FsyncPolicy::Always, None).unwrap();
        store.ingest(&rec).unwrap();
        // Corrupt the payload on disk *after* indexing.
        let path = dir.join("seg-000001.log");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 4;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(store.contains(rec.fingerprint), "still indexed");
        assert!(
            store.get(rec.fingerprint).unwrap().is_none(),
            "damaged record refused"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn list_filters_sorts_and_paginates() {
        let store = SpanStore::in_memory();
        for (mode, p, seed) in [
            ("simd", 4, 1),
            ("simd", 2, 1),
            ("mimd", 4, 1),
            ("simd", 4, 2),
        ] {
            store.ingest(&record("matmul", mode, p, seed)).unwrap();
        }
        store.ingest(&record("bitonic", "simd", 4, 1)).unwrap();

        let all = store.list(&ResultsQuery::default());
        assert_eq!(all.total, 5);
        assert_eq!(all.rows.len(), 5);
        // Sorted: workload, then mode, then p, then n/seed.
        assert_eq!(all.rows[0].summary.workload, "bitonic");
        assert_eq!(all.rows[1].summary.mode, "mimd");

        let simd = store.list(&ResultsQuery {
            workload: Some("matmul".into()),
            mode: Some("simd".into()),
            ..ResultsQuery::default()
        });
        assert_eq!(simd.total, 3);
        assert_eq!(simd.rows[0].summary.p, 2);

        let page = store.list(&ResultsQuery {
            workload: Some("matmul".into()),
            mode: Some("simd".into()),
            offset: 1,
            limit: Some(1),
            ..ResultsQuery::default()
        });
        assert_eq!(page.total, 3, "total counts matches, not the page");
        assert_eq!(page.rows.len(), 1);
        assert_eq!((page.rows[0].summary.p, page.rows[0].summary.seed), (4, 1));

        let p4 = store.list(&ResultsQuery {
            p: Some(4),
            ..ResultsQuery::default()
        });
        assert_eq!(p4.total, 4);
        fs::remove_dir_all(std::env::temp_dir().join("nonexistent")).ok();
    }

    #[test]
    fn phase_sweep_groups_by_mode_and_p_with_shares_summing_to_one() {
        let store = SpanStore::in_memory();
        for (mode, p, seed) in [
            ("simd", 2, 1),
            ("simd", 2, 2),
            ("simd", 4, 1),
            ("mimd", 2, 1),
        ] {
            store.ingest(&record("matmul", mode, p, seed)).unwrap();
        }
        // A faulted run must not pollute the sweep.
        let mut faulted = record("matmul", "simd", 2, 99);
        faulted.summary.fault = "box:1:0".into();
        store.ingest(&faulted).unwrap();
        // Another workload must not appear at all.
        store.ingest(&record("bitonic", "simd", 2, 1)).unwrap();

        let sweep = store.phase_sweep("matmul", None);
        assert_eq!(sweep.len(), 3);
        assert_eq!((sweep[0].mode.as_str(), sweep[0].p), ("mimd", 2));
        assert_eq!((sweep[1].mode.as_str(), sweep[1].p), ("simd", 2));
        assert_eq!((sweep[2].mode.as_str(), sweep[2].p), ("simd", 4));
        assert_eq!(sweep[1].runs, 2, "faulted run excluded");
        for group in &sweep {
            let share_sum: f64 = group.phases.iter().map(|ph| ph.share).sum();
            assert!((share_sum - 1.0).abs() < 1e-9, "shares sum to 1");
            let cycle_sum: u64 = group.phases.iter().map(|ph| ph.cycles).sum();
            assert_eq!(cycle_sum, group.total_cycles);
        }

        let only_simd = store.phase_sweep("matmul", Some("simd"));
        assert_eq!(only_simd.len(), 2);
        assert!(only_simd.iter().all(|g| g.mode == "simd"));
    }

    #[test]
    fn memory_backing_serves_the_same_queries_without_disk() {
        let store = SpanStore::in_memory();
        assert!(!store.is_durable());
        let rec = record("matmul", "simd", 2, 7);
        assert!(store.ingest(&rec).unwrap());
        assert!(!store.ingest(&rec).unwrap());
        let got = store.get(rec.fingerprint).unwrap().expect("present");
        assert_eq!(got.to_json().dump(), rec.to_json().dump());
        assert_eq!(store.appends(), 0);
        store.sync().unwrap();
    }
}
