//! The append-only, checksummed **segment log** — the shared WAL framing of
//! every durable tier in the workspace (result store, job journal, span
//! store).
//!
//! ## Record format
//!
//! Each segment file starts with an 8-byte magic, followed by records:
//!
//! ```text
//! +--------- segment: seg-NNNNNN.log ----------+
//! | "PASMSEG1"                                 |  8-byte magic
//! | [len: u32 LE][crc32: u32 LE][payload: len] |  record 0
//! | [len: u32 LE][crc32: u32 LE][payload: len] |  record 1
//! | ...                                        |
//! +--------------------------------------------+
//! ```
//!
//! `crc32` ([`pasm_util::crc32`], IEEE) covers the payload only; `len` is
//! bounded by [`MAX_RECORD`]. Segments rotate once they exceed the
//! configured size threshold, so no single file grows without bound and old
//! segments become immutable (a future compactor can drop them wholesale).
//!
//! Appends return a [`RecordLoc`] — `(segment, byte offset)` of the framed
//! record — and replay delivers each payload together with its location, so
//! an index can remember *where* a record lives and re-read it later with
//! [`read_record_at`] instead of holding the payload in memory. That is what
//! turns the log from a recovery mechanism into an addressable store.
//!
//! ## Recovery semantics (never panic, never serve damage)
//!
//! Replay walks segments in name order and, per segment:
//!
//! * a **torn tail** — fewer bytes than a header, or a header whose `len`
//!   points past end-of-file — is counted as `truncated` and the rest of the
//!   segment is ignored (this is the normal shape of a crash mid-append);
//! * a **corrupt record** — CRC mismatch, or an absurd `len` that breaks
//!   framing — is counted as `corrupt`; with intact framing the record is
//!   skipped and replay continues, otherwise the rest of the segment is
//!   abandoned (later segments are still read: they were written later and
//!   are independently framed);
//! * an intact record is handed to the caller and counted as `replayed`.
//!
//! A corrupt or torn record is therefore *lost*, visibly (the counters land
//! in `/metrics`), but never *served*.
//!
//! ## Fsync policy
//!
//! [`FsyncPolicy`] trades durability for append throughput: `always` fsyncs
//! every append (a completed job survives any crash), `interval` bounds the
//! loss window by wall-clock time, `never` leaves flushing to the OS. The
//! `durabench` benchmark measures the cost of each policy.
//!
//! ## Crash injection (test-only)
//!
//! A [`CrashFuse`] models "the process died at byte offset N": once installed
//! it silently swallows every byte past a seeded budget — mid-header,
//! mid-payload, or between appends to *different* logs (all logs of one
//! server share one fuse, so the cut is a single global write offset,
//! exactly like a real crash instant). The recovery integration tests drive
//! crash→restart→verify loops across seeded budgets.

use pasm_util::crc32;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Per-segment file magic (version 1 of the record format).
pub const SEGMENT_MAGIC: &[u8; 8] = b"PASMSEG1";

/// Upper bound on one record's payload length. Real records are a few KiB to
/// a few hundred KiB of JSON; anything larger in a length prefix is framing
/// damage, not data.
pub const MAX_RECORD: u32 = 16 << 20;

/// Default segment rotation threshold.
pub const DEFAULT_SEGMENT_BYTES: u64 = 8 << 20;

/// When to fsync appended records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every append: a record acknowledged is a record durable.
    Always,
    /// Fsync at most once per interval: bounds the loss window in wall time.
    Interval(Duration),
    /// Never fsync explicitly; the OS flushes when it pleases.
    Never,
}

impl FsyncPolicy {
    /// Default interval for `interval` without an explicit millisecond count.
    pub const DEFAULT_INTERVAL_MS: u64 = 100;

    /// Parse the CLI spelling: `always`, `never`, `interval`,
    /// or `interval:<ms>`.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            "interval" => Some(FsyncPolicy::Interval(Duration::from_millis(
                Self::DEFAULT_INTERVAL_MS,
            ))),
            _ => {
                let ms: u64 = s.strip_prefix("interval:")?.parse().ok()?;
                Some(FsyncPolicy::Interval(Duration::from_millis(ms)))
            }
        }
    }

    /// The CLI spelling (inverse of [`FsyncPolicy::parse`]).
    pub fn label(&self) -> String {
        match self {
            FsyncPolicy::Always => "always".to_string(),
            FsyncPolicy::Interval(d) => format!("interval:{}", d.as_millis()),
            FsyncPolicy::Never => "never".to_string(),
        }
    }
}

/// Test-only crash injector: a global byte budget after which every write to
/// the logs silently vanishes, as if the process had died at that offset.
///
/// The fuse is shared by every durable log of one server, so one seeded
/// budget cuts the combined write stream at a single point — mid-record,
/// mid-header, or exactly between a span-store append, a result append, and
/// its journal record.
#[derive(Debug)]
pub struct CrashFuse {
    remaining: AtomicI64,
}

impl CrashFuse {
    /// A fuse that admits exactly `budget` more bytes to disk.
    pub fn new(budget: u64) -> Arc<CrashFuse> {
        Arc::new(CrashFuse {
            remaining: AtomicI64::new(budget.min(i64::MAX as u64) as i64),
        })
    }

    /// Consume up to `want` bytes of budget; returns how many may actually
    /// be written. Once exhausted it never admits another byte.
    fn consume(&self, want: usize) -> usize {
        let want_i = want.min(i64::MAX as usize) as i64;
        let before = self.remaining.fetch_sub(want_i, Ordering::SeqCst);
        before.clamp(0, want_i) as usize
    }

    /// True once at least one byte has been swallowed.
    pub fn tripped(&self) -> bool {
        self.remaining.load(Ordering::SeqCst) <= 0
    }
}

/// Counters from one replay pass over a log directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Intact records delivered to the caller.
    pub replayed: u64,
    /// Torn tails dropped (crash mid-append; expected, not an error).
    pub truncated: u64,
    /// CRC-mismatch or unframeable records skipped — damage that was
    /// detected and *not* served.
    pub corrupt: u64,
    /// Segment files visited.
    pub segments: u64,
    /// Total bytes scanned.
    pub bytes: u64,
}

impl ReplayStats {
    /// Fold another replay pass into this one (multi-log recovery totals).
    pub fn absorb(&mut self, other: ReplayStats) {
        self.replayed += other.replayed;
        self.truncated += other.truncated;
        self.corrupt += other.corrupt;
        self.segments += other.segments;
        self.bytes += other.bytes;
    }
}

/// Address of one framed record inside a segment log: enough to re-read the
/// payload later without scanning ([`read_record_at`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordLoc {
    /// Segment file index (`seg-NNNNNN.log`).
    pub segment: u64,
    /// Byte offset of the record *header* within the segment file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u32,
}

struct LogWriter {
    file: File,
    seg_index: u64,
    seg_len: u64,
    last_sync: Instant,
    dirty: bool,
}

/// An append-only log of checksummed records split across rotating segment
/// files. Thread-safe; appends serialize on an internal mutex (the record
/// build happens outside it).
pub struct SegmentLog {
    dir: PathBuf,
    segment_bytes: u64,
    policy: FsyncPolicy,
    fuse: Option<Arc<CrashFuse>>,
    writer: Mutex<LogWriter>,
    appends: AtomicU64,
    fsyncs: AtomicU64,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("seg-{index:06}.log"))
}

/// Sorted `(index, path)` list of the segment files in `dir`.
fn segment_files(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(index) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            segments.push((index, entry.path()));
        }
    }
    segments.sort();
    Ok(segments)
}

/// Replay one segment's bytes, delivering intact payloads in order together
/// with their on-disk location. Returns the replay counters and the
/// **trusted prefix length**: the byte offset up to which the segment parsed
/// cleanly (equal to `bytes.len()` iff the whole segment is intact). Appends
/// may only resume after truncating to that prefix — records written past a
/// torn tail would be unreachable forever.
fn replay_segment(
    seg_index: u64,
    bytes: &[u8],
    mut deliver: impl FnMut(&[u8], RecordLoc),
) -> (ReplayStats, usize) {
    let mut stats = ReplayStats {
        segments: 1,
        bytes: bytes.len() as u64,
        ..ReplayStats::default()
    };
    if bytes.len() < SEGMENT_MAGIC.len() {
        // Crash while writing the magic of a fresh segment.
        stats.truncated += 1;
        return (stats, 0);
    }
    if &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        // Not our format (or a corrupted header): nothing here is trustworthy.
        stats.corrupt += 1;
        return (stats, 0);
    }
    let mut pos = SEGMENT_MAGIC.len();
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < 8 {
            stats.truncated += 1; // torn mid-header
            return (stats, pos);
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD {
            // Framing is gone: a flipped length bit would make every later
            // "record" in this segment garbage too.
            stats.corrupt += 1;
            return (stats, pos);
        }
        let len = len as usize;
        if remaining - 8 < len {
            stats.truncated += 1; // torn mid-payload
            return (stats, pos);
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) == crc {
            stats.replayed += 1;
            deliver(
                payload,
                RecordLoc {
                    segment: seg_index,
                    offset: pos as u64,
                    len: len as u32,
                },
            );
        } else {
            // Framing intact (length was sane), payload damaged: skip it and
            // keep reading — later records are still addressable.
            stats.corrupt += 1;
        }
        pos += 8 + len;
    }
    (stats, bytes.len())
}

impl SegmentLog {
    /// Open a log directory for replay + append: creates `dir` if missing,
    /// replays every existing record through `deliver` (payload plus its
    /// [`RecordLoc`]), then positions the writer at the end of the newest
    /// segment.
    pub fn open(
        dir: &Path,
        policy: FsyncPolicy,
        segment_bytes: u64,
        fuse: Option<Arc<CrashFuse>>,
        mut deliver: impl FnMut(&[u8], RecordLoc),
    ) -> io::Result<(SegmentLog, ReplayStats)> {
        fs::create_dir_all(dir)?;
        let mut stats = ReplayStats::default();
        let mut last: Option<(u64, usize, usize)> = None; // (index, valid_len, file_len)
        for (index, path) in segment_files(dir)? {
            let mut bytes = Vec::new();
            File::open(&path)?.read_to_end(&mut bytes)?;
            let (seg_stats, valid_len) = replay_segment(index, &bytes, &mut deliver);
            stats.absorb(seg_stats);
            last = Some((index, valid_len, bytes.len()));
        }

        // Position the writer. A fresh directory starts at segment 1. An
        // existing newest segment is reopened at its *trusted prefix*: a
        // torn or unframeable tail is truncated away first (classic WAL
        // recovery), because records appended after damaged bytes could
        // never be replayed. If even the magic is untrustworthy, the file
        // is left as evidence and a new segment begins.
        let (index, fresh) = match last {
            None => (1, true),
            Some((index, valid_len, file_len)) => {
                if valid_len >= SEGMENT_MAGIC.len() {
                    if valid_len < file_len {
                        let f = OpenOptions::new()
                            .write(true)
                            .open(segment_path(dir, index))?;
                        f.set_len(valid_len as u64)?;
                        f.sync_data()?;
                    }
                    (index, false)
                } else {
                    (index + 1, true)
                }
            }
        };
        let path = segment_path(dir, index);
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        let mut seg_len = file.metadata()?.len();
        if fresh {
            // Through the fuse like every other write: a crash budget of 0
            // means not even the magic lands.
            let allowed = match &fuse {
                Some(f) => f.consume(SEGMENT_MAGIC.len()),
                None => SEGMENT_MAGIC.len(),
            };
            if allowed > 0 {
                file.write_all(&SEGMENT_MAGIC[..allowed])?;
            }
            seg_len += SEGMENT_MAGIC.len() as u64;
        }
        Ok((
            SegmentLog {
                dir: dir.to_path_buf(),
                segment_bytes: segment_bytes.max(4096),
                policy,
                fuse,
                writer: Mutex::new(LogWriter {
                    file,
                    seg_index: index,
                    seg_len,
                    last_sync: Instant::now(),
                    dirty: false,
                }),
                appends: AtomicU64::new(0),
                fsyncs: AtomicU64::new(0),
            },
            stats,
        ))
    }

    /// Write bytes through the crash fuse: everything past the budget
    /// silently vanishes, like writes issued after the process died.
    fn fused_write(&self, w: &mut LogWriter, buf: &[u8]) -> io::Result<()> {
        let allowed = match &self.fuse {
            Some(fuse) => fuse.consume(buf.len()),
            None => buf.len(),
        };
        if allowed > 0 {
            w.file.write_all(&buf[..allowed])?;
        }
        Ok(())
    }

    /// Append one record and apply the fsync policy, returning where the
    /// framed record landed. The payload is framed with its length and
    /// CRC-32; rotation happens before the append once the current segment
    /// exceeds the size threshold.
    pub fn append(&self, payload: &[u8]) -> io::Result<RecordLoc> {
        assert!(payload.len() <= MAX_RECORD as usize, "record too large");
        let mut buf = Vec::with_capacity(8 + payload.len());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(payload).to_le_bytes());
        buf.extend_from_slice(payload);

        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if w.seg_len >= self.segment_bytes {
            self.sync_locked(&mut w)?;
            w.seg_index += 1;
            let path = segment_path(&self.dir, w.seg_index);
            w.file = OpenOptions::new().create(true).append(true).open(path)?;
            w.seg_len = 0;
            self.fused_write(&mut w, SEGMENT_MAGIC)?;
            w.seg_len += SEGMENT_MAGIC.len() as u64;
        }
        let loc = RecordLoc {
            segment: w.seg_index,
            offset: w.seg_len,
            len: payload.len() as u32,
        };
        self.fused_write(&mut w, &buf)?;
        w.seg_len += buf.len() as u64;
        w.dirty = true;
        self.appends.fetch_add(1, Ordering::Relaxed);
        match self.policy {
            FsyncPolicy::Always => self.sync_locked(&mut w)?,
            FsyncPolicy::Interval(every) => {
                if w.last_sync.elapsed() >= every {
                    self.sync_locked(&mut w)?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(loc)
    }

    fn sync_locked(&self, w: &mut LogWriter) -> io::Result<()> {
        if !w.dirty {
            return Ok(());
        }
        // A tripped fuse means "the process is dead": it neither writes nor
        // reaches the disk with an fsync.
        if !self.fuse.as_ref().is_some_and(|f| f.tripped()) {
            w.file.sync_data()?;
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        w.dirty = false;
        w.last_sync = Instant::now();
        Ok(())
    }

    /// Flush and fsync any unsynced appends (graceful drain).
    pub fn sync(&self) -> io::Result<()> {
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        self.sync_locked(&mut w)
    }

    /// Records appended by this process.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Fsyncs issued by this process.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// Index of the segment currently being appended to.
    pub fn segment_index(&self) -> u64 {
        self.writer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .seg_index
    }
}

/// Re-read one record at a known location, re-verifying its framing and
/// CRC. Returns `Ok(None)` when the bytes at the location no longer frame a
/// matching intact record (damage since indexing — detected, never served).
pub fn read_record_at(dir: &Path, loc: RecordLoc) -> io::Result<Option<Vec<u8>>> {
    let mut file = match File::open(segment_path(dir, loc.segment)) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    file.seek(SeekFrom::Start(loc.offset))?;
    let mut header = [0u8; 8];
    if file.read_exact(&mut header).is_err() {
        return Ok(None); // truncated since indexing
    }
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if len != loc.len || len > MAX_RECORD {
        return Ok(None);
    }
    let mut payload = vec![0u8; len as usize];
    if file.read_exact(&mut payload).is_err() {
        return Ok(None);
    }
    if crc32(&payload) != crc {
        return Ok(None);
    }
    Ok(Some(payload))
}

/// Read every intact record payload under `dir` without opening the log for
/// append — the inspection path tests and tools use.
pub fn read_records(dir: &Path) -> io::Result<(Vec<Vec<u8>>, ReplayStats)> {
    let mut stats = ReplayStats::default();
    let mut records = Vec::new();
    if !dir.exists() {
        return Ok((records, stats));
    }
    for (index, path) in segment_files(dir)? {
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        let (seg_stats, _) = replay_segment(index, &bytes, |p, _| records.push(p.to_vec()));
        stats.absorb(seg_stats);
    }
    Ok((records, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "pasm-seglog-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn open(dir: &Path) -> (SegmentLog, Vec<Vec<u8>>, ReplayStats) {
        let mut seen = Vec::new();
        let (log, stats) = SegmentLog::open(
            dir,
            FsyncPolicy::Never,
            DEFAULT_SEGMENT_BYTES,
            None,
            |p, _| seen.push(p.to_vec()),
        )
        .unwrap();
        (log, seen, stats)
    }

    #[test]
    fn append_then_replay_round_trips_in_order() {
        let dir = tmpdir("roundtrip");
        {
            let (log, seen, stats) = open(&dir);
            assert!(seen.is_empty() && stats == ReplayStats::default());
            for i in 0..100u32 {
                log.append(format!("record-{i}").as_bytes()).unwrap();
            }
            log.sync().unwrap();
        }
        let (_, seen, stats) = open(&dir);
        assert_eq!(stats.replayed, 100);
        assert_eq!(stats.truncated + stats.corrupt, 0);
        assert_eq!(seen.len(), 100);
        assert_eq!(seen[7], b"record-7");
        assert_eq!(seen[99], b"record-99");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_locations_read_back_their_records() {
        let dir = tmpdir("locs");
        let (log, _, _) = open(&dir);
        let mut locs = Vec::new();
        for i in 0..32u32 {
            locs.push((i, log.append(format!("payload-{i}").as_bytes()).unwrap()));
        }
        log.sync().unwrap();
        for (i, loc) in &locs {
            let payload = read_record_at(&dir, *loc).unwrap().expect("intact");
            assert_eq!(payload, format!("payload-{i}").as_bytes());
        }
        // Replay delivers the same locations it returned at append time.
        drop(log);
        let mut replayed = Vec::new();
        let (_, stats) = SegmentLog::open(
            &dir,
            FsyncPolicy::Never,
            DEFAULT_SEGMENT_BYTES,
            None,
            |_, loc| replayed.push(loc),
        )
        .unwrap();
        assert_eq!(stats.replayed, 32);
        assert_eq!(
            replayed,
            locs.iter().map(|(_, l)| *l).collect::<Vec<_>>(),
            "replay locations match append locations"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_record_at_refuses_damaged_bytes() {
        let dir = tmpdir("reread");
        let (log, _, _) = open(&dir);
        let loc = log.append(b"precious-payload").unwrap();
        log.sync().unwrap();
        drop(log);
        // Flip one payload bit: the location still frames, the CRC refuses.
        let path = segment_path(&dir, loc.segment);
        let mut bytes = fs::read(&path).unwrap();
        bytes[(loc.offset + 8 + 2) as usize] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(read_record_at(&dir, loc).unwrap(), None);
        // Truncated mid-payload: refused, not partially served.
        fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert_eq!(read_record_at(&dir, loc).unwrap(), None);
        // Missing segment file: refused.
        fs::remove_file(&path).unwrap();
        assert_eq!(read_record_at(&dir, loc).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_rotate_and_replay_spans_them() {
        let dir = tmpdir("rotate");
        {
            let (log, _) =
                SegmentLog::open(&dir, FsyncPolicy::Never, 4096, None, |_, _| {}).unwrap();
            let payload = vec![0xA5u8; 512];
            for _ in 0..64 {
                log.append(&payload).unwrap();
            }
            assert!(log.segment_index() > 1, "rotation happened");
        }
        let (log, seen, stats) = open(&dir);
        assert_eq!(stats.replayed, 64);
        assert!(stats.segments > 1);
        assert_eq!(seen.len(), 64);
        drop(log);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_served() {
        let dir = tmpdir("torn");
        {
            let (log, _, _) = open(&dir);
            log.append(b"intact-one").unwrap();
            log.append(b"intact-two").unwrap();
            log.sync().unwrap();
        }
        // Chop bytes off the tail: mid-payload, mid-header, mid-magic.
        let path = segment_path(&dir, 1);
        let full = fs::read(&path).unwrap();
        for cut in [3, 7, full.len() - 3, full.len() - 12] {
            fs::write(&path, &full[..cut]).unwrap();
            let (records, stats) = read_records(&dir).unwrap();
            assert_eq!(stats.truncated, 1, "cut at {cut}");
            assert!(
                records
                    .iter()
                    .all(|r| r == b"intact-one" || r == b"intact-two"),
                "cut at {cut} surfaced a partial record: {records:?}"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_is_skipped_and_later_records_survive() {
        let dir = tmpdir("flip");
        {
            let (log, _, _) = open(&dir);
            log.append(b"first-record").unwrap();
            log.append(b"second-record").unwrap();
            log.append(b"third-record").unwrap();
            log.sync().unwrap();
        }
        let path = segment_path(&dir, 1);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload bit of the *second* record (after magic + record 1).
        let offset = 8 + (8 + b"first-record".len()) + 8 + 3;
        bytes[offset] ^= 0x10;
        fs::write(&path, &bytes).unwrap();
        let (records, stats) = read_records(&dir).unwrap();
        assert_eq!(stats.corrupt, 1);
        assert_eq!(stats.replayed, 2);
        assert_eq!(
            records,
            vec![b"first-record".to_vec(), b"third-record".to_vec()]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn insane_length_abandons_the_segment_but_not_later_ones() {
        let dir = tmpdir("frame");
        {
            let (log, _) =
                SegmentLog::open(&dir, FsyncPolicy::Never, 4096, None, |_, _| {}).unwrap();
            let payload = vec![1u8; 1024];
            for _ in 0..8 {
                log.append(&payload).unwrap(); // spans ≥ 2 segments
            }
        }
        // Smash the length field of segment 1's first record.
        let path = segment_path(&dir, 1);
        let mut bytes = fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let (records, stats) = read_records(&dir).unwrap();
        assert!(stats.corrupt >= 1);
        assert!(
            !records.is_empty(),
            "later segments replay past an unframeable one"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_fuse_models_a_torn_write_at_a_byte_offset() {
        for budget in [0u64, 5, 13, 21, 60] {
            let dir = tmpdir(&format!("fuse{budget}"));
            {
                // Budget is consumed by the fresh segment magic first (8
                // bytes), then the records.
                let fuse = CrashFuse::new(8 + budget);
                let (log, _) = SegmentLog::open(
                    &dir,
                    FsyncPolicy::Always,
                    DEFAULT_SEGMENT_BYTES,
                    Some(fuse),
                    |_, _| {},
                )
                .unwrap();
                for i in 0..4u32 {
                    log.append(format!("payload-{i}").as_bytes()).unwrap();
                }
                log.sync().unwrap();
            }
            let (records, stats) = read_records(&dir).unwrap();
            let expect_complete = (budget / (8 + b"payload-0".len() as u64)) as usize;
            assert_eq!(records.len(), expect_complete, "budget {budget}");
            assert!(stats.corrupt == 0, "a torn write never looks corrupt");
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn reopening_after_a_tear_truncates_and_appends_reachably() {
        let dir = tmpdir("reopen");
        {
            let (log, _, _) = open(&dir);
            log.append(b"survivor").unwrap();
            log.append(b"casualty").unwrap();
            log.sync().unwrap();
        }
        // Tear the tail mid-record, then reopen and append more.
        let path = segment_path(&dir, 1);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        {
            let (log, seen, stats) = open(&dir);
            assert_eq!(seen, vec![b"survivor".to_vec()]);
            assert_eq!(stats.truncated, 1);
            log.append(b"afterlife").unwrap();
            log.sync().unwrap();
        }
        // The post-tear append replays: the tail was truncated before it.
        let (records, stats) = read_records(&dir).unwrap();
        assert_eq!(records, vec![b"survivor".to_vec(), b"afterlife".to_vec()]);
        assert_eq!(stats.truncated, 0, "the tear is gone from disk");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policies_parse_and_label() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(
            FsyncPolicy::parse("interval"),
            Some(FsyncPolicy::Interval(Duration::from_millis(100)))
        );
        assert_eq!(
            FsyncPolicy::parse("interval:250"),
            Some(FsyncPolicy::Interval(Duration::from_millis(250)))
        );
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        assert_eq!(FsyncPolicy::parse("interval:x"), None);
        for p in ["always", "never", "interval:250"] {
            assert_eq!(FsyncPolicy::parse(p).unwrap().label(), p);
        }
    }

    #[test]
    fn always_policy_fsyncs_every_append() {
        let dir = tmpdir("sync");
        let (log, _) = SegmentLog::open(
            &dir,
            FsyncPolicy::Always,
            DEFAULT_SEGMENT_BYTES,
            None,
            |_, _| {},
        )
        .unwrap();
        log.append(b"a").unwrap();
        log.append(b"b").unwrap();
        assert_eq!(log.fsyncs(), 2);
        assert_eq!(log.appends(), 2);
        drop(log);
        fs::remove_dir_all(&dir).unwrap();
    }
}
