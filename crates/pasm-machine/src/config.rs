//! Machine configuration: sizes and timing parameters of the simulated prototype.

use pasm_mem::MemTiming;

/// How the Fetch Unit releases a queued SIMD instruction to its PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReleaseMode {
    /// The real hardware rule: an instruction is released only after **all**
    /// enabled PEs have requested it, so every variable-time instruction costs
    /// the *maximum* across PEs (paper §3 and the T_SIMD equation in §5.2).
    Lockstep,
    /// Ablation: each PE receives the instruction as soon as it asks (as if
    /// every PE had its own private queue). Removes the per-instruction max
    /// and isolates how much of the SIMD cost is the lockstep barrier.
    Decoupled,
}

/// Full parameter set of a simulated PASM prototype.
///
/// Defaults ([`MachineConfig::prototype`]) model the 30-processor prototype
/// used in the paper: N = 16 PEs, Q = 4 MCs, 8 MHz MC68000s, DRAM PE memory
/// with one more wait state than the static-RAM Fetch Unit queue, and a
/// circuit-switched 8-bit-wide Extra-Stage Cube network.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MachineConfig {
    /// Number of processing elements (power of two).
    pub n_pes: usize,
    /// Number of micro controllers; each controls `n_pes / n_mcs` PEs.
    pub n_mcs: usize,
    /// Bytes of main memory per PE.
    pub pe_mem_bytes: usize,
    /// PE main-memory (DRAM) timing.
    pub pe_dram: MemTiming,
    /// Fetch Unit queue (SRAM) timing, as seen by a PE fetching from the queue.
    pub fu_sram: MemTiming,
    /// MC program-memory timing.
    pub mc_dram: MemTiming,
    /// Fetch Unit queue capacity in 16-bit words.
    pub queue_capacity_words: u32,
    /// Cycles the Fetch Unit controller needs to move one word into the queue.
    pub fuc_cycles_per_word: u64,
    /// Latency from the MC's enqueue command to the controller starting to move.
    pub fuc_command_cycles: u64,
    /// Extra cycles from the last enabled PE's request to instruction delivery.
    pub simd_release_cycles: u64,
    /// Network circuit set-up cost in cycles (charged once per circuit).
    pub net_setup_cycles: u64,
    /// Latency of one 8-bit word through an established circuit.
    pub net_word_cycles: u64,
    /// Additional per-word cycles for each network stage a circuit traverses
    /// beyond the fault-free minimum of m. Only degraded configurations (both
    /// cube₀ stages in the data path) have longer circuits, so this is the
    /// unit cost the `fault_detour` bucket is charged in.
    pub net_stage_cycles: u64,
    /// Release rule (see [`ReleaseMode`]).
    pub release_mode: ReleaseMode,
    /// Hard stop for the scheduler (guards against runaway programs).
    pub max_cycles: u64,
}

impl MachineConfig {
    /// The PASM prototype as described in the paper (N = 16, Q = 4).
    pub fn prototype() -> Self {
        MachineConfig {
            n_pes: 16,
            n_mcs: 4,
            pe_mem_bytes: 1 << 20,
            pe_dram: MemTiming::PE_DRAM,
            fu_sram: MemTiming::FU_SRAM,
            mc_dram: MemTiming::MC_DRAM,
            queue_capacity_words: 512,
            fuc_cycles_per_word: 2,
            fuc_command_cycles: 4,
            simd_release_cycles: 0,
            net_setup_cycles: 120,
            net_word_cycles: 4,
            net_stage_cycles: 2,
            release_mode: ReleaseMode::Lockstep,
            max_cycles: u64::MAX,
        }
    }

    /// A small machine for fast unit tests (4 PEs, 1 MC, 64 KiB memories).
    pub fn small() -> Self {
        MachineConfig {
            n_pes: 4,
            n_mcs: 1,
            pe_mem_bytes: 1 << 16,
            ..Self::prototype()
        }
    }

    /// PEs per MC group.
    pub fn pes_per_mc(&self) -> usize {
        self.n_pes / self.n_mcs
    }

    /// Validate structural constraints; panics with a descriptive message.
    pub fn assert_valid(&self) {
        assert!(self.n_pes.is_power_of_two(), "n_pes must be a power of two");
        assert!(
            self.n_mcs >= 1 && self.n_pes.is_multiple_of(self.n_mcs),
            "n_mcs must divide n_pes"
        );
        assert!(self.pe_mem_bytes >= 1024, "PE memory unrealistically small");
        assert!(
            self.queue_capacity_words >= 4,
            "queue must hold at least one instruction"
        );
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::prototype()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_matches_paper() {
        let c = MachineConfig::prototype();
        c.assert_valid();
        assert_eq!(c.n_pes, 16);
        assert_eq!(c.n_mcs, 4);
        assert_eq!(c.pes_per_mc(), 4);
        assert_eq!(c.release_mode, ReleaseMode::Lockstep);
        // The SRAM queue must be at least one wait state faster than PE DRAM.
        assert!(c.fu_sram.wait_states < c.pe_dram.wait_states);
    }

    #[test]
    fn small_config_valid() {
        let c = MachineConfig::small();
        c.assert_valid();
        assert_eq!(c.pes_per_mc(), 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_pe_count_rejected() {
        let c = MachineConfig {
            n_pes: 12,
            ..MachineConfig::prototype()
        };
        c.assert_valid();
    }
}
