//! The block compiler: one-time static analysis that turns a loaded program
//! into a table of basic blocks with folded cycle costs.
//!
//! [`compile`] splits the instruction stream into basic blocks
//! ([`pasm_isa::analysis::basic_blocks`]) and precomputes, per instruction,
//! the static/dynamic cycle decomposition ([`pasm_isa::timing::cycle_split`])
//! plus a *stop* flag for instructions that interact with the rest of the
//! machine (mode switches, Fetch-Unit commands, barriers, `HALT`). Per block
//! it folds the static costs into one constant and counts the remaining
//! data-dependent terms.
//!
//! The machine's fast path (see `machine.rs`) consumes this table: a PE in
//! MIMD mode (or an MC between Fetch-Unit commands) leaps through compiled
//! instructions without returning to the global event scheduler, using the
//! cached [`CycleSplit`] for the core charge and escaping to the full
//! per-instruction path at every stop instruction or memory-mapped access.
//! Compiled programs are cached per [`fingerprint`] and invalidated when a
//! fault plan changes a PE's timing model (see
//! [`Machine::apply_fault_plan`](crate::Machine::apply_fault_plan)).
//!
//! What is folded and what is not is specified in `docs/TIMING.md`: core
//! cycles split exactly into `static + dynamic(ctx)` (pinned by the
//! `pasm-isa` decomposition tests), while DRAM refresh makes memory wait
//! states a function of the *absolute* cycle the access starts on, so the
//! fast path still evaluates `burst_delay` per instruction — the block
//! constant [`CompiledBlock::static_cycles`] is the core-cycle floor of one
//! pass through the block, not its wall duration.

use pasm_isa::analysis::{basic_blocks, BlockSpan};
use pasm_isa::timing::{cycle_split, CycleSplit, DynTerm};
use pasm_isa::Instr;
use std::hash::{Hash, Hasher};

/// Per-instruction compiled metadata, parallel to the program's `instrs`.
///
/// The instruction itself is duplicated here so the fast path reads one
/// table entry per step instead of touching both the program stream and the
/// metadata table.
#[derive(Debug, Clone, Copy)]
pub struct InstrMeta {
    /// The instruction (copied from the program stream at compile time).
    pub instr: Instr,
    /// Precomputed static/dynamic cycle decomposition.
    pub split: CycleSplit,
    /// Minimum data-dependent cycles of a variable-time opcode (`MULU`/
    /// `MULS`: 38, `DIVU`: 76, `DIVS`: 84; 0 otherwise), folded so the fast
    /// path computes the `MultiplyVariance` bucket without re-matching the
    /// opcode — `mulu_cycles.saturating_sub(variance_min)` equals
    /// [`variance_cycles`](crate::account::variance_cycles) exactly, because
    /// `mulu_cycles` is nonzero only for those four opcodes.
    pub variance_min: u32,
    /// The fast path must return to the event scheduler *before* executing
    /// this instruction: it halts, switches mode, or talks to the Fetch Unit.
    pub stop: bool,
    /// Index into [`CompiledProgram::blocks`] of the containing block.
    pub block: u32,
}

/// One basic block with folded static cost.
#[derive(Debug, Clone, Copy)]
pub struct CompiledBlock {
    /// Instruction-index span of the block.
    pub span: BlockSpan,
    /// Sum of the static core-cycle costs of every instruction in the block:
    /// the cost of one full pass assuming zero-wait memory and all dynamic
    /// terms zero.
    pub static_cycles: u32,
    /// Number of instructions carrying a data-dependent term
    /// ([`DynTerm`] ≠ `None`) that must be evaluated at execution time.
    pub dynamic_terms: u32,
    /// The block contains a stop instruction (the fast path will leave the
    /// block early at it).
    pub has_stop: bool,
}

/// A program compiled to its block table. Built once per distinct program
/// (see [`fingerprint`]) and shared by every PE/MC running it.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// FNV-style hash of the instruction stream this table was built from.
    pub fingerprint: u64,
    /// Basic blocks in program order, tiling the instruction stream.
    pub blocks: Vec<CompiledBlock>,
    /// Per-instruction metadata, same length as the instruction stream.
    pub meta: Vec<InstrMeta>,
}

impl CompiledProgram {
    /// Total static cycles over all blocks (diagnostic).
    pub fn total_static_cycles(&self) -> u64 {
        self.blocks.iter().map(|b| b.static_cycles as u64).sum()
    }

    /// Fraction of instructions that are fully static (no dynamic term).
    pub fn static_fraction(&self) -> f64 {
        if self.meta.is_empty() {
            return 1.0;
        }
        let n = self.meta.iter().filter(|m| m.split.is_static()).count();
        n as f64 / self.meta.len() as f64
    }
}

/// True for instructions the fast path must not execute: they produce
/// machine-level effects (mode switches, barrier reads, Fetch-Unit commands,
/// PE start-up, halting) that require the global scheduler's view.
/// [`Instr::Mark`] is *not* a stop — the fast path applies phase marks
/// inline.
pub fn is_stop(i: &Instr) -> bool {
    matches!(
        i,
        Instr::JmpSimd
            | Instr::JmpMimd { .. }
            | Instr::Barrier
            | Instr::SetMask { .. }
            | Instr::Enqueue { .. }
            | Instr::EnqueueWords { .. }
            | Instr::StartPes
            | Instr::Halt
    )
}

/// FNV-1a over the `Hash` encoding of the instructions: deterministic within
/// and across runs (unlike `RandomState`), which keeps cache behaviour — and
/// therefore any diagnostics derived from it — reproducible.
struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// Deterministic identity of an instruction stream, used as the block-table
/// cache key. Two programs with equal instruction streams compile to the
/// same table, so kernels regenerated per run hit the cache.
pub fn fingerprint(instrs: &[Instr]) -> u64 {
    let mut h = Fnv1a(0xCBF2_9CE4_8422_2325);
    instrs.len().hash(&mut h);
    for i in instrs {
        i.hash(&mut h);
    }
    h.finish()
}

/// Compile an instruction stream into its block table.
pub fn compile(instrs: &[Instr]) -> CompiledProgram {
    let spans = basic_blocks(instrs);
    let mut meta: Vec<InstrMeta> = instrs
        .iter()
        .map(|i| InstrMeta {
            instr: *i,
            split: cycle_split(i),
            variance_min: match i {
                Instr::Mulu { .. } | Instr::Muls { .. } => 38,
                Instr::Divu { .. } => 76,
                Instr::Divs { .. } => 84,
                _ => 0,
            },
            stop: is_stop(i),
            block: 0,
        })
        .collect();
    let blocks: Vec<CompiledBlock> = spans
        .iter()
        .enumerate()
        .map(|(bi, &span)| {
            let mut static_cycles = 0u32;
            let mut dynamic_terms = 0u32;
            let mut has_stop = false;
            for m in &mut meta[span.start..span.end] {
                m.block = bi as u32;
                static_cycles += m.split.static_cycles;
                if m.split.dynamic != DynTerm::None {
                    dynamic_terms += 1;
                }
                has_stop |= m.stop;
            }
            CompiledBlock {
                span,
                static_cycles,
                dynamic_terms,
                has_stop,
            }
        })
        .collect();
    CompiledProgram {
        fingerprint: fingerprint(instrs),
        blocks,
        meta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasm_isa::timing::{base_cycles, ExecCtx};
    use pasm_isa::{DataReg::*, Ea, Size};

    fn loop_program() -> Vec<Instr> {
        vec![
            Instr::Moveq { value: 0, dst: D0 },
            Instr::Moveq { value: 7, dst: D1 },
            Instr::Add {
                size: Size::Word,
                src: Ea::D(D1),
                dst: D0,
            },
            Instr::Mulu {
                src: Ea::D(D1),
                dst: D0,
            },
            Instr::Dbra { dst: D1, target: 2 },
            Instr::Halt,
        ]
    }

    #[test]
    fn block_constants_fold_static_costs() {
        let prog = loop_program();
        let c = compile(&prog);
        assert_eq!(c.blocks.len(), 3);
        // Block 0: two MOVEQ at 4 cycles each.
        assert_eq!(c.blocks[0].static_cycles, 8);
        assert_eq!(c.blocks[0].dynamic_terms, 0);
        // Block 1: ADD(4) + MULU(38) + DBRA(10); MULU and DBRA carry terms.
        assert_eq!(c.blocks[1].static_cycles, 4 + 38 + 10);
        assert_eq!(c.blocks[1].dynamic_terms, 2);
        assert!(!c.blocks[1].has_stop);
        // Block 2: HALT — a stop.
        assert!(c.blocks[2].has_stop);
        assert!(c.meta[5].stop);
        // Block constant == sum of interpreter charges with zero dynamics.
        let zero = ExecCtx {
            branch_taken: true, // DBRA taken arm is the 10-cycle static floor
            ..Default::default()
        };
        let sum: u32 = prog[2..5].iter().map(|i| base_cycles(i, zero)).sum();
        assert_eq!(c.blocks[1].static_cycles, sum);
    }

    #[test]
    fn meta_maps_every_instruction_to_its_block() {
        let c = compile(&loop_program());
        for (pc, m) in c.meta.iter().enumerate() {
            let b = c.blocks[m.block as usize];
            assert!(b.span.start <= pc && pc < b.span.end, "pc {pc}");
        }
    }

    #[test]
    fn fingerprint_is_deterministic_and_content_sensitive() {
        let a = loop_program();
        let mut b = loop_program();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_eq!(compile(&a).fingerprint, fingerprint(&a));
        b[0] = Instr::Moveq { value: 1, dst: D0 };
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&a[..5]));
    }

    #[test]
    fn variance_min_reproduces_account_variance() {
        use crate::account::variance_cycles;
        let prog = vec![
            Instr::Mulu {
                src: Ea::D(D1),
                dst: D0,
            },
            Instr::Muls {
                src: Ea::D(D1),
                dst: D0,
            },
            Instr::Divu {
                src: Ea::D(D1),
                dst: D0,
            },
            Instr::Divs {
                src: Ea::D(D1),
                dst: D0,
            },
            Instr::Nop,
            Instr::Add {
                size: Size::Word,
                src: Ea::D(D1),
                dst: D0,
            },
        ];
        let c = compile(&prog);
        for m in &c.meta {
            // `mulu_cycles` at execution time is ≥ the folded floor for the
            // variable-time opcodes and exactly 0 for everything else, so
            // the subtraction reproduces `variance_cycles` on every value
            // the machine can feed it.
            let observable = if m.variance_min > 0 {
                vec![m.variance_min, m.variance_min + 2, m.variance_min + 64]
            } else {
                vec![0]
            };
            for data_dependent in observable {
                assert_eq!(
                    data_dependent.saturating_sub(m.variance_min),
                    variance_cycles(&m.instr, data_dependent),
                    "{:?}",
                    m.instr
                );
            }
        }
        // The floor itself matches the opcode table.
        assert_eq!(c.meta[0].variance_min, 38);
        assert_eq!(c.meta[1].variance_min, 38);
        assert_eq!(c.meta[2].variance_min, 76);
        assert_eq!(c.meta[3].variance_min, 84);
        assert_eq!(c.meta[4].variance_min, 0);
        assert_eq!(c.meta[5].variance_min, 0);
    }

    #[test]
    fn stop_classification_covers_machine_effects() {
        for i in [
            Instr::JmpSimd,
            Instr::JmpMimd { target: 0 },
            Instr::Barrier,
            Instr::SetMask { mask: 1 },
            Instr::Enqueue { block: 0 },
            Instr::EnqueueWords { count: 1 },
            Instr::StartPes,
            Instr::Halt,
        ] {
            assert!(is_stop(&i), "{i:?}");
        }
        for i in [
            Instr::Nop,
            Instr::Dbra { dst: D0, target: 0 },
            Instr::Jmp { target: 0 },
            Instr::Rts,
            Instr::Mark {
                begin: true,
                phase: 0,
            },
        ] {
            assert!(!is_stop(&i), "{i:?}");
        }
    }
}
