//! The machine: PEs, MCs, Fetch Units, network state, and the event scheduler.
//!
//! Every component (PE, MC, Fetch Unit controller) carries its own local cycle
//! clock; the scheduler repeatedly executes the runnable component with the
//! smallest next event time, so cross-component interactions (queue releases,
//! network handshakes, controller stalls) are resolved in global time order.
//! All of the paper's phenomena are *emergent* here: SIMD's per-instruction
//! `max` comes from the Fetch Unit release rule, MIMD's polling overhead from
//! actual polling instructions, and SIMD superlinearity from the MC executing
//! control flow while its PEs compute.

use crate::account::{self, variance_cycles, Bucket, MachineAccounts};
use crate::block::{self, CompiledProgram};
use crate::config::{MachineConfig, ReleaseMode};
use crate::cpu::{exec, exec_timed, Block, Bus, Cpu, Effect, McEffect, MemBus, StepOutcome};
use crate::fault::{FaultPlan, PeFault};
use crate::fetch_unit::{EntryKind, FetchUnit, FuStats, QueueEntry};
use crate::trace::{McTrace, PeTrace};
use pasm_isa::{Instr, Program, Size};
use pasm_mem::map::{self, MemMap, NetReg, Region};
use pasm_mem::{BurstClock, Memory};
use pasm_net::{ring_circuits, CircuitId, EscNetwork, NetError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Execution mode of a PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeMode {
    /// Fetching instructions from its own program (own memory).
    Mimd,
    /// Fetching instructions from its MC's Fetch Unit queue.
    Simd,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PeState {
    /// Not started.
    Idle,
    /// Can execute at `ready_at`.
    Ready,
    /// Waiting for a word from SIMD space (instruction fetch or barrier read).
    AwaitSimd { since: u64 },
    /// Blocked writing the network transmit register.
    AwaitNetTx { since: u64 },
    /// Blocked reading the network receive register.
    AwaitNetRx { since: u64 },
    /// Stopped.
    Halted,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum McState {
    Idle,
    Ready,
    /// Waiting for the Fetch Unit controller to accept the next command.
    AwaitFuc {
        since: u64,
    },
    Halted,
}

/// A byte travelling to (or parked at) a PE's receive register.
#[derive(Debug, Clone, Copy)]
struct RxByte {
    value: u8,
    valid_at: u64,
}

/// Shared network data-plane state (the structural routing lives in `pasm-net`).
#[derive(Debug)]
struct NetState {
    /// Established circuit destination per PE.
    dest: Vec<Option<usize>>,
    /// In-flight / parked byte per destination PE.
    rx: Vec<Option<RxByte>>,
    /// Per-sender extra cycles each transmitted word pays for network stages
    /// beyond the fault-free minimum (nonzero only on degraded networks).
    detour: Vec<u64>,
}

struct Pe {
    cpu: Cpu,
    mem: Memory,
    program: Program,
    mode: PeMode,
    state: PeState,
    ready_at: u64,
    /// SIMD-delivered instruction awaiting execution.
    pending: Option<QueueEntry>,
    /// Queue cursor for `ReleaseMode::Decoupled`.
    cursor: usize,
    trace: PeTrace,
    /// Block table of `program`, shared via the machine's fingerprint cache;
    /// `None` forces the per-instruction path (fault-plan invalidation).
    compiled: Option<Arc<CompiledProgram>>,
}

struct Mc {
    cpu: Cpu,
    mem: Memory,
    program: Program,
    state: McState,
    ready_at: u64,
    trace: McTrace,
    /// Block table of `program` (see [`Pe::compiled`]).
    compiled: Option<Arc<CompiledProgram>>,
}

/// Result of a completed run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Global completion time: the latest halt over all components.
    pub makespan: u64,
    /// Latest PE halt time (excludes MC wind-down).
    pub pe_makespan: u64,
    /// Per-PE traces.
    pub pe: Vec<PeTrace>,
    /// Per-MC traces.
    pub mc: Vec<McTrace>,
    /// Per-Fetch-Unit statistics.
    pub fu: Vec<FuStats>,
    /// Cycle accounts per component, `None` if accounting was disabled.
    pub accounts: Option<MachineAccounts>,
}

impl RunResult {
    /// Sum of a phase's cycles, maximized over PEs (the paper's per-phase
    /// contribution is the slowest processor's view).
    pub fn phase_max(&self, phase: usize) -> u64 {
        self.pe
            .iter()
            .map(|t| t.phase_cycles[phase])
            .max()
            .unwrap_or(0)
    }

    /// Mean over PEs that executed anything.
    pub fn phase_mean(&self, phase: usize) -> f64 {
        let active: Vec<&PeTrace> = self.pe.iter().filter(|t| t.instrs > 0).collect();
        if active.is_empty() {
            return 0.0;
        }
        active
            .iter()
            .map(|t| t.phase_cycles[phase] as f64)
            .sum::<f64>()
            / active.len() as f64
    }

    /// Total instructions executed by PEs.
    pub fn pe_instrs(&self) -> u64 {
        self.pe.iter().map(|t| t.instrs).sum()
    }
}

/// Errors a run can end with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// No component can make progress but not everything has halted.
    Deadlock(String),
    /// The configured cycle budget was exceeded.
    CycleLimit(u64),
    /// An external party tripped the interrupt flag (see
    /// [`Machine::set_interrupt`]) — job cancellation, watchdog deadline.
    Interrupted,
    /// The network could not establish the circuits a job needs — e.g. a
    /// full-machine ring under an interior-box fault, which the ESC cannot
    /// route in one pass. Carries the underlying [`pasm_net::NetError`] text.
    Net(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Deadlock(s) => write!(f, "deadlock: {s}"),
            RunError::CycleLimit(c) => write!(f, "cycle limit {c} exceeded"),
            RunError::Interrupted => write!(f, "interrupted"),
            RunError::Net(s) => write!(f, "network: {s}"),
        }
    }
}

impl std::error::Error for RunError {}

/// The simulated PASM prototype.
pub struct Machine {
    cfg: MachineConfig,
    pes: Vec<Pe>,
    mcs: Vec<Mc>,
    fus: Vec<FetchUnit>,
    net: NetState,
    esc: EscNetwork,
    /// Cycle accounts; `None` when accounting is disabled. Deliberately not
    /// part of [`MachineConfig`] (which is hashed into cache keys): the toggle
    /// only changes what is recorded, never the simulated timing.
    acct: Option<MachineAccounts>,
    /// Injected per-PE fault models.
    pe_faults: Vec<Option<PeFault>>,
    /// Cooperative cancellation: checked periodically by [`Machine::run`].
    interrupt: Option<Arc<AtomicBool>>,
    /// Block tables keyed by program fingerprint; components running the same
    /// program (every PE of a data-parallel kernel) share one compilation.
    block_cache: HashMap<u64, Arc<CompiledProgram>>,
    /// Block-compiled fast path enabled (default). Timing and accounting are
    /// byte-identical either way — gated by the equivalence tests.
    fast_path: bool,
}

enum Component {
    Pe(usize),
    Mc(usize),
    Fuc(usize),
}

impl Machine {
    /// Build a machine from a configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        cfg.assert_valid();
        let pes = (0..cfg.n_pes)
            .map(|_| Pe {
                cpu: Cpu::default(),
                mem: Memory::new(cfg.pe_mem_bytes),
                program: Program::default(),
                mode: PeMode::Mimd,
                state: PeState::Idle,
                ready_at: 0,
                pending: None,
                cursor: 0,
                trace: PeTrace::default(),
                compiled: None,
            })
            .collect();
        let mcs = (0..cfg.n_mcs)
            .map(|_| Mc {
                cpu: Cpu::default(),
                mem: Memory::new(1 << 16),
                program: Program::default(),
                state: McState::Idle,
                ready_at: 0,
                trace: McTrace::default(),
                compiled: None,
            })
            .collect();
        let fus = (0..cfg.n_mcs)
            .map(|_| FetchUnit::new(cfg.queue_capacity_words))
            .collect();
        let net = NetState {
            dest: vec![None; cfg.n_pes],
            rx: vec![None; cfg.n_pes],
            detour: vec![0; cfg.n_pes],
        };
        let esc = EscNetwork::new(cfg.n_pes.max(2));
        let acct = Some(MachineAccounts::new(cfg.n_pes, cfg.n_mcs));
        let pe_faults = vec![None; cfg.n_pes];
        Machine {
            cfg,
            pes,
            mcs,
            fus,
            net,
            esc,
            acct,
            pe_faults,
            interrupt: None,
            block_cache: HashMap::new(),
            fast_path: true,
        }
    }

    /// Enable or disable the block-compiled fast path (enabled by default).
    /// Disabling it forces the per-instruction interpreter everywhere; the
    /// simulated timing, traces and cycle accounts are identical either way.
    /// Like the accounting toggle, this is deliberately not part of
    /// [`MachineConfig`]: it changes how fast the simulator runs, never what
    /// it simulates.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.fast_path = enabled;
    }

    /// Whether the block-compiled fast path is active.
    pub fn fast_path_enabled(&self) -> bool {
        self.fast_path
    }

    /// The block table a PE's loaded program compiled to (diagnostics), or
    /// `None` if the PE was invalidated back to the per-instruction path.
    pub fn pe_compiled(&self, pe: usize) -> Option<&CompiledProgram> {
        self.pes[pe].compiled.as_deref()
    }

    /// Fetch or build the shared block table for a program.
    fn compile_program(&mut self, program: &Program) -> Arc<CompiledProgram> {
        let fp = block::fingerprint(&program.instrs);
        if let Some(c) = self.block_cache.get(&fp) {
            return Arc::clone(c);
        }
        let c = Arc::new(block::compile(&program.instrs));
        self.block_cache.insert(fp, Arc::clone(&c));
        c
    }

    /// Enable or disable cycle accounting (enabled by default). Disabling it
    /// removes all bookkeeping from the hot loop; simulated timing is
    /// identical either way (tested and bench-guarded).
    pub fn set_accounting(&mut self, enabled: bool) {
        self.acct = if enabled {
            Some(MachineAccounts::new(self.cfg.n_pes, self.cfg.n_mcs))
        } else {
            None
        };
    }

    /// Whether cycle accounting is currently recording.
    pub fn accounting_enabled(&self) -> bool {
        self.acct.is_some()
    }

    /// The configuration this machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Controlling MC of a PE: PASM assigns PE *i* to MC *i mod Q* (the
    /// low-order q bits of the PE number select the MC).
    pub fn mc_of_pe(&self, pe: usize) -> usize {
        pe % self.cfg.n_mcs
    }

    /// Group-local index of a PE within its MC group (its mask bit).
    pub fn group_bit(&self, pe: usize) -> u16 {
        (pe / self.cfg.n_mcs) as u16
    }

    /// Physical PEs controlled by an MC, in mask-bit order.
    pub fn group_pes(&self, mc: usize) -> Vec<usize> {
        (0..self.cfg.pes_per_mc())
            .map(|j| j * self.cfg.n_mcs + mc)
            .collect()
    }

    /// Load a PE's MIMD program.
    pub fn load_pe_program(&mut self, pe: usize, program: Program) {
        program.validate().expect("invalid PE program");
        let compiled = self.compile_program(&program);
        self.pes[pe].program = program;
        self.pes[pe].compiled = (self.pe_faults[pe].is_none()).then_some(compiled);
    }

    /// Load an MC's control program.
    pub fn load_mc_program(&mut self, mc: usize, program: Program) {
        program.validate().expect("invalid MC program");
        let compiled = self.compile_program(&program);
        self.mcs[mc].program = program;
        self.mcs[mc].compiled = Some(compiled);
        self.mcs[mc].state = McState::Ready;
    }

    /// Direct access to a PE's memory (data set-up; the paper's secondary-
    /// storage I/O is outside the measured program time).
    pub fn pe_mem_mut(&mut self, pe: usize) -> &mut Memory {
        &mut self.pes[pe].mem
    }

    /// Read access to a PE's memory (result verification).
    pub fn pe_mem(&self, pe: usize) -> &Memory {
        &self.pes[pe].mem
    }

    /// Read access to a PE's CPU (tests).
    pub fn pe_cpu(&self, pe: usize) -> &Cpu {
        &self.pes[pe].cpu
    }

    /// Mutable access to a PE's CPU (test set-up).
    pub fn pe_cpu_mut(&mut self, pe: usize) -> &mut Cpu {
        &mut self.pes[pe].cpu
    }

    /// The structural network (fault injection, reconfiguration).
    pub fn network_mut(&mut self) -> &mut EscNetwork {
        &mut self.esc
    }

    /// Inject a fault plan: network faults go to the ESC (which reconfigures
    /// its bypass stages for them), PE faults are latched per PE. Must be
    /// called before circuits are established and PEs are started.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), String> {
        plan.validate(self.cfg.n_pes)?;
        self.esc.apply_faults(&plan.net);
        for spec in &plan.pe {
            self.pe_faults[spec.pe] = Some(spec.kind);
            // A faulted PE's timing model no longer matches its block table
            // (slow-PE wait states, stuck ports): drop it so the PE re-enters
            // the per-instruction path. Unaffected PEs keep their tables.
            self.pes[spec.pe].compiled = None;
        }
        Ok(())
    }

    /// The injected fault model of a PE, if any.
    pub fn pe_fault(&self, pe: usize) -> Option<PeFault> {
        self.pe_faults[pe]
    }

    /// Install a cooperative cancellation flag: [`Machine::run`] checks it
    /// periodically and returns [`RunError::Interrupted`] once it is set.
    pub fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        self.interrupt = Some(flag);
    }

    fn is_dead(&self, pe: usize) -> bool {
        matches!(self.pe_faults[pe], Some(PeFault::Dead))
    }

    /// Per-word cycles a circuit pays for stages beyond the fault-free
    /// minimum of m. Zero unless the network runs degraded with both cube₀
    /// stages in the data path (m + 1 hops).
    fn detour_cycles_for(&self, id: CircuitId) -> u64 {
        let hops = self.esc.circuit(id).map(|p| p.hops.len()).unwrap_or(0) as u64;
        let m = self.esc.size().trailing_zeros() as u64;
        hops.saturating_sub(m) * self.cfg.net_stage_cycles
    }

    /// Establish one circuit `src → dst` (consuming boxes in the ESC network).
    pub fn connect(&mut self, src: usize, dst: usize) -> Result<(), NetError> {
        let id = self.esc.establish(src, dst)?;
        self.net.dest[src] = Some(dst);
        self.net.detour[src] = self.detour_cycles_for(id);
        Ok(())
    }

    /// Establish the matmul ring over the listed physical PEs:
    /// `pes[k] → pes[(k + len − 1) % len]`.
    pub fn connect_ring(&mut self, pes: &[usize]) -> Result<(), NetError> {
        let ids = ring_circuits(&mut self.esc, pes)?;
        let p = pes.len();
        for (k, &src) in pes.iter().enumerate() {
            self.net.dest[src] = Some(pes[(k + p - 1) % p]);
            self.net.detour[src] = self.detour_cycles_for(ids[k]);
        }
        Ok(())
    }

    /// Start a PE directly (tests / serial runs without MC orchestration).
    /// A dead PE silently refuses to start — exactly like real hardware that
    /// never answers.
    pub fn start_pe(&mut self, pe: usize, at: u64) {
        assert!(!self.pes[pe].program.is_empty(), "PE {pe} has no program");
        if self.is_dead(pe) {
            return;
        }
        if self.pes[pe].state == PeState::Idle {
            if let Some(a) = self.acct.as_mut() {
                a.pe[pe].started_at = at;
            }
        }
        self.pes[pe].state = PeState::Ready;
        self.pes[pe].ready_at = at;
    }

    // ------------------------------------------------------------------
    // Scheduler
    // ------------------------------------------------------------------

    fn next_runnable(&mut self) -> Option<(Component, u64)> {
        let mut best: Option<(Component, u64)> = None;
        let consider = |c: Component, t: u64, best: &mut Option<(Component, u64)>| {
            if best.as_ref().is_none_or(|(_, bt)| t < *bt) {
                *best = Some((c, t));
            }
        };
        for i in 0..self.pes.len() {
            if self.pes[i].state == PeState::Ready {
                consider(Component::Pe(i), self.pes[i].ready_at, &mut best);
            }
        }
        for i in 0..self.mcs.len() {
            if self.mcs[i].state == McState::Ready {
                consider(Component::Mc(i), self.mcs[i].ready_at, &mut best);
            }
        }
        for i in 0..self.fus.len() {
            if let Some(t) = self.fus[i].next_move_completion(self.cfg.fuc_cycles_per_word) {
                consider(Component::Fuc(i), t, &mut best);
            }
        }
        best
    }

    /// Run until everything halts (or idles). Returns the collected result.
    pub fn run(&mut self) -> Result<RunResult, RunError> {
        let mut steps: u32 = 0;
        loop {
            steps = steps.wrapping_add(1);
            if steps & 0x3FF == 0 {
                if let Some(flag) = &self.interrupt {
                    if flag.load(Ordering::Relaxed) {
                        return Err(RunError::Interrupted);
                    }
                }
            }
            match self.next_runnable() {
                Some((_, t)) if t > self.cfg.max_cycles => {
                    return Err(RunError::CycleLimit(self.cfg.max_cycles));
                }
                Some((Component::Pe(i), _)) => self.step_pe(i),
                Some((Component::Mc(i), _)) => self.step_mc(i),
                Some((Component::Fuc(i), t)) => self.step_fuc(i, t),
                None => break,
            }
        }
        // Completion check: anything still waiting is a deadlock.
        let mut stuck = Vec::new();
        for (i, pe) in self.pes.iter().enumerate() {
            match pe.state {
                PeState::Idle | PeState::Halted | PeState::Ready => {}
                s => stuck.push(format!("PE{i} {s:?} pc={}", pe.cpu.pc)),
            }
        }
        for (i, mc) in self.mcs.iter().enumerate() {
            if let McState::AwaitFuc { .. } = mc.state {
                stuck.push(format!("MC{i} AwaitFuc pc={}", mc.cpu.pc));
            }
        }
        if !stuck.is_empty() {
            return Err(RunError::Deadlock(stuck.join(", ")));
        }
        Ok(self.result())
    }

    fn result(&self) -> RunResult {
        let pe_makespan = self
            .pes
            .iter()
            .map(|p| p.trace.finished_at)
            .max()
            .unwrap_or(0);
        let mc_makespan = self
            .mcs
            .iter()
            .map(|m| m.trace.finished_at)
            .max()
            .unwrap_or(0);
        RunResult {
            makespan: pe_makespan.max(mc_makespan),
            pe_makespan,
            pe: self.pes.iter().map(|p| p.trace.clone()).collect(),
            mc: self.mcs.iter().map(|m| m.trace.clone()).collect(),
            fu: self.fus.iter().map(|f| f.stats).collect(),
            accounts: self.acct.clone(),
        }
    }

    // ------------------------------------------------------------------
    // PE stepping
    // ------------------------------------------------------------------

    /// Block-compiled fast path for a PE: execute straight-line MIMD work
    /// without returning to the event scheduler between instructions.
    ///
    /// Sound because a Ready MIMD-mode PE touching only its own memory cannot
    /// interact with any other component: nothing external mutates a Ready
    /// PE, and instructions without machine effects have none outward — so
    /// running the PE arbitrarily far ahead of global time commutes with any
    /// scheduler interleaving. The loop leaves (and the per-instruction path
    /// takes over) at every *stop* instruction (mode switch, barrier, halt),
    /// at any memory-mapped access ([`Block::Mmio`], raised before any state
    /// changes), past the cycle budget, and after [`FAST_BATCH`] instructions
    /// so interrupts stay responsive. Charges per instruction are computed
    /// exactly as in [`Machine::step_pe`] — including per-access
    /// refresh-sensitive DRAM waits — so traces and cycle accounts are
    /// byte-identical.
    ///
    /// Returns `true` if at least one instruction was executed.
    fn try_fast_pe(&mut self, i: usize) -> bool {
        if self.pes[i].mode != PeMode::Mimd
            || self.pes[i].pending.is_some()
            || self.pe_faults[i].is_some()
        {
            return false;
        }
        let Some(compiled) = self.pes[i].compiled.clone() else {
            return false;
        };
        let max_cycles = self.cfg.max_cycles;
        let pe = &mut self.pes[i];
        let mut acc = self.acct.as_mut().map(|a| &mut a.pe[i]);
        let mut now = pe.ready_at;
        // Incremental refresh phase: same delays as `pe_dram.burst_delay(now,
        // …)` without the per-access modulo (property-tested in `pasm-mem`).
        let mut clock = BurstClock::new(self.cfg.pe_dram, now);
        let mut executed = false;
        // Trace counters and cycle buckets are sums, so they accumulate in
        // locals across the batch and flush once at the end — the final
        // state is identical to charging per instruction, without the
        // per-instruction read-modify-writes.
        let mut batch = BatchCharges::default();
        for _ in 0..FAST_BATCH {
            if now > max_cycles {
                break;
            }
            let pc = pe.cpu.pc;
            let Some(m) = compiled.meta.get(pc) else {
                panic!("PE {i}: pc {pc} fell off the program");
            };
            if m.stop {
                break;
            }
            let instr = m.instr;
            let r = match exec_timed(
                &mut pe.cpu,
                &mut MainOnlyBus(&mut pe.mem),
                &instr,
                Some(&m.split),
            ) {
                StepOutcome::Done(r) => r,
                // MMIO touched: nothing changed — the per-instruction path
                // re-executes this instruction against the full PE bus.
                StepOutcome::Blocked(_) => break,
            };
            let fetch_wait = clock.burst_delay(0, r.fetch_words);
            let data_wait = clock.burst_delay(fetch_wait, r.data_accesses);
            let duration = r.cycles as u64 + fetch_wait + data_wait;
            clock.advance(duration);
            now += duration;
            executed = true;
            batch.busy += duration;
            batch.fetch_wait += fetch_wait;
            batch.data_wait += data_wait;
            if r.mulu_cycles > 0 {
                batch.mul_count += 1;
                batch.mul_cycles += r.mulu_cycles as u64;
            }
            if let Some(a) = acc.as_deref_mut() {
                // Same value as `variance_cycles(&instr, r.mulu_cycles)`:
                // `mulu_cycles` is nonzero only for the four opcodes whose
                // floor is folded into `variance_min` (pinned in `block.rs`).
                let var = r.mulu_cycles.saturating_sub(m.variance_min) as u64;
                batch.compute += r.cycles as u64 - var;
                batch.variance += var;
                a.record_instr(&instr, duration);
            }
            match r.effect {
                // Only `Mark` escapes the count: every other fast-path
                // instruction is effect-free by the stop classification.
                Effect::None => batch.instrs += 1,
                Effect::Mark { begin, phase } => {
                    pe.trace.mark(begin, phase, now);
                    if let Some(a) = acc.as_deref_mut() {
                        a.mark(begin, phase, now);
                    }
                }
                other => unreachable!("fast path executed effectful {other:?}"),
            }
        }
        pe.ready_at = now;
        batch.flush(&mut pe.trace, acc);
        executed
    }

    fn step_pe(&mut self, i: usize) {
        if self.fast_path && self.try_fast_pe(i) {
            return;
        }
        let now = self.pes[i].ready_at;

        let (instr, simd_delivered) = match self.pes[i].pending {
            Some(QueueEntry {
                kind: EntryKind::Instr(ins),
                ..
            }) => (ins, true),
            _ => {
                let pc = self.pes[i].cpu.pc;
                let prog = &self.pes[i].program;
                assert!(
                    pc < prog.instrs.len(),
                    "PE {i}: pc {pc} fell off the program"
                );
                (prog.instrs[pc], false)
            }
        };

        // Execute against the PE bus.
        let outcome;
        let extra_cycles;
        let detour_cycles;
        let wrote_net_to;
        let consumed_rx;
        {
            let detour_per_word = self.net.detour[i];
            let stuck_tx = matches!(self.pe_faults[i], Some(PeFault::StuckTx));
            let pe = &mut self.pes[i];
            let mut bus = PeBus {
                mem: &mut pe.mem,
                net: &mut self.net,
                pe: i,
                now,
                net_word_cycles: self.cfg.net_word_cycles,
                detour_per_word,
                stuck_tx,
                extra_cycles: 0,
                detour_cycles: 0,
                wrote_net_to: None,
                consumed_rx: false,
            };
            outcome = exec(&mut pe.cpu, &mut bus, &instr);
            extra_cycles = bus.extra_cycles;
            detour_cycles = bus.detour_cycles;
            wrote_net_to = bus.wrote_net_to;
            consumed_rx = bus.consumed_rx;
        }

        let r = match outcome {
            StepOutcome::Blocked(Block::NetTxFull) => {
                self.pes[i].state = PeState::AwaitNetTx { since: now };
                return;
            }
            StepOutcome::Blocked(Block::NetRxEmpty) => {
                self.pes[i].state = PeState::AwaitNetRx { since: now };
                return;
            }
            StepOutcome::Blocked(Block::Mmio) => {
                unreachable!("PE {i}: full bus raised the fast-path-only Mmio block")
            }
            StepOutcome::Done(r) => r,
        };

        // Charge memory waits: instruction words come from the queue (SRAM) in
        // SIMD mode, from PE DRAM in MIMD mode; operand traffic is always DRAM.
        let fetch_timing = if simd_delivered {
            self.cfg.fu_sram
        } else {
            self.cfg.pe_dram
        };
        let fetch_wait = fetch_timing.burst_delay(now, r.fetch_words);
        let data_wait = self
            .cfg
            .pe_dram
            .burst_delay(now + fetch_wait, r.data_accesses);
        // Slow-PE fault model: every operand access pays extra wait states.
        let slow_wait = match self.pe_faults[i] {
            Some(PeFault::Slow { extra_wait }) => extra_wait * r.data_accesses as u64,
            _ => 0,
        };
        let fault_cycles = detour_cycles + slow_wait;
        let duration = r.cycles as u64 + fetch_wait + data_wait + extra_cycles + fault_cycles;
        let new_now = now + duration;

        {
            let t = &mut self.pes[i].trace;
            if !matches!(instr, Instr::Mark { .. }) {
                t.instrs += 1;
            }
            t.busy_cycles += duration;
            t.fetch_wait_cycles += fetch_wait;
            t.data_wait_cycles += data_wait;
            if r.mulu_cycles > 0 {
                t.mul_count += 1;
                t.mul_cycles += r.mulu_cycles as u64;
            }
            if wrote_net_to.is_some() {
                t.net_bytes_sent += 1;
            }
        }
        if let Some(a) = self.acct.as_mut() {
            let acc = &mut a.pe[i];
            let var = variance_cycles(&instr, r.mulu_cycles) as u64;
            acc.charge(Bucket::Compute, r.cycles as u64 - var);
            acc.charge(Bucket::MultiplyVariance, var);
            acc.charge(Bucket::Fetch, fetch_wait);
            acc.charge(Bucket::MemoryWait, data_wait);
            acc.charge(Bucket::Network, extra_cycles);
            acc.charge(Bucket::FaultDetour, fault_cycles);
            acc.record_instr(&instr, duration);
        }

        // Network wakeups.
        if let Some(dest) = wrote_net_to {
            if let PeState::AwaitNetRx { since } = self.pes[dest].state {
                let valid_at = self.net.rx[dest].map(|b| b.valid_at).unwrap_or(new_now);
                let wake = valid_at.max(since);
                self.pes[dest].trace.net_rx_stall_cycles += wake - since;
                if let Some(a) = self.acct.as_mut() {
                    a.pe[dest].charge(Bucket::Network, wake - since);
                }
                self.pes[dest].state = PeState::Ready;
                self.pes[dest].ready_at = wake;
            }
        }
        if consumed_rx {
            // Senders blocked on our receive register may proceed.
            for s in 0..self.pes.len() {
                if self.net.dest[s] == Some(i) {
                    if let PeState::AwaitNetTx { since } = self.pes[s].state {
                        let wake = new_now.max(since);
                        self.pes[s].trace.net_tx_stall_cycles += wake - since;
                        if let Some(a) = self.acct.as_mut() {
                            a.pe[s].charge(Bucket::Network, wake - since);
                        }
                        self.pes[s].state = PeState::Ready;
                        self.pes[s].ready_at = wake;
                    }
                }
            }
        }

        self.pes[i].ready_at = new_now;
        if simd_delivered {
            self.pes[i].pending = None;
        }

        match r.effect {
            Effect::None | Effect::Mark { .. } => {
                if let Effect::Mark { begin, phase } = r.effect {
                    self.pes[i].trace.mark(begin, phase, new_now);
                    if let Some(a) = self.acct.as_mut() {
                        a.pe[i].mark(begin, phase, new_now);
                    }
                }
                if self.pes[i].mode == PeMode::Simd {
                    self.issue_simd_request(i, new_now);
                }
            }
            Effect::Halt => {
                self.pes[i].state = PeState::Halted;
                self.pes[i].trace.finished_at = new_now;
            }
            Effect::EnterSimd => {
                self.pes[i].mode = PeMode::Simd;
                self.issue_simd_request(i, new_now);
            }
            Effect::ExitSimd { target } => {
                assert!(simd_delivered, "PE {i}: JMPMIMD outside the SIMD stream");
                self.pes[i].mode = PeMode::Mimd;
                self.pes[i].cpu.pc = target;
            }
            Effect::BarrierRequest => {
                assert_eq!(
                    self.pes[i].mode,
                    PeMode::Mimd,
                    "BARRIER is a MIMD-mode read"
                );
                self.pes[i].state = PeState::AwaitSimd { since: new_now };
                let mc = self.mc_of_pe(i);
                self.check_release(mc);
            }
            Effect::Mc(_) => panic!("PE {i} executed an MC-only operation: {instr}"),
        }
    }

    fn issue_simd_request(&mut self, i: usize, at: u64) {
        self.pes[i].state = PeState::AwaitSimd { since: at };
        let mc = self.mc_of_pe(i);
        self.check_release(mc);
    }

    // ------------------------------------------------------------------
    // Fetch Unit release
    // ------------------------------------------------------------------

    fn check_release(&mut self, mc: usize) {
        match self.cfg.release_mode {
            ReleaseMode::Lockstep => self.check_release_lockstep(mc),
            ReleaseMode::Decoupled => self.check_release_decoupled(mc),
        }
    }

    /// Real hardware rule: the head entry is released when every PE enabled by
    /// its mask has an outstanding request; release time = max(entry ready,
    /// slowest request) + release overhead.
    fn check_release_lockstep(&mut self, mc: usize) {
        loop {
            let group = self.group_pes(mc);
            let Some(&head) = self.fus[mc].queue.front() else {
                return;
            };
            // Dead PEs never request, so they are masked out of the release
            // decision — a SIMD broadcast to the survivors must still release.
            let enabled: Vec<usize> = group
                .iter()
                .copied()
                .filter(|&pe| head.mask & (1 << self.group_bit(pe)) != 0 && !self.is_dead(pe))
                .collect();
            if enabled.is_empty() {
                // Nobody is enabled: the entry drains with no effect.
                self.fus[mc].pop_head(head.ready_at);
                continue;
            }
            let mut max_req = 0u64;
            let mut all_waiting = true;
            for &pe in &enabled {
                match self.pes[pe].state {
                    PeState::AwaitSimd { since } => max_req = max_req.max(since),
                    _ => {
                        all_waiting = false;
                        break;
                    }
                }
            }
            if !all_waiting {
                return;
            }
            let release = head.ready_at.max(max_req) + self.cfg.simd_release_cycles;
            {
                let stats = &mut self.fus[mc].stats;
                if head.ready_at > max_req {
                    stats.empty_stall_cycles += head.ready_at - max_req;
                    stats.empty_stalls += 1;
                } else {
                    stats.barrier_stalls += 1;
                }
            }
            self.fus[mc].pop_head(release);
            for &pe in &enabled {
                let PeState::AwaitSimd { since } = self.pes[pe].state else {
                    unreachable!()
                };
                self.pes[pe].trace.simd_wait_cycles += release - since;
                if let Some(a) = self.acct.as_mut() {
                    a.pe[pe].charge(Bucket::BarrierWait, release - since);
                }
                self.pes[pe].state = PeState::Ready;
                self.pes[pe].ready_at = release;
                self.pes[pe].pending = match (self.pes[pe].mode, head.kind) {
                    (PeMode::Simd, EntryKind::Instr(_)) => Some(head),
                    (PeMode::Simd, EntryKind::Data) => {
                        panic!("PE {pe}: SIMD instruction fetch got a barrier data word")
                    }
                    // A MIMD barrier read consumes the word, whatever it is.
                    (PeMode::Mimd, _) => None,
                };
            }
            // The enabled PEs are no longer waiting; the next head (if any)
            // cannot release until they request again — except entries whose
            // mask excludes them, handled by the loop.
        }
    }

    /// Ablation rule: each PE receives entries at its own pace (as if it had a
    /// private queue). Entries retire once every enabled PE consumed them.
    fn check_release_decoupled(&mut self, mc: usize) {
        let group = self.group_pes(mc);
        // Serve every waiting PE whose cursor points at an available entry.
        for &pe in &group {
            let PeState::AwaitSimd { since } = self.pes[pe].state else {
                continue;
            };
            let bit = 1u16 << self.group_bit(pe);
            loop {
                let cursor = self.pes[pe].cursor;
                let Some(entry) = self.fus[mc].queue.get(cursor).copied() else {
                    break;
                };
                if entry.mask & bit == 0 {
                    self.pes[pe].cursor += 1;
                    continue;
                }
                let release = entry.ready_at.max(since) + self.cfg.simd_release_cycles;
                if entry.ready_at > since {
                    self.fus[mc].stats.empty_stall_cycles += entry.ready_at - since;
                    self.fus[mc].stats.empty_stalls += 1;
                }
                self.fus[mc].queue[cursor].consumed |= bit;
                self.pes[pe].cursor += 1;
                self.pes[pe].trace.simd_wait_cycles += release - since;
                if let Some(a) = self.acct.as_mut() {
                    a.pe[pe].charge(Bucket::BarrierWait, release - since);
                }
                self.pes[pe].state = PeState::Ready;
                self.pes[pe].ready_at = release;
                self.pes[pe].pending = match (self.pes[pe].mode, entry.kind) {
                    (PeMode::Simd, EntryKind::Instr(_)) => Some(entry),
                    (PeMode::Mimd, _) => None,
                    (PeMode::Simd, EntryKind::Data) => {
                        panic!("PE {pe}: SIMD instruction fetch got a barrier data word")
                    }
                };
                break;
            }
        }
        // Retire fully consumed heads.
        loop {
            // Dead PEs can never consume their bit; exclude them so heads
            // still retire (mirrors the lockstep rule's dead masking).
            let group_mask: u16 = group
                .iter()
                .filter(|&&pe| !self.is_dead(pe))
                .map(|&pe| 1u16 << self.group_bit(pe))
                .fold(0, |a, b| a | b);
            let Some(&head) = self.fus[mc].queue.front() else {
                break;
            };
            let need = head.mask & group_mask;
            if need != 0 && head.consumed & need != need {
                break;
            }
            let t = self.fus[mc].fuc_free_at;
            self.fus[mc].pop_head(t);
            for &pe in &group {
                self.pes[pe].cursor = self.pes[pe].cursor.saturating_sub(1);
            }
        }
    }

    // ------------------------------------------------------------------
    // MC stepping
    // ------------------------------------------------------------------

    /// Block-compiled fast path for an MC: the control-flow arithmetic between
    /// Fetch-Unit commands runs without scheduler round-trips. Every
    /// Fetch-Unit command (and `HALT`) is a stop instruction, so interaction
    /// points — including the enqueue stall check — always go through
    /// [`Machine::step_mc`]. MCs execute against plain memory (no MMIO), so
    /// the only exits are stops, the cycle budget, and the batch cap.
    fn try_fast_mc(&mut self, i: usize) -> bool {
        let Some(compiled) = self.mcs[i].compiled.clone() else {
            return false;
        };
        let max_cycles = self.cfg.max_cycles;
        let mc = &mut self.mcs[i];
        let mut acc = self.acct.as_mut().map(|a| &mut a.mc[i]);
        let mut now = mc.ready_at;
        let mut clock = BurstClock::new(self.cfg.mc_dram, now);
        let mut executed = false;
        let mut batch = BatchCharges::default();
        for _ in 0..FAST_BATCH {
            if now > max_cycles {
                break;
            }
            let pc = mc.cpu.pc;
            let Some(m) = compiled.meta.get(pc) else {
                panic!("MC {i}: pc {pc} fell off the program");
            };
            if m.stop {
                break;
            }
            let instr = m.instr;
            let r = match exec_timed(
                &mut mc.cpu,
                &mut MemBus(&mut mc.mem),
                &instr,
                Some(&m.split),
            ) {
                StepOutcome::Done(r) => r,
                StepOutcome::Blocked(b) => panic!("MC {i} blocked on {b:?} — MCs have no network"),
            };
            let fetch_wait = clock.burst_delay(0, r.fetch_words);
            let data_wait = clock.burst_delay(fetch_wait, r.data_accesses);
            let duration = r.cycles as u64 + fetch_wait + data_wait;
            clock.advance(duration);
            now += duration;
            executed = true;
            batch.busy += duration;
            batch.fetch_wait += fetch_wait;
            batch.data_wait += data_wait;
            if let Some(a) = acc.as_deref_mut() {
                let var = r.mulu_cycles.saturating_sub(m.variance_min) as u64;
                batch.compute += r.cycles as u64 - var;
                batch.variance += var;
                a.record_instr(&instr, duration);
            }
            match r.effect {
                Effect::None => batch.instrs += 1,
                Effect::Mark { begin, phase } => {
                    if let Some(a) = acc.as_deref_mut() {
                        a.mark(begin, phase, now);
                    }
                }
                other => unreachable!("fast path executed effectful {other:?}"),
            }
        }
        mc.ready_at = now;
        batch.flush_mc(&mut mc.trace, acc);
        executed
    }

    fn step_mc(&mut self, i: usize) {
        if self.fast_path && self.try_fast_mc(i) {
            return;
        }
        let now = self.mcs[i].ready_at;
        let pc = self.mcs[i].cpu.pc;
        assert!(
            pc < self.mcs[i].program.instrs.len(),
            "MC {i}: pc {pc} fell off the program"
        );
        let instr = self.mcs[i].program.instrs[pc];

        // An enqueue command stalls until the controller finished the previous
        // command (single command register).
        if matches!(instr, Instr::Enqueue { .. } | Instr::EnqueueWords { .. })
            && !self.fus[i].command_done()
        {
            self.mcs[i].state = McState::AwaitFuc { since: now };
            return;
        }

        let outcome = {
            let mc = &mut self.mcs[i];
            exec(&mut mc.cpu, &mut MemBus(&mut mc.mem), &instr)
        };
        let r = match outcome {
            StepOutcome::Done(r) => r,
            StepOutcome::Blocked(b) => panic!("MC {i} blocked on {b:?} — MCs have no network"),
        };

        let fetch_wait = self.cfg.mc_dram.burst_delay(now, r.fetch_words);
        let data_wait = self
            .cfg
            .mc_dram
            .burst_delay(now + fetch_wait, r.data_accesses);
        let new_now = now + r.cycles as u64 + fetch_wait + data_wait;
        self.mcs[i].ready_at = new_now;
        if !matches!(instr, Instr::Mark { .. }) {
            self.mcs[i].trace.instrs += 1;
        }
        self.mcs[i].trace.busy_cycles += new_now - now;
        if let Some(a) = self.acct.as_mut() {
            let acc = &mut a.mc[i];
            let var = variance_cycles(&instr, r.mulu_cycles) as u64;
            acc.charge(Bucket::Compute, r.cycles as u64 - var);
            acc.charge(Bucket::MultiplyVariance, var);
            acc.charge(Bucket::Fetch, fetch_wait);
            acc.charge(Bucket::MemoryWait, data_wait);
            acc.record_instr(&instr, new_now - now);
        }

        match r.effect {
            Effect::None | Effect::Mark { .. } => {
                if let Effect::Mark { begin, phase } = r.effect {
                    if let Some(a) = self.acct.as_mut() {
                        a.mc[i].mark(begin, phase, new_now);
                    }
                }
            }
            Effect::Halt => {
                self.mcs[i].state = McState::Halted;
                self.mcs[i].trace.finished_at = new_now;
            }
            Effect::Mc(op) => match op {
                McEffect::SetMask(m) => self.fus[i].mask = m,
                McEffect::Enqueue(b) => {
                    let block = self.mcs[i].program.blocks[b as usize].clone();
                    self.fus[i].command_block(&block, new_now + self.cfg.fuc_command_cycles);
                    self.mcs[i].trace.blocks_enqueued += 1;
                    self.check_release(i);
                }
                McEffect::EnqueueWords(c) => {
                    self.fus[i].command_data_words(c, new_now + self.cfg.fuc_command_cycles);
                }
                McEffect::StartPes => {
                    for pe in self.group_pes(i) {
                        if self.is_dead(pe) {
                            continue;
                        }
                        if self.pes[pe].state == PeState::Idle && !self.pes[pe].program.is_empty() {
                            self.pes[pe].state = PeState::Ready;
                            self.pes[pe].ready_at = new_now;
                            if let Some(a) = self.acct.as_mut() {
                                a.pe[pe].started_at = new_now;
                            }
                        }
                    }
                }
            },
            other => panic!("MC {i} produced PE effect {other:?}"),
        }
    }

    // ------------------------------------------------------------------
    // Fetch Unit controller stepping
    // ------------------------------------------------------------------

    fn step_fuc(&mut self, i: usize, completion: u64) {
        self.fus[i].do_move(completion);
        self.check_release(i);
        if self.fus[i].command_done() {
            if let McState::AwaitFuc { since } = self.mcs[i].state {
                let wake = self.fus[i].fuc_free_at.max(since);
                self.mcs[i].trace.fuc_wait_cycles += wake - since;
                if let Some(a) = self.acct.as_mut() {
                    a.mc[i].charge(Bucket::BarrierWait, wake - since);
                }
                self.mcs[i].state = McState::Ready;
                self.mcs[i].ready_at = wake;
            }
        }
    }
}

/// Instructions the fast path executes per scheduler turn before yielding, so
/// cooperative interrupt checks in [`Machine::run`] stay responsive. Purely a
/// latency bound: where the loop breaks never changes simulated state.
const FAST_BATCH: u32 = 4096;

/// Additive trace/bucket charges of one fast batch, accumulated in locals and
/// flushed once: the result is identical to charging per instruction, the
/// cost is one set of read-modify-writes per batch instead of per step.
#[derive(Default)]
struct BatchCharges {
    instrs: u64,
    busy: u64,
    fetch_wait: u64,
    data_wait: u64,
    mul_count: u64,
    mul_cycles: u64,
    compute: u64,
    variance: u64,
}

impl BatchCharges {
    fn flush(self, t: &mut PeTrace, acc: Option<&mut account::CycleAccount>) {
        t.instrs += self.instrs;
        t.busy_cycles += self.busy;
        t.fetch_wait_cycles += self.fetch_wait;
        t.data_wait_cycles += self.data_wait;
        t.mul_count += self.mul_count;
        t.mul_cycles += self.mul_cycles;
        self.flush_account(acc);
    }

    fn flush_mc(self, t: &mut McTrace, acc: Option<&mut account::CycleAccount>) {
        t.instrs += self.instrs;
        t.busy_cycles += self.busy;
        self.flush_account(acc);
    }

    fn flush_account(&self, acc: Option<&mut account::CycleAccount>) {
        if let Some(a) = acc {
            a.charge(Bucket::Compute, self.compute);
            a.charge(Bucket::MultiplyVariance, self.variance);
            a.charge(Bucket::Fetch, self.fetch_wait);
            a.charge(Bucket::MemoryWait, self.data_wait);
        }
    }
}

/// Bus of the fast path: main memory only. Any memory-mapped access (network
/// registers, SIMD space, timer) raises [`Block::Mmio`] *before* touching
/// device state, so the instruction can be re-issued on the full [`PeBus`] by
/// the per-instruction path. Reads of main memory are side-effect free and
/// the interpreter never writes main memory before a later bus access in the
/// same instruction, so an escape leaves the machine exactly as it was.
struct MainOnlyBus<'m>(&'m mut Memory);

impl Bus for MainOnlyBus<'_> {
    fn read(&mut self, addr: u32, size: Size) -> Result<u32, Block> {
        match MemMap.region(addr) {
            Region::Main => Ok(self.0.read(addr, size)),
            _ => Err(Block::Mmio),
        }
    }
    fn write(&mut self, addr: u32, value: u32, size: Size) -> Result<(), Block> {
        match MemMap.region(addr) {
            Region::Main => {
                self.0.write(addr, value, size);
                Ok(())
            }
            _ => Err(Block::Mmio),
        }
    }
}

// ----------------------------------------------------------------------
// PE bus
// ----------------------------------------------------------------------

/// Bus view a PE's instruction executes against: its own memory plus the
/// memory-mapped network registers and timer.
struct PeBus<'a> {
    mem: &'a mut Memory,
    net: &'a mut NetState,
    pe: usize,
    now: u64,
    net_word_cycles: u64,
    /// Per-word degraded-routing surcharge of this PE's circuit (see
    /// `NetState::detour`); paid by the sender on each transmit.
    detour_per_word: u64,
    /// Stuck-tx fault model: the transmit port never accepts a word.
    stuck_tx: bool,
    /// Extra cycles discovered during execution (waiting out a byte in flight).
    extra_cycles: u64,
    /// Cycles attributable to injected faults (degraded-routing detours).
    detour_cycles: u64,
    /// Destination PE of a completed transmit, if any.
    wrote_net_to: Option<usize>,
    /// The receive register was consumed.
    consumed_rx: bool,
}

impl Bus for PeBus<'_> {
    fn read(&mut self, addr: u32, size: Size) -> Result<u32, Block> {
        match MemMap.region(addr) {
            Region::Main => Ok(self.mem.read(addr, size)),
            Region::SimdSpace => {
                panic!("PE {}: raw read of SIMD space — use BARRIER", self.pe)
            }
            Region::Net(NetReg::Dtr) => Ok(0),
            Region::Net(NetReg::Drr) => match self.net.rx[self.pe] {
                None => Err(Block::NetRxEmpty),
                Some(b) => {
                    if b.valid_at > self.now {
                        self.extra_cycles += b.valid_at - self.now;
                    }
                    self.net.rx[self.pe] = None;
                    self.consumed_rx = true;
                    Ok(b.value as u32)
                }
            },
            Region::Net(NetReg::Status) => {
                let tx_ready = match self.net.dest[self.pe] {
                    Some(d) => !self.stuck_tx && self.net.rx[d].is_none(),
                    None => false,
                };
                let rx_valid = self.net.rx[self.pe].is_some_and(|b| b.valid_at <= self.now);
                Ok((tx_ready as u32) | ((rx_valid as u32) << 1))
            }
            Region::Timer => Ok(size.truncate(self.now as u32)),
        }
    }

    fn write(&mut self, addr: u32, value: u32, size: Size) -> Result<(), Block> {
        match MemMap.region(addr) {
            Region::Main => {
                self.mem.write(addr, value, size);
                Ok(())
            }
            Region::Net(NetReg::Dtr) => {
                if self.stuck_tx {
                    return Err(Block::NetTxFull);
                }
                let dest = self.net.dest[self.pe].unwrap_or_else(|| {
                    panic!("PE {}: network send with no circuit established", self.pe)
                });
                if self.net.rx[dest].is_some() {
                    return Err(Block::NetTxFull);
                }
                // A degraded circuit (extra stage in the data path) holds the
                // sender for the additional stage traversal and delivers the
                // word correspondingly later.
                self.detour_cycles += self.detour_per_word;
                self.net.rx[dest] = Some(RxByte {
                    value: value as u8,
                    valid_at: self.now + self.net_word_cycles + self.detour_per_word,
                });
                self.wrote_net_to = Some(dest);
                Ok(())
            }
            Region::Net(_) => panic!("PE {}: write to read-only network register", self.pe),
            Region::SimdSpace | Region::Timer => {
                panic!("PE {}: write to reserved region {addr:#X}", self.pe)
            }
        }
    }
}

/// Convenience: absolute EA of the network transmit register.
pub fn dtr_ea() -> pasm_isa::Ea {
    pasm_isa::Ea::AbsL(map::NET_DTR)
}

/// Convenience: absolute EA of the network receive register.
pub fn drr_ea() -> pasm_isa::Ea {
    pasm_isa::Ea::AbsL(map::NET_DRR)
}

/// Convenience: absolute EA of the network status register.
pub fn status_ea() -> pasm_isa::Ea {
    pasm_isa::Ea::AbsL(map::NET_STATUS)
}

#[cfg(test)]
mod tests;
