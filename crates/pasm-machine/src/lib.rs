//! # pasm-machine — discrete-event simulator of the PASM prototype
//!
//! This crate ties the instruction set (`pasm-isa`), memory system
//! (`pasm-mem`) and interconnection network (`pasm-net`) into a running
//! machine: N processing elements and Q micro controllers, each an
//! MC68000-style CPU with its own cycle clock, coupled through
//!
//! * the **Fetch Unit** of each MC — mask register, block-moving controller
//!   and finite FIFO queue. SIMD instructions are *released* from the queue
//!   only once every enabled PE has requested them, which makes each
//!   variable-time instruction cost the maximum across PEs (the paper's
//!   central mechanism), and lets an MC overlap its control flow with PE
//!   computation — the source of the reported superlinear SIMD speed-up;
//! * **mode switching** — a PE enters SIMD mode by jumping into the reserved
//!   SIMD instruction space and leaves it when the MC broadcasts a jump back
//!   into PE memory, so switching costs a single jump in each direction;
//! * **barrier synchronization** — a MIMD-mode read from SIMD space completes
//!   only when all enabled PEs have read, implementing the cheap barriers the
//!   hybrid S/MIMD programs use for network transfers;
//! * the **circuit-switched network** — 8-bit transfer registers with
//!   overwrite protection, polled in MIMD mode, used synchronously in
//!   SIMD/S-MIMD mode.
//!
//! The entry point is [`Machine`]; configure with [`MachineConfig`], load
//! [`pasm_isa::Program`]s into PEs and MCs, establish circuits, and call
//! [`Machine::run`] to obtain a [`RunResult`] with per-component traces and
//! — unless disabled via [`Machine::set_accounting`] — per-component
//! [`CycleAccount`]s bucketing every simulated cycle by cause ([`account`]).

pub mod account;
pub mod block;
pub mod config;
pub mod cpu;
pub mod fault;
pub mod fetch_unit;
pub mod machine;
pub mod trace;

pub use account::{Bucket, CycleAccount, MachineAccounts, PhaseSpan, BUCKET_NAMES, N_BUCKETS};
pub use block::{CompiledBlock, CompiledProgram, InstrMeta};
pub use config::{MachineConfig, ReleaseMode};
pub use cpu::{Cpu, Effect, StepOutcome};
pub use fault::{FaultPlan, PeFault, PeFaultSpec};
pub use fetch_unit::FuStats;
pub use machine::{drr_ea, dtr_ea, status_ea, Machine, PeMode, RunError, RunResult};
pub use pasm_net::{single_faults, NetFault};
pub use trace::{McTrace, PeTrace, N_PHASES};
