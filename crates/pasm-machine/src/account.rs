//! Cycle accounting: attributing every simulated cycle to a cause.
//!
//! The paper's contribution is a *measurement* story — MC68000 cycles
//! attributed to instruction fetch, data-dependent multiplies, lockstep
//! barrier waits, and network transfers across SIMD/MIMD/S-MIMD — so the
//! simulator keeps a [`CycleAccount`] per PE and per MC that buckets every
//! cycle of the component's lifetime into one of seven [`Bucket`]s, plus a
//! per-opcode histogram and timestamped phase spans.
//!
//! The invariant that makes the accounting auditable (and that the
//! integration suite asserts for every mode): for a halted component,
//!
//! ```text
//! started_at + Σ buckets == finished_at
//! ```
//!
//! — no cycle is dropped and none is double-counted.
//!
//! Accounting is enabled by default and can be switched off with
//! [`crate::Machine::set_accounting`]; the toggle affects only what is
//! *recorded*, never the simulated timing, so disabling it changes cycle
//! results by exactly zero (tested) and removes the bookkeeping cost from
//! the hot loop (guarded by `benches/accounting.rs`).

use crate::trace::N_PHASES;
use pasm_isa::Instr;

/// Number of cycle buckets.
pub const N_BUCKETS: usize = 7;

/// Where a simulated cycle went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bucket {
    /// Instruction-fetch memory wait states (queue SRAM in SIMD mode, PE DRAM
    /// in MIMD mode — their difference is the superlinearity argument).
    Fetch = 0,
    /// Core execution cycles at their data-independent minimum.
    Compute = 1,
    /// Data-dependent cycles of `MULU`/`MULS`/`DIVU`/`DIVS` beyond that
    /// minimum — the paper's non-deterministic instruction time.
    MultiplyVariance = 2,
    /// Waiting on the Fetch Unit: SIMD lockstep release, S/MIMD barrier
    /// reads, queue-empty stalls, and (for MCs) the controller handshake.
    BarrierWait = 3,
    /// Network cycles: transfer-register stalls and in-flight byte latency.
    Network = 4,
    /// Operand (data) memory wait states, including DRAM refresh.
    MemoryWait = 5,
    /// Cycles caused by injected faults: the per-word extra-stage detour of a
    /// degraded ESC (both cube₀ stages in the data path) and the extra wait
    /// states of a slow-PE fault model. Zero on a healthy machine.
    FaultDetour = 6,
}

/// Stable exposition names of the buckets, indexable by `Bucket as usize`.
pub const BUCKET_NAMES: [&str; N_BUCKETS] = [
    "fetch",
    "compute",
    "multiply_variance",
    "barrier_wait",
    "network",
    "memory_wait",
    "fault_detour",
];

impl Bucket {
    /// All buckets, in index order.
    pub const ALL: [Bucket; N_BUCKETS] = [
        Bucket::Fetch,
        Bucket::Compute,
        Bucket::MultiplyVariance,
        Bucket::BarrierWait,
        Bucket::Network,
        Bucket::MemoryWait,
        Bucket::FaultDetour,
    ];

    /// The bucket's stable snake_case name (used in JSON and `/metrics`).
    pub fn name(self) -> &'static str {
        BUCKET_NAMES[self as usize]
    }
}

/// Number of distinct opcodes tracked by the histogram.
pub const N_OPCODES: usize = 46;

/// Mnemonics in histogram-index order (see [`opcode_index`]).
pub const OPCODE_NAMES: [&str; N_OPCODES] = [
    "MOVE",
    "MOVEA",
    "MOVEQ",
    "LEA",
    "CLR",
    "SWAP",
    "EXT",
    "ADD",
    "ADD-to-mem",
    "ADDA",
    "ADDQ",
    "SUB",
    "SUB-to-mem",
    "SUBA",
    "SUBQ",
    "NEG",
    "MULU",
    "MULS",
    "DIVU",
    "DIVS",
    "AND",
    "OR",
    "OR-to-mem",
    "EOR",
    "NOT",
    "SHIFT",
    "BTST",
    "CMP",
    "CMPA",
    "CMPI",
    "TST",
    "Bcc",
    "DBRA",
    "JMP",
    "JSR",
    "RTS",
    "NOP",
    "JMPSIMD",
    "JMPMIMD",
    "BARRIER",
    "SETMASK",
    "ENQ",
    "ENQW",
    "STARTPES",
    "MARK",
    "HALT",
];

/// Histogram index of an instruction (one slot per opcode family).
pub fn opcode_index(instr: &Instr) -> usize {
    match instr {
        Instr::Move { .. } => 0,
        Instr::Movea { .. } => 1,
        Instr::Moveq { .. } => 2,
        Instr::Lea { .. } => 3,
        Instr::Clr { .. } => 4,
        Instr::Swap { .. } => 5,
        Instr::Ext { .. } => 6,
        Instr::Add { .. } => 7,
        Instr::AddTo { .. } => 8,
        Instr::Adda { .. } => 9,
        Instr::Addq { .. } => 10,
        Instr::Sub { .. } => 11,
        Instr::SubTo { .. } => 12,
        Instr::Suba { .. } => 13,
        Instr::Subq { .. } => 14,
        Instr::Neg { .. } => 15,
        Instr::Mulu { .. } => 16,
        Instr::Muls { .. } => 17,
        Instr::Divu { .. } => 18,
        Instr::Divs { .. } => 19,
        Instr::And { .. } => 20,
        Instr::Or { .. } => 21,
        Instr::OrTo { .. } => 22,
        Instr::Eor { .. } => 23,
        Instr::Not { .. } => 24,
        Instr::Shift { .. } => 25,
        Instr::Btst { .. } => 26,
        Instr::Cmp { .. } => 27,
        Instr::Cmpa { .. } => 28,
        Instr::Cmpi { .. } => 29,
        Instr::Tst { .. } => 30,
        Instr::Bcc { .. } => 31,
        Instr::Dbra { .. } => 32,
        Instr::Jmp { .. } => 33,
        Instr::Jsr { .. } => 34,
        Instr::Rts => 35,
        Instr::Nop => 36,
        Instr::JmpSimd => 37,
        Instr::JmpMimd { .. } => 38,
        Instr::Barrier => 39,
        Instr::SetMask { .. } => 40,
        Instr::Enqueue { .. } => 41,
        Instr::EnqueueWords { .. } => 42,
        Instr::StartPes => 43,
        Instr::Mark { .. } => 44,
        Instr::Halt => 45,
    }
}

/// Data-dependent cycles beyond the instruction's minimum: the
/// [`Bucket::MultiplyVariance`] contribution of one executed instruction.
/// `data_dependent` is the `mulu_cycles` field of the step result.
pub fn variance_cycles(instr: &Instr, data_dependent: u32) -> u32 {
    let min = match instr {
        // MULU/MULS: 38 + 2·(bit measure); the measure can be zero.
        Instr::Mulu { .. } | Instr::Muls { .. } => 38,
        // DIVU: 76 + 4·(quotient zeros); the overflow early-out (10) is
        // data-dependent too but below the minimum, so it saturates to 0.
        Instr::Divu { .. } => 76,
        // DIVS adds a constant 8-cycle sign fix-up to the DIVU core.
        Instr::Divs { .. } => 84,
        _ => return 0,
    };
    data_dependent.saturating_sub(min)
}

/// A closed instrumentation-phase interval on one component's local timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Phase id (see `pasm-prog`'s `PHASE_*` constants).
    pub phase: u8,
    /// Local cycle the begin marker executed.
    pub start: u64,
    /// Local cycle the end marker executed.
    pub end: u64,
}

/// Cycle breakdown of one component (PE or MC).
#[derive(Debug, Clone)]
pub struct CycleAccount {
    /// Local cycle at which the component first became runnable.
    pub started_at: u64,
    /// Timestamped phase intervals, in close order.
    pub spans: Vec<PhaseSpan>,
    buckets: [u64; N_BUCKETS],
    op_count: [u64; N_OPCODES],
    op_cycles: [u64; N_OPCODES],
    phase_open: [Option<u64>; N_PHASES],
}

impl Default for CycleAccount {
    fn default() -> Self {
        CycleAccount {
            started_at: 0,
            spans: Vec::new(),
            buckets: [0; N_BUCKETS],
            op_count: [0; N_OPCODES],
            op_cycles: [0; N_OPCODES],
            phase_open: [None; N_PHASES],
        }
    }
}

impl CycleAccount {
    /// Add `cycles` to a bucket.
    pub fn charge(&mut self, bucket: Bucket, cycles: u64) {
        self.buckets[bucket as usize] += cycles;
    }

    /// One bucket's accumulated cycles.
    pub fn bucket(&self, bucket: Bucket) -> u64 {
        self.buckets[bucket as usize]
    }

    /// All buckets, indexable by `Bucket as usize` / [`BUCKET_NAMES`].
    pub fn buckets(&self) -> &[u64; N_BUCKETS] {
        &self.buckets
    }

    /// Sum over all buckets. For a halted component this equals
    /// `finished_at - started_at` (the audited invariant).
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Record one executed instruction in the opcode histogram. `duration`
    /// is its full cost including memory waits.
    pub fn record_instr(&mut self, instr: &Instr, duration: u64) {
        if matches!(instr, Instr::Mark { .. }) {
            return; // instrumentation, not a machine instruction
        }
        let i = opcode_index(instr);
        self.op_count[i] += 1;
        self.op_cycles[i] += duration;
    }

    /// Handle a phase marker at local time `now`, recording closed intervals.
    pub fn mark(&mut self, begin: bool, phase: u8, now: u64) {
        let p = phase as usize % N_PHASES;
        if begin {
            self.phase_open[p] = Some(now);
        } else if let Some(start) = self.phase_open[p].take() {
            self.spans.push(PhaseSpan {
                phase: p as u8,
                start,
                end: now,
            });
        }
    }

    /// Non-empty opcode-histogram rows as `(mnemonic, count, cycles)`.
    pub fn opcode_histogram(&self) -> Vec<(&'static str, u64, u64)> {
        (0..N_OPCODES)
            .filter(|&i| self.op_count[i] > 0)
            .map(|i| (OPCODE_NAMES[i], self.op_count[i], self.op_cycles[i]))
            .collect()
    }
}

/// The full machine's accounts: one [`CycleAccount`] per PE and per MC.
#[derive(Debug, Clone, Default)]
pub struct MachineAccounts {
    /// Per-PE accounts, indexed by physical PE number.
    pub pe: Vec<CycleAccount>,
    /// Per-MC accounts, indexed by MC number.
    pub mc: Vec<CycleAccount>,
}

impl MachineAccounts {
    /// Fresh zeroed accounts for a machine of the given shape.
    pub fn new(n_pes: usize, n_mcs: usize) -> Self {
        MachineAccounts {
            pe: vec![CycleAccount::default(); n_pes],
            mc: vec![CycleAccount::default(); n_mcs],
        }
    }

    /// Bucket totals summed over all PEs (the per-job breakdown the server
    /// exports; MCs excluded so the numbers speak about PE time).
    pub fn pe_bucket_totals(&self) -> [u64; N_BUCKETS] {
        let mut out = [0u64; N_BUCKETS];
        for a in &self.pe {
            for (o, b) in out.iter_mut().zip(a.buckets.iter()) {
                *o += b;
            }
        }
        out
    }

    /// Per-PE bucket rows, `matrix[pe][bucket]` — the unsummed counterpart
    /// of [`MachineAccounts::pe_bucket_totals`] the span store persists so
    /// per-PE breakdowns survive the process.
    pub fn pe_bucket_matrix(&self) -> Vec<[u64; N_BUCKETS]> {
        self.pe.iter().map(|a| a.buckets).collect()
    }

    /// Per-MC bucket rows, `matrix[mc][bucket]`.
    pub fn mc_bucket_matrix(&self) -> Vec<[u64; N_BUCKETS]> {
        self.mc.iter().map(|a| a.buckets).collect()
    }

    /// Bucket totals over every component, PEs and MCs alike.
    pub fn bucket_totals(&self) -> [u64; N_BUCKETS] {
        let mut out = self.pe_bucket_totals();
        for a in &self.mc {
            for (o, b) in out.iter_mut().zip(a.buckets.iter()) {
                *o += b;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasm_isa::{DataReg, Ea};

    #[test]
    fn charge_and_total() {
        let mut a = CycleAccount::default();
        a.charge(Bucket::Compute, 100);
        a.charge(Bucket::Fetch, 7);
        a.charge(Bucket::Compute, 1);
        assert_eq!(a.bucket(Bucket::Compute), 101);
        assert_eq!(a.total(), 108);
    }

    #[test]
    fn opcode_names_cover_every_instruction() {
        let mul = Instr::Mulu {
            src: Ea::D(DataReg::D1),
            dst: DataReg::D0,
        };
        assert_eq!(OPCODE_NAMES[opcode_index(&mul)], "MULU");
        assert_eq!(OPCODE_NAMES[opcode_index(&Instr::Halt)], "HALT");
        assert_eq!(OPCODE_NAMES.len(), N_OPCODES);
    }

    #[test]
    fn variance_is_cycles_beyond_minimum() {
        let mul = Instr::Mulu {
            src: Ea::D(DataReg::D1),
            dst: DataReg::D0,
        };
        assert_eq!(variance_cycles(&mul, 38), 0);
        assert_eq!(variance_cycles(&mul, 70), 32);
        assert_eq!(variance_cycles(&Instr::Nop, 0), 0);
        let div = Instr::Divu {
            src: Ea::D(DataReg::D1),
            dst: DataReg::D0,
        };
        assert_eq!(variance_cycles(&div, 10), 0, "overflow early-out");
        assert_eq!(variance_cycles(&div, 76 + 4 * 15), 60);
    }

    #[test]
    fn marks_record_closed_spans() {
        let mut a = CycleAccount::default();
        a.mark(true, 1, 100);
        a.mark(true, 2, 120);
        a.mark(false, 2, 150);
        a.mark(false, 1, 200);
        a.mark(false, 3, 500); // end without begin: ignored
        assert_eq!(
            a.spans,
            vec![
                PhaseSpan {
                    phase: 2,
                    start: 120,
                    end: 150
                },
                PhaseSpan {
                    phase: 1,
                    start: 100,
                    end: 200
                },
            ]
        );
    }

    #[test]
    fn histogram_reports_only_executed_opcodes() {
        let mut a = CycleAccount::default();
        a.record_instr(&Instr::Nop, 4);
        a.record_instr(&Instr::Nop, 4);
        a.record_instr(&Instr::Halt, 4);
        a.record_instr(
            &Instr::Mark {
                begin: true,
                phase: 1,
            },
            0,
        );
        let h = a.opcode_histogram();
        assert_eq!(h, vec![("NOP", 2, 8), ("HALT", 1, 4)]);
    }

    #[test]
    fn machine_accounts_aggregate_over_components() {
        let mut m = MachineAccounts::new(2, 1);
        m.pe[0].charge(Bucket::Compute, 10);
        m.pe[1].charge(Bucket::Compute, 5);
        m.pe[1].charge(Bucket::BarrierWait, 3);
        m.mc[0].charge(Bucket::Compute, 100);
        assert_eq!(m.pe_bucket_totals()[Bucket::Compute as usize], 15);
        assert_eq!(m.pe_bucket_totals()[Bucket::BarrierWait as usize], 3);
        assert_eq!(m.bucket_totals()[Bucket::Compute as usize], 115);
        // The unsummed matrices expose the same numbers row by row.
        let pe = m.pe_bucket_matrix();
        assert_eq!(pe.len(), 2);
        assert_eq!(pe[0][Bucket::Compute as usize], 10);
        assert_eq!(pe[1][Bucket::BarrierWait as usize], 3);
        let mc = m.mc_bucket_matrix();
        assert_eq!(mc.len(), 1);
        assert_eq!(mc[0][Bucket::Compute as usize], 100);
    }
}
