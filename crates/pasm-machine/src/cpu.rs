//! The CPU core interpreter shared by PEs and MCs.
//!
//! [`exec`] executes exactly one instruction against a [`Bus`], returning the
//! core cycle cost (from `pasm_isa::timing`) plus fetch/data access counts so
//! the machine can layer memory wait states on top, or a [`Block`] reason when
//! the instruction touches a resource that is not ready (network transmit
//! buffer occupied, no received byte). A blocked instruction leaves *all*
//! architectural state unchanged — the machine re-issues it when the resource
//! frees, which models the hardware holding the bus cycle.

use pasm_isa::timing::{self, CycleSplit, ExecCtx};
use pasm_isa::{Ccr, Ea, Instr, ShiftCount, ShiftKind, Size};

/// Architectural state of one MC68000-style processor.
#[derive(Debug, Clone, Default)]
pub struct Cpu {
    /// Data registers D0–D7.
    pub d: [u32; 8],
    /// Address registers A0–A7.
    pub a: [u32; 8],
    /// Program counter: an *instruction index* into the current program.
    pub pc: usize,
    /// Condition codes.
    pub ccr: Ccr,
}

/// Why an instruction could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Block {
    /// Write to the network transmit register while the previous byte has not
    /// been accepted by the destination (hardware overwrite protection).
    NetTxFull,
    /// Read of the network receive register with no byte in flight.
    NetRxEmpty,
    /// The instruction touched a memory-mapped region the current bus does not
    /// model. Used by the block-compiled fast path to bail out to the full
    /// per-instruction path *before* any device state changes.
    Mmio,
}

/// Side effects the machine must act on after an instruction completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// Nothing beyond the architectural update.
    None,
    /// Processor stops.
    Halt,
    /// PE jumps into the SIMD instruction space (MIMD → SIMD).
    EnterSimd,
    /// PE leaves SIMD mode and resumes its own program at the index.
    ExitSimd { target: usize },
    /// PE issues a barrier read from SIMD space (completes via the Fetch Unit).
    BarrierRequest,
    /// Phase-accounting marker.
    Mark { begin: bool, phase: u8 },
    /// MC Fetch-Unit / orchestration operation.
    Mc(McEffect),
}

/// MC-side operations (decoded for the machine's Fetch Unit model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McEffect {
    SetMask(u16),
    Enqueue(u16),
    EnqueueWords(u16),
    StartPes,
}

/// Result of a completed instruction.
#[derive(Debug, Clone, Copy)]
pub struct StepResult {
    /// Core cycles assuming zero-wait memory.
    pub cycles: u32,
    /// Instruction words fetched (for instruction-memory wait accounting).
    pub fetch_words: u32,
    /// 16-bit data accesses to memory (for data wait accounting).
    pub data_accesses: u32,
    /// Cycles spent inside a multiply, if this was one (statistics).
    pub mulu_cycles: u32,
    /// Machine-visible side effect.
    pub effect: Effect,
}

/// Outcome of [`exec`].
#[derive(Debug, Clone, Copy)]
pub enum StepOutcome {
    Done(StepResult),
    Blocked(Block),
}

/// Memory/MMIO interface the interpreter runs against.
///
/// Reads and writes may block (network registers). Reads of the timer return
/// the current cycle count; ordinary memory never blocks.
pub trait Bus {
    fn read(&mut self, addr: u32, size: Size) -> Result<u32, Block>;
    fn write(&mut self, addr: u32, value: u32, size: Size) -> Result<(), Block>;
}

/// A trivial bus over a plain memory, for MCs and tests.
pub struct MemBus<'m>(pub &'m mut pasm_mem::Memory);

impl Bus for MemBus<'_> {
    fn read(&mut self, addr: u32, size: Size) -> Result<u32, Block> {
        Ok(self.0.read(addr, size))
    }
    fn write(&mut self, addr: u32, value: u32, size: Size) -> Result<(), Block> {
        self.0.write(addr, value, size);
        Ok(())
    }
}

/// Deferred address-register updates ((An)+ / -(An)), committed only when the
/// instruction completes so a blocked instruction can be re-issued verbatim.
#[derive(Default)]
struct Pending {
    updates: [(usize, u32); 4],
    len: usize,
}

impl Pending {
    fn push(&mut self, reg: usize, value: u32) {
        self.updates[self.len] = (reg, value);
        self.len += 1;
    }
    fn commit(&self, cpu: &mut Cpu) {
        for &(r, v) in &self.updates[..self.len] {
            cpu.a[r] = v;
        }
    }
}

/// Resolve the address of a memory-mode EA, staging any auto-inc/dec.
fn ea_addr(cpu: &Cpu, pend: &mut Pending, ea: Ea, size: Size) -> u32 {
    match ea {
        Ea::Ind(an) => cpu.a[an.index()],
        Ea::PostInc(an) => {
            let addr = cpu.a[an.index()];
            pend.push(an.index(), addr.wrapping_add(size.bytes()));
            addr
        }
        Ea::PreDec(an) => {
            let addr = cpu.a[an.index()].wrapping_sub(size.bytes());
            pend.push(an.index(), addr);
            addr
        }
        Ea::Disp(d, an) => cpu.a[an.index()].wrapping_add(d as i32 as u32),
        Ea::AbsW(w) => w as u32,
        Ea::AbsL(l) => l,
        Ea::D(_) | Ea::A(_) | Ea::Imm(_) => unreachable!("not a memory EA"),
    }
}

/// Read an operand (sized, zero-extended into u32).
fn read_ea<B: Bus + ?Sized>(
    cpu: &Cpu,
    bus: &mut B,
    pend: &mut Pending,
    ea: Ea,
    size: Size,
) -> Result<u32, Block> {
    match ea {
        Ea::D(dn) => Ok(size.truncate(cpu.d[dn.index()])),
        Ea::A(an) => Ok(size.truncate(cpu.a[an.index()])),
        Ea::Imm(v) => Ok(size.truncate(v)),
        _ => {
            let addr = ea_addr(cpu, pend, ea, size);
            bus.read(addr, size)
        }
    }
}

/// Write an operand.
fn write_ea<B: Bus + ?Sized>(
    cpu: &mut Cpu,
    bus: &mut B,
    pend: &mut Pending,
    ea: Ea,
    size: Size,
    value: u32,
) -> Result<(), Block> {
    match ea {
        Ea::D(dn) => {
            let i = dn.index();
            cpu.d[i] = size.merge(cpu.d[i], value);
            Ok(())
        }
        Ea::A(an) => {
            // Address-register destinations always load the full register,
            // sign-extending word data (MOVEA/ADDA semantics).
            cpu.a[an.index()] = size.sign_extend(value);
            Ok(())
        }
        Ea::Imm(_) => panic!("write to immediate operand"),
        _ => {
            let addr = ea_addr(cpu, pend, ea, size);
            bus.write(addr, value, size)
        }
    }
}

fn add_flags(ccr: &mut Ccr, size: Size, a: u32, b: u32, r: u32) {
    let (an, bn, rn) = (size.msb(a), size.msb(b), size.msb(r));
    ccr.n = rn;
    ccr.z = size.truncate(r) == 0;
    ccr.v = (an == bn) && (rn != an);
    ccr.c = (an && bn) || (!rn && (an || bn));
    ccr.x = ccr.c;
}

fn sub_flags(ccr: &mut Ccr, size: Size, d: u32, s: u32, r: u32, set_x: bool) {
    let (dn, sn, rn) = (size.msb(d), size.msb(s), size.msb(r));
    ccr.n = rn;
    ccr.z = size.truncate(r) == 0;
    ccr.v = (dn != sn) && (rn != dn);
    ccr.c = (!dn && (sn || rn)) || (sn && rn);
    if set_x {
        ccr.x = ccr.c;
    }
}

/// Execute one instruction. On success the PC has been advanced (sequentially
/// or to a branch target) and all effects applied; on [`StepOutcome::Blocked`]
/// no state has changed.
pub fn exec<B: Bus + ?Sized>(cpu: &mut Cpu, bus: &mut B, instr: &Instr) -> StepOutcome {
    exec_timed(cpu, bus, instr, None)
}

/// [`exec`] with a precomputed static/dynamic cycle decomposition.
///
/// When `split` is given (the block compiler caches one
/// [`CycleSplit`] per instruction), the core cycle charge is computed as
/// `split.static_cycles + dynamic_cycles(split.dynamic, ctx)` instead of
/// re-deriving the full [`timing::base_cycles`] table lookup. The two are
/// equal for every instruction × context — the invariant is pinned by the
/// `pasm-isa` decomposition tests — so the fast path charges byte-identical
/// cycles while paying only for the dynamic term.
pub fn exec_timed<B: Bus + ?Sized>(
    cpu: &mut Cpu,
    bus: &mut B,
    instr: &Instr,
    split: Option<&CycleSplit>,
) -> StepOutcome {
    let mut pend = Pending::default();
    let mut ctx = ExecCtx::default();
    let mut effect = Effect::None;
    let mut next_pc = cpu.pc + 1;
    let mut mulu_cycles = 0u32;

    macro_rules! try_bus {
        ($e:expr) => {
            match $e {
                Ok(v) => v,
                Err(b) => return StepOutcome::Blocked(b),
            }
        };
    }

    match *instr {
        Instr::Move { size, src, dst } => {
            let v = try_bus!(read_ea(cpu, bus, &mut pend, src, size));
            try_bus!(write_ea(cpu, bus, &mut pend, dst, size, v));
            cpu.ccr.set_logic(v, size);
        }
        Instr::Movea { size, src, dst } => {
            let v = try_bus!(read_ea(cpu, bus, &mut pend, src, size));
            cpu.a[dst.index()] = size.sign_extend(v);
        }
        Instr::Moveq { value, dst } => {
            let v = value as i32 as u32;
            cpu.d[dst.index()] = v;
            cpu.ccr.set_logic(v, Size::Long);
        }
        Instr::Lea { src, dst } => {
            let addr = match src {
                Ea::Ind(an) => cpu.a[an.index()],
                Ea::Disp(d, an) => cpu.a[an.index()].wrapping_add(d as i32 as u32),
                Ea::AbsW(w) => w as u32,
                Ea::AbsL(l) => l,
                other => panic!("LEA with illegal addressing mode {other}"),
            };
            cpu.a[dst.index()] = addr;
        }
        Instr::Clr { size, dst } => {
            try_bus!(write_ea(cpu, bus, &mut pend, dst, size, 0));
            cpu.ccr.set_logic(0, size);
        }
        Instr::Swap { dst } => {
            let i = dst.index();
            cpu.d[i] = cpu.d[i].rotate_left(16);
            cpu.ccr.set_logic(cpu.d[i], Size::Long);
        }
        Instr::Ext { size, dst } => {
            let i = dst.index();
            let v = match size {
                Size::Word => Size::Word.merge(cpu.d[i], Size::Byte.sign_extend(cpu.d[i])),
                Size::Long => Size::Word.sign_extend(cpu.d[i]),
                Size::Byte => panic!("EXT.B does not exist"),
            };
            cpu.d[i] = v;
            cpu.ccr.set_logic(v, size);
        }
        Instr::Add { size, src, dst } => {
            let s = try_bus!(read_ea(cpu, bus, &mut pend, src, size));
            let d = size.truncate(cpu.d[dst.index()]);
            let r = size.truncate(s.wrapping_add(d));
            add_flags(&mut cpu.ccr, size, d, s, r);
            let i = dst.index();
            cpu.d[i] = size.merge(cpu.d[i], r);
        }
        Instr::AddTo { size, src, dst } => {
            let s = size.truncate(cpu.d[src.index()]);
            let addr = ea_addr(cpu, &mut pend, dst, size);
            let d = try_bus!(bus.read(addr, size));
            let r = size.truncate(s.wrapping_add(d));
            add_flags(&mut cpu.ccr, size, d, s, r);
            try_bus!(bus.write(addr, r, size));
        }
        Instr::Adda { size, src, dst } => {
            let s = try_bus!(read_ea(cpu, bus, &mut pend, src, size));
            let s = size.sign_extend(s);
            let i = dst.index();
            cpu.a[i] = cpu.a[i].wrapping_add(s);
        }
        Instr::Addq { size, value, dst } => match dst {
            Ea::A(an) => {
                let i = an.index();
                cpu.a[i] = cpu.a[i].wrapping_add(value as u32);
            }
            _ => {
                let d = try_bus!(read_ea(cpu, bus, &mut pend, dst, size));
                let r = size.truncate(d.wrapping_add(value as u32));
                add_flags(&mut cpu.ccr, size, d, value as u32, r);
                try_bus!(write_ea(cpu, bus, &mut pend, dst, size, r));
            }
        },
        Instr::Sub { size, src, dst } => {
            let s = try_bus!(read_ea(cpu, bus, &mut pend, src, size));
            let d = size.truncate(cpu.d[dst.index()]);
            let r = size.truncate(d.wrapping_sub(s));
            sub_flags(&mut cpu.ccr, size, d, s, r, true);
            let i = dst.index();
            cpu.d[i] = size.merge(cpu.d[i], r);
        }
        Instr::SubTo { size, src, dst } => {
            let s = size.truncate(cpu.d[src.index()]);
            let addr = ea_addr(cpu, &mut pend, dst, size);
            let d = try_bus!(bus.read(addr, size));
            let r = size.truncate(d.wrapping_sub(s));
            sub_flags(&mut cpu.ccr, size, d, s, r, true);
            try_bus!(bus.write(addr, r, size));
        }
        Instr::Suba { size, src, dst } => {
            let s = try_bus!(read_ea(cpu, bus, &mut pend, src, size));
            let s = size.sign_extend(s);
            let i = dst.index();
            cpu.a[i] = cpu.a[i].wrapping_sub(s);
        }
        Instr::Subq { size, value, dst } => match dst {
            Ea::A(an) => {
                let i = an.index();
                cpu.a[i] = cpu.a[i].wrapping_sub(value as u32);
            }
            _ => {
                let d = try_bus!(read_ea(cpu, bus, &mut pend, dst, size));
                let r = size.truncate(d.wrapping_sub(value as u32));
                sub_flags(&mut cpu.ccr, size, d, value as u32, r, true);
                try_bus!(write_ea(cpu, bus, &mut pend, dst, size, r));
            }
        },
        Instr::Neg { size, dst } => {
            let d = try_bus!(read_ea(cpu, bus, &mut pend, dst, size));
            let r = size.truncate(0u32.wrapping_sub(d));
            sub_flags(&mut cpu.ccr, size, 0, d, r, true);
            try_bus!(write_ea(cpu, bus, &mut pend, dst, size, r));
        }
        Instr::Mulu { src, dst } => {
            let s = try_bus!(read_ea(cpu, bus, &mut pend, src, Size::Word));
            ctx.src_value = s;
            let i = dst.index();
            let r = (s & 0xFFFF) * (cpu.d[i] & 0xFFFF);
            cpu.d[i] = r;
            cpu.ccr.set_logic(r, Size::Long);
            mulu_cycles = timing::mulu_cycles(s as u16);
        }
        Instr::Muls { src, dst } => {
            let s = try_bus!(read_ea(cpu, bus, &mut pend, src, Size::Word));
            ctx.src_value = s;
            let i = dst.index();
            let r = ((s as u16 as i16 as i32) * (cpu.d[i] as u16 as i16 as i32)) as u32;
            cpu.d[i] = r;
            cpu.ccr.set_logic(r, Size::Long);
            mulu_cycles = timing::muls_cycles(s as u16);
        }
        Instr::Divu { src, dst } => {
            let s = try_bus!(read_ea(cpu, bus, &mut pend, src, Size::Word));
            ctx.src_value = s;
            let i = dst.index();
            let dd = cpu.d[i];
            ctx.dst_value = dd;
            mulu_cycles = timing::divu_cycles(dd, s as u16);
            if s == 0 || (dd >> 16) >= s {
                // Zero divide / quotient overflow: register unchanged, V set.
                cpu.ccr.v = true;
                cpu.ccr.c = false;
            } else {
                let q = dd / s;
                let r = dd % s;
                cpu.d[i] = (r << 16) | (q & 0xFFFF);
                cpu.ccr.set_logic(q, Size::Word);
            }
        }
        Instr::Divs { src, dst } => {
            let s = try_bus!(read_ea(cpu, bus, &mut pend, src, Size::Word));
            ctx.src_value = s;
            let i = dst.index();
            let dd = cpu.d[i];
            ctx.dst_value = dd;
            mulu_cycles = timing::divs_cycles(dd, s as u16);
            let sv = s as u16 as i16 as i32;
            let dv = dd as i32;
            // Short-circuit keeps the division safe when sv == 0.
            if sv == 0 || dv / sv > i16::MAX as i32 || dv / sv < i16::MIN as i32 {
                cpu.ccr.v = true;
                cpu.ccr.c = false;
            } else {
                let q = dv / sv;
                let r = dv % sv;
                cpu.d[i] = ((r as u32 & 0xFFFF) << 16) | (q as u32 & 0xFFFF);
                cpu.ccr.set_logic(q as u32, Size::Word);
            }
        }
        Instr::And { size, src, dst } => {
            let s = try_bus!(read_ea(cpu, bus, &mut pend, src, size));
            let i = dst.index();
            let r = size.truncate(cpu.d[i] & s);
            cpu.d[i] = size.merge(cpu.d[i], r);
            cpu.ccr.set_logic(r, size);
        }
        Instr::Or { size, src, dst } => {
            let s = try_bus!(read_ea(cpu, bus, &mut pend, src, size));
            let i = dst.index();
            let r = size.truncate(cpu.d[i] | s);
            cpu.d[i] = size.merge(cpu.d[i], r);
            cpu.ccr.set_logic(r, size);
        }
        Instr::OrTo { size, src, dst } => {
            let s = size.truncate(cpu.d[src.index()]);
            let addr = ea_addr(cpu, &mut pend, dst, size);
            let d = try_bus!(bus.read(addr, size));
            let r = size.truncate(d | s);
            cpu.ccr.set_logic(r, size);
            try_bus!(bus.write(addr, r, size));
        }
        Instr::Eor { size, src, dst } => {
            let s = size.truncate(cpu.d[src.index()]);
            let d = try_bus!(read_ea(cpu, bus, &mut pend, dst, size));
            let r = size.truncate(d ^ s);
            cpu.ccr.set_logic(r, size);
            try_bus!(write_ea(cpu, bus, &mut pend, dst, size, r));
        }
        Instr::Not { size, dst } => {
            let d = try_bus!(read_ea(cpu, bus, &mut pend, dst, size));
            let r = size.truncate(!d);
            cpu.ccr.set_logic(r, size);
            try_bus!(write_ea(cpu, bus, &mut pend, dst, size, r));
        }
        Instr::Shift {
            kind,
            size,
            count,
            dst,
        } => {
            let n = match count {
                ShiftCount::Imm(k) => k as u32,
                ShiftCount::Reg(r) => cpu.d[r.index()] & 63,
            };
            ctx.shift_count = n;
            let i = dst.index();
            let bits = 8 * size.bytes();
            let v = size.truncate(cpu.d[i]);
            let mut carry = false;
            let r = if n == 0 {
                v
            } else {
                match kind {
                    ShiftKind::Lsl | ShiftKind::Asl => {
                        carry = n <= bits && (v >> (bits - n.min(bits))) & 1 != 0;
                        if n >= bits {
                            if n > bits {
                                carry = false;
                            }
                            0
                        } else {
                            size.truncate(v << n)
                        }
                    }
                    ShiftKind::Lsr => {
                        carry = n <= bits && n >= 1 && (v >> (n - 1)) & 1 != 0;
                        if n >= bits {
                            if n > bits {
                                carry = false;
                            }
                            0
                        } else {
                            v >> n
                        }
                    }
                    ShiftKind::Rol => {
                        let k = n % bits;
                        let r = if k == 0 {
                            v
                        } else {
                            size.truncate((v << k) | (v >> (bits - k)))
                        };
                        carry = r & 1 != 0; // last bit rotated out of the top = new bit 0
                        r
                    }
                    ShiftKind::Ror => {
                        let k = n % bits;
                        let r = if k == 0 {
                            v
                        } else {
                            size.truncate((v >> k) | (v << (bits - k)))
                        };
                        carry = size.msb(r); // last bit rotated out of the bottom = new MSB
                        r
                    }
                    ShiftKind::Asr => {
                        let sign = size.msb(v);
                        let sv = size.sign_extend(v) as i32;
                        let shifted = if n >= bits {
                            if sign {
                                -1i32
                            } else {
                                0
                            }
                        } else {
                            sv >> n
                        };
                        carry = if n >= 1 && n <= bits {
                            (sv >> (n - 1).min(31)) & 1 != 0
                        } else {
                            sign
                        };
                        size.truncate(shifted as u32)
                    }
                }
            };
            cpu.d[i] = size.merge(cpu.d[i], r);
            cpu.ccr.set_logic(r, size);
            if n > 0 {
                cpu.ccr.c = carry;
                // Rotates leave X untouched on the 68000.
                if !matches!(kind, ShiftKind::Rol | ShiftKind::Ror) {
                    cpu.ccr.x = carry;
                }
            }
        }
        Instr::Btst { bit, dst } => {
            let (v, width) = match dst {
                Ea::D(_) | Ea::A(_) => {
                    (try_bus!(read_ea(cpu, bus, &mut pend, dst, Size::Long)), 32)
                }
                _ => (try_bus!(read_ea(cpu, bus, &mut pend, dst, Size::Byte)), 8),
            };
            cpu.ccr.z = v & (1 << (bit as u32 % width)) == 0;
        }
        Instr::Cmp { size, src, dst } => {
            let s = try_bus!(read_ea(cpu, bus, &mut pend, src, size));
            let d = size.truncate(cpu.d[dst.index()]);
            let r = size.truncate(d.wrapping_sub(s));
            sub_flags(&mut cpu.ccr, size, d, s, r, false);
        }
        Instr::Cmpa { size, src, dst } => {
            let s = try_bus!(read_ea(cpu, bus, &mut pend, src, size));
            let s = size.sign_extend(s);
            let d = cpu.a[dst.index()];
            let r = d.wrapping_sub(s);
            sub_flags(&mut cpu.ccr, Size::Long, d, s, r, false);
        }
        Instr::Cmpi { size, value, dst } => {
            let d = try_bus!(read_ea(cpu, bus, &mut pend, dst, size));
            let s = size.truncate(value);
            let r = size.truncate(d.wrapping_sub(s));
            sub_flags(&mut cpu.ccr, size, d, s, r, false);
        }
        Instr::Tst { size, dst } => {
            let d = try_bus!(read_ea(cpu, bus, &mut pend, dst, size));
            cpu.ccr.set_logic(d, size);
        }
        Instr::Bcc { cond, target } => {
            let taken = cond.eval(cpu.ccr);
            ctx.branch_taken = taken;
            if taken {
                next_pc = target;
            }
        }
        Instr::Dbra { dst, target } => {
            let i = dst.index();
            let count = (cpu.d[i] as u16).wrapping_sub(1);
            cpu.d[i] = Size::Word.merge(cpu.d[i], count as u32);
            if count != 0xFFFF {
                next_pc = target;
            } else {
                ctx.loop_expired = true;
            }
        }
        Instr::Jmp { target } => next_pc = target,
        Instr::Jsr { target } => {
            let sp = cpu.a[7].wrapping_sub(4);
            try_bus!(bus.write(sp, (cpu.pc + 1) as u32, Size::Long));
            cpu.a[7] = sp;
            next_pc = target;
        }
        Instr::Rts => {
            let sp = cpu.a[7];
            let ret = try_bus!(bus.read(sp, Size::Long));
            cpu.a[7] = sp.wrapping_add(4);
            next_pc = ret as usize;
        }
        Instr::Nop => {}
        Instr::JmpSimd => effect = Effect::EnterSimd,
        Instr::JmpMimd { target } => effect = Effect::ExitSimd { target },
        Instr::Barrier => effect = Effect::BarrierRequest,
        Instr::SetMask { mask } => effect = Effect::Mc(McEffect::SetMask(mask)),
        Instr::Enqueue { block } => effect = Effect::Mc(McEffect::Enqueue(block)),
        Instr::EnqueueWords { count } => effect = Effect::Mc(McEffect::EnqueueWords(count)),
        Instr::StartPes => effect = Effect::Mc(McEffect::StartPes),
        Instr::Mark { begin, phase } => effect = Effect::Mark { begin, phase },
        Instr::Halt => effect = Effect::Halt,
    }

    pend.commit(cpu);
    cpu.pc = next_pc;
    // The split carries the instruction's folded timing facts; without one,
    // recompute them from the encoding (identical by the decomposition
    // invariant, pinned by the `decomposition` test suite).
    let (cycles, fetch_words, data_accesses) = match split {
        Some(s) => (
            s.static_cycles + timing::dynamic_cycles(s.dynamic, ctx),
            s.fetch_words,
            s.data_accesses,
        ),
        None => (
            timing::base_cycles(instr, ctx),
            instr.words(),
            timing::data_accesses(instr),
        ),
    };
    StepOutcome::Done(StepResult {
        cycles,
        fetch_words,
        data_accesses,
        mulu_cycles,
        effect,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasm_isa::asm::assemble;
    use pasm_isa::{Cond, DataReg, Program};
    use pasm_mem::Memory;

    /// Run a program on a bare CPU + memory until HALT; return (cpu, mem, cycles).
    fn run(src: &str, setup: impl FnOnce(&mut Cpu, &mut Memory)) -> (Cpu, Memory, u64) {
        let prog: Program = assemble(src).expect("assembly");
        let mut cpu = Cpu::default();
        let mut mem = Memory::new(1 << 16);
        cpu.a[7] = 0x8000; // stack
        setup(&mut cpu, &mut mem);
        let mut cycles = 0u64;
        for _ in 0..1_000_000 {
            let instr = prog.instrs[cpu.pc];
            match exec(&mut cpu, &mut MemBus(&mut mem), &instr) {
                StepOutcome::Done(r) => {
                    cycles += r.cycles as u64;
                    if matches!(r.effect, Effect::Halt) {
                        return (cpu, mem, cycles);
                    }
                }
                StepOutcome::Blocked(b) => panic!("unexpected block {b:?}"),
            }
        }
        panic!("program did not halt");
    }

    #[test]
    fn loop_sums_words() {
        let (cpu, _, _) = run(
            "
                MOVEQ   #0,D0
                MOVEQ   #3,D1
                LEA     $100.W,A0
            top: ADD.W  (A0)+,D0
                DBRA    D1,top
                HALT
            ",
            |_, mem| mem.load_words(0x100, &[10, 20, 30, 40]),
        );
        assert_eq!(cpu.d[0] & 0xFFFF, 100);
        assert_eq!(cpu.a[0], 0x108);
    }

    #[test]
    fn mulu_and_muls_products() {
        let (cpu, _, _) = run(
            "
                MOVE.W  #300,D0
                MOVE.W  #700,D1
                MULU    D1,D0      ; D0 = 210000
                MOVE.W  #$FFFF,D2  ; -1 as signed word
                MOVE.W  #5,D3
                MULS    D3,D2      ; D2 = -5
                HALT
            ",
            |_, _| {},
        );
        assert_eq!(cpu.d[0], 210_000);
        assert_eq!(cpu.d[2], (-5i32) as u32);
    }

    #[test]
    fn conditional_branches() {
        let (cpu, _, _) = run(
            "
                MOVEQ   #5,D0
                CMPI.W  #5,D0
                BEQ     eq
                MOVEQ   #0,D7
                HALT
            eq: MOVEQ   #1,D7
                HALT
            ",
            |_, _| {},
        );
        assert_eq!(cpu.d[7], 1);
    }

    #[test]
    fn signed_vs_unsigned_compares() {
        let (cpu, _, _) = run(
            "
                MOVE.W  #$8000,D0   ; -32768 signed, 32768 unsigned
                CMPI.W  #1,D0
                BLT     signed_less
                MOVEQ   #0,D6
                BRA     next
            signed_less: MOVEQ #1,D6
            next: CMPI.W #1,D0
                BHI     unsigned_greater
                MOVEQ   #0,D7
                HALT
            unsigned_greater: MOVEQ #1,D7
                HALT
            ",
            |_, _| {},
        );
        assert_eq!(cpu.d[6], 1, "signed: 0x8000 < 1");
        assert_eq!(cpu.d[7], 1, "unsigned: 0x8000 > 1");
    }

    #[test]
    fn shifts_and_or_assemble_16bit_from_bytes() {
        // The paper's 16-bit-over-8-bit-network recipe: shift + OR.
        let (cpu, _, _) = run(
            "
                MOVE.B  #$AB,D0
                LSL.W   #8,D0
                MOVE.B  #$CD,D1
                OR.W    D1,D0
                HALT
            ",
            |_, _| {},
        );
        assert_eq!(cpu.d[0] & 0xFFFF, 0xABCD);
    }

    #[test]
    fn jsr_rts_roundtrip() {
        let (cpu, _, _) = run(
            "
                JSR     sub
                MOVEQ   #7,D1
                HALT
            sub: MOVEQ  #3,D0
                RTS
            ",
            |_, _| {},
        );
        assert_eq!(cpu.d[0], 3);
        assert_eq!(cpu.d[1], 7);
        assert_eq!(cpu.a[7], 0x8000, "stack balanced");
    }

    #[test]
    fn dbra_runs_count_plus_one_times() {
        let (cpu, _, _) = run(
            "
                MOVEQ   #0,D0
                MOVE.W  #4,D1
            t:  ADDQ.W  #1,D0
                DBRA    D1,t
                HALT
            ",
            |_, _| {},
        );
        assert_eq!(cpu.d[0], 5);
    }

    #[test]
    fn predec_postinc_pair() {
        let (cpu, mem, _) = run(
            "
                LEA     $200.W,A0
                LEA     $200.W,A1
                MOVE.W  #$1234,-(A0)
                MOVE.W  #$5678,-(A0)
                MOVE.W  (A0)+,D0
                MOVE.W  (A0)+,D1
                HALT
            ",
            |_, _| {},
        );
        assert_eq!(cpu.d[0] & 0xFFFF, 0x5678);
        assert_eq!(cpu.d[1] & 0xFFFF, 0x1234);
        assert_eq!(cpu.a[0], 0x200);
        assert_eq!(mem.read_word(0x1FE), 0x1234);
    }

    #[test]
    fn cycles_accumulate_realistically() {
        // 5 MOVEQ (4 cycles each) + HALT(4) = 24 core cycles.
        let (_, _, cycles) = run(
            "
                MOVEQ #1,D0
                MOVEQ #2,D1
                MOVEQ #3,D2
                MOVEQ #4,D3
                MOVEQ #5,D4
                HALT
            ",
            |_, _| {},
        );
        assert_eq!(cycles, 24);
    }

    #[test]
    fn effects_surface() {
        let mut cpu = Cpu::default();
        let mut mem = Memory::new(64);
        let r = exec(&mut cpu, &mut MemBus(&mut mem), &Instr::JmpSimd);
        let StepOutcome::Done(r) = r else { panic!() };
        assert_eq!(r.effect, Effect::EnterSimd);
        let r = exec(
            &mut cpu,
            &mut MemBus(&mut mem),
            &Instr::Mark {
                begin: true,
                phase: 2,
            },
        );
        let StepOutcome::Done(r) = r else { panic!() };
        assert_eq!(
            r.effect,
            Effect::Mark {
                begin: true,
                phase: 2
            }
        );
        assert_eq!(r.cycles, 0);
        let r = exec(
            &mut cpu,
            &mut MemBus(&mut mem),
            &Instr::Bcc {
                cond: Cond::True,
                target: 9,
            },
        );
        let StepOutcome::Done(_) = r else { panic!() };
        assert_eq!(cpu.pc, 9);
    }

    #[test]
    fn divu_quotient_and_remainder() {
        let (cpu, _, _) = run(
            "
                MOVE.L  #100007,D0
                MOVE.W  #100,D1
                DIVU    D1,D0      ; q=1000, r=7
                HALT
            ",
            |_, _| {},
        );
        assert_eq!(cpu.d[0] & 0xFFFF, 1000, "quotient in the low word");
        assert_eq!(cpu.d[0] >> 16, 7, "remainder in the high word");
    }

    #[test]
    fn divu_overflow_leaves_register_and_sets_v() {
        let mut cpu = Cpu::default();
        cpu.d[0] = 0x0012_3456; // high word 0x12 >= divisor 3 => overflow
        cpu.d[1] = 3;
        let mut mem = Memory::new(64);
        let i = Instr::Divu {
            src: Ea::D(DataReg::D1),
            dst: DataReg::D0,
        };
        let StepOutcome::Done(r) = exec(&mut cpu, &mut MemBus(&mut mem), &i) else {
            panic!()
        };
        assert_eq!(cpu.d[0], 0x0012_3456, "destination unchanged on overflow");
        assert!(cpu.ccr.v);
        assert_eq!(r.cycles, 10, "early-out timing");
    }

    #[test]
    fn divs_signed_semantics() {
        let (cpu, _, _) = run(
            "
                MOVE.L  #-100,D0
                MOVE.W  #7,D1
                DIVS    D1,D0      ; -100/7 = -14 rem -2 (truncating)
                HALT
            ",
            |_, _| {},
        );
        assert_eq!(cpu.d[0] & 0xFFFF, (-14i16 as u16) as u32);
        assert_eq!((cpu.d[0] >> 16) as u16 as i16, -2);
    }

    #[test]
    fn divu_timing_depends_on_quotient_zeros() {
        // q = 0xFFFF (no zero bits) is fastest; q = 1 (15 zero bits) slower.
        let fast = pasm_isa::timing::divu_cycles(0xFFFF, 1);
        let slow = pasm_isa::timing::divu_cycles(1, 1);
        assert_eq!(fast, 76);
        assert_eq!(slow, 76 + 4 * 15);
        assert!(pasm_isa::timing::divs_cycles((-1i32) as u32, 1) > fast);
    }

    #[test]
    fn rotates_wrap_bits() {
        let (cpu, _, _) = run(
            "
                MOVE.W  #$8001,D0
                ROL.W   #1,D0      ; -> $0003
                MOVE.W  #$8001,D1
                ROR.W   #1,D1      ; -> $C000
                HALT
            ",
            |_, _| {},
        );
        assert_eq!(cpu.d[0] & 0xFFFF, 0x0003);
        assert_eq!(cpu.d[1] & 0xFFFF, 0xC000);
    }

    #[test]
    fn btst_sets_z_only() {
        let (cpu, _, _) = run(
            "
                MOVE.W  #%100,D0
                BTST    #2,D0
                BEQ     zero
                MOVEQ   #1,D7
                BRA     done
            zero: MOVEQ #0,D7
            done: BTST  #1,D0
                BEQ     z2
                MOVEQ   #9,D6
                HALT
            z2: MOVEQ   #2,D6
                HALT
            ",
            |_, _| {},
        );
        assert_eq!(cpu.d[7], 1, "bit 2 is set");
        assert_eq!(cpu.d[6], 2, "bit 1 is clear");
    }

    #[test]
    fn mulu_reports_data_dependent_cycles() {
        let mut cpu = Cpu::default();
        cpu.d[1] = 0xFFFF;
        cpu.d[0] = 2;
        let mut mem = Memory::new(64);
        let i = Instr::Mulu {
            src: Ea::D(DataReg::D1),
            dst: DataReg::D0,
        };
        let StepOutcome::Done(r) = exec(&mut cpu, &mut MemBus(&mut mem), &i) else {
            panic!()
        };
        assert_eq!(r.cycles, 70);
        assert_eq!(r.mulu_cycles, 70);
        assert_eq!(cpu.d[0], 0x1FFFE);
    }
}
