//! The MC Fetch Unit: mask register, Fetch Unit Controller, FIFO queue.
//!
//! Paper §3 (Figure 1): the MC CPU writes the Mask Register, then writes a
//! control word naming a block of SIMD instructions in the Fetch Unit RAM.
//! The Fetch Unit Controller moves the block into the FIFO queue word by word
//! — tagging every word with the current mask — while the MC CPU proceeds.
//! PEs consume the queue through instruction-fetch requests; an entry is
//! *released* only when every PE enabled by its mask has requested it, which
//! is the implicit hardware barrier that makes SIMD cost `Σ maxₖ tⱼₖ`.
//!
//! The same machinery doubles as barrier synchronization for MIMD programs:
//! the MC pre-enqueues `R` arbitrary data words and PEs read them from SIMD
//! space; each read completes only when all PEs have read (paper §3, used by
//! the S/MIMD matrix multiply).
//!
//! The queue is **finite**; the paper points out that SIMD superlinearity
//! exists only while the MC keeps it non-empty. Both the capacity stall (full)
//! and the empty stall are modeled and counted.

use pasm_isa::Instr;
use std::collections::VecDeque;

/// What a queue entry carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A broadcast SIMD instruction.
    Instr(Instr),
    /// An arbitrary data word (barrier synchronization).
    Data,
}

/// One entry of the Fetch Unit queue.
#[derive(Debug, Clone, Copy)]
pub struct QueueEntry {
    pub kind: EntryKind,
    /// Mask latched when the word was enqueued (bit k = PE k of this group).
    pub mask: u16,
    /// Width in 16-bit words (capacity accounting; data words are 1).
    pub words: u32,
    /// Cycle at which the controller finished moving it into the queue.
    pub ready_at: u64,
    /// PEs (group-local bits) that have consumed it (decoupled mode only).
    pub consumed: u16,
}

/// An item the controller still has to move from Fetch Unit RAM to the queue.
#[derive(Debug, Clone, Copy)]
pub struct FucItem {
    pub kind: EntryKind,
    pub mask: u16,
    pub words: u32,
    /// Earliest cycle the controller may start on it (MC command latency).
    pub earliest: u64,
}

/// Aggregate Fetch Unit statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct FuStats {
    /// Entries that passed through the queue.
    pub entries: u64,
    /// Peak queue occupancy in words.
    pub max_depth_words: u32,
    /// Cycles PEs spent waiting because the queue was empty (release gated by
    /// `ready_at` rather than by the slowest PE's request).
    pub empty_stall_cycles: u64,
    /// Number of releases gated by the queue being empty.
    pub empty_stalls: u64,
    /// Number of releases gated by the slowest PE (the lockstep barrier).
    pub barrier_stalls: u64,
}

/// One MC's Fetch Unit.
#[derive(Debug)]
pub struct FetchUnit {
    /// Current mask register value.
    pub mask: u16,
    /// The FIFO queue.
    pub queue: VecDeque<QueueEntry>,
    /// Occupancy in words.
    pub occupancy_words: u32,
    /// Capacity in words.
    pub capacity_words: u32,
    /// Items the controller has yet to move into the queue.
    pub pending: VecDeque<FucItem>,
    /// When the controller finishes its current word move.
    pub fuc_free_at: u64,
    /// Controller blocked on queue space.
    pub fuc_blocked: bool,
    /// When space last became available while the controller was blocked.
    pub space_available_at: u64,
    /// Statistics.
    pub stats: FuStats,
}

impl FetchUnit {
    pub fn new(capacity_words: u32) -> Self {
        FetchUnit {
            mask: 0xFFFF,
            queue: VecDeque::new(),
            occupancy_words: 0,
            capacity_words,
            pending: VecDeque::new(),
            fuc_free_at: 0,
            fuc_blocked: false,
            space_available_at: 0,
            stats: FuStats::default(),
        }
    }

    /// True when the controller has nothing left to move (the MC may issue the
    /// next enqueue command).
    pub fn command_done(&self) -> bool {
        self.pending.is_empty()
    }

    /// Queue an MC command: move `block` (a list of instructions) starting no
    /// earlier than `earliest`.
    pub fn command_block(&mut self, block: &[Instr], earliest: u64) {
        for &i in block {
            self.pending.push_back(FucItem {
                kind: EntryKind::Instr(i),
                mask: self.mask,
                words: i.words().max(1),
                earliest,
            });
        }
    }

    /// Queue an MC command: enqueue `count` arbitrary data words.
    pub fn command_data_words(&mut self, count: u16, earliest: u64) {
        for _ in 0..count {
            self.pending.push_back(FucItem {
                kind: EntryKind::Data,
                mask: self.mask,
                words: 1,
                earliest,
            });
        }
    }

    /// When the controller could next complete a move, if it has work and the
    /// queue has room. `None` = idle or blocked on space.
    pub fn next_move_completion(&mut self, cycles_per_word: u64) -> Option<u64> {
        let head = self.pending.front()?;
        if self.occupancy_words + head.words > self.capacity_words {
            self.fuc_blocked = true;
            return None;
        }
        let start = self
            .fuc_free_at
            .max(head.earliest)
            .max(self.space_available_at);
        Some(start + head.words as u64 * cycles_per_word)
    }

    /// Perform the controller move whose completion time was computed by
    /// [`Self::next_move_completion`].
    pub fn do_move(&mut self, completion: u64) {
        let item = self
            .pending
            .pop_front()
            .expect("do_move without pending item");
        self.fuc_free_at = completion;
        self.occupancy_words += item.words;
        self.stats.max_depth_words = self.stats.max_depth_words.max(self.occupancy_words);
        self.stats.entries += 1;
        self.queue.push_back(QueueEntry {
            kind: item.kind,
            mask: item.mask,
            words: item.words,
            ready_at: completion,
            consumed: 0,
        });
    }

    /// Remove the head entry (it has been released), freeing its words at
    /// `release_time`.
    pub fn pop_head(&mut self, release_time: u64) {
        let e = self.queue.pop_front().expect("pop_head on empty queue");
        self.occupancy_words -= e.words;
        if self.fuc_blocked {
            self.space_available_at = self.space_available_at.max(release_time);
            self.fuc_blocked = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_snapshot_mask() {
        let mut fu = FetchUnit::new(64);
        fu.mask = 0b0101;
        fu.command_block(&[Instr::Nop], 0);
        fu.mask = 0b1111;
        fu.command_data_words(1, 0);
        assert_eq!(fu.pending[0].mask, 0b0101);
        assert_eq!(fu.pending[1].mask, 0b1111);
    }

    #[test]
    fn controller_moves_in_fifo_order() {
        let mut fu = FetchUnit::new(64);
        fu.command_block(&[Instr::Nop, Instr::Halt], 10);
        let c1 = fu.next_move_completion(2).unwrap();
        assert_eq!(c1, 10 + 2); // NOP = 1 word * 2 cycles, starting at 10
        fu.do_move(c1);
        assert_eq!(fu.queue.len(), 1);
        assert_eq!(fu.queue[0].ready_at, 12);
        let c2 = fu.next_move_completion(2).unwrap();
        assert_eq!(c2, 12 + 2);
        fu.do_move(c2);
        assert!(fu.command_done());
        assert_eq!(fu.occupancy_words, 2);
    }

    #[test]
    fn capacity_blocks_and_pop_unblocks() {
        let mut fu = FetchUnit::new(2);
        fu.command_block(&[Instr::Nop, Instr::Nop, Instr::Nop], 0);
        let c = fu.next_move_completion(1).unwrap();
        fu.do_move(c);
        let c = fu.next_move_completion(1).unwrap();
        fu.do_move(c);
        // Queue full: third word blocked.
        assert!(fu.next_move_completion(1).is_none());
        assert!(fu.fuc_blocked);
        fu.pop_head(100);
        assert!(!fu.fuc_blocked);
        let c = fu.next_move_completion(1).unwrap();
        assert!(
            c >= 100,
            "move resumes only after space appears at t=100, got {c}"
        );
    }

    #[test]
    fn stats_track_depth_and_entries() {
        let mut fu = FetchUnit::new(64);
        fu.command_data_words(3, 0);
        while let Some(c) = fu.next_move_completion(1) {
            fu.do_move(c);
        }
        assert_eq!(fu.stats.entries, 3);
        assert_eq!(fu.stats.max_depth_words, 3);
    }
}
