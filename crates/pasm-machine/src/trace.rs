//! Per-component instrumentation: instruction counts, stall accounting, and
//! the phase breakdown used to regenerate the paper's Figures 8–10.

/// Number of distinct phase ids supported by `Mark` instrumentation.
pub const N_PHASES: usize = 16;

/// Execution statistics of one PE.
#[derive(Debug, Clone, Default)]
pub struct PeTrace {
    /// Instructions executed (MIMD and SIMD-delivered, marks excluded).
    pub instrs: u64,
    /// Cycles spent executing instructions (incl. memory waits, excl. stalls).
    pub busy_cycles: u64,
    /// Multiply instructions executed.
    pub mul_count: u64,
    /// Total cycles inside multiply instructions.
    pub mul_cycles: u64,
    /// Cycles from issuing a SIMD-space request to the release (lockstep wait
    /// + queue-empty wait).
    pub simd_wait_cycles: u64,
    /// Extra cycles charged for instruction-fetch memory waits.
    pub fetch_wait_cycles: u64,
    /// Extra cycles charged for operand (data) memory waits.
    pub data_wait_cycles: u64,
    /// Cycles stalled on the network transmit register (receiver not ready).
    pub net_tx_stall_cycles: u64,
    /// Cycles stalled on the network receive register (no byte in flight).
    pub net_rx_stall_cycles: u64,
    /// 8-bit network words sent.
    pub net_bytes_sent: u64,
    /// Local time when this PE halted (0 if it never ran).
    pub finished_at: u64,
    /// Accumulated cycles per instrumentation phase.
    pub phase_cycles: [u64; N_PHASES],
    /// Open phase start times (begin marker seen, end pending).
    pub(crate) phase_open: [Option<u64>; N_PHASES],
}

impl PeTrace {
    /// Handle a `Mark` instruction executed at local time `now`.
    pub fn mark(&mut self, begin: bool, phase: u8, now: u64) {
        let p = phase as usize % N_PHASES;
        if begin {
            debug_assert!(self.phase_open[p].is_none(), "phase {p} begun twice");
            self.phase_open[p] = Some(now);
        } else if let Some(start) = self.phase_open[p].take() {
            self.phase_cycles[p] += now.saturating_sub(start);
        } else {
            debug_assert!(false, "phase {p} ended without begin");
        }
    }

    /// Total stall time (everything that is not instruction execution).
    pub fn stall_cycles(&self) -> u64 {
        self.simd_wait_cycles + self.net_tx_stall_cycles + self.net_rx_stall_cycles
    }
}

/// Execution statistics of one MC.
#[derive(Debug, Clone, Default)]
pub struct McTrace {
    /// Instructions executed.
    pub instrs: u64,
    /// Cycles spent executing instructions.
    pub busy_cycles: u64,
    /// Cycles stalled waiting for the Fetch Unit controller to accept a command.
    pub fuc_wait_cycles: u64,
    /// Blocks enqueued.
    pub blocks_enqueued: u64,
    /// Local time when this MC halted (0 if it never ran).
    pub finished_at: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_accounting_accumulates() {
        let mut t = PeTrace::default();
        t.mark(true, 1, 100);
        t.mark(false, 1, 150);
        t.mark(true, 1, 200);
        t.mark(false, 1, 230);
        assert_eq!(t.phase_cycles[1], 80);
        assert_eq!(t.phase_cycles[2], 0);
    }

    #[test]
    fn nested_distinct_phases() {
        let mut t = PeTrace::default();
        t.mark(true, 1, 0);
        t.mark(true, 2, 10);
        t.mark(false, 2, 30);
        t.mark(false, 1, 100);
        assert_eq!(t.phase_cycles[1], 100);
        assert_eq!(t.phase_cycles[2], 20);
    }

    #[test]
    fn stall_total() {
        let t = PeTrace {
            simd_wait_cycles: 5,
            net_tx_stall_cycles: 7,
            net_rx_stall_cycles: 11,
            ..Default::default()
        };
        assert_eq!(t.stall_cycles(), 23);
    }
}
