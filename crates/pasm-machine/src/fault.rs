//! Machine-level fault plans: network element faults plus PE fault models.
//!
//! A [`FaultPlan`] is the injectable description of everything wrong with a
//! machine before a run starts: a set of ESC network faults
//! ([`pasm_net::NetFault`]: interchange boxes and inter-stage links) and a set
//! of per-PE fault models ([`PeFault`]):
//!
//! * **dead** — the PE never starts. It is masked out of Fetch-Unit release
//!   decisions, so SIMD broadcasts to the surviving PEs still release instead
//!   of waiting forever on a request that will never come.
//! * **slow** — every operand memory access costs `extra_wait` additional
//!   wait states (a marginal DRAM bank, a failing refresh circuit). The extra
//!   cycles are charged to the `fault_detour` bucket.
//! * **stuck-tx** — the PE's network output port wedges: transmits never
//!   complete. Barrier-mode programs end in a clean deadlock report; polling
//!   programs hit the cycle limit.
//!
//! Plans are hashable so they can participate in experiment cache keys, and
//! parseable from the compact CLI spelling `box:S:I`, `link:B:L`, `dead:P`,
//! `slow:P:W`, `stuck:P` (comma-separated).

use pasm_net::NetFault;
use std::fmt;

/// One PE's fault model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeFault {
    /// The PE never starts; it is masked out of Fetch-Unit barriers.
    Dead,
    /// Every operand memory access pays `extra_wait` additional cycles.
    Slow { extra_wait: u64 },
    /// The network transmit port never accepts a word.
    StuckTx,
}

/// A PE fault bound to a physical PE number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PeFaultSpec {
    pub pe: usize,
    pub kind: PeFault,
}

/// Everything injected into a machine before a run: network faults and PE
/// faults. The empty plan (the default) is the fault-free machine.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// ESC network element faults.
    pub net: Vec<NetFault>,
    /// Per-PE fault models.
    pub pe: Vec<PeFaultSpec>,
}

impl FaultPlan {
    /// A plan with a single network fault (the fault-sweep workhorse).
    pub fn net_single(fault: NetFault) -> Self {
        FaultPlan {
            net: vec![fault],
            pe: Vec::new(),
        }
    }

    /// A plan with a single PE fault.
    pub fn pe_single(pe: usize, kind: PeFault) -> Self {
        FaultPlan {
            net: Vec::new(),
            pe: vec![PeFaultSpec { pe, kind }],
        }
    }

    /// True if nothing is injected.
    pub fn is_empty(&self) -> bool {
        self.net.is_empty() && self.pe.is_empty()
    }

    /// Validate every element against a machine with `n_pes` PEs (whose ESC
    /// network has `n_pes.max(2)` endpoints).
    pub fn validate(&self, n_pes: usize) -> Result<(), String> {
        let net_size = n_pes.max(2);
        for f in &self.net {
            f.validate(net_size)?;
        }
        for s in &self.pe {
            if s.pe >= n_pes {
                return Err(format!("PE {} out of range 0..{n_pes}", s.pe));
            }
        }
        let mut pes: Vec<usize> = self.pe.iter().map(|s| s.pe).collect();
        pes.sort_unstable();
        pes.dedup();
        if pes.len() != self.pe.len() {
            return Err("duplicate PE fault entries".into());
        }
        Ok(())
    }

    /// Parse the comma-separated CLI spelling, e.g. `box:2:1,dead:3`.
    /// Whitespace around items is ignored; the empty string is the empty plan.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let parts: Vec<&str> = item.split(':').collect();
            let num = |s: &str| -> Result<u64, String> {
                s.parse::<u64>()
                    .map_err(|_| format!("bad number {s:?} in fault {item:?}"))
            };
            match parts.as_slice() {
                ["box", s, i] => plan.net.push(NetFault::Box {
                    stage: num(s)? as u32,
                    box_idx: num(i)? as usize,
                }),
                ["link", b, l] => plan.net.push(NetFault::Link {
                    boundary: num(b)? as u32,
                    line: num(l)? as usize,
                }),
                ["dead", p] => plan.pe.push(PeFaultSpec {
                    pe: num(p)? as usize,
                    kind: PeFault::Dead,
                }),
                ["slow", p, w] => plan.pe.push(PeFaultSpec {
                    pe: num(p)? as usize,
                    kind: PeFault::Slow {
                        extra_wait: num(w)?,
                    },
                }),
                ["stuck", p] => plan.pe.push(PeFaultSpec {
                    pe: num(p)? as usize,
                    kind: PeFault::StuckTx,
                }),
                _ => {
                    return Err(format!(
                        "unknown fault {item:?} (expected box:S:I, link:B:L, \
                         dead:P, slow:P:W, or stuck:P)"
                    ))
                }
            }
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    /// The same compact spelling [`FaultPlan::parse`] accepts (round-trips).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            Ok(())
        };
        for n in &self.net {
            sep(f)?;
            write!(f, "{n}")?;
        }
        for s in &self.pe {
            sep(f)?;
            match s.kind {
                PeFault::Dead => write!(f, "dead:{}", s.pe)?,
                PeFault::Slow { extra_wait } => write!(f, "slow:{}:{extra_wait}", s.pe)?,
                PeFault::StuckTx => write!(f, "stuck:{}", s.pe)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        let spec = "box:2:1,link:1:7,dead:3,slow:1:4,stuck:2";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.net.len(), 2);
        assert_eq!(plan.pe.len(), 3);
        assert_eq!(plan.to_string(), spec);
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn empty_spec_is_empty_plan() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.to_string(), "");
        assert_eq!(plan, FaultPlan::default());
    }

    #[test]
    fn parse_rejects_malformed_items() {
        assert!(FaultPlan::parse("box:1").is_err());
        assert!(FaultPlan::parse("flood:3").is_err());
        assert!(FaultPlan::parse("slow:x:2").is_err());
    }

    #[test]
    fn validate_checks_ranges_and_duplicates() {
        assert!(FaultPlan::parse("dead:3").unwrap().validate(4).is_ok());
        assert!(FaultPlan::parse("dead:4").unwrap().validate(4).is_err());
        assert!(FaultPlan::parse("box:9:0").unwrap().validate(4).is_err());
        assert!(FaultPlan::parse("dead:1,slow:1:2")
            .unwrap()
            .validate(4)
            .is_err());
    }
}
