use super::*;
use crate::config::{MachineConfig, ReleaseMode};
use pasm_isa::asm::assemble;
use pasm_isa::{DataReg, Ea, ProgramBuilder, Size};

fn small_machine() -> Machine {
    Machine::new(MachineConfig::small())
}

fn halting(src: &str) -> Program {
    assemble(src).expect("assembly")
}

#[test]
fn mimd_single_pe_runs_and_halts() {
    let mut m = small_machine();
    m.load_pe_program(
        0,
        halting(
            "
            MOVEQ   #0,D0
            MOVE.W  #9,D1
        top: ADDQ.W  #2,D0
            DBRA    D1,top
            HALT
        ",
        ),
    );
    m.start_pe(0, 0);
    let r = m.run().unwrap();
    assert_eq!(m.pe_cpu(0).d[0] & 0xFFFF, 20);
    assert!(r.makespan > 0);
    assert_eq!(r.pe[0].finished_at, r.makespan);
    assert!(r.pe[0].instrs >= 22);
}

#[test]
fn mimd_charges_dram_waits() {
    // The same straight-line code must take longer on DRAM (MIMD fetch) than
    // the core tables alone: wait states + occasional refresh.
    let mut m = small_machine();
    m.load_pe_program(
        0,
        halting(
            "
            NOP
            NOP
            NOP
            NOP
            HALT
        ",
        ),
    );
    m.start_pe(0, 0);
    let r = m.run().unwrap();
    // 5 instructions, 4 core cycles each = 20 core cycles; each is 1 word
    // fetched from DRAM at +1 wait state = +5, plus a possible refresh hit.
    assert!(r.makespan >= 25, "got {}", r.makespan);
    assert!(r.pe[0].fetch_wait_cycles >= 5);
}

/// Build the canonical SIMD test pair: PE bootstrap + MC broadcast program.
/// The MC broadcasts `block_body` once, then returns the PEs to MIMD (Halt).
fn simd_pair(block_body: &[Instr]) -> (Program, Program) {
    // PE program: 0: JMPSIMD, 1: HALT
    let mut pe = ProgramBuilder::new();
    pe.emit(Instr::JmpSimd);
    pe.emit(Instr::Halt);
    let pe = pe.build().unwrap();

    let mut mc = ProgramBuilder::new();
    let b0 = mc.begin_block();
    for &i in block_body {
        mc.emit(i);
    }
    mc.emit(Instr::JmpMimd { target: 1 });
    mc.end_block();
    mc.emit(Instr::SetMask { mask: 0xFFFF });
    mc.emit(Instr::StartPes);
    mc.emit(Instr::Enqueue { block: b0.0 });
    mc.emit(Instr::Halt);
    let mc = mc.build().unwrap();
    (pe, mc)
}

#[test]
fn simd_broadcast_reaches_all_pes() {
    let mut m = small_machine();
    let (pe, mc) = simd_pair(&[
        Instr::Moveq {
            value: 7,
            dst: DataReg::D0,
        },
        Instr::Add {
            size: Size::Word,
            src: Ea::D(DataReg::D0),
            dst: DataReg::D0,
        },
    ]);
    for i in 0..4 {
        m.load_pe_program(i, pe.clone());
    }
    m.load_mc_program(0, mc);
    let r = m.run().unwrap();
    for i in 0..4 {
        assert_eq!(m.pe_cpu(i).d[0] & 0xFFFF, 14, "PE {i}");
    }
    assert!(r.fu[0].entries >= 3);
    assert!(r.pe_makespan > 0);
}

#[test]
fn simd_lockstep_costs_the_max_multiply() {
    // Each PE multiplies by a different value; under the lockstep release each
    // broadcast multiply costs the max across PEs, so total SIMD time must
    // exceed the decoupled (ablation) time.
    let body = [
        // D1 preloaded per-PE below; MULU D1,D0 repeated.
        Instr::Mulu {
            src: Ea::D(DataReg::D1),
            dst: DataReg::D0,
        },
        Instr::Mulu {
            src: Ea::D(DataReg::D1),
            dst: DataReg::D0,
        },
        Instr::Mulu {
            src: Ea::D(DataReg::D1),
            dst: DataReg::D0,
        },
        Instr::Mulu {
            src: Ea::D(DataReg::D1),
            dst: DataReg::D0,
        },
    ];
    let run_with = |mode: ReleaseMode| {
        let cfg = MachineConfig {
            release_mode: mode,
            ..MachineConfig::small()
        };
        let mut m = Machine::new(cfg);
        let (pe, mc) = simd_pair(&body);
        for i in 0..4 {
            m.load_pe_program(i, pe.clone());
            // PE 0 has the heaviest multiplier (16 ones), others the lightest.
            m.pe_cpu_mut(i).d[1] = if i == 0 { 0xFFFF } else { 0 };
            m.pe_cpu_mut(i).d[0] = 1;
        }
        m.load_mc_program(0, mc);
        m.run().unwrap()
    };
    let lockstep = run_with(ReleaseMode::Lockstep);
    let decoupled = run_with(ReleaseMode::Decoupled);
    // PE 3 (a light PE) pays PE 0's multiply time only under lockstep.
    assert!(
        lockstep.pe[3].simd_wait_cycles > decoupled.pe[3].simd_wait_cycles,
        "lockstep {} vs decoupled {}",
        lockstep.pe[3].simd_wait_cycles,
        decoupled.pe[3].simd_wait_cycles
    );
    assert!(lockstep.pe_makespan >= decoupled.pe_makespan);
}

#[test]
fn barrier_synchronizes_mimd_pes() {
    // Two PEs with very different work lengths hit a BARRIER; both must leave
    // it at the same time (the release), and the fast one records the wait.
    let cfg = MachineConfig {
        n_pes: 4,
        n_mcs: 1,
        ..MachineConfig::small()
    };
    let mut m = Machine::new(cfg);
    let slow = halting(
        "
        MOVE.W  #199,D1
    t:  NOP
        DBRA    D1,t
        BARRIER
        HALT
    ",
    );
    let fast = halting(
        "
        BARRIER
        HALT
    ",
    );
    m.load_pe_program(0, slow);
    for i in 1..4 {
        m.load_pe_program(i, fast.clone());
    }
    let mut mc = ProgramBuilder::new();
    mc.emit(Instr::SetMask { mask: 0xFFFF });
    mc.emit(Instr::EnqueueWords { count: 1 });
    mc.emit(Instr::StartPes);
    mc.emit(Instr::Halt);
    m.load_mc_program(0, mc.build().unwrap());
    let r = m.run().unwrap();
    // All PEs finish within one HALT of each other.
    let finish: Vec<u64> = r.pe.iter().take(4).map(|t| t.finished_at).collect();
    let spread = finish.iter().max().unwrap() - finish.iter().min().unwrap();
    assert!(spread <= 16, "finish spread {spread} too large: {finish:?}");
    assert!(
        r.pe[1].simd_wait_cycles > 1000,
        "fast PE waited {}",
        r.pe[1].simd_wait_cycles
    );
}

#[test]
fn network_transfer_with_polling() {
    // PE0 sends a byte; PE1 polls the status register then reads it (the MIMD
    // protocol of paper §5.2).
    let mut m = small_machine();
    m.connect(0, 1).unwrap();
    m.load_pe_program(
        0,
        halting(
            "
            MOVE.B  #$5A,$00E00000.L   ; DTR
            HALT
        ",
        ),
    );
    m.load_pe_program(
        1,
        halting(
            "
        poll: MOVE.B  $00E00004.L,D1   ; status
            AND.W   #2,D1              ; rx valid?
            BEQ     poll
            MOVE.B  $00E00002.L,D0     ; DRR
            HALT
        ",
        ),
    );
    m.start_pe(0, 0);
    m.start_pe(1, 0);
    let r = m.run().unwrap();
    assert_eq!(m.pe_cpu(1).d[0] & 0xFF, 0x5A);
    assert!(r.pe[1].instrs >= 5);
}

#[test]
fn network_blocked_read_wakes_on_send() {
    // PE1 reads DRR directly (blocking) before PE0 has sent: the machine must
    // park it and wake it when the byte arrives.
    let mut m = small_machine();
    m.connect(0, 1).unwrap();
    m.load_pe_program(
        0,
        halting(
            "
            MOVE.W  #99,D7
        t:  NOP
            DBRA    D7,t
            MOVE.B  #$42,$00E00000.L
            HALT
        ",
        ),
    );
    m.load_pe_program(
        1,
        halting(
            "
            MOVE.B  $00E00002.L,D0
            HALT
        ",
        ),
    );
    m.start_pe(0, 0);
    m.start_pe(1, 0);
    let r = m.run().unwrap();
    assert_eq!(m.pe_cpu(1).d[0] & 0xFF, 0x42);
    assert!(
        r.pe[1].net_rx_stall_cycles > 500,
        "stall {}",
        r.pe[1].net_rx_stall_cycles
    );
}

#[test]
fn network_tx_backpressure() {
    // PE0 fires two bytes back-to-back; the second write must stall until PE1
    // consumes the first.
    let mut m = small_machine();
    m.connect(0, 1).unwrap();
    m.load_pe_program(
        0,
        halting(
            "
            MOVE.B  #1,$00E00000.L
            MOVE.B  #2,$00E00000.L
            HALT
        ",
        ),
    );
    m.load_pe_program(
        1,
        halting(
            "
            MOVE.W  #49,D7
        t:  NOP
            DBRA    D7,t
            MOVE.B  $00E00002.L,D0
            MOVE.B  $00E00002.L,D1
            HALT
        ",
        ),
    );
    m.start_pe(0, 0);
    m.start_pe(1, 0);
    let r = m.run().unwrap();
    assert_eq!(m.pe_cpu(1).d[0] & 0xFF, 1);
    assert_eq!(m.pe_cpu(1).d[1] & 0xFF, 2);
    assert!(
        r.pe[0].net_tx_stall_cycles > 100,
        "stall {}",
        r.pe[0].net_tx_stall_cycles
    );
}

#[test]
fn timer_reads_advance() {
    let mut m = small_machine();
    m.load_pe_program(
        0,
        halting(
            "
            MOVE.L  $00D00000.L,D0
            NOP
            NOP
            MOVE.L  $00D00000.L,D1
            HALT
        ",
        ),
    );
    m.start_pe(0, 0);
    m.run().unwrap();
    let t0 = m.pe_cpu(0).d[0];
    let t1 = m.pe_cpu(0).d[1];
    assert!(t1 > t0, "timer must advance: {t0} -> {t1}");
}

#[test]
fn deadlock_is_reported() {
    let mut m = small_machine();
    // Blocking receive with nobody sending.
    m.connect(0, 1).unwrap();
    m.load_pe_program(1, halting("MOVE.B $00E00002.L,D0\nHALT\n"));
    m.start_pe(1, 0);
    match m.run() {
        Err(RunError::Deadlock(s)) => assert!(s.contains("PE1"), "{s}"),
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn cycle_limit_is_enforced() {
    let cfg = MachineConfig {
        max_cycles: 10_000,
        ..MachineConfig::small()
    };
    let mut m = Machine::new(cfg);
    m.load_pe_program(0, halting("t: BRA t\nHALT\n"));
    m.start_pe(0, 0);
    assert_eq!(m.run().unwrap_err(), RunError::CycleLimit(10_000));
}

#[test]
fn phase_marks_accumulate_on_pes() {
    let mut m = small_machine();
    m.load_pe_program(
        0,
        halting(
            "
            MARKB   #1
            MOVE.W  #9,D1
        t:  MULU    D1,D0
            DBRA    D1,t
            MARKE   #1
            HALT
        ",
        ),
    );
    m.start_pe(0, 0);
    let r = m.run().unwrap();
    assert!(r.pe[0].phase_cycles[1] > 100);
    assert_eq!(r.phase_max(1), r.pe[0].phase_cycles[1]);
    assert!(r.pe[0].mul_count == 10);
}

#[test]
fn group_mapping_is_mod_q() {
    let m = Machine::new(MachineConfig::prototype());
    assert_eq!(m.mc_of_pe(0), 0);
    assert_eq!(m.mc_of_pe(5), 1);
    assert_eq!(m.mc_of_pe(15), 3);
    assert_eq!(m.group_pes(0), vec![0, 4, 8, 12]);
    assert_eq!(m.group_bit(12), 3);
}

#[test]
fn mask_disables_pes_for_selected_broadcasts() {
    // Broadcast one block to all PEs, then one only to PEs 0 and 2; disabled
    // PEs wait through the masked instructions and resume on the next
    // instruction that enables them (paper §3).
    let mut m = small_machine();
    let mut pe = ProgramBuilder::new();
    pe.emit(Instr::JmpSimd);
    pe.emit(Instr::Halt);
    let pe = pe.build().unwrap();
    let mut mc = ProgramBuilder::new();
    let all = mc.begin_block();
    mc.emit(Instr::Moveq {
        value: 1,
        dst: DataReg::D0,
    });
    mc.end_block();
    let some = mc.begin_block();
    mc.emit(Instr::Addq {
        size: Size::Word,
        value: 7,
        dst: Ea::D(DataReg::D0),
    });
    mc.end_block();
    let done = mc.begin_block();
    mc.emit(Instr::JmpMimd { target: 1 });
    mc.end_block();
    mc.emit(Instr::SetMask { mask: 0xFFFF });
    mc.emit(Instr::StartPes);
    mc.emit(Instr::Enqueue { block: all.0 });
    mc.emit(Instr::SetMask { mask: 0b0101 });
    mc.emit(Instr::Enqueue { block: some.0 });
    mc.emit(Instr::SetMask { mask: 0xFFFF });
    mc.emit(Instr::Enqueue { block: done.0 });
    mc.emit(Instr::Halt);
    let mc = mc.build().unwrap();
    for i in 0..4 {
        m.load_pe_program(i, pe.clone());
    }
    m.load_mc_program(0, mc);
    m.run().unwrap();
    for i in 0..4 {
        let expect = if i % 2 == 0 { 8 } else { 1 };
        assert_eq!(m.pe_cpu(i).d[0] & 0xFFFF, expect, "PE {i}");
    }
}

#[test]
fn fully_masked_entry_drains_without_effect() {
    let mut m = small_machine();
    let mut pe = ProgramBuilder::new();
    pe.emit(Instr::JmpSimd);
    pe.emit(Instr::Halt);
    let pe = pe.build().unwrap();
    let mut mc = ProgramBuilder::new();
    let nobody = mc.begin_block();
    mc.emit(Instr::Moveq {
        value: 99,
        dst: DataReg::D0,
    });
    mc.end_block();
    let done = mc.begin_block();
    mc.emit(Instr::JmpMimd { target: 1 });
    mc.end_block();
    mc.emit(Instr::StartPes);
    mc.emit(Instr::SetMask { mask: 0 });
    mc.emit(Instr::Enqueue { block: nobody.0 });
    mc.emit(Instr::SetMask { mask: 0xFFFF });
    mc.emit(Instr::Enqueue { block: done.0 });
    mc.emit(Instr::Halt);
    m.load_mc_program(0, mc.build().unwrap());
    for i in 0..4 {
        m.load_pe_program(i, pe.clone());
    }
    m.run().unwrap();
    for i in 0..4 {
        assert_eq!(
            m.pe_cpu(i).d[0],
            0,
            "PE {i} must never see the masked-out block"
        );
    }
}

#[test]
fn dead_pe_is_masked_out_of_simd_release() {
    // PE 2 is dead: it never starts, yet the SIMD broadcast to the survivors
    // must still release (the Fetch Unit masks the dead PE out of its barrier).
    let mut m = small_machine();
    m.apply_fault_plan(&FaultPlan::parse("dead:2").unwrap())
        .unwrap();
    let (pe, mc) = simd_pair(&[Instr::Moveq {
        value: 7,
        dst: DataReg::D0,
    }]);
    for i in 0..4 {
        m.load_pe_program(i, pe.clone());
    }
    m.load_mc_program(0, mc);
    let r = m.run().unwrap();
    for i in [0usize, 1, 3] {
        assert_eq!(m.pe_cpu(i).d[0] & 0xFFFF, 7, "surviving PE {i}");
    }
    assert_eq!(r.pe[2].instrs, 0, "dead PE must never execute");
    assert_eq!(m.pe_cpu(2).d[0], 0);
}

#[test]
fn dead_pe_is_masked_out_of_decoupled_retire() {
    let cfg = MachineConfig {
        release_mode: ReleaseMode::Decoupled,
        ..MachineConfig::small()
    };
    let mut m = Machine::new(cfg);
    m.apply_fault_plan(&FaultPlan::parse("dead:1").unwrap())
        .unwrap();
    let (pe, mc) = simd_pair(&[Instr::Moveq {
        value: 3,
        dst: DataReg::D0,
    }]);
    for i in 0..4 {
        m.load_pe_program(i, pe.clone());
    }
    m.load_mc_program(0, mc);
    m.run().unwrap();
    for i in [0usize, 2, 3] {
        assert_eq!(m.pe_cpu(i).d[0] & 0xFFFF, 3, "surviving PE {i}");
    }
}

#[test]
fn slow_pe_pays_extra_waits_into_fault_detour() {
    let body = "
        MOVE.W  #49,D1
    t:  MOVE.W  D0,$1000.L
        ADD.W   $1000.L,D0
        DBRA    D1,t
        HALT
    ";
    let healthy = {
        let mut m = small_machine();
        m.load_pe_program(0, halting(body));
        m.start_pe(0, 0);
        m.run().unwrap()
    };
    let mut m = small_machine();
    m.apply_fault_plan(&FaultPlan::parse("slow:0:5").unwrap())
        .unwrap();
    m.load_pe_program(0, halting(body));
    m.start_pe(0, 0);
    let r = m.run().unwrap();
    let detour = r.accounts.as_ref().unwrap().pe[0].bucket(Bucket::FaultDetour);
    // 5 extra waits × 2 operand accesses × 50 iterations.
    assert_eq!(detour, 500);
    // Exact makespan delta differs from `detour` only by DRAM refresh
    // realignment, so assert the direction, not the exact figure.
    assert!(r.makespan > healthy.makespan);
    assert_eq!(m.pe_cpu(0).d[0], {
        // Timing changes must not change results.
        let mut hm = small_machine();
        hm.load_pe_program(0, halting(body));
        hm.start_pe(0, 0);
        hm.run().unwrap();
        hm.pe_cpu(0).d[0]
    });
}

#[test]
fn stuck_tx_port_deadlocks_cleanly() {
    let mut m = small_machine();
    m.apply_fault_plan(&FaultPlan::parse("stuck:0").unwrap())
        .unwrap();
    m.connect(0, 1).unwrap();
    m.load_pe_program(0, halting("MOVE.B #$5A,$00E00000.L\nHALT\n"));
    m.load_pe_program(1, halting("MOVE.B $00E00002.L,D0\nHALT\n"));
    m.start_pe(0, 0);
    m.start_pe(1, 0);
    match m.run() {
        Err(RunError::Deadlock(s)) => {
            assert!(s.contains("PE0"), "{s}");
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn interior_net_fault_detours_but_delivers() {
    // Degraded routing (both cube₀ stages enabled) still delivers the byte,
    // one stage later, with the detour charged to the sender's fault bucket.
    let transfer = |plan: &str| {
        let mut m = small_machine();
        m.apply_fault_plan(&FaultPlan::parse(plan).unwrap())
            .unwrap();
        m.connect(0, 1).unwrap();
        m.load_pe_program(0, halting("MOVE.B #$5A,$00E00000.L\nHALT\n"));
        m.load_pe_program(
            1,
            halting(
                "
            poll: MOVE.B  $00E00004.L,D1
                AND.W   #2,D1
                BEQ     poll
                MOVE.B  $00E00002.L,D0
                HALT
            ",
            ),
        );
        m.start_pe(0, 0);
        m.start_pe(1, 0);
        let r = m.run().unwrap();
        assert_eq!(m.pe_cpu(1).d[0] & 0xFF, 0x5A);
        r
    };
    let healthy = transfer("");
    let faulted = transfer("box:1:0");
    let detour = faulted.accounts.as_ref().unwrap().pe[0].bucket(Bucket::FaultDetour);
    assert_eq!(
        detour,
        MachineConfig::small().net_stage_cycles,
        "one word × one extra stage"
    );
    assert_eq!(
        healthy.accounts.as_ref().unwrap().pe[0].bucket(Bucket::FaultDetour),
        0
    );
    assert!(faulted.pe[0].finished_at > healthy.pe[0].finished_at);
}

#[test]
fn interrupt_flag_stops_the_run() {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    let mut m = small_machine();
    let flag = Arc::new(AtomicBool::new(true));
    m.set_interrupt(flag);
    m.load_pe_program(0, halting("t: BRA t\nHALT\n"));
    m.start_pe(0, 0);
    assert_eq!(m.run().unwrap_err(), RunError::Interrupted);
}

#[test]
fn queue_empty_stall_counted_when_mc_is_slow() {
    // MC dawdles between broadcasts => PEs wait on an empty queue.
    let mut m = small_machine();
    let mut pe = ProgramBuilder::new();
    pe.emit(Instr::JmpSimd);
    pe.emit(Instr::Halt);
    let pe = pe.build().unwrap();
    let mut mc = ProgramBuilder::new();
    let b0 = mc.begin_block();
    mc.emit(Instr::Nop);
    mc.end_block();
    let b1 = mc.begin_block();
    mc.emit(Instr::JmpMimd { target: 1 });
    mc.end_block();
    mc.emit(Instr::SetMask { mask: 0xFFFF });
    mc.emit(Instr::StartPes);
    mc.emit(Instr::Enqueue { block: b0.0 });
    // Busy-wait on the MC before the next broadcast.
    mc.emit(Instr::Move {
        size: Size::Word,
        src: Ea::Imm(200),
        dst: Ea::D(DataReg::D1),
    });
    let l = mc.here("spin");
    mc.emit(Instr::Nop);
    mc.branch(
        Instr::Dbra {
            dst: DataReg::D1,
            target: 0,
        },
        l,
    );
    mc.emit(Instr::Enqueue { block: b1.0 });
    mc.emit(Instr::Halt);
    let mc = mc.build().unwrap();
    for i in 0..4 {
        m.load_pe_program(i, pe.clone());
    }
    m.load_mc_program(0, mc);
    let r = m.run().unwrap();
    assert!(
        r.fu[0].empty_stall_cycles > 1000,
        "empty stall {}",
        r.fu[0].empty_stall_cycles
    );
}
