//! # pasm — reproduction of *Non-Deterministic Instruction Time Experiments
//! on the PASM System Prototype* (Fineberg, Casavant, Schwederski, Siegel;
//! ICPP 1988)
//!
//! This crate is the public face of the reproduction: it wires the simulated
//! prototype (`pasm-machine`), the experiment programs (`pasm-prog`) and the
//! measurement machinery together.
//!
//! ```no_run
//! use pasm::{run_matmul_verified, paper_workload, Mode, Params};
//! use pasm_machine::MachineConfig;
//!
//! let cfg = MachineConfig::prototype();
//! let (a, b) = paper_workload(64, 1);
//! let out = run_matmul_verified(&cfg, Mode::Smimd, Params::new(64, 4), &a, &b).unwrap();
//! println!("S/MIMD n=64 p=4: {:.2} ms", out.millis());
//! ```
//!
//! * [`experiment`] — run any of the four program variants end to end,
//! * [`metrics`] — speed-up, efficiency, and phase breakdowns,
//! * [`figures`] — regenerate the data behind every table and figure of the
//!   paper's evaluation (Table 1, Figures 6–12),
//! * [`report`] — plain-text rendering of those tables,
//! * [`sweep`] — a small thread-pool for running independent simulations in
//!   parallel on the host.

pub mod experiment;
pub mod figures;
pub mod metrics;
pub mod report;
pub mod sweep;

pub use experiment::{
    paper_workload, run_concurrent, run_kernel, run_kernel_opts, run_keyed, run_keyed_traced,
    run_keyed_with_interrupt, run_matmul, run_matmul_opts, run_matmul_verified,
    run_matmul_with_accounting, run_reduction, run_span_log, ExperimentKey, ExperimentResult,
    ExperimentTrace, Job, JobOutcome, KernelOutcome, MatmulOutcome, Mode, Params, ReduceOutcome,
    RunOptions, MATMUL,
};
pub use metrics::{efficiency, speedup, Breakdown};
pub use pasm_kernels::{self as kernels, Kernel};
pub use pasm_machine::{
    single_faults, FaultPlan, Machine, MachineConfig, NetFault, PeFault, PeFaultSpec, ReleaseMode,
    RunResult,
};
pub use pasm_prog::{CommSync, Matrix};
pub use sweep::{par_map, WorkerPool};
