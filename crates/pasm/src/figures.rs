//! Regeneration of every table and figure in the paper's evaluation.
//!
//! Each function returns the rows/series the corresponding artifact plots;
//! the `bench` crate's binaries print them (see `report`) and EXPERIMENTS.md
//! records them against the paper's values. All runs use the paper's
//! workload — identity A, seeded uniform-random B — and the same data for
//! every mode at a given (n, p), as in paper §6.

use crate::experiment::{paper_workload, run_matmul, Mode, Params};
use crate::metrics::{efficiency, Breakdown};
use crate::sweep::par_map;
use pasm_machine::MachineConfig;
use pasm_prog::matmul::select_vm;
use pasm_prog::microbench::{self, MipsKind};
use pasm_prog::Matrix;
use pasm_util::impl_to_json;

/// The matrix sizes the paper sweeps (§6).
pub const PAPER_SIZES: [usize; 6] = [4, 8, 16, 64, 128, 256];

/// Default RNG seed for the B matrix.
pub const DEFAULT_SEED: u64 = 1988;

fn sizes_for(p: usize, ns: &[usize]) -> Vec<usize> {
    ns.iter().copied().filter(|&n| n >= p).collect()
}

// ----------------------------------------------------------------------
// Table 1 — raw performance in MIPS
// ----------------------------------------------------------------------

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    pub instruction: String,
    pub simd_mips: f64,
    pub mimd_mips: f64,
}

/// Measure the raw instruction rate per mode and instruction class.
pub fn table1(cfg: &MachineConfig) -> Vec<Table1Row> {
    const UNROLL: usize = 64;
    const REPS: usize = 2_000;
    [MipsKind::AddRegister, MipsKind::MoveMemory]
        .into_iter()
        .map(|kind| {
            // MIMD: one PE runs the unrolled loop from its own memory.
            let mut m = pasm_machine::Machine::new(cfg.clone());
            m.load_pe_program(0, microbench::mimd_program(kind, UNROLL, REPS));
            m.start_pe(0, 0);
            let r = m.run().expect("MIPS MIMD run");
            let mimd_mips = mips(r.pe[0].instrs, r.pe[0].finished_at);

            // SIMD: the MC loops, the PE executes the broadcast block.
            let vm = select_vm(cfg, cfg.pes_per_mc());
            let mut m = pasm_machine::Machine::new(cfg.clone());
            let (pe, mc) = microbench::simd_programs(kind, UNROLL, REPS, vm.mask);
            for &p in &vm.pes {
                m.load_pe_program(p, pe.clone());
            }
            m.load_mc_program(0, mc);
            let r = m.run().expect("MIPS SIMD run");
            let simd_mips = mips(r.pe[vm.pes[0]].instrs, r.pe[vm.pes[0]].finished_at);

            Table1Row {
                instruction: kind.name().to_string(),
                simd_mips,
                mimd_mips,
            }
        })
        .collect()
}

fn mips(instrs: u64, cycles: u64) -> f64 {
    let secs = cycles as f64 / pasm_isa::CLOCK_HZ as f64;
    instrs as f64 / secs / 1e6
}

// ----------------------------------------------------------------------
// Figure 6 — execution time vs problem size (p = 8, one multiply)
// ----------------------------------------------------------------------

/// One row of the Figure-6 series.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    pub n: usize,
    pub serial_ms: f64,
    pub simd_ms: f64,
    pub mimd_ms: f64,
    pub smimd_ms: f64,
}

/// Execution time vs n for all four versions.
pub fn fig6(cfg: &MachineConfig, p: usize, ns: &[usize], seed: u64) -> Vec<Fig6Row> {
    let points: Vec<usize> = sizes_for(p, ns);
    par_map(points, |&n| {
        let (a, b) = paper_workload(n, seed);
        let t = |mode| {
            run_matmul(cfg, mode, Params::new(n, p), &a, &b)
                .unwrap_or_else(|e| panic!("{mode:?} n={n} p={p}: {e}"))
                .millis()
        };
        Fig6Row {
            n,
            serial_ms: t(Mode::Serial),
            simd_ms: t(Mode::Simd),
            mimd_ms: t(Mode::Mimd),
            smimd_ms: t(Mode::Smimd),
        }
    })
}

// ----------------------------------------------------------------------
// Figure 7 — execution time vs number of added inner-loop multiplies
// ----------------------------------------------------------------------

/// One row of the Figure-7 series.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    pub extra_muls: usize,
    pub simd_ms: f64,
    pub smimd_ms: f64,
}

/// SIMD vs S/MIMD as data-dependent multiplies are added (paper: n=64, p=4,
/// crossover near fourteen added multiplications).
pub fn fig7(cfg: &MachineConfig, n: usize, p: usize, extras: &[usize], seed: u64) -> Vec<Fig7Row> {
    let (a, b) = paper_workload(n, seed);
    par_map(extras.to_vec(), |&extra| {
        let params = Params::new(n, p).with_extra(extra);
        let t = |mode| {
            run_matmul(cfg, mode, params, &a, &b)
                .expect("fig7 run")
                .millis()
        };
        Fig7Row {
            extra_muls: extra,
            simd_ms: t(Mode::Simd),
            smimd_ms: t(Mode::Smimd),
        }
    })
}

/// Locate the crossover: the smallest number of added multiplies at which the
/// S/MIMD version is at least as fast as the SIMD version. `None` if SIMD
/// stays ahead over the probed range.
pub fn fig7_crossover(rows: &[Fig7Row]) -> Option<usize> {
    rows.iter()
        .find(|r| r.smimd_ms <= r.simd_ms)
        .map(|r| r.extra_muls)
}

// ----------------------------------------------------------------------
// Figures 8–10 — contributions to execution time
// ----------------------------------------------------------------------

/// One bar of the Figures 8–10 stacked breakdown.
#[derive(Debug, Clone)]
pub struct BreakdownRow {
    pub n: usize,
    pub mode: Mode,
    pub extra_muls: usize,
    pub multiply_ms: f64,
    pub communication_ms: f64,
    pub other_ms: f64,
    pub total_ms: f64,
}

/// Breakdown of SIMD and S/MIMD time into multiplication, communication and
/// other, for a given number of added multiplies (1 ⇒ Fig. 8, 14 ⇒ Fig. 9,
/// 30 ⇒ Fig. 10 in the paper's numbering of *total* inner-loop multiplies —
/// pass `extra_muls = total - 1`).
pub fn fig8_10(
    cfg: &MachineConfig,
    p: usize,
    extra_muls: usize,
    ns: &[usize],
    seed: u64,
) -> Vec<BreakdownRow> {
    let mut jobs = Vec::new();
    for &n in &sizes_for(p, ns) {
        for mode in [Mode::Simd, Mode::Smimd] {
            jobs.push((n, mode));
        }
    }
    par_map(jobs, |&(n, mode)| {
        let (a, b) = paper_workload(n, seed);
        let out = run_matmul(cfg, mode, Params::new(n, p).with_extra(extra_muls), &a, &b)
            .expect("fig8-10 run");
        let br = Breakdown::of(&out);
        let ms = |c: u64| pasm_isa::cycles_to_ms(c);
        BreakdownRow {
            n,
            mode,
            extra_muls,
            multiply_ms: ms(br.multiply),
            communication_ms: ms(br.communication),
            other_ms: ms(br.other),
            total_ms: ms(br.total),
        }
    })
}

// ----------------------------------------------------------------------
// Figure 11 — efficiency vs problem size (p = 4, one multiply)
// ----------------------------------------------------------------------

/// One row of the Figure-11 series.
#[derive(Debug, Clone)]
pub struct EffRow {
    pub n: usize,
    pub simd: f64,
    pub mimd: f64,
    pub smimd: f64,
}

/// Efficiency (speed-up over serial divided by p) vs problem size.
pub fn fig11(cfg: &MachineConfig, p: usize, ns: &[usize], seed: u64) -> Vec<EffRow> {
    par_map(sizes_for(p, ns), |&n| {
        let (a, b) = paper_workload(n, seed);
        let serial = run_matmul(cfg, Mode::Serial, Params::new(n, p), &a, &b)
            .unwrap()
            .cycles;
        let e = |mode| {
            let t = run_matmul(cfg, mode, Params::new(n, p), &a, &b)
                .unwrap()
                .cycles;
            efficiency(serial, t, p)
        };
        EffRow {
            n,
            simd: e(Mode::Simd),
            mimd: e(Mode::Mimd),
            smimd: e(Mode::Smimd),
        }
    })
}

// ----------------------------------------------------------------------
// Figure 12 — efficiency vs number of processors (n = 64, one multiply)
// ----------------------------------------------------------------------

/// One row of the Figure-12 series.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    pub p: usize,
    pub simd: f64,
    pub mimd: f64,
    pub smimd: f64,
}

/// Efficiency vs processor count for a fixed n.
pub fn fig12(cfg: &MachineConfig, n: usize, ps: &[usize], seed: u64) -> Vec<Fig12Row> {
    let (a, b) = paper_workload(n, seed);
    let serial = run_matmul(cfg, Mode::Serial, Params::new(n, 1), &a, &b)
        .unwrap()
        .cycles;
    par_map(ps.to_vec(), |&p| {
        let e = |mode| {
            let t = run_matmul(cfg, mode, Params::new(n, p), &a, &b)
                .unwrap()
                .cycles;
            efficiency(serial, t, p)
        };
        Fig12Row {
            p,
            simd: e(Mode::Simd),
            mimd: e(Mode::Mimd),
            smimd: e(Mode::Smimd),
        }
    })
}

// ----------------------------------------------------------------------
// Ablations (ours; design decisions from DESIGN.md §4)
// ----------------------------------------------------------------------

/// Lockstep vs decoupled release at one experiment point.
#[derive(Debug, Clone)]
pub struct AblationReleaseRow {
    pub extra_muls: usize,
    pub lockstep_ms: f64,
    pub decoupled_ms: f64,
}

/// A1: how much of SIMD time is the per-instruction barrier (release-at-max)?
pub fn ablation_release(
    cfg: &MachineConfig,
    n: usize,
    p: usize,
    extras: &[usize],
    seed: u64,
) -> Vec<AblationReleaseRow> {
    let (a, b) = paper_workload(n, seed);
    par_map(extras.to_vec(), |&extra| {
        let params = Params::new(n, p).with_extra(extra);
        let t = |mode| {
            let cfg = MachineConfig {
                release_mode: mode,
                ..cfg.clone()
            };
            run_matmul(&cfg, Mode::Simd, params, &a, &b)
                .unwrap()
                .millis()
        };
        AblationReleaseRow {
            extra_muls: extra,
            lockstep_ms: t(pasm_machine::ReleaseMode::Lockstep),
            decoupled_ms: t(pasm_machine::ReleaseMode::Decoupled),
        }
    })
}

/// SIMD time and queue-empty stalls at one queue capacity.
#[derive(Debug, Clone)]
pub struct AblationQueueRow {
    pub capacity_words: u32,
    pub simd_ms: f64,
    pub empty_stall_cycles: u64,
    pub max_depth_words: u32,
}

/// A2: SIMD superlinearity requires the queue to stay non-empty (paper §10);
/// shrinking it forces the PEs to wait on MC control flow.
pub fn ablation_queue(
    cfg: &MachineConfig,
    n: usize,
    p: usize,
    capacities: &[u32],
    seed: u64,
) -> Vec<AblationQueueRow> {
    let (a, b) = paper_workload(n, seed);
    par_map(capacities.to_vec(), |&cap| {
        let cfg = MachineConfig {
            queue_capacity_words: cap,
            ..cfg.clone()
        };
        let out = run_matmul(&cfg, Mode::Simd, Params::new(n, p), &a, &b).unwrap();
        AblationQueueRow {
            capacity_words: cap,
            simd_ms: out.millis(),
            empty_stall_cycles: out
                .run
                .fu
                .iter()
                .map(|f| f.empty_stall_cycles)
                .max()
                .unwrap_or(0),
            max_depth_words: out
                .run
                .fu
                .iter()
                .map(|f| f.max_depth_words)
                .max()
                .unwrap_or(0),
        }
    })
}

/// Crossover position as a function of multiplier bit-density.
#[derive(Debug, Clone)]
pub struct AblationDensityRow {
    pub ones: u32,
    pub crossover: Option<usize>,
}

/// A3: with bit-density-controlled B data the multiply time is *constant*, so
/// the decoupling advantage should vanish and the crossover disappear;
/// uniform data restores it.
pub fn ablation_density(
    cfg: &MachineConfig,
    n: usize,
    p: usize,
    densities: &[u32],
    extras: &[usize],
    seed: u64,
) -> Vec<AblationDensityRow> {
    par_map(densities.to_vec(), |&ones| {
        let a = Matrix::identity(n);
        let b = Matrix::bit_density(n, ones, seed);
        let rows: Vec<Fig7Row> = extras
            .iter()
            .map(|&extra| {
                let params = Params::new(n, p).with_extra(extra);
                let t = |mode| run_matmul(cfg, mode, params, &a, &b).unwrap().millis();
                Fig7Row {
                    extra_muls: extra,
                    simd_ms: t(Mode::Simd),
                    smimd_ms: t(Mode::Smimd),
                }
            })
            .collect();
        AblationDensityRow {
            ones,
            crossover: fig7_crossover(&rows),
        }
    })
}

impl_to_json!(Table1Row {
    instruction,
    simd_mips,
    mimd_mips
});
impl_to_json!(Fig6Row {
    n,
    serial_ms,
    simd_ms,
    mimd_ms,
    smimd_ms
});
impl_to_json!(Fig7Row {
    extra_muls,
    simd_ms,
    smimd_ms
});
impl_to_json!(BreakdownRow {
    n,
    mode,
    extra_muls,
    multiply_ms,
    communication_ms,
    other_ms,
    total_ms
});
impl_to_json!(EffRow {
    n,
    simd,
    mimd,
    smimd
});
impl_to_json!(Fig12Row {
    p,
    simd,
    mimd,
    smimd
});
impl_to_json!(AblationReleaseRow {
    extra_muls,
    lockstep_ms,
    decoupled_ms
});
impl_to_json!(AblationQueueRow {
    capacity_words,
    simd_ms,
    empty_stall_cycles,
    max_depth_words
});
impl_to_json!(AblationDensityRow { ones, crossover });
