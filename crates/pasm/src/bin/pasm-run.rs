//! `pasm-run` — assemble a program file and run it on one simulated PE.
//!
//! A scratch-pad for the MC68000-style assembly dialect and the prototype's
//! timing model:
//!
//! ```sh
//! cargo run -p pasm --bin pasm-run -- program.s [--listing] [--stats] [--max-cycles N] [--trace out.jsonl]
//! ```
//!
//! The program runs in MIMD mode on PE 0 of a small machine (so DRAM wait
//! states and refresh apply, as they would on the prototype). On `HALT` the
//! tool prints the register file, the condition codes, and the cycle count;
//! `--stats` adds the static timing analysis of `pasm_isa::analysis`;
//! `--trace` writes the program's `MARK`-delimited phase spans as JSONL trace
//! events (see `docs/OBSERVABILITY.md` for the schema).

use pasm_isa::analysis;
use pasm_machine::{Machine, MachineConfig};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: pasm-run <file.s> [--listing] [--stats] [--max-cycles N] [--trace out.jsonl]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut file = None;
    let mut listing = false;
    let mut stats = false;
    let mut trace = None;
    let mut max_cycles = 100_000_000u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--listing" => listing = true,
            "--stats" => stats = true,
            "--trace" => match args.next() {
                Some(p) => trace = Some(p),
                None => return usage(),
            },
            "--max-cycles" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => max_cycles = v,
                None => return usage(),
            },
            _ if file.is_none() && !a.starts_with('-') => file = Some(a),
            _ => return usage(),
        }
    }
    let Some(file) = file else { return usage() };

    let src = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pasm-run: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match pasm_isa::asm::assemble(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("pasm-run: {file}: {e}");
            return ExitCode::FAILURE;
        }
    };

    if listing {
        print!("{}", program.listing());
        println!();
    }
    if stats {
        let s = analysis::program_stats(&program);
        println!(
            "static: {} instructions ({} words), {} data-dependent-time, {} mul/div, {} control",
            s.main_instrs, s.main_words, s.variable_time_instrs, s.mul_div_instrs, s.control_instrs
        );
        let straight: Vec<pasm_isa::Instr> = program
            .instrs
            .iter()
            .copied()
            .filter(|i| !i.is_control_flow())
            .collect();
        let b = analysis::block_bounds(&straight);
        println!(
            "static: straight-line core-cycle bounds {}..{}\n",
            b.min, b.max
        );
    }

    let cfg = MachineConfig {
        max_cycles,
        ..MachineConfig::small()
    };
    let mut machine = Machine::new(cfg);
    machine.load_pe_program(0, program);
    machine.start_pe(0, 0);
    match machine.run() {
        Ok(run) => {
            let cpu = machine.pe_cpu(0);
            for i in 0..8 {
                println!(
                    "D{i} = {:#010X}  {:>10}    A{i} = {:#010X}",
                    cpu.d[i], cpu.d[i] as i32, cpu.a[i]
                );
            }
            println!("CCR: {}", cpu.ccr);
            let t = &run.pe[0];
            println!(
                "\n{} instructions in {} cycles ({:.3} ms at 8 MHz); {} multiply/divide cycles, {} memory-wait cycles",
                t.instrs,
                t.finished_at,
                pasm_isa::cycles_to_ms(t.finished_at),
                t.mul_cycles,
                t.fetch_wait_cycles + t.data_wait_cycles,
            );
            if let Some(path) = trace {
                let log = pasm::run_span_log(&run);
                if let Err(e) = std::fs::write(&path, log.to_jsonl()) {
                    eprintln!("pasm-run: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("trace: {} span(s) written to {path}", log.len());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pasm-run: {e}");
            ExitCode::FAILURE
        }
    }
}
