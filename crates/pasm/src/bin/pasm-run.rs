//! `pasm-run` — assemble a program file and run it on one simulated PE, or
//! run a matmul experiment (optionally on a faulted machine).
//!
//! A scratch-pad for the MC68000-style assembly dialect and the prototype's
//! timing model:
//!
//! ```sh
//! cargo run -p pasm --bin pasm-run -- program.s [--listing] [--stats] [--max-cycles N] [--trace out.jsonl]
//! cargo run -p pasm --bin pasm-run -- --mode smimd --n 16 --p 8 [--kernel NAME] [--seed S] [--fault box:1:0]
//! ```
//!
//! In file mode, the program runs in MIMD mode on PE 0 of a small machine
//! (so DRAM wait states and refresh apply, as they would on the prototype).
//! On `HALT` the tool prints the register file, the condition codes, and the
//! cycle count; `--stats` adds the static timing analysis of
//! `pasm_isa::analysis`; `--trace` writes the program's `MARK`-delimited
//! phase spans as JSONL trace events (see `docs/OBSERVABILITY.md`).
//!
//! In `--mode` mode, the tool runs one registered workload (`--kernel`,
//! default `matmul` — see `docs/KERNELS.md`) on the 16-PE prototype,
//! verifies the output against the kernel's scalar host reference, and —
//! with `--fault` — also runs the fault-free baseline and reports the
//! measured slowdown. All user errors (unknown mode or kernel,
//! non-power-of-two `--p`, bad fault spec) exit with a clean one-line
//! message, never a panic.

use pasm_isa::analysis;
use pasm_machine::{FaultPlan, Machine, MachineConfig};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: pasm-run <file.s> [--listing] [--stats] [--max-cycles N] [--trace out.jsonl]\n\
                pasm-run --mode <serial|simd|mimd|smimd> --n N [--p P] [--kernel NAME] [--seed S] [--fault SPEC]"
    );
    ExitCode::from(2)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("pasm-run: {msg}");
    ExitCode::FAILURE
}

/// The `--mode` path: one keyed kernel run on the prototype configuration,
/// with every invalid input reported as a one-line error.
#[allow(clippy::too_many_arguments)]
fn run_experiment(
    mode_str: &str,
    kernel_name: &str,
    n: Option<usize>,
    p: usize,
    seed: u64,
    fault_spec: Option<&str>,
    max_cycles: u64,
) -> ExitCode {
    let Some(mode) = pasm::Mode::parse(mode_str) else {
        return fail(&format!(
            "unknown --mode `{mode_str}` (expected serial, simd, mimd, or smimd)"
        ));
    };
    let Some(kernel) = pasm::kernels::find(kernel_name) else {
        return fail(&format!(
            "unknown --kernel `{kernel_name}` (registered: {})",
            pasm::kernels::names().join(", ")
        ));
    };
    let Some(n) = n else {
        return fail("--mode requires --n (problem size)");
    };
    let mut config = MachineConfig::prototype();
    config.max_cycles = max_cycles;
    if !p.is_power_of_two() || p == 0 {
        return fail(&format!("--p must be a power of two, got {p}"));
    }
    if p > config.n_pes {
        return fail(&format!(
            "--p must be at most {} PEs, got {p}",
            config.n_pes
        ));
    }
    if mode == pasm::Mode::Serial && !kernel.supports_serial() {
        return fail(&format!(
            "kernel `{}` has no serial variant (parallel modes only)",
            kernel.name()
        ));
    }
    if mode != pasm::Mode::Serial {
        if let Err(e) = kernel.validate(n, p) {
            return fail(&e);
        }
    }
    let fault = match fault_spec {
        None => FaultPlan::default(),
        Some(spec) => match FaultPlan::parse(spec).and_then(|f| {
            f.validate(config.n_pes)?;
            Ok(f)
        }) {
            Ok(f) => f,
            Err(e) => return fail(&format!("bad --fault `{spec}`: {e}")),
        },
    };
    let key = pasm::ExperimentKey {
        config,
        mode,
        params: pasm::Params::new(n, if mode == pasm::Mode::Serial { 1 } else { p }),
        seed,
        fault,
        workload: kernel.name(),
    };
    let result = match pasm::run_keyed(&key) {
        Ok(r) => r,
        Err(e) => return fail(&e.to_string()),
    };
    let input = kernel.generate(n, seed);
    let expect = kernel.reference(key.params, &input);
    let correct = pasm::kernels::checksum(&expect) == result.c_checksum;
    println!(
        "{} {} n={} p={} seed={}: {} cycles ({:.3} ms), output {}",
        kernel.name(),
        mode,
        n,
        key.params.p,
        seed,
        result.cycles,
        result.millis,
        if correct { "correct" } else { "WRONG" },
    );
    if !result.fault.is_empty() {
        let detour = result.pe_buckets[pasm_machine::Bucket::FaultDetour as usize];
        println!(
            "fault {}: baseline {} cycles, slowdown {:.4}, fault_detour {} cycles",
            result.fault, result.baseline_cycles, result.slowdown, detour,
        );
    }
    if correct {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut file = None;
    let mut listing = false;
    let mut stats = false;
    let mut trace = None;
    let mut max_cycles = 100_000_000u64;
    let mut mode = None;
    let mut kernel = "matmul".to_string();
    let mut n = None;
    let mut p = 4usize;
    let mut seed = pasm::figures::DEFAULT_SEED;
    let mut fault = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--listing" => listing = true,
            "--stats" => stats = true,
            "--trace" => match args.next() {
                Some(p) => trace = Some(p),
                None => return usage(),
            },
            "--max-cycles" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => max_cycles = v,
                None => return usage(),
            },
            "--mode" => match args.next() {
                Some(m) => mode = Some(m),
                None => return usage(),
            },
            "--kernel" => match args.next() {
                Some(k) => kernel = k,
                None => return usage(),
            },
            "--n" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => n = Some(v),
                None => return usage(),
            },
            "--p" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => p = v,
                None => return usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--fault" => match args.next() {
                Some(f) => fault = Some(f),
                None => return usage(),
            },
            _ if file.is_none() && !a.starts_with('-') => file = Some(a),
            _ => return usage(),
        }
    }
    if let Some(mode) = mode {
        return run_experiment(&mode, &kernel, n, p, seed, fault.as_deref(), max_cycles);
    }
    let Some(file) = file else { return usage() };

    let src = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pasm-run: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match pasm_isa::asm::assemble(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("pasm-run: {file}: {e}");
            return ExitCode::FAILURE;
        }
    };

    if listing {
        print!("{}", program.listing());
        println!();
    }
    if stats {
        let s = analysis::program_stats(&program);
        println!(
            "static: {} instructions ({} words), {} data-dependent-time, {} mul/div, {} control",
            s.main_instrs, s.main_words, s.variable_time_instrs, s.mul_div_instrs, s.control_instrs
        );
        let straight: Vec<pasm_isa::Instr> = program
            .instrs
            .iter()
            .copied()
            .filter(|i| !i.is_control_flow())
            .collect();
        let b = analysis::block_bounds(&straight);
        println!(
            "static: straight-line core-cycle bounds {}..{}\n",
            b.min, b.max
        );
    }

    let cfg = MachineConfig {
        max_cycles,
        ..MachineConfig::small()
    };
    let mut machine = Machine::new(cfg);
    machine.load_pe_program(0, program);
    machine.start_pe(0, 0);
    match machine.run() {
        Ok(run) => {
            let cpu = machine.pe_cpu(0);
            for i in 0..8 {
                println!(
                    "D{i} = {:#010X}  {:>10}    A{i} = {:#010X}",
                    cpu.d[i], cpu.d[i] as i32, cpu.a[i]
                );
            }
            println!("CCR: {}", cpu.ccr);
            let t = &run.pe[0];
            println!(
                "\n{} instructions in {} cycles ({:.3} ms at 8 MHz); {} multiply/divide cycles, {} memory-wait cycles",
                t.instrs,
                t.finished_at,
                pasm_isa::cycles_to_ms(t.finished_at),
                t.mul_cycles,
                t.fetch_wait_cycles + t.data_wait_cycles,
            );
            if let Some(path) = trace {
                let log = pasm::run_span_log(&run);
                if let Err(e) = std::fs::write(&path, log.to_jsonl()) {
                    eprintln!("pasm-run: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("trace: {} span(s) written to {path}", log.len());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pasm-run: {e}");
            ExitCode::FAILURE
        }
    }
}
