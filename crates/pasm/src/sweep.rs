//! Host-side parallelism for parameter sweeps.
//!
//! Every experiment point is an independent simulation (its own `Machine`),
//! so sweeps parallelize trivially across host threads. A tiny work-stealing
//! map over a crossbeam channel keeps the bench harness simple and the
//! machine-local state `Send`-checked by construction.

use crossbeam::channel;
use std::thread;

/// Parallel map preserving input order. `f` runs on a pool sized to the host
/// parallelism (capped by the number of items).
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(n);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }

    let (tx, rx) = channel::unbounded::<(usize, &T)>();
    for pair in items.iter().enumerate() {
        tx.send(pair).expect("queue send");
    }
    drop(tx);

    let (out_tx, out_rx) = channel::unbounded::<(usize, R)>();
    thread::scope(|s| {
        for _ in 0..workers {
            let rx = rx.clone();
            let out_tx = out_tx.clone();
            let f = &f;
            s.spawn(move || {
                while let Ok((i, item)) = rx.recv() {
                    out_tx.send((i, f(item))).expect("result send");
                }
            });
        }
        drop(out_tx);
    });

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    while let Ok((i, r)) = out_rx.recv() {
        slots[i] = Some(r);
    }
    slots.into_iter().map(|r| r.expect("all results delivered")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let out = par_map((0..100).collect(), |&x| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(par_map(vec![41], |&x| x + 1), vec![42]);
    }
}
