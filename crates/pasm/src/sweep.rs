//! Host-side parallelism: a reusable worker pool and the parameter-sweep map.
//!
//! Every experiment point is an independent simulation (its own `Machine`),
//! so sweeps parallelize trivially across host threads. Two tools live here,
//! both on `std::sync::mpsc` (no external dependencies):
//!
//! * [`WorkerPool`] — a long-lived pool executing boxed `'static` tasks.
//!   This is the execution substrate of the `pasm-server` simulation service;
//!   it drains every already-submitted task on [`WorkerPool::join`], which is
//!   what makes the server's graceful shutdown possible.
//! * [`par_map`] — an ordered parallel map over borrowed items on scoped
//!   threads, used by the figure sweeps in [`crate::figures`].

use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

/// A boxed unit of work for a [`WorkerPool`].
pub type Task = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size thread pool over a shared `std::sync::mpsc` channel.
///
/// Tasks are executed in submission order (each worker pops the next pending
/// task); the pool itself never queues more than the channel holds and leaves
/// admission control — bounding, rejection — to the caller, which is exactly
/// the split `pasm-server` needs: its bounded job queue decides *whether* a
/// job is admitted, the pool decides *when* it runs.
pub struct WorkerPool {
    tx: Option<Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn a pool of `workers` threads (at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = channel::<Task>();
        // `mpsc::Receiver` is single-consumer; share it behind a mutex so all
        // workers pop from one queue (the idiomatic std-only work queue).
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                thread::Builder::new()
                    .name(format!("pasm-worker-{i}"))
                    .spawn(move || loop {
                        let task = {
                            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                            guard.recv()
                        };
                        match task {
                            Ok(task) => task(),
                            Err(_) => break, // all senders dropped: drain done
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Pool sized to the host parallelism.
    pub fn with_host_parallelism() -> Self {
        Self::new(
            thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4),
        )
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Submit a task. Panics if called after [`WorkerPool::join`].
    pub fn execute(&self, task: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool already joined")
            .send(Box::new(task))
            .expect("worker channel closed");
    }

    /// Close the queue and block until every already-submitted task has
    /// finished (graceful drain). Idempotent.
    pub fn join(&mut self) {
        drop(self.tx.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.join();
    }
}

/// Parallel map preserving input order. `f` runs on scoped threads sized to
/// the host parallelism (capped by the number of items).
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }

    let (tx, rx) = channel::<(usize, &T)>();
    for pair in items.iter().enumerate() {
        tx.send(pair).expect("queue send");
    }
    drop(tx);
    let rx = Mutex::new(rx);

    let (out_tx, out_rx) = channel::<(usize, R)>();
    thread::scope(|s| {
        for _ in 0..workers {
            let rx = &rx;
            let out_tx = out_tx.clone();
            let f = &f;
            s.spawn(move || loop {
                // Pop under the lock, compute outside it.
                let next = rx.lock().unwrap_or_else(|e| e.into_inner()).try_recv();
                match next {
                    Ok((i, item)) => out_tx.send((i, f(item))).expect("result send"),
                    Err(_) => break, // the input queue was fully pre-filled
                }
            });
        }
        drop(out_tx);
    });

    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    while let Ok((i, r)) = out_rx.recv() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("all results delivered"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn maps_in_order() {
        let out = par_map((0..100).collect(), |&x| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(Vec::<i32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(par_map(vec![41], |&x| x + 1), vec![42]);
    }

    #[test]
    fn pool_runs_all_tasks() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = WorkerPool::new(4);
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn join_drains_pending_tasks() {
        // One slow worker, many queued tasks: join must wait for all of them.
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = WorkerPool::new(1);
        for _ in 0..20 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                thread::sleep(std::time::Duration::from_millis(1));
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 20);
        pool.join(); // idempotent
    }
}
