//! Plain-text rendering of the regenerated tables and figure series.

use crate::figures::*;

/// Render Table 1 (raw MIPS).
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut s = String::from("Table 1: prototype raw performance (MIPS)\n");
    s.push_str("instruction        SIMD    MIMD    SIMD/MIMD\n");
    for r in rows {
        s.push_str(&format!(
            "{:<17} {:>6.3}  {:>6.3}   {:>6.3}\n",
            r.instruction,
            r.simd_mips,
            r.mimd_mips,
            r.simd_mips / r.mimd_mips
        ));
    }
    s
}

/// Render the Figure-6 series (execution time vs n).
pub fn render_fig6(rows: &[Fig6Row]) -> String {
    let mut s = String::from("Figure 6: execution time (ms) vs problem size\n");
    s.push_str("    n     SISD       SIMD       MIMD     S/MIMD\n");
    for r in rows {
        s.push_str(&format!(
            "{:>5} {:>9.2} {:>9.2} {:>9.2} {:>9.2}\n",
            r.n, r.serial_ms, r.simd_ms, r.mimd_ms, r.smimd_ms
        ));
    }
    s
}

/// Render the Figure-7 series (time vs added multiplies) with the crossover.
pub fn render_fig7(rows: &[Fig7Row]) -> String {
    let mut s = String::from("Figure 7: execution time (ms) vs added inner-loop multiplies\n");
    s.push_str("extra     SIMD    S/MIMD   faster\n");
    for r in rows {
        s.push_str(&format!(
            "{:>5} {:>8.2} {:>8.2}   {}\n",
            r.extra_muls,
            r.simd_ms,
            r.smimd_ms,
            if r.smimd_ms <= r.simd_ms {
                "S/MIMD"
            } else {
                "SIMD"
            }
        ));
    }
    match fig7_crossover(rows) {
        Some(x) => s.push_str(&format!("crossover at {x} added multiplies\n")),
        None => s.push_str("no crossover in probed range\n"),
    }
    s
}

/// Render a Figures-8–10 breakdown series.
pub fn render_breakdown(rows: &[BreakdownRow]) -> String {
    let extra = rows.first().map(|r| r.extra_muls).unwrap_or(0);
    let mut s = format!(
        "Figures 8-10: contributions to execution time (ms), {} total inner-loop multiplies\n",
        extra + 1
    );
    s.push_str("    n  mode     multiply     comm    other    total\n");
    for r in rows {
        s.push_str(&format!(
            "{:>5}  {:<7} {:>9.2} {:>8.2} {:>8.2} {:>8.2}\n",
            r.n,
            r.mode.to_string(),
            r.multiply_ms,
            r.communication_ms,
            r.other_ms,
            r.total_ms
        ));
    }
    s
}

/// Render the Figure-11 series (efficiency vs n).
pub fn render_fig11(rows: &[EffRow]) -> String {
    let mut s = String::from("Figure 11: efficiency vs problem size\n");
    s.push_str("    n    SIMD    MIMD  S/MIMD\n");
    for r in rows {
        s.push_str(&format!(
            "{:>5} {:>7.3} {:>7.3} {:>7.3}\n",
            r.n, r.simd, r.mimd, r.smimd
        ));
    }
    s
}

/// Render the Figure-12 series (efficiency vs p).
pub fn render_fig12(rows: &[Fig12Row]) -> String {
    let mut s = String::from("Figure 12: efficiency vs number of processors\n");
    s.push_str("    p    SIMD    MIMD  S/MIMD\n");
    for r in rows {
        s.push_str(&format!(
            "{:>5} {:>7.3} {:>7.3} {:>7.3}\n",
            r.p, r.simd, r.mimd, r.smimd
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Mode;

    #[test]
    fn renders_are_nonempty_and_tabular() {
        let t1 = render_table1(&[Table1Row {
            instruction: "ADD.W Dn,Dn".into(),
            simd_mips: 2.0,
            mimd_mips: 1.5,
        }]);
        assert!(t1.contains("ADD.W"));
        assert!(t1.contains("1.333"));

        let f7 = render_fig7(&[
            Fig7Row {
                extra_muls: 0,
                simd_ms: 1.0,
                smimd_ms: 2.0,
            },
            Fig7Row {
                extra_muls: 14,
                simd_ms: 3.0,
                smimd_ms: 2.9,
            },
        ]);
        assert!(f7.contains("crossover at 14"));

        let bd = render_breakdown(&[BreakdownRow {
            n: 64,
            mode: Mode::Simd,
            extra_muls: 13,
            multiply_ms: 5.0,
            communication_ms: 1.0,
            other_ms: 0.5,
            total_ms: 6.5,
        }]);
        assert!(bd.contains("14 total"));
        assert!(bd.contains("SIMD"));
    }
}
