//! Derived measurements: speed-up, efficiency, and the phase breakdown.

use crate::experiment::MatmulOutcome;
use pasm_prog::codegen::{PHASE_COMM, PHASE_MUL};

/// Speed-up of a parallel run over the serial baseline.
pub fn speedup(serial_cycles: u64, parallel_cycles: u64) -> f64 {
    serial_cycles as f64 / parallel_cycles as f64
}

/// Efficiency as defined in paper §10: speed-up divided by the number of PEs.
/// The paper's SIMD version exceeds 1.0 ("superlinear") because the MCs do the
/// control flow and the queue fetches faster than PE DRAM.
pub fn efficiency(serial_cycles: u64, parallel_cycles: u64, p: usize) -> f64 {
    speedup(serial_cycles, parallel_cycles) / p as f64
}

/// The Figures 8–10 decomposition of a run's execution time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Breakdown {
    /// Cycles in the multiplication section (incl. the add into C and the
    /// related address arithmetic, as in the paper).
    pub multiply: u64,
    /// Cycles in the communication section (polls/barriers included).
    pub communication: u64,
    /// Everything else: clearing C, pointer rotation, loop overheads.
    pub other: u64,
    /// Total program time.
    pub total: u64,
}

impl Breakdown {
    /// Extract the breakdown from a finished run. Phase times are taken from
    /// the slowest PE's accounting (the makespan perspective).
    pub fn of(out: &MatmulOutcome) -> Breakdown {
        let multiply = out.run.phase_max(PHASE_MUL as usize);
        let communication = out.run.phase_max(PHASE_COMM as usize);
        let total = out.cycles;
        Breakdown {
            multiply,
            communication,
            other: total.saturating_sub(multiply + communication),
            total,
        }
    }

    /// Fractions of total time (multiply, communication, other).
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total.max(1) as f64;
        (
            self.multiply as f64 / t,
            self.communication as f64 / t,
            self.other as f64 / t,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_and_efficiency() {
        assert!((speedup(1000, 250) - 4.0).abs() < 1e-12);
        assert!((efficiency(1000, 250, 4) - 1.0).abs() < 1e-12);
        assert!(efficiency(1000, 300, 4) < 1.0);
        assert!(efficiency(1000, 200, 4) > 1.0, "superlinear case");
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let b = Breakdown {
            multiply: 60,
            communication: 25,
            other: 15,
            total: 100,
        };
        let (m, c, o) = b.fractions();
        assert!((m + c + o - 1.0).abs() < 1e-12);
    }
}
