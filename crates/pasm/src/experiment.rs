//! End-to-end experiment execution: build a machine, load a matmul variant,
//! run it, and collect both the numeric result and the timing traces.

use pasm_kernels::Kernel;
use pasm_machine::{
    FaultPlan, Machine, MachineConfig, RunError, RunResult, BUCKET_NAMES, N_BUCKETS,
};
use pasm_prog::matmul::{self, select_vm, MatmulParams};
use pasm_prog::Matrix;
use pasm_util::json::{Json, ToJson};
use pasm_util::{Fnv1a, SpanLog};
use std::hash::{Hash, Hasher};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// The four program variants of the paper (defined next to the program
/// generators; re-exported here where the experiment API lives).
pub use pasm_prog::Mode;

/// Re-export of the workload registry: the named kernels an
/// [`ExperimentKey`] can select via its `workload` field.
pub use pasm_kernels::{self as kernels, MATMUL};

/// A completed matrix-multiplication run.
#[derive(Debug, Clone)]
pub struct MatmulOutcome {
    pub mode: Mode,
    pub params: MatmulParams,
    /// Measured program execution time in cycles (the makespan over all
    /// participating processors, MCs included).
    pub cycles: u64,
    /// Full machine traces.
    pub run: RunResult,
    /// The computed product, gathered from PE memories.
    pub c: Matrix,
}

impl MatmulOutcome {
    /// Execution time in milliseconds on the 8 MHz prototype clock.
    pub fn millis(&self) -> f64 {
        pasm_isa::cycles_to_ms(self.cycles)
    }

    /// The run's phase spans as a named [`SpanLog`] (`pe<i>` / `mc<i>`
    /// sources, phase names from [`pasm_prog::codegen::phase_name`]), ready
    /// for JSONL emission. Empty when accounting was disabled.
    pub fn span_log(&self) -> SpanLog {
        run_span_log(&self.run)
    }
}

/// Convert a run's recorded phase spans into a named [`SpanLog`]: sources are
/// `pe<i>` / `mc<i>`, names come from [`pasm_prog::codegen::phase_name`].
/// Empty when the machine ran with accounting disabled.
pub fn run_span_log(run: &RunResult) -> SpanLog {
    let mut log = SpanLog::new();
    let Some(accounts) = &run.accounts else {
        return log;
    };
    for (i, acc) in accounts.pe.iter().enumerate() {
        for s in &acc.spans {
            log.record(
                &format!("pe{i}"),
                pasm_prog::codegen::phase_name(s.phase),
                s.start,
                s.end,
            );
        }
    }
    for (i, acc) in accounts.mc.iter().enumerate() {
        for s in &acc.spans {
            log.record(
                &format!("mc{i}"),
                pasm_prog::codegen::phase_name(s.phase),
                s.start,
                s.end,
            );
        }
    }
    log
}

/// Load one matmul job onto a machine's virtual machine (moved to
/// [`pasm_kernels::matmul::load_matmul`] with the workload registry; kept
/// here as a thin alias because every runner in this module goes through it).
use pasm_kernels::matmul::load_matmul as load_job;

/// Run one matrix multiplication. `a` and `b` are the operand matrices
/// (`n × n`, matching `params.n`). Cycle accounting is on (it is effectively
/// free — see `benches/accounting.rs`); use [`run_matmul_with_accounting`]
/// to turn it off.
pub fn run_matmul(
    cfg: &MachineConfig,
    mode: Mode,
    params: MatmulParams,
    a: &Matrix,
    b: &Matrix,
) -> Result<MatmulOutcome, RunError> {
    run_matmul_with_accounting(cfg, mode, params, a, b, true)
}

/// [`run_matmul`] with an explicit cycle-accounting toggle. Disabling
/// accounting never changes simulated timing — the buckets observe the
/// scheduler, they are not an input to it (asserted by the integration
/// tests) — it only drops the per-PE breakdowns from the outcome.
pub fn run_matmul_with_accounting(
    cfg: &MachineConfig,
    mode: Mode,
    params: MatmulParams,
    a: &Matrix,
    b: &Matrix,
    accounting: bool,
) -> Result<MatmulOutcome, RunError> {
    run_matmul_opts(
        cfg,
        mode,
        params,
        a,
        b,
        &RunOptions {
            accounting,
            ..RunOptions::default()
        },
    )
}

/// Everything a matmul run can be parameterized with beyond mode, size and
/// operands: cycle accounting, injected faults, and an external interrupt
/// flag for cancellation/watchdog use.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Collect per-component [`pasm_machine::CycleAccount`]s (default on).
    pub accounting: bool,
    /// Faults to inject before circuits are established (default none).
    pub fault: FaultPlan,
    /// Cooperative stop flag, polled by the scheduler; setting it makes the
    /// run end with [`RunError::Interrupted`].
    pub interrupt: Option<Arc<AtomicBool>>,
    /// Use the block-compiled fast path (default on). Turning it off forces
    /// the per-instruction interpreter; results are byte-identical either
    /// way (gated by the fast-vs-interpreter equivalence tests) — the toggle
    /// exists for that gate and for the `blockbench` comparison.
    pub fast_path: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            accounting: true,
            fault: FaultPlan::default(),
            interrupt: None,
            fast_path: true,
        }
    }
}

/// The fully-parameterized matmul runner: [`run_matmul`] plus fault
/// injection and cooperative interruption (see [`RunOptions`]).
///
/// Faults are applied **before** circuit establishment, so the network
/// reconfigures (bypass/enable the two cube₀ stages) and the ring allocator
/// routes around the damage; PE fault models attach to the affected PEs.
pub fn run_matmul_opts(
    cfg: &MachineConfig,
    mode: Mode,
    params: MatmulParams,
    a: &Matrix,
    b: &Matrix,
    opts: &RunOptions,
) -> Result<MatmulOutcome, RunError> {
    assert_eq!(a.n, params.n);
    assert_eq!(b.n, params.n);
    let mut machine = Machine::new(cfg.clone());
    machine.set_accounting(opts.accounting);
    machine.set_fast_path(opts.fast_path);
    machine
        .apply_fault_plan(&opts.fault)
        .map_err(RunError::Net)?;
    if let Some(flag) = &opts.interrupt {
        machine.set_interrupt(Arc::clone(flag));
    }
    let vm = select_vm(cfg, if mode == Mode::Serial { 1 } else { params.p });
    let layout = load_job(&mut machine, mode, params, &vm, a, b)?;
    let run = machine.run()?;
    let c = layout.read_c(&machine, &vm.pes[..layout.p]);
    Ok(MatmulOutcome {
        mode,
        params,
        cycles: run.makespan,
        run,
        c,
    })
}

/// One job of a partitioned (multi-virtual-machine) run.
#[derive(Debug, Clone)]
pub struct Job {
    pub mode: Mode,
    pub params: MatmulParams,
    /// MCs (and thus PE groups) this job's virtual machine occupies.
    pub mcs: Vec<usize>,
    pub a: Matrix,
    pub b: Matrix,
}

/// Outcome of one job of a partitioned run.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    pub mode: Mode,
    pub params: MatmulParams,
    /// This job's completion time: the latest finish among its own PEs and MCs.
    pub cycles: u64,
    pub c: Matrix,
}

/// Run several jobs **simultaneously** on disjoint virtual machines of one
/// physical machine — PASM's partitionability (the first letter of its name).
///
/// Each job gets the PE groups of its `mcs`; jobs must name disjoint MC sets.
/// Because partition members agree in the low-order PE-address bits, the
/// concurrent ring circuits share low-stage boxes only in straight mode and
/// are disjoint elsewhere, so the partitions neither block nor slow each
/// other (asserted by the integration tests).
pub fn run_concurrent(cfg: &MachineConfig, jobs: &[Job]) -> Result<Vec<JobOutcome>, RunError> {
    let mut seen = vec![false; cfg.n_mcs];
    for j in jobs {
        for &mc in &j.mcs {
            assert!(!seen[mc], "MC {mc} claimed by two jobs");
            seen[mc] = true;
        }
    }
    let mut machine = Machine::new(cfg.clone());
    let mut loaded = Vec::new();
    for job in jobs {
        let p = if job.mode == Mode::Serial {
            1
        } else {
            job.params.p
        };
        let vm = pasm_prog::matmul::select_vm_on_mcs(cfg, p, &job.mcs);
        let layout = load_job(&mut machine, job.mode, job.params, &vm, &job.a, &job.b)?;
        loaded.push((job, vm, layout));
    }
    let run = machine.run()?;
    Ok(loaded
        .into_iter()
        .map(|(job, vm, layout)| {
            let pes = &vm.pes[..layout.p];
            let cycles = pes
                .iter()
                .map(|&pe| run.pe[pe].finished_at)
                .chain(vm.mcs.iter().map(|&mc| run.mc[mc].finished_at))
                .max()
                .unwrap_or(0);
            JobOutcome {
                mode: job.mode,
                params: job.params,
                cycles,
                c: layout.read_c(&machine, pes),
            }
        })
        .collect())
}

/// Run and assert the product equals the host reference (test/debug helper;
/// the paper used the identity matrix in A for the same reason).
pub fn run_matmul_verified(
    cfg: &MachineConfig,
    mode: Mode,
    params: MatmulParams,
    a: &Matrix,
    b: &Matrix,
) -> Result<MatmulOutcome, RunError> {
    let out = run_matmul(cfg, mode, params, a, b)?;
    let expect = a.multiply(b);
    assert_eq!(
        out.c, expect,
        "{mode} n={} p={} produced a wrong product",
        params.n, params.p
    );
    Ok(out)
}

/// The identity of one simulation: everything that determines its outcome.
///
/// Two runs with equal descriptors produce byte-identical results (the
/// simulator is deterministic), which is what makes result caching sound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentKey {
    pub config: MachineConfig,
    pub mode: Mode,
    pub params: MatmulParams,
    /// Seed of the workload's input generator (for matmul: identity A,
    /// seeded uniform B).
    pub seed: u64,
    /// Faults injected into the machine before the run (part of the identity:
    /// a degraded network yields different — still correct — timings).
    pub fault: FaultPlan,
    /// Registered kernel this key runs (see [`pasm_kernels::kernels`]).
    /// Defaults to [`MATMUL`], the paper's workload.
    pub workload: &'static str,
}

/// Hashed manually so that `workload == "matmul"` keys hash exactly as the
/// pre-registry five-field keys did: the original field order, with the
/// workload appended only when it deviates from the default. Existing
/// on-disk cache fingerprints therefore stay valid.
impl Hash for ExperimentKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.config.hash(state);
        self.mode.hash(state);
        self.params.hash(state);
        self.seed.hash(state);
        self.fault.hash(state);
        if self.workload != MATMUL {
            self.workload.hash(state);
        }
    }
}

impl ExperimentKey {
    /// Stable 64-bit content fingerprint (FNV-1a over `Hash`), identical
    /// across processes — usable as a durable cache-entry name.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        self.hash(&mut h);
        h.finish()
    }

    /// The registry entry of this key's workload; `None` if the name is
    /// unknown (callers validate at the boundary, so runners treat that as
    /// a programming error).
    pub fn kernel(&self) -> Option<&'static dyn Kernel> {
        pasm_kernels::find(self.workload)
    }
}

/// A compact, serializable summary of a completed run — what the simulation
/// service stores, caches, and returns (the full [`RunResult`] traces stay
/// host-side; megabyte matrices are reduced to a checksum).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Registered kernel the run executed (`"matmul"` for the paper workload).
    pub workload: &'static str,
    pub mode: Mode,
    pub n: usize,
    pub p: usize,
    pub extra_muls: usize,
    pub seed: u64,
    /// Simulated makespan in cycles.
    pub cycles: u64,
    /// Simulated execution time on the 8 MHz prototype clock.
    pub millis: f64,
    /// Phase breakdown in cycles (Figures 8–10 decomposition): the kernel's
    /// dominant compute span and its communication span (see
    /// [`Kernel::phases`]).
    pub multiply_cycles: u64,
    pub communication_cycles: u64,
    /// Instructions executed across all PEs.
    pub pe_instrs: u64,
    /// Cycle buckets summed over all PEs, indexed like
    /// [`pasm_machine::BUCKET_NAMES`] (all zero if accounting was disabled).
    pub pe_buckets: [u64; N_BUCKETS],
    /// FNV-1a fingerprint of the output words (for matmul: the row-major
    /// product matrix).
    pub c_checksum: u64,
    /// Spelling of the injected fault plan (empty when fault-free).
    pub fault: String,
    /// Makespan of the fault-free run of the same key, when a fault was
    /// injected and a baseline was measured alongside (0 otherwise).
    pub baseline_cycles: u64,
    /// `cycles / baseline_cycles` — measured degradation from the fault
    /// (1.0 when fault-free or no baseline was run).
    pub slowdown: f64,
}

impl ToJson for ExperimentResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("workload", Json::Str(self.workload.to_string())),
            ("mode", self.mode.to_json()),
            ("n", self.n.to_json()),
            ("p", self.p.to_json()),
            ("extra_muls", self.extra_muls.to_json()),
            ("seed", self.seed.to_json()),
            ("cycles", self.cycles.to_json()),
            ("millis", self.millis.to_json()),
            ("multiply_cycles", self.multiply_cycles.to_json()),
            ("communication_cycles", self.communication_cycles.to_json()),
            ("pe_instrs", self.pe_instrs.to_json()),
            (
                "cycle_buckets",
                Json::obj(
                    BUCKET_NAMES
                        .iter()
                        .zip(self.pe_buckets.iter())
                        .map(|(name, v)| (*name, v.to_json()))
                        .collect(),
                ),
            ),
            // Full-range u64: as hex text, since JSON numbers are i64/f64.
            ("c_checksum", Json::Str(format!("{:016x}", self.c_checksum))),
            ("fault", Json::Str(self.fault.clone())),
            ("baseline_cycles", self.baseline_cycles.to_json()),
            ("slowdown", self.slowdown.to_json()),
        ])
    }
}

impl ExperimentResult {
    /// Parse the [`ToJson`] form back into a result — the inverse the durable
    /// result store needs to replay cache entries across restarts.
    ///
    /// Strict on everything that matters for integrity: the workload must be
    /// a registered kernel, the mode must parse, numeric fields must be
    /// present with the right signs, and the checksum must be the fixed-width
    /// hex the writer emits. Unknown cycle-bucket names are rejected (a
    /// record written by a different bucket layout must not be half-read).
    pub fn from_json(v: &Json) -> Result<Self, String> {
        fn req<'a>(v: &'a Json, name: &str) -> Result<&'a Json, String> {
            v.get(name).ok_or_else(|| format!("missing `{name}`"))
        }
        fn req_u64(v: &Json, name: &str) -> Result<u64, String> {
            req(v, name)?
                .as_u64()
                .ok_or_else(|| format!("`{name}` must be a non-negative integer"))
        }
        fn req_usize(v: &Json, name: &str) -> Result<usize, String> {
            req(v, name)?
                .as_usize()
                .ok_or_else(|| format!("`{name}` must be a non-negative integer"))
        }
        fn req_f64(v: &Json, name: &str) -> Result<f64, String> {
            req(v, name)?
                .as_f64()
                .ok_or_else(|| format!("`{name}` must be a number"))
        }

        let workload_name = req(v, "workload")?
            .as_str()
            .ok_or("`workload` must be a string")?;
        let workload = kernels::find(workload_name)
            .map(|k| k.name())
            .ok_or_else(|| format!("unknown workload `{workload_name}`"))?;
        let mode_str = req(v, "mode")?.as_str().ok_or("`mode` must be a string")?;
        let mode = Mode::parse(mode_str).ok_or_else(|| format!("unknown mode `{mode_str}`"))?;

        let buckets_obj = req(v, "cycle_buckets")?;
        let Json::Obj(members) = buckets_obj else {
            return Err("`cycle_buckets` must be an object".to_string());
        };
        let mut pe_buckets = [0u64; N_BUCKETS];
        for (name, value) in members {
            let idx = BUCKET_NAMES
                .iter()
                .position(|b| b == name)
                .ok_or_else(|| format!("unknown cycle bucket `{name}`"))?;
            pe_buckets[idx] = value
                .as_u64()
                .ok_or_else(|| format!("bucket `{name}` must be a non-negative integer"))?;
        }

        let checksum_hex = req(v, "c_checksum")?
            .as_str()
            .ok_or("`c_checksum` must be a hex string")?;
        if checksum_hex.len() != 16 {
            return Err("`c_checksum` must be 16 hex digits".to_string());
        }
        let c_checksum = u64::from_str_radix(checksum_hex, 16)
            .map_err(|_| "`c_checksum` must be 16 hex digits".to_string())?;

        Ok(ExperimentResult {
            workload,
            mode,
            n: req_usize(v, "n")?,
            p: req_usize(v, "p")?,
            extra_muls: req_usize(v, "extra_muls")?,
            seed: req_u64(v, "seed")?,
            cycles: req_u64(v, "cycles")?,
            millis: req_f64(v, "millis")?,
            multiply_cycles: req_u64(v, "multiply_cycles")?,
            communication_cycles: req_u64(v, "communication_cycles")?,
            pe_instrs: req_u64(v, "pe_instrs")?,
            pe_buckets,
            c_checksum,
            fault: req(v, "fault")?
                .as_str()
                .ok_or("`fault` must be a string")?
                .to_string(),
            baseline_cycles: req_u64(v, "baseline_cycles")?,
            slowdown: req_f64(v, "slowdown")?,
        })
    }

    /// Summarize a finished matmul run.
    pub fn from_outcome(out: &MatmulOutcome, seed: u64) -> Self {
        use pasm_prog::codegen::{PHASE_COMM, PHASE_MUL};
        let mut h = Fnv1a::new();
        for r in 0..out.c.n {
            for c in 0..out.c.n {
                h.write(&out.c.get(r, c).to_be_bytes());
            }
        }
        ExperimentResult {
            workload: MATMUL,
            mode: out.mode,
            n: out.params.n,
            p: out.params.p,
            extra_muls: out.params.extra_muls,
            seed,
            cycles: out.cycles,
            millis: out.millis(),
            multiply_cycles: out.run.phase_max(PHASE_MUL as usize),
            communication_cycles: out.run.phase_max(PHASE_COMM as usize),
            pe_instrs: out.run.pe.iter().map(|t| t.instrs).sum(),
            pe_buckets: out
                .run
                .accounts
                .as_ref()
                .map(|a| a.pe_bucket_totals())
                .unwrap_or([0; N_BUCKETS]),
            c_checksum: h.finish(),
            fault: String::new(),
            baseline_cycles: 0,
            slowdown: 1.0,
        }
    }

    /// Summarize a finished registered-kernel run: phase cycles come from the
    /// kernel's declared compute/comm spans, the checksum from its output
    /// words.
    pub fn from_kernel_outcome(out: &KernelOutcome, seed: u64) -> Self {
        let (compute, comm) = out.kernel.phases();
        ExperimentResult {
            workload: out.kernel.name(),
            mode: out.mode,
            n: out.params.n,
            p: out.params.p,
            extra_muls: out.params.extra_muls,
            seed,
            cycles: out.cycles,
            millis: pasm_isa::cycles_to_ms(out.cycles),
            multiply_cycles: out.run.phase_max(compute as usize),
            communication_cycles: out.run.phase_max(comm as usize),
            pe_instrs: out.run.pe.iter().map(|t| t.instrs).sum(),
            pe_buckets: out
                .run
                .accounts
                .as_ref()
                .map(|a| a.pe_bucket_totals())
                .unwrap_or([0; N_BUCKETS]),
            c_checksum: pasm_kernels::checksum(&out.output),
            fault: String::new(),
            baseline_cycles: 0,
            slowdown: 1.0,
        }
    }
}

/// A completed registered-kernel run (the generic counterpart of
/// [`MatmulOutcome`]).
#[derive(Clone)]
pub struct KernelOutcome {
    /// The registry entry that ran.
    pub kernel: &'static dyn Kernel,
    pub mode: Mode,
    pub params: MatmulParams,
    /// Makespan over all participating processors, MCs included.
    pub cycles: u64,
    /// Full machine traces.
    pub run: RunResult,
    /// Output words, in the kernel's reference layout.
    pub output: Vec<u16>,
}

impl std::fmt::Debug for KernelOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelOutcome")
            .field("kernel", &self.kernel.name())
            .field("mode", &self.mode)
            .field("params", &self.params)
            .field("cycles", &self.cycles)
            .field("output_words", &self.output.len())
            .finish()
    }
}

impl KernelOutcome {
    /// Execution time in milliseconds on the 8 MHz prototype clock.
    pub fn millis(&self) -> f64 {
        pasm_isa::cycles_to_ms(self.cycles)
    }

    /// The run's phase spans as a named [`SpanLog`] (see [`run_span_log`]).
    pub fn span_log(&self) -> SpanLog {
        run_span_log(&self.run)
    }

    /// Check the output against the kernel's scalar reference for `input`.
    pub fn verify(&self, input: &[u16]) -> Result<(), String> {
        pasm_kernels::verify(self.kernel, self.params, input, &self.output)
    }
}

/// Run a registered kernel end to end: build a machine, apply faults, load
/// the kernel's per-mode programs, run, and read the output back.
///
/// `input` must come from [`Kernel::generate`] (or obey the same layout).
/// Panics if the mode is [`Mode::Serial`] and the kernel does not support it,
/// or if `(n, p)` fail the kernel's [`Kernel::validate`] — validate at the
/// boundary first.
pub fn run_kernel_opts(
    cfg: &MachineConfig,
    kernel: &'static dyn Kernel,
    mode: Mode,
    params: MatmulParams,
    input: &[u16],
    opts: &RunOptions,
) -> Result<KernelOutcome, RunError> {
    assert!(
        mode != Mode::Serial || kernel.supports_serial(),
        "{} has no serial variant",
        kernel.name()
    );
    if let Err(e) = kernel.validate(params.n, params.p) {
        panic!("invalid kernel parameters: {e}");
    }
    let mut machine = Machine::new(cfg.clone());
    machine.set_accounting(opts.accounting);
    machine.set_fast_path(opts.fast_path);
    machine
        .apply_fault_plan(&opts.fault)
        .map_err(RunError::Net)?;
    if let Some(flag) = &opts.interrupt {
        machine.set_interrupt(Arc::clone(flag));
    }
    let vm = select_vm(cfg, if mode == Mode::Serial { 1 } else { params.p });
    kernel.load(&mut machine, mode, params, &vm, input)?;
    let run = machine.run()?;
    let output = kernel.read_output(&machine, mode, params, &vm);
    Ok(KernelOutcome {
        kernel,
        mode,
        params,
        cycles: run.makespan,
        run,
        output,
    })
}

/// [`run_kernel_opts`] with default options (accounting on, no faults).
pub fn run_kernel(
    cfg: &MachineConfig,
    kernel: &'static dyn Kernel,
    mode: Mode,
    params: MatmulParams,
    input: &[u16],
) -> Result<KernelOutcome, RunError> {
    run_kernel_opts(cfg, kernel, mode, params, input, &RunOptions::default())
}

/// Run the experiment a key describes: the end-to-end unit of work of the
/// `pasm-server` simulation service. The key's `workload` selects the
/// registered kernel (the default, [`MATMUL`], runs the paper workload);
/// the input is generated from the key's seed.
///
/// When the key carries a fault plan, the fault-free run of the same key is
/// measured alongside and the result reports the fault spelling, the
/// baseline makespan, and the measured slowdown.
pub fn run_keyed(key: &ExperimentKey) -> Result<ExperimentResult, RunError> {
    run_keyed_with_interrupt(key, None)
}

/// [`run_keyed`] with a cooperative stop flag (cancellation, watchdog). The
/// flag covers the baseline run too, so a deadline bounds the whole job.
pub fn run_keyed_with_interrupt(
    key: &ExperimentKey,
    interrupt: Option<Arc<AtomicBool>>,
) -> Result<ExperimentResult, RunError> {
    run_keyed_traced(key, interrupt).map(|t| t.result)
}

/// A keyed run's summary plus the full timing payload the cross-run span
/// store ingests: the named phase spans and the unsummed per-PE / per-MC
/// cycle-bucket matrices of the *primary* run (the baseline run of a faulted
/// key contributes only `baseline_cycles`, never its traces).
#[derive(Debug, Clone)]
pub struct ExperimentTrace {
    pub result: ExperimentResult,
    /// Phase spans (`pe<i>`/`mc<i>` sources; empty if accounting was off).
    pub spans: SpanLog,
    /// Per-PE bucket rows, `pe_buckets[pe][bucket]` per [`BUCKET_NAMES`].
    pub pe_buckets: Vec<[u64; N_BUCKETS]>,
    /// Per-MC bucket rows, `mc_buckets[mc][bucket]`.
    pub mc_buckets: Vec<[u64; N_BUCKETS]>,
}

/// [`run_keyed_with_interrupt`], keeping the timing traces the summary
/// throws away. This is the server's job runner: the result feeds the cache
/// and the trace feeds the query tier, from one simulation.
pub fn run_keyed_traced(
    key: &ExperimentKey,
    interrupt: Option<Arc<AtomicBool>>,
) -> Result<ExperimentTrace, RunError> {
    let opts = RunOptions {
        accounting: true,
        fault: key.fault.clone(),
        interrupt: interrupt.clone(),
        fast_path: true,
    };
    let base_opts = RunOptions {
        accounting: true,
        fault: FaultPlan::default(),
        interrupt,
        fast_path: true,
    };
    let (mut result, run) = if key.workload == MATMUL {
        // The paper workload keeps its dedicated path (typed matrices, the
        // same code the figure generators use).
        let (a, b) = paper_workload(key.params.n, key.seed);
        let out = run_matmul_opts(&key.config, key.mode, key.params, &a, &b, &opts)?;
        let mut result = ExperimentResult::from_outcome(&out, key.seed);
        if !key.fault.is_empty() {
            let base = run_matmul_opts(&key.config, key.mode, key.params, &a, &b, &base_opts)?;
            result.baseline_cycles = base.cycles;
        }
        (result, out.run)
    } else {
        let kernel = key.kernel().unwrap_or_else(|| {
            panic!(
                "unknown workload {:?} (validate at the boundary)",
                key.workload
            )
        });
        let input = kernel.generate(key.params.n, key.seed);
        let out = run_kernel_opts(&key.config, kernel, key.mode, key.params, &input, &opts)?;
        let mut result = ExperimentResult::from_kernel_outcome(&out, key.seed);
        if !key.fault.is_empty() {
            let base = run_kernel_opts(
                &key.config,
                kernel,
                key.mode,
                key.params,
                &input,
                &base_opts,
            )?;
            result.baseline_cycles = base.cycles;
        }
        (result, out.run)
    };
    if !key.fault.is_empty() {
        result.fault = key.fault.to_string();
        if result.baseline_cycles > 0 {
            result.slowdown = result.cycles as f64 / result.baseline_cycles as f64;
        }
    }
    let spans = run_span_log(&run);
    let (pe_buckets, mc_buckets) = run
        .accounts
        .as_ref()
        .map(|a| (a.pe_bucket_matrix(), a.mc_bucket_matrix()))
        .unwrap_or_default();
    Ok(ExperimentTrace {
        result,
        spans,
        pe_buckets,
        mc_buckets,
    })
}

/// Standard workload of the paper: identity A, uniform-random B.
pub fn paper_workload(n: usize, seed: u64) -> (Matrix, Matrix) {
    (Matrix::identity(n), Matrix::uniform(n, seed))
}

/// Outcome of a global-sum reduction run.
#[derive(Debug, Clone)]
pub struct ReduceOutcome {
    pub mode: Mode,
    pub cycles: u64,
    /// The per-PE results (each PE must hold the global sum).
    pub sums: Vec<u16>,
}

/// Run the [`pasm_prog::reduction`] global sum in the given mode over
/// per-PE blocks of `k` elements. `Mode::Serial` is not meaningful here.
pub fn run_reduction(
    cfg: &MachineConfig,
    mode: Mode,
    k: usize,
    p: usize,
    blocks: &[Vec<u16>],
) -> Result<ReduceOutcome, RunError> {
    use pasm_prog::reduction::{self, ReduceParams, RESULT_ADDR, VEC_BASE};
    assert_eq!(blocks.len(), p);
    assert!(blocks.iter().all(|b| b.len() == k));
    let params = ReduceParams { k, p };
    let vm = select_vm(cfg, p);
    let mut machine = Machine::new(cfg.clone());
    machine
        .connect_ring(&vm.pes)
        .map_err(|e| RunError::Net(e.to_string()))?;
    for (l, &pe) in vm.pes.iter().enumerate() {
        machine.pe_mem_mut(pe).load_words(VEC_BASE, &blocks[l]);
    }
    match mode {
        Mode::Simd => {
            let (pe_prog, mc_prog) = reduction::simd_programs(params, vm.mask);
            for &pe in &vm.pes {
                machine.load_pe_program(pe, pe_prog.clone());
            }
            for &mc in &vm.mcs {
                machine.load_mc_program(mc, mc_prog.clone());
            }
        }
        Mode::Mimd | Mode::Smimd => {
            let sync = mode.comm_sync().expect("parallel mode");
            let pe_prog = reduction::pe_program(params, sync);
            for &pe in &vm.pes {
                machine.load_pe_program(pe, pe_prog.clone());
            }
            let mc_prog = reduction::mc_program(params, sync, vm.mask);
            for &mc in &vm.mcs {
                machine.load_mc_program(mc, mc_prog.clone());
            }
        }
        Mode::Serial => panic!("reduction is a parallel workload"),
    }
    let run = machine.run()?;
    let sums = vm
        .pes
        .iter()
        .map(|&pe| machine.pe_mem(pe).read_word(RESULT_ADDR))
        .collect();
    Ok(ReduceOutcome {
        mode,
        cycles: run.makespan,
        sums,
    })
}

/// Re-export for callers constructing parameter sets.
pub use pasm_prog::matmul::MatmulParams as Params;

/// Re-export of the VM selector.
pub use matmul::select_vm as vm_for;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_result_round_trips_through_json() {
        let mut buckets = [0u64; N_BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = (i as u64 + 1) * 17;
        }
        let original = ExperimentResult {
            workload: "bitonic",
            mode: Mode::Smimd,
            n: 64,
            p: 8,
            extra_muls: 3,
            seed: 1988,
            cycles: 123_456_789,
            millis: 15.432_099_875,
            multiply_cycles: 42_000,
            communication_cycles: 17_500,
            pe_instrs: 987_654,
            pe_buckets: buckets,
            c_checksum: 0xDEAD_BEEF_0BAD_F00D,
            fault: "box:1:0".to_string(),
            baseline_cycles: 100_000_000,
            slowdown: 1.234_567,
        };
        let parsed = ExperimentResult::from_json(&original.to_json()).expect("round trip");
        assert_eq!(parsed, original);
        // The re-serialized form is byte-identical — the property the durable
        // store's "no corrupt result served" guarantee builds on.
        assert_eq!(parsed.to_json().dump(), original.to_json().dump());
    }

    #[test]
    fn traced_run_matches_the_summary_and_carries_the_breakdowns() {
        let key = ExperimentKey {
            config: MachineConfig::small(),
            mode: Mode::Simd,
            params: Params::new(4, 4),
            seed: 7,
            fault: FaultPlan::default(),
            workload: MATMUL,
        };
        let trace = run_keyed_traced(&key, None).unwrap();
        assert_eq!(trace.result, run_keyed(&key).unwrap());
        assert!(!trace.spans.is_empty(), "accounting is on by default");
        assert!(!trace.mc_buckets.is_empty());
        // Summing the per-PE rows reproduces the summary's bucket totals —
        // the invariant that makes the stored matrices trustworthy.
        let mut summed = [0u64; N_BUCKETS];
        for row in &trace.pe_buckets {
            for (o, v) in summed.iter_mut().zip(row.iter()) {
                *o += v;
            }
        }
        assert_eq!(summed, trace.result.pe_buckets);
    }

    #[test]
    fn experiment_result_from_json_rejects_damage() {
        let good = ExperimentResult::from_outcome(
            &run_matmul(
                &MachineConfig::small(),
                Mode::Simd,
                Params::new(4, 4),
                &Matrix::identity(4),
                &Matrix::uniform(4, 7),
            )
            .unwrap(),
            7,
        )
        .to_json();
        assert!(ExperimentResult::from_json(&good).is_ok());
        for (mutate, why) in [
            (("workload", Json::Str("warp".into())), "unknown workload"),
            (("mode", Json::Str("warp".into())), "unknown mode"),
            (("cycles", Json::Int(-1)), "negative cycles"),
            (("c_checksum", Json::Str("xyz".into())), "bad checksum hex"),
            (
                ("cycle_buckets", Json::obj(vec![("warp", Json::Int(1))])),
                "unknown bucket",
            ),
        ] {
            let Json::Obj(mut members) = good.clone() else {
                unreachable!()
            };
            for (k, v) in members.iter_mut() {
                if k == mutate.0 {
                    *v = mutate.1.clone();
                }
            }
            assert!(
                ExperimentResult::from_json(&Json::Obj(members)).is_err(),
                "{why}"
            );
        }
        assert!(ExperimentResult::from_json(&Json::obj(vec![])).is_err());
    }
}
