//! A small JSON model: value type, strict parser, compact and pretty
//! writers, and the [`ToJson`] trait the workspace serializes through.
//!
//! Scope: everything RFC 8259 requires, nothing more. Object member order is
//! preserved (insertion order), numbers are kept as `i64` when they are
//! integral so cycle counts round-trip exactly, and the writer always emits
//! valid UTF-8 with minimal escaping.

use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Members in insertion order; duplicate keys are not rejected (last wins
    /// on lookup, all are written).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member of an object by key (last occurrence), or `None`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(*f as i64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|v| u64::try_from(v).ok())
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_i64().and_then(|v| usize::try_from(v).ok())
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact serialization (no whitespace).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Obj(members) => {
                write_seq(out, indent, depth, '{', '}', members.len(), |out, i| {
                    let (k, v) = &members[i];
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1)
                })
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // `1.0_f64` formats as "1"; keep it a float on re-parse.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.dump())
    }
}

// ----------------------------------------------------------------------
// Parsing
// ----------------------------------------------------------------------

/// Parse error with byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 character (input is &str, so boundaries
                    // are valid by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| ParseError {
                offset: start,
                message: "invalid number".into(),
            })
    }
}

// ----------------------------------------------------------------------
// ToJson
// ----------------------------------------------------------------------

/// Conversion into a [`Json`] value — the workspace's `Serialize`.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

macro_rules! to_json_int {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                match i64::try_from(*self) {
                    Ok(v) => Json::Int(v),
                    Err(_) => Json::Float(*self as f64),
                }
            }
        }
    )*};
}
to_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

/// Implement [`ToJson`] for a struct by listing its fields:
///
/// ```
/// struct Row { n: usize, ms: f64 }
/// pasm_util::impl_to_json!(Row { n, ms });
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field).to_string(),
                       $crate::json::ToJson::to_json(&self.$field)),)*
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let src = r#"{"a": [1, -2.5, true, null], "b": {"s": "x\ny é"}, "big": 123456789012}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_i64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(-2.5)
        );
        assert_eq!(
            v.get("b").unwrap().get("s").unwrap().as_str(),
            Some("x\ny é")
        );
        assert_eq!(v.get("big").unwrap().as_i64(), Some(123456789012));
        let reparsed = parse(&v.dump()).unwrap();
        assert_eq!(v, reparsed);
        let reparsed = parse(&v.pretty()).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn integers_roundtrip_exactly() {
        let v = parse(&format!("{}", i64::MAX)).unwrap();
        assert_eq!(v, Json::Int(i64::MAX));
        assert_eq!(v.dump(), format!("{}", i64::MAX));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(Json::Float(1.0).dump(), "1.0");
        assert_eq!(parse("1.0").unwrap(), Json::Float(1.0));
    }

    #[test]
    fn surrogate_pair() {
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".to_string()));
    }

    #[test]
    fn to_json_struct_macro() {
        struct Row {
            n: usize,
            ms: f64,
            label: String,
        }
        impl_to_json!(Row { n, ms, label });
        let row = Row {
            n: 4,
            ms: 1.5,
            label: "x".into(),
        };
        assert_eq!(row.to_json().dump(), r#"{"n":4,"ms":1.5,"label":"x"}"#);
        let rows = vec![row];
        assert!(rows.to_json().dump().starts_with('['));
    }
}
