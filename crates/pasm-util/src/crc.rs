//! CRC-32 (IEEE 802.3, the zlib/PNG polynomial): the record checksum of the
//! durable stores.
//!
//! FNV-1a ([`crate::hash`]) names content; CRC-32 guards *transport and
//! storage* — it detects the torn tails and bit flips a crashed or corrupted
//! append-only log exhibits, and its short 32-bit width keeps the per-record
//! framing overhead small. The table is built at compile time, so the hot
//! path is one lookup and one shift per byte.

/// The reflected IEEE polynomial (0x04C11DB7 bit-reversed).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of a byte string in one call.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published CRC-32/ISO-HDLC ("check" value and friends).
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let payload = b"fingerprint -> result".to_vec();
        let good = crc32(&payload);
        for byte in 0..payload.len() {
            for bit in 0..8 {
                let mut flipped = payload.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), good, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
