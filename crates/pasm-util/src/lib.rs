//! # pasm-util — dependency-free workspace utilities
//!
//! The reproduction builds in fully offline environments, so everything the
//! workspace previously pulled from crates.io for plumbing (seeded random
//! data, JSON result files, stable hashing) lives here instead, implemented
//! on `std` alone:
//!
//! * [`rng`] — a seeded [SplitMix64](rng::Rng) generator for workload data,
//! * [`json`] — a small JSON value model with parser, writer and the
//!   [`ToJson`] trait the bench and server crates serialize
//!   through,
//! * [`hash`] — [FNV-1a](hash::Fnv1a), a stable `std::hash::Hasher` whose
//!   output does not change across processes (used for cache keys),
//! * [`crc`] — [CRC-32](crc::crc32) (IEEE), the record checksum the durable
//!   stores use to detect torn and corrupted log records,
//! * [`span`] — named trace spans on simulated timelines with JSONL
//!   serialization (the observability layer's event format).

pub mod crc;
pub mod hash;
pub mod json;
pub mod rng;
pub mod span;

pub use crc::crc32;
pub use hash::{fnv1a, Fnv1a};
pub use json::{Json, ToJson};
pub use rng::Rng;
pub use span::{SpanEvent, SpanLog, SpanReadStats, SPAN_SCHEMA_VERSION};
