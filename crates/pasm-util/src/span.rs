//! A lightweight span API for trace events on simulated timelines.
//!
//! Programs instrument phases (clear loop, MAC loop, recirculation transfer)
//! with begin/end markers; the simulator timestamps them in component-local
//! cycles, and this module turns them into named [`SpanEvent`]s collected in
//! a [`SpanLog`] that serializes to JSONL — one JSON object per line, the
//! format documented in `docs/OBSERVABILITY.md` and consumed by external
//! trace tooling.
//!
//! ```
//! use pasm_util::span::SpanLog;
//!
//! let mut log = SpanLog::new();
//! log.record("pe0", "mac_loop", 120, 4500);
//! log.record("pe1", "mac_loop", 120, 4710);
//! let jsonl = log.to_jsonl();
//! assert_eq!(jsonl.lines().count(), 2);
//! assert!(jsonl.starts_with("{\"source\":\"pe0\""));
//! ```

use crate::json::Json;

/// One closed interval on a named component's cycle timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Component the span was measured on (e.g. `"pe3"`, `"mc0"`).
    pub source: String,
    /// Phase name (e.g. `"mac_loop"`, `"recirculation_transfer"`).
    pub name: String,
    /// First cycle of the interval (component-local clock).
    pub start: u64,
    /// Cycle the interval closed.
    pub end: u64,
}

impl SpanEvent {
    /// Length of the interval in cycles.
    pub fn cycles(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// The event as a JSON object (the JSONL line's value).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("source", Json::Str(self.source.clone())),
            ("name", Json::Str(self.name.clone())),
            ("start", Json::Int(self.start as i64)),
            ("end", Json::Int(self.end as i64)),
            ("cycles", Json::Int(self.cycles() as i64)),
        ])
    }
}

/// An append-only collection of [`SpanEvent`]s.
#[derive(Debug, Clone, Default)]
pub struct SpanLog {
    /// The events, in record order.
    pub events: Vec<SpanEvent>,
}

impl SpanLog {
    /// An empty log.
    pub fn new() -> Self {
        SpanLog::default()
    }

    /// Append one closed span.
    pub fn record(&mut self, source: &str, name: &str, start: u64, end: u64) {
        self.events.push(SpanEvent {
            source: source.to_string(),
            name: name.to_string(),
            start,
            end,
        });
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialize as JSONL: one compact JSON object per line, trailing newline
    /// after every line (an empty log is the empty string).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json().dump());
            out.push('\n');
        }
        out
    }

    /// Total cycles across all events with the given phase name.
    pub fn total_cycles(&self, name: &str) -> u64 {
        self.events
            .iter()
            .filter(|e| e.name == name)
            .map(SpanEvent::cycles)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn jsonl_round_trips_through_the_parser() {
        let mut log = SpanLog::new();
        log.record("pe0", "clear_loop", 0, 880);
        log.record("pe0", "mac_loop", 880, 5000);
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = json::parse(lines[0]).expect("valid JSON line");
        assert_eq!(first.get("source").unwrap().as_str(), Some("pe0"));
        assert_eq!(first.get("name").unwrap().as_str(), Some("clear_loop"));
        assert_eq!(first.get("cycles").unwrap().as_u64(), Some(880));
    }

    #[test]
    fn totals_aggregate_by_name() {
        let mut log = SpanLog::new();
        log.record("pe0", "mac_loop", 0, 100);
        log.record("pe1", "mac_loop", 0, 150);
        log.record("pe0", "xfer", 100, 130);
        assert_eq!(log.total_cycles("mac_loop"), 250);
        assert_eq!(log.total_cycles("xfer"), 30);
        assert_eq!(log.total_cycles("nope"), 0);
        assert!(!log.is_empty());
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn empty_log_serializes_to_empty_string() {
        assert_eq!(SpanLog::new().to_jsonl(), "");
    }
}
