//! A lightweight span API for trace events on simulated timelines.
//!
//! Programs instrument phases (clear loop, MAC loop, recirculation transfer)
//! with begin/end markers; the simulator timestamps them in component-local
//! cycles, and this module turns them into named [`SpanEvent`]s collected in
//! a [`SpanLog`] that serializes to JSONL — one JSON object per line, each
//! stamped with [`SPAN_SCHEMA_VERSION`], the format documented in
//! `docs/OBSERVABILITY.md` and consumed by external trace tooling.
//!
//! The reader ([`SpanLog::from_jsonl`]) is deliberately forgiving where the
//! writer is strict: span files outlive processes and get concatenated,
//! truncated, and hand-edited, so a malformed or unknown-version line is
//! skipped and counted ([`SpanReadStats`]) instead of poisoning the whole
//! file.
//!
//! ```
//! use pasm_util::span::SpanLog;
//!
//! let mut log = SpanLog::new();
//! log.record("pe0", "mac_loop", 120, 4500);
//! log.record("pe1", "mac_loop", 120, 4710);
//! let jsonl = log.to_jsonl();
//! assert_eq!(jsonl.lines().count(), 2);
//! assert!(jsonl.starts_with("{\"source\":\"pe0\""));
//! let (parsed, stats) = SpanLog::from_jsonl(&jsonl);
//! assert_eq!(parsed.events, log.events);
//! assert_eq!(stats.skipped, 0);
//! ```

use crate::json::{self, Json};

/// Version stamped onto every JSONL line the writer emits. Lines carrying a
/// different version are skipped (and counted) by the reader; lines with no
/// version field at all are read as version 1 — the format predating the
/// stamp is identical.
pub const SPAN_SCHEMA_VERSION: i64 = 1;

/// One closed interval on a named component's cycle timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Component the span was measured on (e.g. `"pe3"`, `"mc0"`).
    pub source: String,
    /// Phase name (e.g. `"mac_loop"`, `"recirculation_transfer"`).
    pub name: String,
    /// First cycle of the interval (component-local clock).
    pub start: u64,
    /// Cycle the interval closed.
    pub end: u64,
}

impl SpanEvent {
    /// Length of the interval in cycles.
    pub fn cycles(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// The event as a JSON object (the JSONL line's value).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("source", Json::Str(self.source.clone())),
            ("name", Json::Str(self.name.clone())),
            ("start", Json::Int(self.start as i64)),
            ("end", Json::Int(self.end as i64)),
            ("cycles", Json::Int(self.cycles() as i64)),
        ])
    }

    /// Parse the [`SpanEvent::to_json`] form back. `cycles` is derived, so
    /// the reader ignores it; `source`, `name`, `start`, `end` are required.
    pub fn from_json(v: &Json) -> Result<SpanEvent, String> {
        let str_field = |name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("`{name}` must be a string"))
        };
        let u64_field = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("`{name}` must be a non-negative integer"))
        };
        Ok(SpanEvent {
            source: str_field("source")?,
            name: str_field("name")?,
            start: u64_field("start")?,
            end: u64_field("end")?,
        })
    }
}

/// Counters from one [`SpanLog::from_jsonl`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanReadStats {
    /// Lines parsed into events.
    pub parsed: u64,
    /// Lines skipped: malformed JSON, missing/invalid fields, or an unknown
    /// `schema_version`.
    pub skipped: u64,
}

/// An append-only collection of [`SpanEvent`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanLog {
    /// The events, in record order.
    pub events: Vec<SpanEvent>,
}

impl SpanLog {
    /// An empty log.
    pub fn new() -> Self {
        SpanLog::default()
    }

    /// Append one closed span.
    pub fn record(&mut self, source: &str, name: &str, start: u64, end: u64) {
        self.events.push(SpanEvent {
            source: source.to_string(),
            name: name.to_string(),
            start,
            end,
        });
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialize as JSONL: one compact JSON object per line, each stamped
    /// with [`SPAN_SCHEMA_VERSION`], trailing newline after every line (an
    /// empty log is the empty string).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let Json::Obj(mut members) = e.to_json() else {
                unreachable!("span events serialize to objects")
            };
            members.push(("schema_version".to_string(), Json::Int(SPAN_SCHEMA_VERSION)));
            out.push_str(&Json::Obj(members).dump());
            out.push('\n');
        }
        out
    }

    /// Parse a JSONL span file back into a log. Malformed lines, lines with
    /// missing or mistyped fields, and lines stamped with an unknown
    /// `schema_version` are skipped and counted — never an error: span files
    /// are long-lived artifacts and one bad line must not discard the rest.
    /// Blank lines are ignored entirely (not counted as skipped).
    pub fn from_jsonl(text: &str) -> (SpanLog, SpanReadStats) {
        let mut log = SpanLog::new();
        let mut stats = SpanReadStats::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let parsed = json::parse(line).ok().and_then(|v| {
                match v.get("schema_version") {
                    // Unversioned lines predate the stamp: same format.
                    None => {}
                    Some(ver) if ver.as_i64() == Some(SPAN_SCHEMA_VERSION) => {}
                    Some(_) => return None,
                }
                SpanEvent::from_json(&v).ok()
            });
            match parsed {
                Some(event) => {
                    stats.parsed += 1;
                    log.events.push(event);
                }
                None => stats.skipped += 1,
            }
        }
        (log, stats)
    }

    /// Total cycles across all events with the given phase name.
    pub fn total_cycles(&self, name: &str) -> u64 {
        self.events
            .iter()
            .filter(|e| e.name == name)
            .map(SpanEvent::cycles)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn jsonl_round_trips_through_the_parser() {
        let mut log = SpanLog::new();
        log.record("pe0", "clear_loop", 0, 880);
        log.record("pe0", "mac_loop", 880, 5000);
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = json::parse(lines[0]).expect("valid JSON line");
        assert_eq!(first.get("source").unwrap().as_str(), Some("pe0"));
        assert_eq!(first.get("name").unwrap().as_str(), Some("clear_loop"));
        assert_eq!(first.get("cycles").unwrap().as_u64(), Some(880));
    }

    #[test]
    fn totals_aggregate_by_name() {
        let mut log = SpanLog::new();
        log.record("pe0", "mac_loop", 0, 100);
        log.record("pe1", "mac_loop", 0, 150);
        log.record("pe0", "xfer", 100, 130);
        assert_eq!(log.total_cycles("mac_loop"), 250);
        assert_eq!(log.total_cycles("xfer"), 30);
        assert_eq!(log.total_cycles("nope"), 0);
        assert!(!log.is_empty());
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn empty_log_serializes_to_empty_string() {
        assert_eq!(SpanLog::new().to_jsonl(), "");
    }

    #[test]
    fn every_line_carries_the_schema_version() {
        let mut log = SpanLog::new();
        log.record("pe0", "mac_loop", 0, 10);
        log.record("mc0", "xfer", 10, 20);
        for line in log.to_jsonl().lines() {
            let v = json::parse(line).unwrap();
            assert_eq!(
                v.get("schema_version").unwrap().as_i64(),
                Some(SPAN_SCHEMA_VERSION)
            );
        }
    }

    #[test]
    fn jsonl_reader_round_trips_the_writer() {
        let mut log = SpanLog::new();
        log.record("pe0", "clear_loop", 0, 880);
        log.record("pe1", "mac_loop", 880, 5000);
        let (parsed, stats) = SpanLog::from_jsonl(&log.to_jsonl());
        assert_eq!(parsed.events, log.events);
        assert_eq!(
            stats,
            SpanReadStats {
                parsed: 2,
                skipped: 0
            }
        );
    }

    #[test]
    fn jsonl_reader_skips_and_counts_bad_lines() {
        let text = concat!(
            "{\"source\":\"pe0\",\"name\":\"mac_loop\",\"start\":0,\"end\":9,\"cycles\":9,\"schema_version\":1}\n",
            "not json at all\n",
            "{\"source\":\"pe1\",\"name\":\"mac_loop\",\"start\":0,\"end\":7,\"cycles\":7,\"schema_version\":99}\n",
            "{\"source\":\"pe2\",\"start\":0,\"end\":3}\n",
            "{\"name\":\"legacy\",\"source\":\"pe3\",\"start\":1,\"end\":4}\n",
            "\n",
            "{\"source\":\"pe4\",\"name\":\"mac_loop\",\"start\":3,\"end\":\"x\"}\n",
        );
        let (log, stats) = SpanLog::from_jsonl(text);
        // Good line, unversioned legacy line — kept; garbage, unknown
        // version, missing field, mistyped field — skipped; blank — ignored.
        assert_eq!(
            stats,
            SpanReadStats {
                parsed: 2,
                skipped: 4
            }
        );
        assert_eq!(log.len(), 2);
        assert_eq!(log.events[0].source, "pe0");
        assert_eq!(log.events[1].source, "pe3");
        assert_eq!(log.events[1].cycles(), 3);
    }

    #[test]
    fn span_event_from_json_requires_the_interval_fields() {
        let good = SpanEvent {
            source: "pe0".into(),
            name: "mac_loop".into(),
            start: 5,
            end: 17,
        };
        assert_eq!(SpanEvent::from_json(&good.to_json()).unwrap(), good);
        for field in ["source", "name", "start", "end"] {
            let Json::Obj(members) = good.to_json() else {
                unreachable!()
            };
            let pruned: Vec<_> = members.into_iter().filter(|(k, _)| k != field).collect();
            assert!(
                SpanEvent::from_json(&Json::Obj(pruned)).is_err(),
                "missing `{field}` must be rejected"
            );
        }
    }
}
