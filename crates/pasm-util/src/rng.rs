//! Seeded pseudo-random numbers: SplitMix64.
//!
//! SplitMix64 (Steele, Lea, Flood; OOPSLA 2014) passes BigCrush, needs only
//! one 64-bit word of state, and — unlike library generators — its exact
//! output sequence is pinned down by this file, so seeded workloads are
//! reproducible forever regardless of dependency versions.

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed. Equal seeds yield equal sequences.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn gen_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next uniformly random 32 bits.
    pub fn gen_u32(&mut self) -> u32 {
        (self.gen_u64() >> 32) as u32
    }

    /// Next uniformly random 16 bits.
    pub fn gen_u16(&mut self) -> u16 {
        (self.gen_u64() >> 48) as u16
    }

    /// Uniform in `[0, bound)` (`bound > 0`), by rejection from the top bits
    /// so the distribution is exactly uniform.
    pub fn gen_range(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_range bound must be positive");
        let bound = bound as u64;
        // Lemire-style: rejection zone keeps the multiply-shift unbiased.
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.gen_u64();
            if v < zone {
                return (v % bound) as usize;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.gen_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_and_deterministic() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(Rng::seed_from_u64(7).gen_u64(), c.gen_u64());
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference sequence for seed 1234567 (from the public-domain
        // splitmix64.c by Sebastiano Vigna).
        let mut r = Rng::seed_from_u64(1234567);
        assert_eq!(r.gen_u64(), 6457827717110365317);
        assert_eq!(r.gen_u64(), 3203168211198807973);
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = Rng::seed_from_u64(1);
        for bound in [1usize, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn u16_has_uniform_popcount() {
        let mut r = Rng::seed_from_u64(42);
        let mean = (0..4096)
            .map(|_| r.gen_u16().count_ones() as f64)
            .sum::<f64>()
            / 4096.0;
        assert!((mean - 8.0).abs() < 0.3, "mean popcount {mean}");
    }
}
