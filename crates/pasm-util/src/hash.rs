//! FNV-1a: a stable, dependency-free `std::hash::Hasher`.
//!
//! `std`'s default hasher is randomly keyed per process, so its output cannot
//! name anything durable. Cache keys and content fingerprints use FNV-1a
//! instead: the 64-bit variant is fixed by two constants and will produce the
//! same key for the same bytes in every process, forever.

use std::hash::Hasher;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a hasher state.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    pub fn new() -> Self {
        Self::default()
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// FNV-1a of a byte string in one call.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn usable_with_derive_hash() {
        let mut h = Fnv1a::new();
        (1u64, 2usize, "x").hash(&mut h);
        let first = h.finish();
        let mut h = Fnv1a::new();
        (1u64, 2usize, "x").hash(&mut h);
        assert_eq!(first, h.finish());
    }
}
