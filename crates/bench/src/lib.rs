//! Shared plumbing for the benchmark binaries that regenerate the paper's
//! tables and figures. Each binary prints a plain-text table (see
//! `pasm::report`) and also drops the raw rows as JSON under
//! `bench-results/` for EXPERIMENTS.md bookkeeping.

use pasm_util::{Json, ToJson};
use std::fs;
use std::path::PathBuf;

pub mod micro;

/// Directory the binaries write raw JSON results into.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../bench-results");
    fs::create_dir_all(&dir).expect("create bench-results dir");
    dir
}

/// Serialize rows to `bench-results/<name>.json`.
pub fn save_json<T: ToJson>(name: &str, rows: &T) {
    let path = results_dir().join(format!("{name}.json"));
    fs::write(&path, rows.to_json().pretty()).expect("write results");
    eprintln!("(raw rows written to {})", path.display());
}

/// Schema of the top-level `BENCH_*.json` trajectory files. Bump when the
/// document shape (not the metric values) changes.
pub const BENCH_SCHEMA_VERSION: i64 = 1;

/// Serialize one benchmark document to `BENCH_<name>.json` at the repository
/// root with the stable cross-PR schema
/// `{name, config, metrics{…}, schema_version}`, so successive PRs can diff
/// the perf trajectory mechanically. `config` records what was run (sizes,
/// machine preset, `--quick`), `metrics` the measured numbers.
pub fn save_bench_json(name: &str, config: Json, metrics: Json) {
    let doc = Json::obj(vec![
        ("name", Json::Str(name.to_string())),
        ("config", config),
        ("metrics", metrics),
        ("schema_version", Json::Int(BENCH_SCHEMA_VERSION)),
    ]);
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../BENCH_{name}.json"));
    fs::write(&path, doc.pretty()).expect("write BENCH json");
    eprintln!("(benchmark doc written to {})", path.display());
}

/// `--quick` on the command line caps the problem-size sweep for smoke runs.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// The paper's problem sizes, optionally capped for `--quick`.
pub fn sizes() -> Vec<usize> {
    let all = pasm::figures::PAPER_SIZES.to_vec();
    if quick_mode() {
        all.into_iter().filter(|&n| n <= 64).collect()
    } else {
        all
    }
}
