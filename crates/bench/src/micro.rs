//! A minimal, dependency-free micro-benchmark harness with a Criterion-shaped
//! API, so the `benches/` files keep their structure while building offline.
//!
//! Methodology: each benchmark is warmed up, then timed for a fixed number of
//! samples of batched iterations; the report prints the per-iteration median,
//! min and max. This is intentionally simpler than Criterion (no outlier
//! analysis, no HTML reports) — the numbers are for tracking relative
//! regressions between PRs, not publication.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export-shaped `black_box` (std's, which is a true optimization barrier).
pub use std::hint::black_box;

/// Harness configuration and entry point (mirrors `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name}");
        BenchmarkGroup {
            criterion: self,
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        run_one(self.sample_size, &id.to_string(), None, f);
    }
}

/// Throughput annotation (elements per iteration).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
}

/// A group of benchmarks sharing a prefix and a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        run_one(
            self.criterion.sample_size,
            &id.to_string(),
            self.throughput,
            f,
        );
    }

    pub fn finish(self) {}
}

/// Benchmark identifier (mirrors `criterion::BenchmarkId`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Passed to the benchmark closure; `iter` times the payload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut payload: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(payload());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(
    samples: usize,
    id: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibrate the batch size so one sample takes ~10 ms.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters =
        (Duration::from_millis(10).as_nanos() / per_iter.as_nanos()).clamp(1, 1 << 20) as u64;

    let mut per_iter_ns: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let min = per_iter_ns[0];
    let max = per_iter_ns[per_iter_ns.len() - 1];
    let rate = throughput
        .map(|Throughput::Elements(n)| format!("  {:>10.1} Melem/s", n as f64 * 1e3 / median))
        .unwrap_or_default();
    println!(
        "{id:<42} {:>12} median  [{} .. {}]{rate}",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Mirrors `criterion_group!`: collects targets into a named runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(name = $name;
                                 config = $crate::micro::Criterion::default();
                                 targets = $($target),*);
    };
}

/// Mirrors `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}
