//! Regenerates **Figures 8, 9 and 10**: contributions to execution time
//! (multiplication / communication / other) for SIMD and S/MIMD at p = 4 with
//! 1, 14, and 30 total inner-loop multiplies.
//!
//! Paper shapes to check: multiplication time grows faster than communication
//! (O(n³/p) vs O(n²)) and dominates at large n; at 14 multiplies the two
//! versions' totals meet near n = 64; at 30 the S/MIMD version wins for large
//! n and the gap widens with n.

use pasm::figures::{fig8_10, DEFAULT_SEED};

fn main() {
    let cfg = pasm::MachineConfig::prototype();
    let sizes = bench::sizes();
    let mut all = Vec::new();
    // "1, 14, 30 multiplies per inner loop" = 0, 13, 29 *added* multiplies.
    for (figure, extra) in [(8u32, 0usize), (9, 13), (10, 29)] {
        let rows = fig8_10(&cfg, 4, extra, &sizes, DEFAULT_SEED);
        println!("--- Figure {figure} ---");
        print!("{}", pasm::report::render_breakdown(&rows));
        all.extend(rows);
    }
    bench::save_json("fig8_9_10", &all);
}
