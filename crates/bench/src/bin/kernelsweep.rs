//! `kernelsweep` — where does each registered workload land on the
//! SIMD↔MIMD spectrum?
//!
//! Runs every kernel in the `pasm-kernels` registry in all three parallel
//! modes over p ∈ {4, 8, 16} on the 16-PE prototype, verifies each output
//! against the kernel's scalar host reference, and measures the paper's
//! **Σmax-vs-maxΣ** tradeoff per kernel: in SIMD the Fetch Unit releases
//! every broadcast instruction at the *maximum* over the PEs (the faster
//! PEs' slack shows up as `barrier_wait`), while in MIMD each PE pays only
//! the *sum of its own* instruction times and synchronizes by polling.
//! Which side wins depends on the kernel's signature:
//!
//! * `matmul`, `smooth` — compute is identical (or equalized cheaply)
//!   across PEs, so broadcast fetch is free bandwidth: **SIMD wins**;
//! * `bitonic`, `reduce` (at scale) — data-dependent compare-exchange paths
//!   and long per-PE loops make lockstep release pay max-variance on every
//!   instruction: **MIMD wins** the pure-mode comparison;
//! * S/MIMD rows show the hybrid (PE-resident code, barrier transfers) —
//!   frequently the overall winner, exactly the paper's point.
//!
//! The sweep is a regression gate (`ci.sh` runs `kernelsweep --quick`): it
//! exits nonzero if any output fails verification or if the spectrum
//! degenerates — the registry must always demonstrate at least one kernel
//! where SIMD beats MIMD and one where MIMD beats SIMD.
//!
//! Results go to the top-level `BENCH_kernelsweep.json` in the stable
//! `{name, config, metrics, schema_version}` trajectory schema.

use pasm::{MachineConfig, Mode, Params};
use pasm_machine::Bucket;
use pasm_util::{Json, ToJson};
use std::process::ExitCode;

const MODES: [Mode; 3] = [Mode::Simd, Mode::Mimd, Mode::Smimd];

/// Reference partition size: the placement (who wins which kernel) is judged
/// at this p, which both the quick and the full sweep run.
const REF_P: usize = 4;

/// Problem size per kernel: large enough that the kernel's signature —
/// not constant startup cost — decides the mode ranking. The quick sizes
/// are the smallest at which the full sweep's ranking is already visible.
fn problem_size(kernel: &str, quick: bool) -> usize {
    match (kernel, quick) {
        ("matmul", true) => 8,
        ("matmul", false) => 32,
        ("smooth", true) => 32,
        ("smooth", false) => 256,
        ("reduce", true) => 64,
        ("reduce", false) => 256,
        ("bitonic", true) => 128,
        ("bitonic", false) => 512,
        (k, _) => panic!("kernelsweep: no problem size configured for kernel `{k}`"),
    }
}

struct Row {
    kernel: &'static str,
    mode: Mode,
    n: usize,
    p: usize,
    cycles: u64,
    millis: f64,
    /// Slowest PE's compute-phase cycles (the paper's per-phase cost).
    compute_max: u64,
    /// Mean compute-phase cycles over active PEs — the gap to `compute_max`
    /// is the variance SIMD equalizes and MIMD keeps private.
    compute_mean: f64,
    comm_max: u64,
    barrier_wait: u64,
    verified: bool,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kernel", Json::Str(self.kernel.to_string())),
            ("mode", self.mode.to_json()),
            ("n", Json::Int(self.n as i64)),
            ("p", Json::Int(self.p as i64)),
            ("cycles", Json::Int(self.cycles as i64)),
            ("ms", Json::Float(self.millis)),
            ("compute_max", Json::Int(self.compute_max as i64)),
            ("compute_mean", Json::Float(self.compute_mean)),
            ("comm_max", Json::Int(self.comm_max as i64)),
            ("barrier_wait", Json::Int(self.barrier_wait as i64)),
            ("verified", Json::Bool(self.verified)),
        ])
    }
}

fn main() -> ExitCode {
    let quick = bench::quick_mode();
    let cfg = MachineConfig::prototype();
    let seed = pasm::figures::DEFAULT_SEED;
    let ps: &[usize] = if quick { &[REF_P] } else { &[4, 8, 16] };

    let mut rows: Vec<Row> = Vec::new();
    let mut failures = Vec::new();

    for kernel in pasm::kernels::kernels().iter().copied() {
        let n = problem_size(kernel.name(), quick);
        let input = kernel.generate(n, seed);
        for &p in ps {
            if let Err(e) = kernel.validate(n, p) {
                failures.push(format!("{} n={n} p={p}: {e}", kernel.name()));
                continue;
            }
            for mode in MODES {
                let params = Params::new(n, p);
                let out = match pasm::run_kernel(&cfg, kernel, mode, params, &input) {
                    Ok(out) => out,
                    Err(e) => {
                        failures.push(format!("{} {mode} n={n} p={p}: {e}", kernel.name()));
                        continue;
                    }
                };
                let verified = match out.verify(&input) {
                    Ok(()) => true,
                    Err(e) => {
                        failures.push(format!("{} {mode} n={n} p={p}: {e}", kernel.name()));
                        false
                    }
                };
                let (compute, comm) = kernel.phases();
                let barrier_wait = out
                    .run
                    .accounts
                    .as_ref()
                    .map(|acc| acc.pe_bucket_totals()[Bucket::BarrierWait as usize])
                    .unwrap_or(0);
                rows.push(Row {
                    kernel: kernel.name(),
                    mode,
                    n,
                    p,
                    cycles: out.cycles,
                    millis: out.millis(),
                    compute_max: out.run.phase_max(compute as usize),
                    compute_mean: out.run.phase_mean(compute as usize),
                    comm_max: out.run.phase_max(comm as usize),
                    barrier_wait,
                    verified,
                });
            }
        }
    }

    // Placement: judge each kernel's spectrum side by the pure modes at the
    // reference partition size (S/MIMD reported alongside as the hybrid).
    let mut placement = Vec::new();
    let mut simd_wins = 0usize;
    let mut mimd_wins = 0usize;
    println!("== kernel placement on the SIMD\u{2194}MIMD spectrum (p = {REF_P}) ==");
    println!(
        "{:>8} {:>6} {:>10} {:>10} {:>10} {:>8} {:>7}",
        "kernel", "n", "simd", "mimd", "smimd", "simd/mimd", "side"
    );
    for kernel in pasm::kernels::kernels() {
        let cell = |mode: Mode| {
            rows.iter()
                .find(|r| r.kernel == kernel.name() && r.p == REF_P && r.mode == mode)
                .map(|r| r.cycles)
        };
        let (Some(simd), Some(mimd), Some(smimd)) =
            (cell(Mode::Simd), cell(Mode::Mimd), cell(Mode::Smimd))
        else {
            failures.push(format!("{}: incomplete p={REF_P} row set", kernel.name()));
            continue;
        };
        let side = match simd.cmp(&mimd) {
            std::cmp::Ordering::Less => {
                simd_wins += 1;
                "simd"
            }
            std::cmp::Ordering::Greater => {
                mimd_wins += 1;
                "mimd"
            }
            std::cmp::Ordering::Equal => "tie",
        };
        let n = problem_size(kernel.name(), quick);
        println!(
            "{:>8} {:>6} {:>10} {:>10} {:>10} {:>9.4} {:>7}",
            kernel.name(),
            n,
            simd,
            mimd,
            smimd,
            simd as f64 / mimd as f64,
            side
        );
        placement.push(Json::obj(vec![
            ("kernel", Json::Str(kernel.name().to_string())),
            ("n", Json::Int(n as i64)),
            ("p", Json::Int(REF_P as i64)),
            ("simd_cycles", Json::Int(simd as i64)),
            ("mimd_cycles", Json::Int(mimd as i64)),
            ("smimd_cycles", Json::Int(smimd as i64)),
            ("simd_over_mimd", Json::Float(simd as f64 / mimd as f64)),
            ("side", Json::Str(side.to_string())),
        ]));
    }
    println!();

    if simd_wins == 0 {
        failures.push("spectrum degenerate: no kernel where SIMD beats MIMD".to_string());
    }
    if mimd_wins == 0 {
        failures.push("spectrum degenerate: no kernel where MIMD beats SIMD".to_string());
    }

    let config = Json::obj(vec![
        ("preset", Json::Str("prototype".to_string())),
        ("quick", Json::Bool(quick)),
        ("seed", Json::Int(seed as i64)),
        ("ref_p", Json::Int(REF_P as i64)),
        (
            "ps",
            Json::Arr(ps.iter().map(|&p| Json::Int(p as i64)).collect()),
        ),
        (
            "sizes",
            Json::obj(
                pasm::kernels::kernels()
                    .iter()
                    .map(|k| (k.name(), Json::Int(problem_size(k.name(), quick) as i64)))
                    .collect(),
            ),
        ),
    ]);
    let metrics = Json::obj(vec![
        (
            "rows",
            Json::Arr(rows.iter().map(ToJson::to_json).collect()),
        ),
        ("placement", Json::Arr(placement)),
        ("simd_wins", Json::Int(simd_wins as i64)),
        ("mimd_wins", Json::Int(mimd_wins as i64)),
    ]);
    bench::save_bench_json("kernelsweep", config, metrics);

    if failures.is_empty() {
        println!(
            "kernelsweep: {} runs verified; spectrum spans both ends \
             ({simd_wins} kernel(s) SIMD-side, {mimd_wins} MIMD-side)",
            rows.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
