//! Regenerates **Figure 12**: efficiency vs number of processors for n = 64,
//! one multiply per inner loop.
//!
//! Paper shape to check: efficiency falls as p grows — n/p shrinks, so the
//! communication and other overheads absent from the serial version loom
//! larger against the per-PE computation.

use pasm::figures::{fig12, DEFAULT_SEED};

fn main() {
    let cfg = pasm::MachineConfig::prototype();
    let rows = fig12(&cfg, 64, &[4, 8, 16], DEFAULT_SEED);
    print!("{}", pasm::report::render_fig12(&rows));
    bench::save_json("fig12", &rows);
}
