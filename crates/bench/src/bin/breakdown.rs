//! Regenerates the paper's **SIMD-vs-MIMD multiply analysis** from the
//! cycle-accounting buckets: in SIMD the Fetch Unit releases every broadcast
//! instruction in lockstep, so each data-dependent multiply costs the
//! **maximum** variance over the PEs (the equalization shows up as
//! `barrier_wait` on the faster PEs), while in MIMD every PE pays only the
//! **sum of its own** variances and the MAC-loop durations drift apart.
//!
//! Prints a per-PE bucket table for each mode and checks the paper's
//! qualitative claims, exiting nonzero on violation (so the `ci.sh`
//! smoke-run is a real regression gate):
//!
//! 1. per-PE buckets sum exactly to the PE's busy window
//!    (`started_at + Σ buckets == finished_at`),
//! 2. `barrier_wait` is zero in Serial and MIMD (polling synchronization
//!    burns `compute`, not barrier time) and nonzero in SIMD and S/MIMD,
//! 3. SIMD MAC-loop spans are identical across the PEs of each Fetch-Unit
//!    group (lockstep max), MIMD MAC-loop spans are not (each PE's own
//!    timing).

use pasm::{paper_workload, run_matmul, MachineConfig, Mode, Params};
use pasm_machine::{Bucket, MachineAccounts, BUCKET_NAMES, N_BUCKETS};
use pasm_prog::codegen::PHASE_MUL;
use pasm_util::{Json, ToJson};

/// Per-phase cycles of one PE, summed over that phase's recorded spans.
fn phase_cycles(accounts: &MachineAccounts, pe: usize, phase: u8) -> u64 {
    accounts.pe[pe]
        .spans
        .iter()
        .filter(|s| s.phase == phase)
        .map(|s| s.end - s.start)
        .sum()
}

struct ModeRow {
    mode: Mode,
    cycles: u64,
    /// (pe index, buckets, busy total, mac-loop cycles) for active PEs.
    pes: Vec<(usize, [u64; N_BUCKETS], u64, u64)>,
}

impl ToJson for ModeRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("mode", self.mode.to_json()),
            ("cycles", self.cycles.to_json()),
            (
                "pes",
                Json::Arr(
                    self.pes
                        .iter()
                        .map(|(pe, buckets, total, mac)| {
                            let mut pairs = vec![("pe", pe.to_json())];
                            pairs.extend(
                                BUCKET_NAMES
                                    .iter()
                                    .zip(buckets.iter())
                                    .map(|(n, v)| (*n, v.to_json())),
                            );
                            pairs.push(("total", total.to_json()));
                            pairs.push(("mac_loop", mac.to_json()));
                            Json::obj(pairs)
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn main() {
    let quick = bench::quick_mode();
    let cfg = MachineConfig::prototype();
    let (n, p) = if quick { (4, 4) } else { (16, 16) };
    let seed = 1988;
    let (a, b) = paper_workload(n, seed);

    let mut rows = Vec::new();
    let mut failures = Vec::new();

    for mode in Mode::ALL {
        let params = Params::new(n, p);
        let out = run_matmul(&cfg, mode, params, &a, &b).expect("run");
        let accounts = out
            .run
            .accounts
            .as_ref()
            .expect("accounting is on by default");

        let mut pes = Vec::new();
        for (i, trace) in out.run.pe.iter().enumerate() {
            if trace.instrs == 0 {
                continue;
            }
            let acc = &accounts.pe[i];
            let total = acc.total();
            if acc.started_at + total != trace.finished_at {
                failures.push(format!(
                    "{mode} pe{i}: buckets sum to {} but busy window is {}..{}",
                    total, acc.started_at, trace.finished_at
                ));
            }
            pes.push((
                i,
                *acc.buckets(),
                total,
                phase_cycles(accounts, i, PHASE_MUL),
            ));
        }

        let barrier: u64 = pes
            .iter()
            .map(|(_, b, _, _)| b[Bucket::BarrierWait as usize])
            .sum();
        match mode {
            Mode::Serial | Mode::Mimd => {
                if barrier != 0 {
                    failures.push(format!(
                        "{mode}: barrier_wait should be zero (got {barrier})"
                    ));
                }
            }
            Mode::Simd | Mode::Smimd => {
                if barrier == 0 {
                    failures.push(format!("{mode}: barrier_wait should be nonzero"));
                }
            }
        }

        match mode {
            Mode::Simd => {
                // Lockstep release is per Fetch Unit: every PE of an MC group
                // (PEs congruent mod `n_mcs`) sees identical release times, so
                // MAC-loop spans must be equal within each group.
                for mc in 0..cfg.n_mcs {
                    let macs: Vec<u64> = pes
                        .iter()
                        .filter(|(pe, ..)| pe % cfg.n_mcs == mc)
                        .map(|r| r.3)
                        .collect();
                    if !macs.windows(2).all(|w| w[0] == w[1]) {
                        failures.push(format!(
                            "SIMD group {mc}: MAC-loop spans should be \
                             lockstep-equalized, got {macs:?}"
                        ));
                    }
                }
            }
            Mode::Mimd => {
                let macs: Vec<u64> = pes.iter().map(|r| r.3).collect();
                if macs.windows(2).all(|w| w[0] == w[1]) {
                    failures.push(format!(
                        "MIMD: MAC-loop spans should reflect each PE's own \
                         data-dependent sum, but all PEs took {} cycles",
                        macs.first().copied().unwrap_or(0)
                    ));
                }
            }
            _ => {}
        }

        print_table(mode, out.cycles, &pes);
        rows.push(ModeRow {
            mode,
            cycles: out.cycles,
            pes,
        });
    }

    println!(
        "SIMD equalizes the MAC loop at the max over PEs (faster PEs accrue\n\
         barrier_wait); MIMD PEs each pay the sum of their own multiply\n\
         variances, so their MAC-loop durations differ."
    );

    bench::save_bench_json(
        "breakdown",
        Json::obj(vec![
            ("preset", Json::Str("prototype".to_string())),
            ("quick", Json::Bool(quick)),
            ("n", Json::Int(n as i64)),
            ("p", Json::Int(p as i64)),
            ("seed", Json::Int(seed as i64)),
        ]),
        Json::obj(vec![(
            "modes",
            Json::Arr(rows.iter().map(ToJson::to_json).collect()),
        )]),
    );

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}

fn print_table(mode: Mode, cycles: u64, pes: &[(usize, [u64; N_BUCKETS], u64, u64)]) {
    println!("== {mode} (makespan {cycles} cycles) ==");
    print!("{:>4}", "pe");
    for name in BUCKET_NAMES {
        print!("{name:>18}");
    }
    println!("{:>12}{:>12}", "total", "mac_loop");
    for (pe, buckets, total, mac) in pes {
        print!("{pe:>4}");
        for v in buckets {
            print!("{v:>18}");
        }
        println!("{total:>12}{mac:>12}");
    }
    println!();
}
