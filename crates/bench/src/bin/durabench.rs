//! `durabench` — durability cost and recovery benchmark of the `pasm-server`
//! persistence tier (ISSUE 9).
//!
//! For each fsync policy (`always`, `interval:100`, `never`) the bench
//! starts a server over a fresh data dir, submits a batch of distinct cold
//! jobs over HTTP, and measures end-to-end cold-submit throughput plus the
//! fsync counts actually issued — the durability/throughput trade the
//! `--fsync` flag exposes. It then **restarts** the server over the same
//! data dir and records the recovery wall time and replayed-result count,
//! and gates (exit nonzero) on the durability contract: the restarted
//! server must answer a cached submit for every persisted key **without
//! re-simulating** — byte-identical result, zero cold completions.
//!
//! `--quick` shrinks the batch for the CI smoke run. Results land in
//! `BENCH_durabench.json`.

use pasm_server::{FsyncPolicy, Server, ServerConfig};
use pasm_util::{json, Json};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let (_, payload) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    (status, payload.to_string())
}

fn get_json(addr: SocketAddr, path: &str) -> Json {
    let (code, payload) = request(addr, "GET", path, "");
    assert_eq!(code, 200, "GET {path}: {payload}");
    json::parse(&payload).expect("JSON payload")
}

fn await_ready(addr: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (code, _) = request(addr, "GET", "/healthz", "");
        if code == 200 {
            return;
        }
        assert!(Instant::now() < deadline, "server never became ready");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn await_done(addr: SocketAddr, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let body = get_json(addr, &format!("/status/{id}"));
        match body.get("status").and_then(Json::as_str).unwrap_or("") {
            "queued" | "running" => {
                assert!(Instant::now() < deadline, "job {id} never finished");
                std::thread::sleep(Duration::from_millis(2));
            }
            "done" => return,
            other => panic!("job {id} ended {other}"),
        }
    }
}

fn start(dir: &Path, policy: FsyncPolicy) -> Server {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        queue_depth: 256,
        data_dir: Some(dir.to_path_buf()),
        fsync: policy,
        ..ServerConfig::default()
    })
    .expect("server starts");
    await_ready(server.addr());
    server
}

fn durability_stat(addr: SocketAddr, key: &str) -> u64 {
    get_json(addr, "/stats")
        .get("durability")
        .and_then(|d| d.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("durability.{key} in /stats"))
}

/// One fsync policy measured end to end: populate, then restart + verify.
struct PolicyRun {
    label: &'static str,
    jobs: u64,
    submit_wall_ms: u64,
    jobs_per_sec: f64,
    store_fsyncs: u64,
    journal_fsyncs: u64,
    recovery_ms: u64,
    results_replayed: u64,
    violations: u64,
}

fn run_policy(label: &'static str, policy: FsyncPolicy, jobs: u64) -> PolicyRun {
    let dir = std::env::temp_dir().join(format!("pasm-durabench-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let body_of = |i: u64| format!(r#"{{"mode":"simd","n":8,"p":4,"seed":{}}}"#, 50_000 + i);

    // Phase 1: cold-submit throughput under this fsync policy.
    let mut server = start(&dir, policy);
    let addr = server.addr();
    let t0 = Instant::now();
    let ids: Vec<u64> = (0..jobs)
        .map(|i| {
            let (code, payload) = request(addr, "POST", "/submit", &body_of(i));
            assert_eq!(code, 202, "cold submit: {payload}");
            json::parse(&payload)
                .ok()
                .and_then(|j| j.get("job_id").and_then(Json::as_u64))
                .expect("job_id")
        })
        .collect();
    let mut results = Vec::with_capacity(ids.len());
    for (i, id) in ids.iter().enumerate() {
        await_done(addr, *id);
        let body = get_json(addr, &format!("/result/{id}"));
        results.push((
            body_of(i as u64),
            body.get("result").expect("result").dump(),
        ));
    }
    let submit_wall_ms = t0.elapsed().as_millis() as u64;
    let store_fsyncs = durability_stat(addr, "store_fsyncs");
    let journal_fsyncs = durability_stat(addr, "journal_fsyncs");
    server.shutdown();

    // Phase 2: restart over the populated dir — the durability gate. Every
    // persisted key must answer cached and byte-identical at submit time,
    // with zero cold completions (nothing re-simulated).
    let mut server = start(&dir, policy);
    let addr = server.addr();
    let recovery_ms = durability_stat(addr, "recovery_ms");
    let results_replayed = durability_stat(addr, "results_replayed");
    let mut violations = 0u64;
    if results_replayed != jobs {
        eprintln!("VIOLATION [{label}]: replayed {results_replayed} of {jobs} results");
        violations += 1;
    }
    for (body, expect) in &results {
        let (code, payload) = request(addr, "POST", "/submit", body);
        let resp = json::parse(&payload).expect("submit response");
        let cached = resp.get("cached").and_then(Json::as_bool) == Some(true);
        let identical = resp.get("result").map(Json::dump).as_deref() == Some(expect);
        if code != 200 || !cached || !identical {
            eprintln!(
                "VIOLATION [{label}]: restart lost {body} \
                 (code {code}, cached {cached}, identical {identical})"
            );
            violations += 1;
        }
    }
    let cold_after_restart = get_json(addr, "/stats")
        .get("latency")
        .and_then(|l| l.get("cold"))
        .and_then(|c| c.get("count"))
        .and_then(Json::as_u64)
        .unwrap_or(u64::MAX);
    if cold_after_restart != 0 {
        eprintln!("VIOLATION [{label}]: {cold_after_restart} jobs re-simulated after restart");
        violations += 1;
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    PolicyRun {
        label,
        jobs,
        submit_wall_ms,
        jobs_per_sec: jobs as f64 / (submit_wall_ms.max(1) as f64 / 1000.0),
        store_fsyncs,
        journal_fsyncs,
        recovery_ms,
        results_replayed,
        violations,
    }
}

fn main() -> ExitCode {
    let quick = bench::quick_mode();
    let jobs: u64 = if quick { 8 } else { 48 };
    let policies: [(&'static str, FsyncPolicy); 3] = [
        ("always", FsyncPolicy::Always),
        (
            "interval:100",
            FsyncPolicy::Interval(Duration::from_millis(100)),
        ),
        ("never", FsyncPolicy::Never),
    ];

    println!("durabench: {jobs} cold jobs per fsync policy (quick={quick})");
    let runs: Vec<PolicyRun> = policies
        .into_iter()
        .map(|(label, policy)| run_policy(label, policy, jobs))
        .collect();

    println!(
        "  {:>14} {:>8} {:>10} {:>12} {:>14} {:>12} {:>10}",
        "fsync", "jobs", "wall ms", "jobs/s", "store fsyncs", "recovery ms", "replayed"
    );
    let mut violations = 0;
    for r in &runs {
        violations += r.violations;
        println!(
            "  {:>14} {:>8} {:>10} {:>12.1} {:>14} {:>12} {:>10}",
            r.label,
            r.jobs,
            r.submit_wall_ms,
            r.jobs_per_sec,
            r.store_fsyncs,
            r.recovery_ms,
            r.results_replayed
        );
    }

    bench::save_bench_json(
        "durabench",
        Json::obj(vec![
            ("quick", Json::Bool(quick)),
            ("jobs_per_policy", Json::Int(jobs as i64)),
            ("workers", Json::Int(4)),
            ("n", Json::Int(8)),
            ("p", Json::Int(4)),
        ]),
        Json::obj(vec![
            (
                "policies",
                Json::Arr(
                    runs.iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("fsync", Json::Str(r.label.to_string())),
                                ("jobs", Json::Int(r.jobs as i64)),
                                ("submit_wall_ms", Json::Int(r.submit_wall_ms as i64)),
                                ("jobs_per_sec", Json::Float(r.jobs_per_sec)),
                                ("store_fsyncs", Json::Int(r.store_fsyncs as i64)),
                                ("journal_fsyncs", Json::Int(r.journal_fsyncs as i64)),
                                ("recovery_ms", Json::Int(r.recovery_ms as i64)),
                                ("results_replayed", Json::Int(r.results_replayed as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("violations", Json::Int(violations as i64)),
        ]),
    );

    if violations == 0 {
        println!(
            "durability gate holds: every restart served every persisted result from the \
             replayed cache, byte-identical, with zero re-simulations"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("durabench: {violations} violation(s)");
        ExitCode::FAILURE
    }
}
