//! Regenerates **Figure 6**: execution time vs problem size for p = 8 and one
//! multiply per inner loop, all four program versions.
//!
//! Paper shapes to check: the parallel versions are ~p× below SISD; SIMD is
//! fastest; MIMD/S-MIMD converge toward SIMD as n grows (the O(n²)
//! communication is overtaken by the O(n³/p) arithmetic).

use pasm::figures::{fig6, DEFAULT_SEED};

fn main() {
    let cfg = pasm::MachineConfig::prototype();
    let rows = fig6(&cfg, 8, &bench::sizes(), DEFAULT_SEED);
    print!("{}", pasm::report::render_fig6(&rows));
    bench::save_json("fig6", &rows);
}
