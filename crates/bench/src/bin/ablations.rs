//! Ablations of the design decisions DESIGN.md §4 calls out (not paper
//! artifacts; they isolate *why* the paper's effects appear).
//!
//! * **A1 release rule** — lockstep (release at the slowest PE's request, the
//!   real hardware) vs decoupled (per-PE private queues). The gap is the pure
//!   cost of per-instruction barrier composition, and it grows with the
//!   number of data-dependent multiplies.
//! * **A2 queue depth** — SIMD's control-flow hiding only works while the
//!   queue is non-empty; shrinking it exposes MC time.
//! * **A3 multiplier bit-density** — with fixed-popcount data every multiply
//!   takes the same time, the lockstep `max` equals the mean, and the Fig-7
//!   crossover should disappear; uniform-random data restores it.

use pasm::figures::{ablation_density, ablation_queue, ablation_release, DEFAULT_SEED};

fn main() {
    let cfg = pasm::MachineConfig::prototype();
    let quick = bench::quick_mode();
    let n = if quick { 32 } else { 64 };

    println!("A1: SIMD release rule (n={n}, p=4)");
    println!("extra  lockstep(ms)  decoupled(ms)  barrier cost");
    let rows = ablation_release(&cfg, n, 4, &[0, 5, 10, 15, 20, 30], DEFAULT_SEED);
    for r in &rows {
        println!(
            "{:>5} {:>12.2} {:>14.2} {:>9.1}%",
            r.extra_muls,
            r.lockstep_ms,
            r.decoupled_ms,
            100.0 * (r.lockstep_ms - r.decoupled_ms) / r.decoupled_ms
        );
    }
    bench::save_json("ablation_release", &rows);

    println!("\nA2: queue capacity (n={n}, p=4, SIMD)");
    println!("capacity(words)  time(ms)  empty-stall cycles  max depth");
    let rows = ablation_queue(&cfg, n, 4, &[8, 16, 32, 64, 128, 256, 512], DEFAULT_SEED);
    for r in &rows {
        println!(
            "{:>15} {:>9.2} {:>19} {:>10}",
            r.capacity_words, r.simd_ms, r.empty_stall_cycles, r.max_depth_words
        );
    }
    bench::save_json("ablation_queue", &rows);

    println!("\nA3: multiplier bit-density vs crossover (n={n}, p=4)");
    println!("ones  crossover");
    let extras: Vec<usize> = (0..=30).collect();
    let rows = ablation_density(&cfg, n, 4, &[0, 4, 8, 12, 16], &extras, DEFAULT_SEED);
    for r in &rows {
        println!(
            "{:>4}  {}",
            r.ones,
            r.crossover
                .map(|c| c.to_string())
                .unwrap_or_else(|| "none (SIMD always wins)".into())
        );
    }
    bench::save_json("ablation_density", &rows);
}
