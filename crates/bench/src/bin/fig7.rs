//! Regenerates **Figure 7**: execution time vs number of added inner-loop
//! multiplies for n = 64, p = 4.
//!
//! This is the headline experiment: with few added multiplies SIMD wins (its
//! control flow is hidden on the MC and its fetches are faster); as
//! data-dependent multiplies accumulate, the per-instruction lockstep `max`
//! makes SIMD lose ground, and the S/MIMD hybrid overtakes it. The paper
//! reports the crossover at approximately fourteen added multiplications.

use pasm::figures::{fig7, DEFAULT_SEED};

fn main() {
    let cfg = pasm::MachineConfig::prototype();
    let extras: Vec<usize> = (0..=30).collect();
    let rows = fig7(&cfg, 64, 4, &extras, DEFAULT_SEED);
    print!("{}", pasm::report::render_fig7(&rows));
    bench::save_json("fig7", &rows);
}
