//! Regenerates **Table 1**: prototype raw performance in MIPS for two
//! instruction classes in SIMD and MIMD modes.
//!
//! Paper: SIMD is faster than MIMD for both classes because the Fetch Unit
//! queue's static RAM delivers instruction words with one less wait state
//! than the PEs' dynamic main memories, and the queue sees no refresh.

fn main() {
    let cfg = pasm::MachineConfig::prototype();
    let rows = pasm::figures::table1(&cfg);
    print!("{}", pasm::report::render_table1(&rows));
    bench::save_json("table1", &rows);
}
