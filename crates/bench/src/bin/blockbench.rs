//! `blockbench` — wall-clock payoff of the block-compiled fast path.
//!
//! Runs every registered kernel in all three parallel modes twice per grid
//! cell — once on the block-compiled fast path, once forced onto the
//! per-instruction interpreter (`RunOptions::fast_path = false`) — and
//! reports the host wall-time ratio. Before timing is trusted, every cell's
//! two runs are compared as full [`pasm::ExperimentResult`]s: simulated
//! makespan, per-bucket cycle totals, instruction counts and output
//! checksums must be byte-identical, or the bench exits nonzero. The fast
//! path is an *optimization of the scheduler*, never of the timing model —
//! see `docs/TIMING.md`.
//!
//! Grid: p ∈ {4, 8, 16} × the paper-scale sizes n ∈ {256, 1024} for the
//! streaming kernels. `matmul` is O(n³) in simulated work and capped at
//! n ≤ 512 by its generator, so it sweeps n ∈ {32, 64} instead — it
//! contributes to the equivalence gate but not to the headline speed-up.
//! Cells the kernel's own `validate` rejects (e.g. `bitonic` with a
//! per-PE chunk that is not a power of two) are skipped, not failed.
//!
//! Gates:
//! * every cell: fast-path results byte-identical to the interpreter's;
//! * full mode only: the best speed-up at n = 1024, p = 16 must reach
//!   [`MIN_SPEEDUP`]× — the fast path has to actually pay for its table.
//!
//! `ci.sh` runs `blockbench --quick` (small n, equivalence gate only).
//! Results go to the top-level `BENCH_blockbench.json` in the stable
//! `{name, config, metrics, schema_version}` trajectory schema.

use pasm::{ExperimentResult, MachineConfig, Mode, Params, RunOptions};
use pasm_util::{Json, ToJson};
use std::process::ExitCode;
use std::time::Instant;

const MODES: [Mode; 3] = [Mode::Simd, Mode::Mimd, Mode::Smimd];

/// The headline cell: speed-up is judged at this partition and size.
const GATE_N: usize = 1024;
const GATE_P: usize = 16;

/// Full-mode floor on the best n = 1024, p = 16 speed-up.
///
/// Measured on the reference container: bitonic S/MIMD ~5.2×, bitonic
/// MIMD ~3.2×. The floor sits below the best cell with margin because
/// host wall time drifts 2× and worse run to run under neighbor load. The ceiling is structural,
/// not a tuning artifact: `exec_timed` alone costs ~14 ns/instr vs
/// ~100 ns/instr for the full interpreter loop, and DRAM-refresh waits
/// are time-dependent, so the fast path must still evaluate two burst
/// delays per instruction instead of folding them per block — see the
/// "What the block compiler cannot fold" section of `docs/TIMING.md`.
const MIN_SPEEDUP: f64 = 2.5;

/// Sizes per kernel. `matmul` is cubic in simulated instructions (and its
/// generator rejects n > 512), so it gets the small pair; everything else
/// runs the paper-scale pair the issue calls for.
fn sizes(kernel: &str, quick: bool) -> &'static [usize] {
    match (kernel, quick) {
        ("matmul", true) => &[8],
        ("matmul", false) => &[32, 64],
        (_, true) => &[64],
        (_, false) => &[256, 1024],
    }
}

struct Row {
    kernel: &'static str,
    mode: Mode,
    n: usize,
    p: usize,
    cycles: u64,
    fast_ms: f64,
    interp_ms: f64,
    speedup: f64,
    identical: bool,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kernel", Json::Str(self.kernel.to_string())),
            ("mode", self.mode.to_json()),
            ("n", Json::Int(self.n as i64)),
            ("p", Json::Int(self.p as i64)),
            ("cycles", Json::Int(self.cycles as i64)),
            ("fast_wall_ms", Json::Float(self.fast_ms)),
            ("interp_wall_ms", Json::Float(self.interp_ms)),
            ("speedup", Json::Float(self.speedup)),
            ("identical", Json::Bool(self.identical)),
        ])
    }
}

/// Run one cell with the fast path on or off, returning the summarized
/// result and the host wall time in milliseconds.
fn run_cell(
    cfg: &MachineConfig,
    kernel: &'static dyn pasm::Kernel,
    mode: Mode,
    params: Params,
    input: &[u16],
    seed: u64,
    fast_path: bool,
) -> Result<(ExperimentResult, f64), pasm_machine::RunError> {
    let opts = RunOptions {
        fast_path,
        ..RunOptions::default()
    };
    let t0 = Instant::now();
    let out = pasm::run_kernel_opts(cfg, kernel, mode, params, input, &opts)?;
    let wall = t0.elapsed().as_secs_f64() * 1e3;
    Ok((ExperimentResult::from_kernel_outcome(&out, seed), wall))
}

fn main() -> ExitCode {
    let quick = bench::quick_mode();
    let cfg = MachineConfig::prototype();
    let seed = pasm::figures::DEFAULT_SEED;
    let ps: &[usize] = if quick { &[4] } else { &[4, 8, 16] };

    let mut rows: Vec<Row> = Vec::new();
    let mut failures = Vec::new();

    println!("== block-compiled fast path vs per-instruction interpreter ==");
    println!(
        "{:>8} {:>6} {:>6} {:>4} {:>12} {:>10} {:>10} {:>8} {:>6}",
        "kernel", "mode", "n", "p", "cycles", "interp ms", "fast ms", "speedup", "equal"
    );
    for kernel in pasm::kernels::kernels().iter().copied() {
        for &n in sizes(kernel.name(), quick) {
            let input = kernel.generate(n, seed);
            for &p in ps {
                if kernel.validate(n, p).is_err() {
                    continue; // out of the kernel's own bounds, not a failure
                }
                for mode in MODES {
                    let params = Params::new(n, p);
                    let interp = run_cell(&cfg, kernel, mode, params, &input, seed, false);
                    let fast = run_cell(&cfg, kernel, mode, params, &input, seed, true);
                    let ((interp_res, interp_ms), (fast_res, fast_ms)) = match (interp, fast) {
                        (Ok(i), Ok(f)) => (i, f),
                        (i, f) => {
                            let e = i.err().or(f.err()).unwrap();
                            failures.push(format!("{} {mode} n={n} p={p}: {e}", kernel.name()));
                            continue;
                        }
                    };
                    let identical = fast_res == interp_res;
                    if !identical {
                        failures.push(format!(
                            "{} {mode} n={n} p={p}: fast path diverged from interpreter \
                             (cycles {} vs {}, buckets {:?} vs {:?})",
                            kernel.name(),
                            fast_res.cycles,
                            interp_res.cycles,
                            fast_res.pe_buckets,
                            interp_res.pe_buckets,
                        ));
                    }
                    let speedup = interp_ms / fast_ms.max(1e-9);
                    println!(
                        "{:>8} {:>6} {:>6} {:>4} {:>12} {:>10.2} {:>10.2} {:>7.2}x {:>6}",
                        kernel.name(),
                        format!("{mode}"),
                        n,
                        p,
                        fast_res.cycles,
                        interp_ms,
                        fast_ms,
                        speedup,
                        if identical { "yes" } else { "NO" },
                    );
                    rows.push(Row {
                        kernel: kernel.name(),
                        mode,
                        n,
                        p,
                        cycles: fast_res.cycles,
                        fast_ms,
                        interp_ms,
                        speedup,
                        identical,
                    });
                }
            }
        }
    }
    println!();

    // Headline: best speed-up at the gate cell (full mode only — quick runs
    // are too short for stable wall times, so they gate equivalence only).
    let gate_best = rows
        .iter()
        .filter(|r| r.n == GATE_N && r.p == GATE_P)
        .map(|r| r.speedup)
        .fold(0.0f64, f64::max);
    if !quick {
        if gate_best >= MIN_SPEEDUP {
            println!(
                "blockbench: best n={GATE_N} p={GATE_P} speedup {gate_best:.1}x \
                 (gate: >= {MIN_SPEEDUP:.1}x)"
            );
        } else {
            failures.push(format!(
                "fast path too slow: best n={GATE_N} p={GATE_P} speedup \
                 {gate_best:.2}x < {MIN_SPEEDUP:.1}x"
            ));
        }
    }

    let config = Json::obj(vec![
        ("preset", Json::Str("prototype".to_string())),
        ("quick", Json::Bool(quick)),
        ("seed", Json::Int(seed as i64)),
        (
            "ps",
            Json::Arr(ps.iter().map(|&p| Json::Int(p as i64)).collect()),
        ),
        (
            "sizes",
            Json::obj(
                pasm::kernels::kernels()
                    .iter()
                    .map(|k| {
                        (
                            k.name(),
                            Json::Arr(
                                sizes(k.name(), quick)
                                    .iter()
                                    .map(|&n| Json::Int(n as i64))
                                    .collect(),
                            ),
                        )
                    })
                    .collect(),
            ),
        ),
        ("gate_n", Json::Int(GATE_N as i64)),
        ("gate_p", Json::Int(GATE_P as i64)),
        ("min_speedup", Json::Float(MIN_SPEEDUP)),
    ]);
    let metrics = Json::obj(vec![
        (
            "rows",
            Json::Arr(rows.iter().map(ToJson::to_json).collect()),
        ),
        ("gate_best_speedup", Json::Float(gate_best)),
        (
            "all_identical",
            Json::Bool(rows.iter().all(|r| r.identical)),
        ),
    ]);
    bench::save_bench_json("blockbench", config, metrics);

    if failures.is_empty() {
        println!(
            "blockbench: {} cells, fast path byte-identical to the interpreter in all of them",
            rows.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
