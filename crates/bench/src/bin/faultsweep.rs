//! `faultsweep` — empirical check of the ESC single-fault theorem on the
//! full simulated machine.
//!
//! For **every** tolerable single network fault (each interchange box and
//! each inter-stage link, see `pasm_net::single_faults`) the sweep runs the
//! paper's matrix multiplication in all three parallel modes (SIMD, MIMD,
//! S/MIMD) across many seeds on a half-machine spread partition, and asserts:
//!
//! * the product matrix is **correct** under the fault, element for element;
//! * a *rerouted* fault (interior box or any link — `NetFault::reroutes`)
//!   slows the run down, and the slowdown is attributed to the
//!   `fault_detour` cycle bucket. SIMD and S/MIMD transfer in lockstep, so
//!   every rerouted fault must slow every run; MIMD receivers *poll*, which
//!   quantizes word arrivals to poll iterations — a detour smaller than one
//!   poll loop can vanish from an individual run's makespan (the same
//!   instruction-time non-determinism the paper studies). For MIMD each run
//!   must charge the detour and never get faster, and the mode as a whole —
//!   all rerouted faults across all seeds — must be slower than fault-free
//!   in aggregate;
//! * a *hidden* fault (extra-stage or output-stage box, bypassed by the
//!   multiplexers) costs exactly nothing: identical cycle count, zero
//!   detour cycles.
//!
//! The full sweep uses the 16-PE prototype with `p = 8` (the spread
//! partition on every other network line) and n=8 matrices over 16 seeds;
//! `--quick` shrinks it to the 4-PE small machine (14 faults) for CI. Any
//! violated assertion is printed and the binary exits nonzero — `ci.sh`
//! runs the quick sweep as a regression gate.

use pasm::{par_map, Mode, Params, RunOptions};
use pasm_machine::{single_faults, Bucket, FaultPlan, MachineConfig};
use pasm_prog::Matrix;
use pasm_util::{Json, ToJson};
use std::process::ExitCode;

const MODES: [Mode; 3] = [Mode::Simd, Mode::Mimd, Mode::Smimd];

/// Aggregate of one (mode, seed) cell of the sweep: all faults checked
/// against one fault-free baseline.
struct Cell {
    mode: Mode,
    seed: u64,
    baseline_cycles: u64,
    faults: usize,
    rerouted: usize,
    /// Total cycles of the cell's rerouted-fault runs (vs `baseline_cycles ×
    /// rerouted` fault-free) — the mode-level aggregate-slowdown input.
    rerouted_cycles: u64,
    hidden: usize,
    max_slowdown: f64,
    violations: Vec<String>,
}

impl ToJson for Cell {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("mode", Json::Str(self.mode.to_string())),
            ("seed", Json::Int(self.seed as i64)),
            ("baseline_cycles", Json::Int(self.baseline_cycles as i64)),
            ("faults", Json::Int(self.faults as i64)),
            ("rerouted", Json::Int(self.rerouted as i64)),
            ("rerouted_cycles", Json::Int(self.rerouted_cycles as i64)),
            ("hidden", Json::Int(self.hidden as i64)),
            ("max_slowdown", Json::Float(self.max_slowdown)),
            ("violations", Json::Int(self.violations.len() as i64)),
        ])
    }
}

fn sweep_cell(cfg: &MachineConfig, n: usize, p: usize, mode: Mode, seed: u64) -> Cell {
    let m = cfg.n_pes.max(2).trailing_zeros();
    // A non-trivial product (the paper workload multiplies by the identity,
    // which would let a fault that misroutes `A` go unnoticed).
    let a = Matrix::uniform(n, seed);
    let b = Matrix::uniform(n, seed ^ 0x9E37_79B9_7F4A_7C15);
    let expect = a.multiply(&b);
    let params = Params::new(n, p);

    let base = pasm::run_matmul_opts(cfg, mode, params, &a, &b, &RunOptions::default())
        .expect("fault-free baseline run");
    let mut cell = Cell {
        mode,
        seed,
        baseline_cycles: base.cycles,
        faults: 0,
        rerouted: 0,
        rerouted_cycles: 0,
        hidden: 0,
        max_slowdown: 1.0,
        violations: Vec::new(),
    };
    if base.c != expect {
        cell.violations
            .push(format!("{mode} seed {seed}: fault-free product WRONG"));
        return cell;
    }

    for fault in single_faults(cfg.n_pes.max(2)) {
        cell.faults += 1;
        let opts = RunOptions {
            fault: FaultPlan::net_single(fault),
            ..RunOptions::default()
        };
        let tag = format!("{mode} seed {seed} fault {fault}");
        let out = match pasm::run_matmul_opts(cfg, mode, params, &a, &b, &opts) {
            Ok(out) => out,
            Err(e) => {
                cell.violations.push(format!("{tag}: run failed: {e}"));
                continue;
            }
        };
        if out.c != expect {
            cell.violations.push(format!("{tag}: product WRONG"));
        }
        let detour = out
            .run
            .accounts
            .as_ref()
            .map(|acc| acc.pe_bucket_totals()[Bucket::FaultDetour as usize])
            .unwrap_or(0);
        let slowdown = out.cycles as f64 / base.cycles as f64;
        cell.max_slowdown = cell.max_slowdown.max(slowdown);
        if fault.reroutes(m) {
            cell.rerouted += 1;
            cell.rerouted_cycles += out.cycles;
            if detour == 0 {
                cell.violations
                    .push(format!("{tag}: rerouted fault charged no fault_detour"));
            }
            // Lockstep transfers (SIMD, S/MIMD barriers) cannot hide the
            // extra hop: every rerouted run must be strictly slower. MIMD
            // polling may absorb a single run's detour, but never speeds
            // one up — the aggregate check below catches a detour model
            // that stopped reaching the makespan at all.
            let hidden_ok = mode == Mode::Mimd && out.cycles == base.cycles;
            if out.cycles <= base.cycles && !hidden_ok {
                cell.violations.push(format!(
                    "{tag}: rerouted fault shows no slowdown ({} vs {} cycles)",
                    out.cycles, base.cycles
                ));
            }
        } else {
            cell.hidden += 1;
            if detour != 0 {
                cell.violations.push(format!(
                    "{tag}: hidden fault charged {detour} detour cycles"
                ));
            }
            if out.cycles != base.cycles {
                cell.violations.push(format!(
                    "{tag}: hidden fault changed the cycle count ({} vs {})",
                    out.cycles, base.cycles
                ));
            }
        }
    }
    cell
}

/// Aggregate of one (kernel, mode) cell of the registry-wide sweep: every
/// tolerable single network fault, each output verified against the
/// kernel's scalar host reference.
struct KernelCell {
    kernel: &'static str,
    mode: Mode,
    baseline_cycles: u64,
    faults: usize,
    rerouted: usize,
    hidden: usize,
    max_slowdown: f64,
    violations: Vec<String>,
}

impl ToJson for KernelCell {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("kernel", Json::Str(self.kernel.to_string())),
            ("mode", Json::Str(self.mode.to_string())),
            ("baseline_cycles", Json::Int(self.baseline_cycles as i64)),
            ("faults", Json::Int(self.faults as i64)),
            ("rerouted", Json::Int(self.rerouted as i64)),
            ("hidden", Json::Int(self.hidden as i64)),
            ("max_slowdown", Json::Float(self.max_slowdown)),
            ("violations", Json::Int(self.violations.len() as i64)),
        ])
    }
}

/// Sweep one registered kernel through every single fault in one mode. The
/// per-fault checks are the theorem's kernel-agnostic core: the output is
/// always correct; a rerouted fault charges `fault_detour` and never speeds
/// the run up; a hidden fault costs exactly nothing. (The strict per-run
/// slowdown and aggregate checks stay with the matmul sweep above, whose
/// transfer volume makes them sharp.)
fn kernel_cell(
    cfg: &MachineConfig,
    kernel: &'static dyn pasm::Kernel,
    n: usize,
    p: usize,
    mode: Mode,
    seed: u64,
) -> KernelCell {
    let m = cfg.n_pes.max(2).trailing_zeros();
    let input = kernel.generate(n, seed);
    let params = Params::new(n, p);
    let base = pasm::run_kernel_opts(cfg, kernel, mode, params, &input, &RunOptions::default())
        .expect("fault-free kernel baseline");
    let mut cell = KernelCell {
        kernel: kernel.name(),
        mode,
        baseline_cycles: base.cycles,
        faults: 0,
        rerouted: 0,
        hidden: 0,
        max_slowdown: 1.0,
        violations: Vec::new(),
    };
    if let Err(e) = base.verify(&input) {
        cell.violations
            .push(format!("{} {mode}: fault-free run: {e}", kernel.name()));
        return cell;
    }
    for fault in single_faults(cfg.n_pes.max(2)) {
        cell.faults += 1;
        let opts = RunOptions {
            fault: FaultPlan::net_single(fault),
            ..RunOptions::default()
        };
        let tag = format!("{} {mode} fault {fault}", kernel.name());
        let out = match pasm::run_kernel_opts(cfg, kernel, mode, params, &input, &opts) {
            Ok(out) => out,
            Err(e) => {
                cell.violations.push(format!("{tag}: run failed: {e}"));
                continue;
            }
        };
        if let Err(e) = out.verify(&input) {
            cell.violations.push(format!("{tag}: {e}"));
        }
        let detour = out
            .run
            .accounts
            .as_ref()
            .map(|acc| acc.pe_bucket_totals()[Bucket::FaultDetour as usize])
            .unwrap_or(0);
        cell.max_slowdown = cell
            .max_slowdown
            .max(out.cycles as f64 / base.cycles as f64);
        if fault.reroutes(m) {
            cell.rerouted += 1;
            if detour == 0 {
                cell.violations
                    .push(format!("{tag}: rerouted fault charged no fault_detour"));
            }
            if out.cycles < base.cycles {
                cell.violations.push(format!(
                    "{tag}: rerouted fault sped the run up ({} vs {} cycles)",
                    out.cycles, base.cycles
                ));
            }
        } else {
            cell.hidden += 1;
            if detour != 0 {
                cell.violations.push(format!(
                    "{tag}: hidden fault charged {detour} detour cycles"
                ));
            }
            if out.cycles != base.cycles {
                cell.violations.push(format!(
                    "{tag}: hidden fault changed the cycle count ({} vs {})",
                    out.cycles, base.cycles
                ));
            }
        }
    }
    cell
}

fn main() -> ExitCode {
    let quick = bench::quick_mode();
    // Quick: a 4-PE machine (14 single faults) — the CI smoke sweep. Two
    // MCs, not small()'s one, so the half-machine partition spreads onto
    // lines [0, 2]; a single-MC machine would have to use the adjacent
    // lines [0, 1], whose ring is unroutable under interior faults.
    // Full: the 16-PE prototype (104 single faults), half-machine partition.
    let (cfg, n, p, n_seeds) = if quick {
        let cfg = MachineConfig {
            n_mcs: 2,
            // At n=4 a transfer is a handful of words, and the prototype's
            // 2-cycle stage latency disappears inside MIMD's poll interval
            // on every run. A slower (say, board-to-board) stage keeps the
            // detour visible at smoke scale.
            net_stage_cycles: 16,
            ..MachineConfig::small()
        };
        (cfg, 4, 2, 4u64)
    } else {
        (MachineConfig::prototype(), 8, 8, 16u64)
    };
    let faults = single_faults(cfg.n_pes.max(2)).len();
    println!(
        "faultsweep: {} PEs, p={p}, n={n}, {faults} single faults × {} modes × {n_seeds} seeds",
        cfg.n_pes,
        MODES.len(),
    );

    let cases: Vec<(Mode, u64)> = MODES
        .iter()
        .flat_map(|&mode| (0..n_seeds).map(move |s| (mode, pasm::figures::DEFAULT_SEED + s)))
        .collect();
    let cells = par_map(cases, |&(mode, seed)| sweep_cell(&cfg, n, p, mode, seed));

    // Registry-wide sweep: every other kernel through the same faults, one
    // seed, small per-PE blocks (the fault footprint is the ring circuits,
    // which every kernel shares with matmul).
    let kn = if quick { 8 } else { 32 };
    let kernel_cases: Vec<(&'static dyn pasm::Kernel, Mode)> = pasm::kernels::kernels()
        .iter()
        .copied()
        .filter(|k| k.name() != pasm::MATMUL)
        .flat_map(|k| MODES.iter().map(move |&mode| (k, mode)))
        .collect();
    let kernel_cells = par_map(kernel_cases, |&(k, mode)| {
        kernel_cell(&cfg, k, kn, p, mode, pasm::figures::DEFAULT_SEED)
    });

    let mut violations = 0usize;
    for cell in &cells {
        for v in &cell.violations {
            eprintln!("VIOLATION: {v}");
        }
        violations += cell.violations.len();
    }
    for mode in MODES {
        let rows: Vec<&Cell> = cells.iter().filter(|c| c.mode == mode).collect();
        let runs: usize = rows.iter().map(|c| c.faults).sum();
        let max_slow = rows.iter().map(|c| c.max_slowdown).fold(1.0, f64::max);
        // Aggregate slowdown of the mode's rerouted runs vs fault-free (for
        // SIMD and S/MIMD the per-run strictness already implies it; for
        // MIMD this is the check polling cannot dodge across 16 seeds).
        let rerouted_cycles: u64 = rows.iter().map(|c| c.rerouted_cycles).sum();
        let rerouted_base: u64 = rows
            .iter()
            .map(|c| c.baseline_cycles * c.rerouted as u64)
            .sum();
        let agg_slow = rerouted_cycles as f64 / rerouted_base as f64;
        if rerouted_cycles <= rerouted_base {
            eprintln!(
                "VIOLATION: {mode}: rerouted faults show no aggregate slowdown \
                 ({rerouted_cycles} cycles vs {rerouted_base} fault-free)"
            );
            violations += 1;
        }
        println!(
            "  {mode:>6}: {runs} faulted runs, all products {}, \
             slowdown mean {agg_slow:.4} / max {max_slow:.4}",
            if rows.iter().all(|c| c.violations.is_empty()) {
                "correct"
            } else {
                "NOT ALL CORRECT"
            },
        );
    }
    for cell in &kernel_cells {
        for v in &cell.violations {
            eprintln!("VIOLATION: {v}");
        }
        violations += cell.violations.len();
        println!(
            "  {:>7} {:>6}: {} faulted runs ({} rerouted, {} hidden), {}, max slowdown {:.4}",
            cell.kernel,
            cell.mode,
            cell.faults,
            cell.rerouted,
            cell.hidden,
            if cell.violations.is_empty() {
                "all correct"
            } else {
                "NOT ALL CORRECT"
            },
            cell.max_slowdown,
        );
    }
    bench::save_bench_json(
        "faultsweep",
        Json::obj(vec![
            ("quick", Json::Bool(quick)),
            ("n_pes", Json::Int(cfg.n_pes as i64)),
            ("n", Json::Int(n as i64)),
            ("p", Json::Int(p as i64)),
            ("seeds", Json::Int(n_seeds as i64)),
            ("faults", Json::Int(faults as i64)),
        ]),
        Json::obj(vec![
            (
                "cells",
                Json::Arr(cells.iter().map(|c| c.to_json()).collect()),
            ),
            (
                "kernel_cells",
                Json::Arr(kernel_cells.iter().map(|c| c.to_json()).collect()),
            ),
            ("violations", Json::Int(violations as i64)),
        ]),
    );

    if violations == 0 {
        println!(
            "single-fault theorem holds: every fault tolerated, rerouted faults slow down \
             through fault_detour, hidden faults cost nothing"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("faultsweep: {violations} violation(s)");
        ExitCode::FAILURE
    }
}
