//! Regenerates **Figure 11**: efficiency vs problem size for p = 4, one
//! multiply per inner loop.
//!
//! Paper shapes to check: S/MIMD and MIMD efficiency rise with n and stay
//! below 1 (paper's best: 96% S/MIMD, 87% MIMD at n = 256, the MIMD gap being
//! its polling overhead); the SIMD version *exceeds unity* — superlinear
//! speed-up — because the MCs absorb the control flow and the queue fetches
//! beat PE DRAM.

use pasm::figures::{fig11, DEFAULT_SEED};

fn main() {
    let cfg = pasm::MachineConfig::prototype();
    let rows = fig11(&cfg, 4, &bench::sizes(), DEFAULT_SEED);
    print!("{}", pasm::report::render_fig11(&rows));
    bench::save_json("fig11", &rows);
}
