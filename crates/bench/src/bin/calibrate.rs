//! Calibration sweep for the memory-timing constants (not a paper artifact).
//!
//! The prototype's exact wait-state and refresh figures are not published;
//! this utility sweeps the plausible space and reports, per configuration:
//! the Fig-7 crossover (paper: ≈14 added multiplies at n=64, p=4), the
//! Fig-11-style efficiencies, and the Table-1 MIPS ratio, so a configuration
//! matching the paper's shapes can be chosen and recorded in EXPERIMENTS.md.

use pasm::figures::{fig11, fig7, fig7_crossover, table1};
use pasm::MachineConfig;
use pasm_mem::MemTiming;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(32);
    let extras: Vec<usize> = (0..=30).collect();

    println!("calibration at n={n}, p=4 (paper crossover target: ~14)");
    println!("pe_ws fu_ws refresh | crossover | eff SIMD/MIMD/SMIMD | MIPS add simd/mimd");

    for (pe_ws, fu_ws) in [(1u32, 0u32), (2, 1), (3, 2)] {
        for refresh in [4u64, 8, 10, 12, 16] {
            let cfg = MachineConfig {
                pe_dram: MemTiming {
                    wait_states: pe_ws,
                    refresh_interval: 125,
                    refresh_duration: refresh,
                },
                fu_sram: MemTiming {
                    wait_states: fu_ws,
                    refresh_interval: 0,
                    refresh_duration: 0,
                },
                mc_dram: MemTiming {
                    wait_states: pe_ws,
                    refresh_interval: 125,
                    refresh_duration: refresh,
                },
                ..MachineConfig::prototype()
            };
            let rows = fig7(&cfg, n, 4, &extras, 1988);
            let cross = fig7_crossover(&rows);
            let eff = fig11(&cfg, 4, &[n], 1988);
            let t1 = table1(&cfg);
            println!(
                "{:>5} {:>5} {:>7} | {:>9} | {:.3}/{:.3}/{:.3} | {:.2}/{:.2}",
                pe_ws,
                fu_ws,
                refresh,
                cross
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "none".into()),
                eff[0].simd,
                eff[0].mimd,
                eff[0].smimd,
                t1[0].simd_mips,
                t1[0].mimd_mips,
            );
        }
    }
}
