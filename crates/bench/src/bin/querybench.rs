//! `querybench` — query-tier latency and recovery benchmark of the
//! `pasm-store` span store behind `pasm-server` (ISSUE 10).
//!
//! Populates a durable server with a small mode × p sweep of cold jobs, then
//! measures the three query endpoints (`/results`, `/spans/<fp>`,
//! `/sweep/phases`) **warm** (same process that ingested the records), and
//! again **cold** after a restart — the first pass over a freshly replayed
//! index, where `/spans/<fp>` reads record bytes back off disk. The restart
//! also records the span-store recovery numbers (`spans_replayed`,
//! `recovery_ms`).
//!
//! Gates (exit nonzero) on the query-tier contract: after the restart every
//! fingerprint's `/spans/<fp>` payload must be **byte-identical** to the
//! pre-restart one, and serving the whole query load must leave the
//! simulator untouched (`sim_runs` stays 0 in the restarted process).
//!
//! `--quick` shrinks the sweep for the CI smoke run. Results land in
//! `BENCH_querybench.json`.

use pasm_server::{FsyncPolicy, Server, ServerConfig};
use pasm_util::{json, Json};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let (_, payload) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    (status, payload.to_string())
}

fn get_json(addr: SocketAddr, path: &str) -> Json {
    let (code, payload) = request(addr, "GET", path, "");
    assert_eq!(code, 200, "GET {path}: {payload}");
    json::parse(&payload).expect("JSON payload")
}

fn await_ready(addr: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (code, _) = request(addr, "GET", "/healthz", "");
        if code == 200 {
            return;
        }
        assert!(Instant::now() < deadline, "server never became ready");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn await_done(addr: SocketAddr, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let body = get_json(addr, &format!("/status/{id}"));
        match body.get("status").and_then(Json::as_str).unwrap_or("") {
            "queued" | "running" => {
                assert!(Instant::now() < deadline, "job {id} never finished");
                std::thread::sleep(Duration::from_millis(2));
            }
            "done" => return,
            other => panic!("job {id} ended {other}"),
        }
    }
}

fn start(dir: &Path) -> Server {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        queue_depth: 256,
        data_dir: Some(dir.to_path_buf()),
        fsync: FsyncPolicy::Never,
        ..ServerConfig::default()
    })
    .expect("server starts");
    await_ready(server.addr());
    server
}

fn stat_u64(addr: SocketAddr, path: &[&str]) -> u64 {
    let mut v = get_json(addr, "/stats");
    for key in path {
        v = v.get(key).cloned().unwrap_or(Json::Null);
    }
    v.as_u64()
        .unwrap_or_else(|| panic!("{} in /stats", path.join(".")))
}

/// Mean request latency in microseconds over one GET per path.
fn mean_latency_us(addr: SocketAddr, paths: &[String]) -> f64 {
    let t0 = Instant::now();
    for path in paths {
        let (code, payload) = request(addr, "GET", path, "");
        assert_eq!(code, 200, "GET {path}: {payload}");
    }
    t0.elapsed().as_micros() as f64 / paths.len().max(1) as f64
}

struct Pass {
    results_us: f64,
    spans_us: f64,
    sweep_us: f64,
}

/// One full measurement pass over the three endpoints.
fn measure(addr: SocketAddr, fps: &[String]) -> Pass {
    let span_paths: Vec<String> = fps.iter().map(|fp| format!("/spans/{fp}")).collect();
    Pass {
        results_us: mean_latency_us(
            addr,
            &[
                "/results?workload=matmul".to_string(),
                "/results?workload=matmul&mode=simd".to_string(),
                "/results?workload=matmul&mode=mimd&limit=4".to_string(),
            ],
        ),
        spans_us: mean_latency_us(addr, &span_paths),
        sweep_us: mean_latency_us(addr, &["/sweep/phases?workload=matmul".to_string()]),
    }
}

fn main() -> ExitCode {
    let quick = bench::quick_mode();
    // A mode × p sweep with a couple of seeds: enough distinct runs for the
    // sweep endpoint to have real groups to aggregate.
    let seeds: u64 = if quick { 1 } else { 4 };
    let sweep: Vec<(&str, u64)> = vec![("simd", 2), ("simd", 4), ("mimd", 2), ("mimd", 4)];
    let dir = std::env::temp_dir().join(format!("pasm-querybench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 1: populate a durable server and measure the warm query tier.
    let mut server = start(&dir);
    let addr = server.addr();
    let mut fps: Vec<String> = Vec::new();
    for seed in 0..seeds {
        for (mode, p) in &sweep {
            let body = format!(
                r#"{{"mode":"{mode}","n":8,"p":{p},"seed":{}}}"#,
                70_000 + seed
            );
            let (code, payload) = request(addr, "POST", "/submit", &body);
            assert_eq!(code, 202, "cold submit: {payload}");
            let resp = json::parse(&payload).expect("submit response");
            let id = resp.get("job_id").and_then(Json::as_u64).expect("job_id");
            fps.push(
                resp.get("key")
                    .and_then(Json::as_str)
                    .expect("key")
                    .to_string(),
            );
            await_done(addr, id);
        }
    }
    let jobs = fps.len() as u64;
    // Byte baseline for the restart gate, then the timed warm pass.
    let baseline: Vec<(String, String)> = fps
        .iter()
        .map(|fp| {
            let (code, payload) = request(addr, "GET", &format!("/spans/{fp}"), "");
            assert_eq!(code, 200, "warm /spans/{fp}: {payload}");
            (fp.clone(), payload)
        })
        .collect();
    let warm = measure(addr, &fps);
    server.shutdown();

    // Phase 2: restart — recovery numbers, then the cold pass (fresh index,
    // first disk reads) and the gates.
    let mut server = start(&dir);
    let addr = server.addr();
    let recovery_ms = stat_u64(addr, &["durability", "recovery_ms"]);
    let spans_replayed = stat_u64(addr, &["durability", "spans_replayed"]);
    let cold = measure(addr, &fps);

    let mut violations = 0u64;
    if spans_replayed != jobs {
        eprintln!("VIOLATION: replayed {spans_replayed} of {jobs} span records");
        violations += 1;
    }
    for (fp, expect) in &baseline {
        let (code, payload) = request(addr, "GET", &format!("/spans/{fp}"), "");
        if code != 200 || &payload != expect {
            eprintln!("VIOLATION: /spans/{fp} differs after restart (code {code})");
            violations += 1;
        }
    }
    let sim_runs = stat_u64(addr, &["sim_runs"]);
    if sim_runs != 0 {
        eprintln!("VIOLATION: {sim_runs} simulator invocations while serving queries");
        violations += 1;
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    println!("querybench: {jobs} runs ingested (quick={quick})");
    println!("  {:>14} {:>12} {:>12}", "endpoint", "warm µs", "cold µs");
    for (name, w, c) in [
        ("/results", warm.results_us, cold.results_us),
        ("/spans/<fp>", warm.spans_us, cold.spans_us),
        ("/sweep/phases", warm.sweep_us, cold.sweep_us),
    ] {
        println!("  {name:>14} {w:>12.1} {c:>12.1}");
    }
    println!("  recovery {recovery_ms} ms, {spans_replayed} span records replayed");

    bench::save_bench_json(
        "querybench",
        Json::obj(vec![
            ("quick", Json::Bool(quick)),
            ("jobs", Json::Int(jobs as i64)),
            ("workers", Json::Int(4)),
            ("n", Json::Int(8)),
        ]),
        Json::obj(vec![
            (
                "warm_us",
                Json::obj(vec![
                    ("results", Json::Float(warm.results_us)),
                    ("spans", Json::Float(warm.spans_us)),
                    ("sweep", Json::Float(warm.sweep_us)),
                ]),
            ),
            (
                "cold_us",
                Json::obj(vec![
                    ("results", Json::Float(cold.results_us)),
                    ("spans", Json::Float(cold.spans_us)),
                    ("sweep", Json::Float(cold.sweep_us)),
                ]),
            ),
            ("recovery_ms", Json::Int(recovery_ms as i64)),
            ("spans_replayed", Json::Int(spans_replayed as i64)),
            ("violations", Json::Int(violations as i64)),
        ]),
    );

    if violations == 0 {
        println!(
            "query-tier gate holds: byte-identical span payloads across restart, \
             zero re-simulations"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("querybench: {violations} violation(s)");
        ExitCode::FAILURE
    }
}
