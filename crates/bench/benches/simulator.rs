//! Criterion benchmarks of the simulator itself (host-side performance):
//! instruction-interpretation throughput in each machine mode, and the
//! assembler. These guard the simulator's usability for the large paper-scale
//! sweeps (n = 256 runs execute hundreds of millions of instructions).

use bench::micro::{BenchmarkId, Criterion, Throughput};
use bench::{criterion_group, criterion_main};
use pasm_machine::{Machine, MachineConfig};
use pasm_prog::microbench::{self, MipsKind};

fn bench_interpreter(c: &mut Criterion) {
    let mut g = c.benchmark_group("interpreter");
    const UNROLL: usize = 64;
    const REPS: usize = 500;
    g.throughput(Throughput::Elements((UNROLL * REPS) as u64));

    g.bench_function(BenchmarkId::new("mimd", "add_reg"), |b| {
        let prog = microbench::mimd_program(MipsKind::AddRegister, UNROLL, REPS);
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::small());
            m.load_pe_program(0, prog.clone());
            m.start_pe(0, 0);
            m.run().unwrap().makespan
        })
    });

    g.bench_function(BenchmarkId::new("mimd", "move_mem"), |b| {
        let prog = microbench::mimd_program(MipsKind::MoveMemory, UNROLL, REPS);
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::small());
            m.load_pe_program(0, prog.clone());
            m.start_pe(0, 0);
            m.run().unwrap().makespan
        })
    });

    g.bench_function(BenchmarkId::new("simd_broadcast", "add_reg"), |b| {
        let (pe, mc) = microbench::simd_programs(MipsKind::AddRegister, UNROLL, REPS, 0xF);
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::small());
            for i in 0..4 {
                m.load_pe_program(i, pe.clone());
            }
            m.load_mc_program(0, mc.clone());
            m.run().unwrap().makespan
        })
    });
    g.finish();
}

fn bench_assembler(c: &mut Criterion) {
    let src = "
        start:  MOVEQ   #0,D0
                MOVE.W  #99,D1
        loop:   MOVE.W  (A0)+,D2
                MULU    D2,D0
                ADD.W   D0,(A1)+
                CMPI.W  #5,D2
                BNE     skip
                ADDQ.W  #1,D3
        skip:   DBRA    D1,loop
                HALT
    ";
    c.bench_function("assembler/small_program", |b| {
        b.iter(|| pasm_isa::asm::assemble(src).unwrap().instrs.len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_interpreter, bench_assembler
}
criterion_main!(benches);
