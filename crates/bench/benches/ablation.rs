//! Criterion benchmarks of the Fetch-Unit release path under both release
//! rules, and of the queue machinery at different capacities. (The *measured
//! machine time* ablations — A1/A2/A3 of DESIGN.md — are the `ablations`
//! binary; these benches track the host cost of the mechanisms.)

use bench::micro::{BenchmarkId, Criterion};
use bench::{criterion_group, criterion_main};
use pasm::{paper_workload, run_matmul, Mode, Params};
use pasm_machine::{MachineConfig, ReleaseMode};

fn bench_release_modes(c: &mut Criterion) {
    let n = 16;
    let (a, b) = paper_workload(n, 1);
    let mut g = c.benchmark_group("simd_release_rule");
    for (name, mode) in [
        ("lockstep", ReleaseMode::Lockstep),
        ("decoupled", ReleaseMode::Decoupled),
    ] {
        let cfg = MachineConfig {
            release_mode: mode,
            ..MachineConfig::prototype()
        };
        g.bench_function(BenchmarkId::from_parameter(name), |bch| {
            bch.iter(|| {
                run_matmul(&cfg, Mode::Simd, Params::new(n, 4), &a, &b)
                    .unwrap()
                    .cycles
            })
        });
    }
    g.finish();
}

fn bench_queue_capacity(c: &mut Criterion) {
    let n = 16;
    let (a, b) = paper_workload(n, 1);
    let mut g = c.benchmark_group("queue_capacity");
    for cap in [8u32, 64, 512] {
        let cfg = MachineConfig {
            queue_capacity_words: cap,
            ..MachineConfig::prototype()
        };
        g.bench_function(BenchmarkId::from_parameter(cap), |bch| {
            bch.iter(|| {
                run_matmul(&cfg, Mode::Simd, Params::new(n, 4), &a, &b)
                    .unwrap()
                    .cycles
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_release_modes, bench_queue_capacity
}
criterion_main!(benches);
