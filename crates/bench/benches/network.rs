//! Criterion benchmarks of the Extra-Stage Cube routing and circuit layer.

use bench::micro::{Criterion, Throughput};
use bench::{criterion_group, criterion_main};
use pasm_net::{ring_circuits, EscNetwork};

fn bench_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("esc");
    g.throughput(Throughput::Elements(256));
    g.bench_function("route_all_pairs_16", |b| {
        let net = EscNetwork::new(16);
        b.iter(|| {
            let mut hops = 0usize;
            for s in 0..16 {
                for d in 0..16 {
                    hops += net.route(s, d, false).unwrap().hops.len();
                }
            }
            hops
        })
    });

    g.throughput(Throughput::Elements(256));
    g.bench_function("establish_release_all_pairs_16", |b| {
        b.iter(|| {
            let mut net = EscNetwork::new(16);
            for s in 0..16 {
                for d in 0..16 {
                    let id = net.establish(s, d).unwrap();
                    net.release(id).unwrap();
                }
            }
            net.live_circuits()
        })
    });

    g.throughput(Throughput::Elements(16));
    g.bench_function("ring_16", |b| {
        let pes: Vec<usize> = (0..16).collect();
        b.iter(|| {
            let mut net = EscNetwork::new(16);
            ring_circuits(&mut net, &pes).unwrap().len()
        })
    });

    g.bench_function("fault_reconfigure_and_route", |b| {
        b.iter(|| {
            let mut net = EscNetwork::new(16);
            net.set_fault(2, 3, true);
            net.reconfigure_for_faults();
            let id = net.establish(5, 11).unwrap();
            net.release(id).unwrap();
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_routing
}
criterion_main!(benches);
