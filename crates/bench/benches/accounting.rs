//! Guard for the cycle-accounting observability layer: accounting must be
//! effectively free to leave on. Benchmarks the same workloads with
//! accounting enabled (the default) and disabled, and asserts up front that
//! the toggle changes the *simulated* results by exactly zero — the buckets
//! are bookkeeping on the side of the scheduler, never an input to it.

use bench::micro::{black_box, BenchmarkId, Criterion};
use bench::{criterion_group, criterion_main};
use pasm_machine::{Machine, MachineConfig};
use pasm_prog::microbench::{self, MipsKind};

/// One MIMD interpreter run with the toggle in the given position.
fn mimd_run(prog: &pasm_isa::Program, enabled: bool) -> u64 {
    let mut m = Machine::new(MachineConfig::small());
    m.set_accounting(enabled);
    m.load_pe_program(0, prog.clone());
    m.start_pe(0, 0);
    m.run().unwrap().makespan
}

/// One SIMD broadcast run (exercises the Fetch-Unit release path, where
/// accounting charges barrier waits) with the toggle in the given position.
fn simd_run(pe: &pasm_isa::Program, mc: &pasm_isa::Program, enabled: bool) -> u64 {
    let mut m = Machine::new(MachineConfig::small());
    m.set_accounting(enabled);
    for i in 0..4 {
        m.load_pe_program(i, pe.clone());
    }
    m.load_mc_program(0, mc.clone());
    m.run().unwrap().makespan
}

fn bench_toggle(c: &mut Criterion) {
    let prog = microbench::mimd_program(MipsKind::MoveMemory, 64, 500);

    // The invariant the bench exists to guard: identical simulated time.
    assert_eq!(
        mimd_run(&prog, true),
        mimd_run(&prog, false),
        "disabling accounting must not change simulated cycles"
    );

    let mut g = c.benchmark_group("accounting_toggle");
    for (name, enabled) in [("on", true), ("off", false)] {
        g.bench_function(BenchmarkId::new("mimd_interp", name), |b| {
            b.iter(|| black_box(mimd_run(&prog, enabled)))
        });
    }
    g.finish();
}

fn bench_toggle_simd(c: &mut Criterion) {
    let (pe, mc) = microbench::simd_programs(MipsKind::AddRegister, 64, 500, 0xF);

    assert_eq!(
        simd_run(&pe, &mc, true),
        simd_run(&pe, &mc, false),
        "disabling accounting must not change simulated cycles (SIMD)"
    );

    let mut g = c.benchmark_group("accounting_toggle");
    for (name, enabled) in [("on", true), ("off", false)] {
        g.bench_function(BenchmarkId::new("simd_broadcast", name), |b| {
            b.iter(|| black_box(simd_run(&pe, &mc, enabled)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_toggle, bench_toggle_simd);
criterion_main!(benches);
