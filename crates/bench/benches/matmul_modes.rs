//! Criterion benchmarks of end-to-end experiment runs (host cost per
//! simulated run, by mode) — the unit of work of every figure sweep.

use bench::micro::{BenchmarkId, Criterion};
use bench::{criterion_group, criterion_main};
use pasm::{paper_workload, run_matmul, Mode, Params};
use pasm_machine::MachineConfig;

fn bench_modes(c: &mut Criterion) {
    let cfg = MachineConfig::prototype();
    let n = 16;
    let (a, b) = paper_workload(n, 1);
    let mut g = c.benchmark_group("run_matmul_n16_p4");
    for mode in Mode::ALL {
        let p = if mode == Mode::Serial { 1 } else { 4 };
        g.bench_function(BenchmarkId::from_parameter(mode), |bch| {
            bch.iter(|| {
                run_matmul(&cfg, mode, Params::new(n, p), &a, &b)
                    .unwrap()
                    .cycles
            })
        });
    }
    g.finish();
}

fn bench_reduction(c: &mut Criterion) {
    let cfg = MachineConfig::prototype();
    let blocks: Vec<Vec<u16>> = (0..4).map(|i| vec![i as u16; 64]).collect();
    let mut g = c.benchmark_group("run_reduction_k64_p4");
    for mode in [Mode::Simd, Mode::Mimd, Mode::Smimd] {
        g.bench_function(BenchmarkId::from_parameter(mode), |bch| {
            bch.iter(|| {
                pasm::run_reduction(&cfg, mode, 64, 4, &blocks)
                    .unwrap()
                    .cycles
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_modes, bench_reduction
}
criterion_main!(benches);
