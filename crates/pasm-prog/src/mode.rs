//! The four program variants of the paper, as a mode selector shared by every
//! workload's code generator.
//!
//! `Mode` lives here (not in the `pasm` experiment crate) because it is a
//! property of *generated programs*: each registered kernel emits a different
//! program per mode, and the kernel crates sit below the experiment layer.

use crate::matmul::CommSync;
use pasm_util::json::{Json, ToJson};
use std::fmt;

/// The four program variants of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Optimized single-PE baseline (SISD).
    Serial,
    /// Control flow on the MCs, instructions broadcast through the queue.
    Simd,
    /// Everything on the PEs, polled network handshakes.
    Mimd,
    /// MIMD computation with Fetch-Unit barrier communication.
    Smimd,
}

impl Mode {
    /// All modes in presentation order.
    pub const ALL: [Mode; 4] = [Mode::Serial, Mode::Simd, Mode::Mimd, Mode::Smimd];

    /// The parallel modes.
    pub const PARALLEL: [Mode; 3] = [Mode::Simd, Mode::Mimd, Mode::Smimd];

    /// The communication synchronization of the PE-resident modes
    /// (`None` for Serial and Simd, which have no PE-side handshakes).
    pub fn comm_sync(self) -> Option<CommSync> {
        match self {
            Mode::Mimd => Some(CommSync::Polling),
            Mode::Smimd => Some(CommSync::Barrier),
            Mode::Serial | Mode::Simd => None,
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Mode::Serial => "SISD",
            Mode::Simd => "SIMD",
            Mode::Mimd => "MIMD",
            Mode::Smimd => "S/MIMD",
        })
    }
}

impl ToJson for Mode {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Mode::Serial => "Serial",
                Mode::Simd => "Simd",
                Mode::Mimd => "Mimd",
                Mode::Smimd => "Smimd",
            }
            .to_string(),
        )
    }
}

impl Mode {
    /// Parse the `ToJson` form (and the display form) back into a mode.
    pub fn parse(s: &str) -> Option<Mode> {
        match s.to_ascii_lowercase().as_str() {
            "serial" | "sisd" => Some(Mode::Serial),
            "simd" => Some(Mode::Simd),
            "mimd" => Some(Mode::Mimd),
            "smimd" | "s/mimd" => Some(Mode::Smimd),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_both_spellings() {
        for m in Mode::ALL {
            assert_eq!(Mode::parse(&m.to_string()), Some(m));
            let Json::Str(s) = m.to_json() else {
                panic!("mode JSON form is a string")
            };
            assert_eq!(Mode::parse(&s), Some(m));
        }
        assert_eq!(Mode::parse("warp"), None);
    }

    #[test]
    fn comm_sync_matches_paper_variants() {
        assert_eq!(Mode::Mimd.comm_sync(), Some(CommSync::Polling));
        assert_eq!(Mode::Smimd.comm_sync(), Some(CommSync::Barrier));
        assert_eq!(Mode::Simd.comm_sync(), None);
        assert_eq!(Mode::Serial.comm_sync(), None);
    }
}
