//! # pasm-prog — experiment programs for the PASM prototype simulator
//!
//! Generators for every program the paper's experiments run:
//!
//! * [`matmul`] — the four matrix-multiplication variants (optimized serial,
//!   pure SIMD, pure MIMD, hybrid S/MIMD) over the columnar layout of
//!   paper §4, parameterized by matrix size `n`, processor count `p`, and the
//!   number of *added inner-loop multiplies* (the Figure-7 variable),
//! * [`microbench`] — the straight-line instruction-rate programs behind the
//!   raw-MIPS comparison of Table 1,
//! * [`reduction`] — a communication-dominated global-sum workload that
//!   isolates the three communication protocols (polling, barrier, lockstep),
//! * [`workload`] — seeded matrices (identity A, uniform-random B, and
//!   bit-density-controlled variants for ablations) plus a host reference
//!   multiply for verification,
//! * [`blocks`] — block-structure profiles of generated programs (how much
//!   of each program the `pasm-machine` block compiler can fold statically),
//! * [`layout`] — the columnar in-memory data layout shared by all variants,
//! * [`codegen`] — the common register conventions and code idioms, kept
//!   identical across variants so that mode effects are the only difference.

pub mod blocks;
pub mod codegen;
pub mod layout;
pub mod matmul;
pub mod microbench;
pub mod mode;
pub mod reduction;
pub mod workload;

pub use blocks::BlockProfile;
pub use layout::Layout;
pub use matmul::{select_vm, CommSync, MatmulParams, VirtualMachine};
pub use mode::Mode;
pub use workload::Matrix;
