//! Columnar data layout in PE memory (paper §4, Figure 5).
//!
//! Each logical PE *i* of a p-PE virtual machine stores `n/p` **adjacent
//! columns** of A, B and C. Column data is contiguous (n 16-bit words); A
//! columns are reached through a pointer table `TT` so the per-step rotation
//! of A is "a single memory move" (pointer shuffle) instead of copying data.
//!
//! Two implementation details differ from a naive layout, both documented in
//! the code generators:
//!
//! * **B columns are stored twice in a row** (`rows 0..n, 0..n`). The row index
//!   the algorithm needs is `(n/p)·i + v + j`, which exceeds `n` during the
//!   sweep; doubling the column turns the modulo wrap into plain linear
//!   addressing, which keeps the instruction stream free of data-dependent
//!   branches — a requirement for broadcasting it in SIMD mode.
//! * **Per-PE parameters live in a data area** (`PARAM_BASE`), so the same
//!   program text runs on every PE — the paper runs on 4, 8 or 16 processors
//!   "simply by changing variables embedded in their data sections".

use crate::workload::Matrix;
use pasm_machine::Machine;

/// Base of the per-PE parameter area (long words).
pub const PARAM_BASE: u32 = 0x0100;
/// Base of the A-column pointer table `TT` (long words, one per local column).
pub const TT_BASE: u32 = 0x0400;
/// Base of the A column storage.
pub const A_BASE: u32 = 0x0800;

/// Placement of the matrices inside each PE's memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Matrix dimension.
    pub n: usize,
    /// Logical PEs sharing the work.
    pub p: usize,
    /// Columns per PE (`n/p`).
    pub cols: usize,
    /// B columns stored doubled (parallel versions) or plain (serial).
    pub b_doubled: bool,
}

impl Layout {
    /// Layout for the parallel (SIMD/MIMD/S-MIMD) versions.
    pub fn parallel(n: usize, p: usize) -> Layout {
        assert!(
            n.is_multiple_of(p) && p >= 1,
            "p must divide n (n={n}, p={p})"
        );
        Layout {
            n,
            p,
            cols: n / p,
            b_doubled: true,
        }
    }

    /// Layout for the optimized serial version (everything on one PE).
    pub fn serial(n: usize) -> Layout {
        Layout {
            n,
            p: 1,
            cols: n,
            b_doubled: false,
        }
    }

    /// Bytes per stored column of A or C.
    pub fn col_bytes(&self) -> u32 {
        2 * self.n as u32
    }

    /// Bytes per stored column of B (doubled for the parallel versions).
    pub fn b_col_bytes(&self) -> u32 {
        if self.b_doubled {
            4 * self.n as u32
        } else {
            2 * self.n as u32
        }
    }

    /// Base address of the B storage.
    pub fn b_base(&self) -> u32 {
        A_BASE + self.cols as u32 * self.col_bytes()
    }

    /// Base address of the C storage.
    pub fn c_base(&self) -> u32 {
        self.b_base() + self.cols as u32 * self.b_col_bytes()
    }

    /// First address past the data (for capacity checks).
    pub fn end(&self) -> u32 {
        self.c_base() + self.cols as u32 * self.col_bytes()
    }

    /// Address of A-column slot `s` on any PE.
    pub fn a_slot_addr(&self, s: usize) -> u32 {
        A_BASE + s as u32 * self.col_bytes()
    }

    /// Load the operand matrices into the PE memories of `machine`.
    ///
    /// `pes[l]` is the physical PE playing logical index `l`. Sets up the A and
    /// B columns, zeroes C, initializes the `TT` pointer table, and writes the
    /// per-PE parameter block (the B row-start pointer `b_base + 2·(n/p)·l`).
    pub fn load(&self, machine: &mut Machine, pes: &[usize], a: &Matrix, b: &Matrix) {
        assert_eq!(pes.len(), self.p, "need one physical PE per logical PE");
        assert_eq!(a.n, self.n);
        assert_eq!(b.n, self.n);
        assert!(
            (self.end() as usize) <= machine.config().pe_mem_bytes,
            "layout needs {:#X} bytes, PE has {:#X}",
            self.end(),
            machine.config().pe_mem_bytes
        );
        for (l, &pe) in pes.iter().enumerate() {
            let virt0 = self.cols * l;
            let mem = machine.pe_mem_mut(pe);
            // Per-PE parameter: initial B row pointer.
            mem.write_long(PARAM_BASE, self.b_base() + 2 * virt0 as u32);
            // TT[v] = physical address of slot v (slots start out in order).
            for v in 0..self.cols {
                mem.write_long(TT_BASE + 4 * v as u32, self.a_slot_addr(v));
            }
            for v in 0..self.cols {
                let col = virt0 + v;
                mem.load_words(self.a_slot_addr(v), &a.column(col));
                let bcol = b.column(col);
                let b_addr = self.b_base() + v as u32 * self.b_col_bytes();
                mem.load_words(b_addr, &bcol);
                if self.b_doubled {
                    mem.load_words(b_addr + self.col_bytes(), &bcol);
                }
                // C is cleared by the program itself (that time is measured),
                // but zero it here too so read-back is meaningful even if a
                // program variant skips clearing.
                mem.clear_range(
                    self.c_base() + v as u32 * self.col_bytes(),
                    self.col_bytes(),
                );
            }
        }
    }

    /// Gather the C matrix back from the PE memories.
    pub fn read_c(&self, machine: &Machine, pes: &[usize]) -> Matrix {
        let mut c = Matrix::zero(self.n);
        for (l, &pe) in pes.iter().enumerate() {
            let mem = machine.pe_mem(pe);
            for v in 0..self.cols {
                let col = self.cols * l + v;
                let words = mem.dump_words(self.c_base() + v as u32 * self.col_bytes(), self.n);
                for (r, w) in words.into_iter().enumerate() {
                    c.set(r, col, w);
                }
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasm_machine::MachineConfig;

    #[test]
    fn layout_addresses_are_disjoint_and_ordered() {
        for (n, p) in [(8usize, 4usize), (64, 4), (256, 4), (256, 16)] {
            let l = Layout::parallel(n, p);
            assert!(
                A_BASE >= TT_BASE + 4 * l.cols as u32,
                "TT overlaps A for n={n} p={p}"
            );
            assert!(l.b_base() > A_BASE);
            assert!(l.c_base() > l.b_base());
            assert!(l.end() > l.c_base());
        }
    }

    #[test]
    fn biggest_case_fits_prototype_memory() {
        let l = Layout::parallel(256, 4);
        assert!((l.end() as usize) <= MachineConfig::prototype().pe_mem_bytes);
        let s = Layout::serial(256);
        assert!((s.end() as usize) <= MachineConfig::prototype().pe_mem_bytes);
    }

    #[test]
    fn load_and_readback_roundtrip() {
        use crate::workload::Matrix;
        let mut m = pasm_machine::Machine::new(MachineConfig::small());
        let l = Layout::parallel(8, 4);
        let a = Matrix::uniform(8, 1);
        let b = Matrix::uniform(8, 2);
        let pes = [0usize, 1, 2, 3];
        l.load(&mut m, &pes, &a, &b);
        // Check B doubling on PE 2 (logical 2): local col 0 is global col 4.
        let mem = m.pe_mem(2);
        let col4 = b.column(4);
        let stored = mem.dump_words(l.b_base(), 8);
        let doubled = mem.dump_words(l.b_base() + l.col_bytes(), 8);
        assert_eq!(stored, col4);
        assert_eq!(doubled, col4);
        // TT starts in slot order.
        assert_eq!(mem.read_long(TT_BASE), l.a_slot_addr(0));
        assert_eq!(mem.read_long(TT_BASE + 4), l.a_slot_addr(1));
        // Param: logical 2 => virt0 = 4.
        assert_eq!(mem.read_long(PARAM_BASE), l.b_base() + 8);
        // C reads back as zero.
        let c = l.read_c(&m, &pes);
        assert_eq!(c, Matrix::zero(8));
    }
}
