//! The pure-SIMD matrix multiplication (paper §5.1).
//!
//! All looping and control flow runs on the MC; the PEs receive only
//! arithmetic, data movement, and network moves through the Fetch Unit queue.
//! The PE-side instruction stream is therefore *straight-line*: every loop
//! iteration is a fresh enqueue command by the MC, whose own execution is
//! overlapped with the PEs' work as long as the queue stays non-empty — the
//! source of the paper's control-flow-overlap benefit and superlinear
//! speed-up. Network transfers need no handshake at all: the per-instruction
//! release keeps all PEs of a group in lockstep.
//!
//! The PE programs themselves are a two-instruction bootstrap (`JMPSIMD`, then
//! a `HALT` the final broadcast jumps back to), reflecting how cheap mode
//! switching is on the prototype.

use crate::codegen::*;
use crate::layout::{Layout, PARAM_BASE, TT_BASE};
use crate::matmul::MatmulParams;
use pasm_isa::{Ea, Instr, Program, ProgramBuilder, Size};

/// Index of the `HALT` in the PE bootstrap program (the `JMPMIMD` target).
pub const PE_HALT_INDEX: usize = 1;

/// The PE bootstrap: enter SIMD mode, and a halt to return to.
pub fn pe_program() -> Program {
    let mut b = ProgramBuilder::new();
    b.emit(Instr::JmpSimd);
    b.emit(Instr::Halt);
    b.build().expect("SIMD PE bootstrap")
}

/// The MC control program: loops on the MC, work broadcast through blocks.
pub fn mc_program(params: MatmulParams, mask: u16) -> Program {
    let MatmulParams { n, p, extra_muls } = params;
    assert!(p >= 2, "the parallel program needs at least 2 PEs");
    let layout = Layout::parallel(n, p);
    let cols = layout.cols;

    let mut b = ProgramBuilder::new();

    // --- SIMD blocks (the Fetch Unit RAM contents) ---
    let blk_init = b.begin_block();
    b.emit(lea_abs(TT_BASE, TT_BASE_R));
    b.emit(lea_abs(layout.c_base(), C_BASE_R));
    b.emit(Instr::Movea {
        size: Size::Long,
        src: Ea::AbsW(PARAM_BASE as u16),
        dst: B_ROW,
    });
    b.emit(movea_a(C_BASE_R, C_PTR));
    b.end_block();

    // C clearing, unrolled so the PEs (not MC command issue) set the pace.
    // Largest factor ≤ 8 that tiles the loop exactly: 8 for the paper's
    // power-of-two sizes, smaller when n²/p has an odd factor.
    let unroll = (1..=8.min(cols * n))
        .rev()
        .find(|u| (cols * n).is_multiple_of(*u))
        .unwrap_or(1);
    let blk_clear = b.begin_block();
    for _ in 0..unroll {
        b.emit(Instr::Clr {
            size: Size::Word,
            dst: Ea::PostInc(C_PTR),
        });
    }
    b.end_block();

    let blk_jsetup = b.begin_block();
    for i in j_setup() {
        b.emit(i);
    }
    b.end_block();

    let blk_vsetup = b.begin_block();
    for i in v_setup(n) {
        b.emit(i);
    }
    b.end_block();

    let blk_inner = b.begin_block();
    for i in inner_body(extra_muls) {
        b.emit(i);
    }
    b.end_block();

    let blk_xsetup = b.begin_block();
    b.emit(Instr::Movea {
        size: Size::Long,
        src: Ea::Ind(TT_BASE_R),
        dst: A_PTR,
    });
    b.end_block();

    let blk_xfer = b.begin_block();
    {
        let mut sink = ProgSink { b: &mut b };
        xfer_element(false, &mut sink);
    }
    b.end_block();

    let (blk_rot_save, blk_rot_step, blk_rot_fin) = if cols >= 2 {
        let save = b.begin_block();
        b.emit(Instr::Move {
            size: Size::Long,
            src: Ea::Ind(TT_BASE_R),
            dst: Ea::D(XFER_OUT),
        });
        b.emit(movea_a(TT_BASE_R, TT_PTR));
        b.end_block();
        let step = b.begin_block();
        b.emit(Instr::Move {
            size: Size::Long,
            src: Ea::Disp(4, TT_PTR),
            dst: Ea::PostInc(TT_PTR),
        });
        b.end_block();
        let fin = b.begin_block();
        b.emit(Instr::Move {
            size: Size::Long,
            src: Ea::D(XFER_OUT),
            dst: Ea::Ind(TT_PTR),
        });
        b.end_block();
        (Some(save), Some(step), Some(fin))
    } else {
        (None, None, None)
    };

    let blk_jend = b.begin_block();
    b.emit(Instr::Addq {
        size: Size::Long,
        value: 2,
        dst: Ea::A(B_ROW),
    });
    b.end_block();

    // Phase markers travel through the queue so they execute on the PEs'
    // timeline (the MC runs ahead of its PEs by the queue depth).
    let mark = |b: &mut ProgramBuilder, begin: bool, phase: u8| {
        let blk = b.begin_block();
        b.emit(Instr::Mark { begin, phase });
        b.end_block();
        blk
    };
    let blk_mb1 = mark(&mut b, true, PHASE_MUL);
    let blk_me1 = mark(&mut b, false, PHASE_MUL);
    let blk_mb2 = mark(&mut b, true, PHASE_COMM);
    let blk_me2 = mark(&mut b, false, PHASE_COMM);
    let blk_cb = mark(&mut b, true, PHASE_CLEAR);
    let blk_ce = mark(&mut b, false, PHASE_CLEAR);

    let blk_done = b.begin_block();
    b.emit(Instr::JmpMimd {
        target: PE_HALT_INDEX,
    });
    b.emit(Instr::Halt); // broadcast halt is unreachable; JMPMIMD lands on the PE's own HALT
    b.end_block();

    // --- MC main program ---
    b.emit(Instr::SetMask { mask });
    b.emit(Instr::StartPes);
    b.emit(Instr::Enqueue { block: blk_init.0 });

    b.emit(Instr::Enqueue { block: blk_cb.0 });
    b.emit(movei_w((cols * n / unroll - 1) as u32, CNT_MID));
    let mcclear = b.here("mcclear");
    b.emit(Instr::Enqueue { block: blk_clear.0 });
    b.branch(
        Instr::Dbra {
            dst: CNT_MID,
            target: 0,
        },
        mcclear,
    );
    b.emit(Instr::Enqueue { block: blk_ce.0 });

    b.emit(movei_w((n - 1) as u32, CNT_OUT));
    let mcj = b.here("mcj");
    b.emit(Instr::Enqueue { block: blk_mb1.0 });
    b.emit(Instr::Enqueue {
        block: blk_jsetup.0,
    });
    b.emit(movei_w((cols - 1) as u32, CNT_MID));
    let mcv = b.here("mcv");
    b.emit(Instr::Enqueue {
        block: blk_vsetup.0,
    });
    b.emit(movei_w((n - 1) as u32, XFER_HI));
    let mcl = b.here("mcl");
    b.emit(Instr::Enqueue { block: blk_inner.0 });
    b.branch(
        Instr::Dbra {
            dst: XFER_HI,
            target: 0,
        },
        mcl,
    );
    b.branch(
        Instr::Dbra {
            dst: CNT_MID,
            target: 0,
        },
        mcv,
    );
    b.emit(Instr::Enqueue { block: blk_me1.0 });

    b.emit(Instr::Enqueue { block: blk_mb2.0 });
    b.emit(Instr::Enqueue {
        block: blk_xsetup.0,
    });
    b.emit(movei_w((n - 1) as u32, CNT_MID));
    let mcx = b.here("mcx");
    b.emit(Instr::Enqueue { block: blk_xfer.0 });
    b.branch(
        Instr::Dbra {
            dst: CNT_MID,
            target: 0,
        },
        mcx,
    );
    b.emit(Instr::Enqueue { block: blk_me2.0 });

    if let (Some(save), Some(step), Some(fin)) = (blk_rot_save, blk_rot_step, blk_rot_fin) {
        b.emit(Instr::Enqueue { block: save.0 });
        b.emit(movei_w((cols - 2) as u32, CNT_MID));
        let mcr = b.here("mcr");
        b.emit(Instr::Enqueue { block: step.0 });
        b.branch(
            Instr::Dbra {
                dst: CNT_MID,
                target: 0,
            },
            mcr,
        );
        b.emit(Instr::Enqueue { block: fin.0 });
    }

    b.emit(Instr::Enqueue { block: blk_jend.0 });
    b.branch(
        Instr::Dbra {
            dst: CNT_OUT,
            target: 0,
        },
        mcj,
    );

    b.emit(Instr::Enqueue { block: blk_done.0 });
    b.emit(Instr::Halt);

    b.build().expect("SIMD MC program")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_is_two_instructions() {
        let p = pe_program();
        assert_eq!(p.instrs, vec![Instr::JmpSimd, Instr::Halt]);
    }

    #[test]
    fn mc_program_builds_for_paper_sizes() {
        for (n, p) in [
            (4usize, 4usize),
            (8, 4),
            (8, 8),
            (16, 16),
            (64, 4),
            (256, 4),
        ] {
            let prog = mc_program(MatmulParams::new(n, p), 0xF);
            prog.validate().unwrap();
            assert!(prog.blocks.len() >= 10, "n={n} p={p}");
            // No polling and no barriers anywhere in SIMD.
            for blk in &prog.blocks {
                assert!(!blk.iter().any(|i| matches!(i, Instr::Barrier)));
            }
        }
    }

    #[test]
    fn extra_muls_land_in_the_inner_block() {
        let p0 = mc_program(MatmulParams::new(16, 4), 0xF);
        let p14 = mc_program(MatmulParams::new(16, 4).with_extra(14), 0xF);
        let muls = |p: &Program| {
            p.blocks
                .iter()
                .flat_map(|b| b.iter())
                .filter(|i| matches!(i, Instr::Mulu { .. }))
                .count()
        };
        assert_eq!(muls(&p14), muls(&p0) + 14);
    }

    #[test]
    fn mc_main_has_no_pe_arithmetic() {
        // Control/enqueue only in the main stream: the paper's separation.
        let prog = mc_program(MatmulParams::new(16, 4), 0xF);
        assert!(!prog
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Mulu { .. } | Instr::AddTo { .. })));
    }
}
