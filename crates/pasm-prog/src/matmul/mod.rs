//! The four implementations of parallel matrix multiplication from the paper:
//! optimized serial (SISD), pure SIMD, pure MIMD, and the hybrid S/MIMD.
//!
//! All four compute `C = A × B` on 16-bit unsigned integers with overflow
//! ignored, over the columnar layout of [`crate::layout::Layout`]. The three
//! parallel variants share identical arithmetic code (see
//! [`crate::codegen`]); they differ *only* in:
//!
//! * **where control flow executes** — on the MCs (SIMD) or on the PEs
//!   (MIMD, S/MIMD),
//! * **where instructions are fetched from** — the Fetch Unit queue (SIMD) or
//!   PE main memory (MIMD, S/MIMD),
//! * **how network transfers are synchronized** — implicit lockstep (SIMD),
//!   status polling (MIMD), or Fetch-Unit barriers (S/MIMD).

pub mod mimd;
pub mod serial;
pub mod simd;

use pasm_machine::MachineConfig;

/// How the communication section synchronizes (selects MIMD vs S/MIMD).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommSync {
    /// Poll the network status register before every network operation.
    Polling,
    /// One Fetch-Unit barrier per column transfer; network operations are then
    /// plain moves as in SIMD (paper §5.3).
    Barrier,
}

/// Common parameters of a matrix-multiplication run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatmulParams {
    /// Matrix dimension (the paper uses 4, 8, 16, 64, 128, 256).
    pub n: usize,
    /// Number of PEs (4, 8 or 16 on the prototype).
    pub p: usize,
    /// Added inner-loop multiplies (the Figure-7 independent variable).
    pub extra_muls: usize,
}

impl MatmulParams {
    pub fn new(n: usize, p: usize) -> Self {
        MatmulParams {
            n,
            p,
            extra_muls: 0,
        }
    }

    pub fn with_extra(mut self, extra: usize) -> Self {
        self.extra_muls = extra;
        self
    }
}

/// The physical resources a `p`-PE virtual machine occupies on a machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualMachine {
    /// Physical PEs in logical order (logical l = `pes[l]`).
    pub pes: Vec<usize>,
    /// MCs involved.
    pub mcs: Vec<usize>,
    /// Fetch-Unit mask enabling the participating PEs of each group.
    pub mask: u16,
}

/// Choose physical PEs for a `p`-processor virtual machine following PASM's
/// partitioning (PE i belongs to MC `i mod Q`; a partition uses whole MCs when
/// possible, otherwise the same low-numbered PEs of MC 0).
///
/// When fewer than all MCs are needed, the chosen MCs are spaced evenly
/// (stride `Q / mcs_used`) rather than taken contiguously, so the partition's
/// PEs land on evenly-spread network lines. A spread partition's ring
/// circuits survive **every** single ESC fault (verified exhaustively by the
/// `pasm-net` tests); contiguous MC sets put adjacent lines in the ring and
/// lose that property for roughly half the interior faults.
pub fn select_vm(cfg: &MachineConfig, p: usize) -> VirtualMachine {
    let per_group = cfg.pes_per_mc();
    let mcs_used = p.div_ceil(per_group);
    let stride = cfg.n_mcs / mcs_used;
    select_vm_on_mcs(
        cfg,
        p,
        &(0..mcs_used).map(|i| i * stride).collect::<Vec<_>>(),
    )
}

/// Choose physical PEs for a `p`-processor virtual machine on a *specific* set
/// of MCs — the PASM partitioning primitive. Distinct MC sets yield disjoint
/// virtual machines that can run different jobs **simultaneously**; because
/// partition members agree in their low-order PE-address bits, their network
/// circuits use the low cube stages only in straight mode and disjoint boxes
/// in the high stages, so concurrent partitions never conflict in the ESC.
pub fn select_vm_on_mcs(cfg: &MachineConfig, p: usize, mcs: &[usize]) -> VirtualMachine {
    assert!(p >= 1 && p <= cfg.n_pes, "p={p} out of range");
    assert!(p.is_power_of_two(), "p must be a power of two");
    assert!(
        !mcs.is_empty() && p.is_multiple_of(mcs.len()),
        "MC count must divide p"
    );
    assert!(mcs.iter().all(|&m| m < cfg.n_mcs), "MC id out of range");
    let per_mc = p / mcs.len();
    assert!(
        per_mc <= cfg.pes_per_mc(),
        "p={p} exceeds the capacity of {} MC(s)",
        mcs.len()
    );
    let mut pes = Vec::with_capacity(p);
    for j in 0..per_mc {
        for &mc in mcs {
            pes.push(j * cfg.n_mcs + mc);
        }
    }
    VirtualMachine {
        pes,
        mcs: mcs.to_vec(),
        mask: ((1u32 << per_mc) - 1) as u16,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_selection_matches_pasm_partitioning() {
        let cfg = MachineConfig::prototype();
        let vm = select_vm(&cfg, 4);
        assert_eq!(vm.pes, vec![0, 4, 8, 12]);
        assert_eq!(vm.mcs, vec![0]);
        assert_eq!(vm.mask, 0xF);

        // Half-machine partitions take every other MC, so the PEs sit on
        // every other network line — the spread that keeps ring circuits
        // routable under any single ESC fault.
        let vm = select_vm(&cfg, 8);
        assert_eq!(vm.pes, vec![0, 2, 4, 6, 8, 10, 12, 14]);
        assert_eq!(vm.mcs, vec![0, 2]);
        assert_eq!(vm.mask, 0xF);

        let vm = select_vm(&cfg, 16);
        assert_eq!(vm.pes.len(), 16);
        assert_eq!(vm.mcs, vec![0, 1, 2, 3]);
        assert_eq!(vm.mask, 0xF);

        let vm = select_vm(&cfg, 2);
        assert_eq!(vm.pes, vec![0, 4]);
        assert_eq!(vm.mask, 0x3);

        let vm = select_vm(&cfg, 1);
        assert_eq!(vm.pes, vec![0]);
        assert_eq!(vm.mask, 0x1);
    }

    #[test]
    fn params_builder() {
        let p = MatmulParams::new(64, 4).with_extra(14);
        assert_eq!((p.n, p.p, p.extra_muls), (64, 4, 14));
    }
}
