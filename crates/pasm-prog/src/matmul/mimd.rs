//! The pure-MIMD and hybrid S/MIMD matrix multiplications (paper §5.2, §5.3).
//!
//! Both run the full algorithm — all control flow included — on the PEs; the
//! MC only starts them (and, for S/MIMD, pre-enqueues the barrier words). The
//! two variants differ in exactly one place: the communication handshake.
//! MIMD polls the network status register before every 8-bit network
//! operation; S/MIMD executes **one barrier per column transfer** and then
//! uses plain move instructions, because the transfer code itself has no
//! data-dependent instruction times — once aligned at the barrier, the PEs
//! stay aligned through the whole column.

use crate::codegen::*;
use crate::layout::{Layout, PARAM_BASE, TT_BASE};
use crate::matmul::{CommSync, MatmulParams};
use pasm_isa::{Ea, Instr, Program, ProgramBuilder, Size};

/// Build the PE program (identical for every PE; per-PE data comes from the
/// parameter area).
pub fn pe_program(params: MatmulParams, sync: CommSync) -> Program {
    let MatmulParams { n, p, extra_muls } = params;
    assert!(
        p >= 2,
        "the parallel program needs at least 2 PEs (serial is its own variant)"
    );
    let layout = Layout::parallel(n, p);
    let cols = layout.cols;

    let mut b = ProgramBuilder::new();

    // --- set-up: base registers and the per-PE B row pointer ---
    b.emit(lea_abs(TT_BASE, TT_BASE_R));
    b.emit(lea_abs(layout.c_base(), C_BASE_R));
    b.emit(Instr::Movea {
        size: Size::Long,
        src: Ea::AbsW(PARAM_BASE as u16),
        dst: B_ROW,
    });

    // --- clear C (measured: part of the paper's "other" contribution) ---
    b.emit(Instr::Mark {
        begin: true,
        phase: PHASE_CLEAR,
    });
    b.emit(movea_a(C_BASE_R, C_PTR));
    b.emit(movei_w((cols * n - 1) as u32, CNT_MID));
    let clear = b.here("clear");
    b.emit(Instr::Clr {
        size: Size::Word,
        dst: Ea::PostInc(C_PTR),
    });
    b.branch(
        Instr::Dbra {
            dst: CNT_MID,
            target: 0,
        },
        clear,
    );
    b.emit(Instr::Mark {
        begin: false,
        phase: PHASE_CLEAR,
    });

    // --- j loop: n rotation steps ---
    b.emit(movei_w((n - 1) as u32, CNT_OUT));
    let jloop = b.here("jloop");

    // multiplication section
    b.emit(Instr::Mark {
        begin: true,
        phase: PHASE_MUL,
    });
    b.emit_all(j_setup());
    b.emit(movei_w((cols - 1) as u32, CNT_MID));
    let vloop = b.here("vloop");
    b.emit_all(v_setup(n));
    b.emit(movei_w((n - 1) as u32, XFER_HI)); // D6 doubles as the inner counter
    let lloop = b.here("lloop");
    b.emit_all(inner_body(extra_muls));
    b.branch(
        Instr::Dbra {
            dst: XFER_HI,
            target: 0,
        },
        lloop,
    );
    b.branch(
        Instr::Dbra {
            dst: CNT_MID,
            target: 0,
        },
        vloop,
    );
    b.emit(Instr::Mark {
        begin: false,
        phase: PHASE_MUL,
    });

    // communication section: ship logical column 0 (slot TT[0]) one position
    // left around the ring, receiving the right neighbour's column in place.
    b.emit(Instr::Mark {
        begin: true,
        phase: PHASE_COMM,
    });
    if sync == CommSync::Barrier {
        b.emit(Instr::Barrier);
    }
    b.emit(Instr::Movea {
        size: Size::Long,
        src: Ea::Ind(TT_BASE_R),
        dst: A_PTR,
    });
    b.emit(movei_w((n - 1) as u32, CNT_MID));
    let xloop = b.here("xloop");
    {
        let mut sink = ProgSink { b: &mut b };
        xfer_element(sync == CommSync::Polling, &mut sink);
    }
    b.branch(
        Instr::Dbra {
            dst: CNT_MID,
            target: 0,
        },
        xloop,
    );
    b.emit(Instr::Mark {
        begin: false,
        phase: PHASE_COMM,
    });

    // rotate TT left: tmp = TT[0]; TT[v] = TT[v+1]; TT[last] = tmp.
    // (The "single memory move" pointer adjustment of paper §4.)
    if cols >= 2 {
        b.emit(Instr::Move {
            size: Size::Long,
            src: Ea::Ind(TT_BASE_R),
            dst: Ea::D(XFER_OUT),
        });
        b.emit(movea_a(TT_BASE_R, TT_PTR));
        b.emit(movei_w((cols - 2) as u32, CNT_MID));
        let rot = b.here("rot");
        b.emit(Instr::Move {
            size: Size::Long,
            src: Ea::Disp(4, TT_PTR),
            dst: Ea::PostInc(TT_PTR),
        });
        b.branch(
            Instr::Dbra {
                dst: CNT_MID,
                target: 0,
            },
            rot,
        );
        b.emit(Instr::Move {
            size: Size::Long,
            src: Ea::D(XFER_OUT),
            dst: Ea::Ind(TT_PTR),
        });
    }

    // advance the B row-start pointer and loop.
    b.emit(Instr::Addq {
        size: Size::Long,
        value: 2,
        dst: Ea::A(B_ROW),
    });
    b.branch(
        Instr::Dbra {
            dst: CNT_OUT,
            target: 0,
        },
        jloop,
    );
    b.emit(Instr::Halt);

    b.build().expect("MIMD PE program")
}

/// Build the MC orchestration program.
///
/// For pure MIMD the MC only starts its PEs. For S/MIMD it additionally
/// pre-enqueues the `n` barrier words the PEs will read — one per column
/// transfer — exactly the mechanism of paper §3: "the Fetch Unit Queue is
/// empty when the MIMD program completes".
pub fn mc_program(params: MatmulParams, sync: CommSync, mask: u16) -> Program {
    let mut b = ProgramBuilder::new();
    b.emit(Instr::SetMask { mask });
    if sync == CommSync::Barrier {
        b.emit(Instr::EnqueueWords {
            count: params.n as u16,
        });
    }
    b.emit(Instr::StartPes);
    b.emit(Instr::Halt);
    b.build().expect("MIMD MC program")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_shapes() {
        let p = pe_program(MatmulParams::new(16, 4), CommSync::Polling);
        p.validate().unwrap();
        assert!(p.instrs.iter().any(|i| matches!(i, Instr::Mulu { .. })));
        // Polling variant reads the status register; barrier variant does not.
        let polls = |p: &Program| {
            p.instrs
                .iter()
                .filter(
                    |i| matches!(i, Instr::Move { src, .. } if *src == pasm_machine::status_ea()),
                )
                .count()
        };
        assert_eq!(polls(&p), 4);
        assert!(!p.instrs.iter().any(|i| matches!(i, Instr::Barrier)));

        let q = pe_program(MatmulParams::new(16, 4), CommSync::Barrier);
        assert_eq!(polls(&q), 0);
        assert_eq!(
            q.instrs
                .iter()
                .filter(|i| matches!(i, Instr::Barrier))
                .count(),
            1
        );
    }

    #[test]
    fn extra_muls_appear_in_program() {
        let base = pe_program(MatmulParams::new(16, 4), CommSync::Polling);
        let extra = pe_program(MatmulParams::new(16, 4).with_extra(14), CommSync::Polling);
        let count = |p: &Program| {
            p.instrs
                .iter()
                .filter(|i| matches!(i, Instr::Mulu { .. }))
                .count()
        };
        assert_eq!(count(&extra), count(&base) + 14);
    }

    #[test]
    fn mc_program_variants() {
        let mimd = mc_program(MatmulParams::new(16, 4), CommSync::Polling, 0xF);
        assert!(!mimd
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::EnqueueWords { .. })));
        let smimd = mc_program(MatmulParams::new(16, 4), CommSync::Barrier, 0xF);
        assert!(smimd
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::EnqueueWords { count: 16 })));
    }

    #[test]
    fn single_column_case_has_no_rotation_loop() {
        // n = p: one column per PE, nothing to rotate internally.
        let p = pe_program(MatmulParams::new(4, 4), CommSync::Polling);
        assert!(!p.instrs.iter().any(|i| matches!(
            i,
            Instr::Move {
                size: Size::Long,
                src: Ea::Disp(4, _),
                ..
            }
        )));
    }
}
