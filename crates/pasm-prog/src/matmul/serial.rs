//! The optimized serial (SISD) matrix multiplication.
//!
//! The paper's speed-up baseline: a single PE running a straightforward
//! row-column-order multiply, *without* the columnar rotation machinery (no
//! TT table, no network, no doubled B storage) — "the serial algorithm used
//! in the measurements on PASM ... was optimized in order to permit accurate
//! evaluation of speed-up".
//!
//! Loop nest: for every C column, sweep all A columns (saxpy-style), which
//! walks both A and B fully sequentially through auto-increment addressing.

use crate::codegen::*;
use crate::layout::{Layout, A_BASE};
use crate::matmul::MatmulParams;
use pasm_isa::{Ea, Instr, Program, ProgramBuilder, Size};

/// Build the serial program (runs on one PE; `params.p` is ignored).
pub fn pe_program(params: MatmulParams) -> Program {
    let MatmulParams { n, extra_muls, .. } = params;
    let layout = Layout::serial(n);

    let mut b = ProgramBuilder::new();

    b.emit(lea_abs(layout.c_base(), C_BASE_R));
    b.emit(lea_abs(layout.b_base(), B_PTR));

    // Clear C (n² words; the count-1 still fits the 16-bit loop counter
    // because DBRA runs count+1 iterations).
    b.emit(Instr::Mark {
        begin: true,
        phase: PHASE_CLEAR,
    });
    b.emit(lea_abs(layout.c_base(), C_PTR));
    b.emit(movei_w((n * n - 1) as u32, CNT_MID));
    let clear = b.here("clear");
    b.emit(Instr::Clr {
        size: Size::Word,
        dst: Ea::PostInc(C_PTR),
    });
    b.branch(
        Instr::Dbra {
            dst: CNT_MID,
            target: 0,
        },
        clear,
    );
    b.emit(Instr::Mark {
        begin: false,
        phase: PHASE_CLEAR,
    });

    // c loop over C columns.
    b.emit(movei_w((n - 1) as u32, CNT_OUT));
    let cloop = b.here("cloop");
    b.emit(Instr::Mark {
        begin: true,
        phase: PHASE_MUL,
    });
    b.emit(lea_abs(A_BASE, A_PTR)); // A is swept fully for every C column
    b.emit(movei_w((n - 1) as u32, CNT_MID));
    let kloop = b.here("kloop");
    b.emit(movea_a(C_BASE_R, C_PTR));
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::PostInc(B_PTR),
        dst: Ea::D(BVAL),
    });
    b.emit(movei_w((n - 1) as u32, XFER_HI));
    let lloop = b.here("lloop");
    b.emit_all(inner_body(extra_muls));
    b.branch(
        Instr::Dbra {
            dst: XFER_HI,
            target: 0,
        },
        lloop,
    );
    b.branch(
        Instr::Dbra {
            dst: CNT_MID,
            target: 0,
        },
        kloop,
    );
    b.emit(Instr::Mark {
        begin: false,
        phase: PHASE_MUL,
    });
    b.emit(Instr::Adda {
        size: Size::Word,
        src: Ea::Imm(2 * n as u32),
        dst: C_BASE_R,
    });
    b.branch(
        Instr::Dbra {
            dst: CNT_OUT,
            target: 0,
        },
        cloop,
    );
    b.emit(Instr::Halt);

    b.build().expect("serial program")
}

/// MC program that merely starts the single PE.
pub fn mc_program() -> Program {
    let mut b = ProgramBuilder::new();
    b.emit(Instr::StartPes);
    b.emit(Instr::Halt);
    b.build().expect("serial MC program")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_has_no_network_or_barrier() {
        let p = pe_program(MatmulParams::new(16, 1));
        p.validate().unwrap();
        assert!(!p.instrs.iter().any(|i| matches!(i, Instr::Barrier)));
        assert!(!p
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Move { dst, .. } if *dst == pasm_machine::dtr_ea())));
    }

    #[test]
    fn serial_multiply_count_is_n_cubed() {
        // Static: 1 (+extras) MULU in the inner body; dynamic count is n³.
        let p = pe_program(MatmulParams::new(8, 1).with_extra(2));
        let muls = p
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Mulu { .. }))
            .count();
        assert_eq!(muls, 3);
    }
}
