//! Host-side matrices and workload generators.
//!
//! The paper ran every experiment with the **identity matrix in A and uniform
//! random data in B**: the MC68000 multiply's execution time depends only on
//! the multiplier operand (B elements in the generated code), so using the
//! identity as the multiplicand leaves timing untouched while making results
//! trivially checkable (C = B). [`Matrix::bit_density`] additionally lets the
//! ablation benchmarks control *how much* timing variance the multiplier data
//! carries, by drawing values with a fixed number of one-bits.

use pasm_util::Rng;

/// A dense n×n matrix of 16-bit unsigned integers (row-major storage on the
/// host; the PEs hold it column-major).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    pub n: usize,
    data: Vec<u16>,
}

impl Matrix {
    /// The zero matrix.
    pub fn zero(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0; n * n],
        }
    }

    /// The identity matrix (the paper's A operand).
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Uniform random 16-bit entries from a seeded generator (the paper's B).
    pub fn uniform(n: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        Matrix {
            n,
            data: (0..n * n).map(|_| rng.gen_u16()).collect(),
        }
    }

    /// Random entries with exactly `ones` one-bits each (0 ≤ ones ≤ 16), so a
    /// `MULU` by any entry takes exactly `38 + 2·ones` cycles. Used by the
    /// bit-density ablation.
    pub fn bit_density(n: usize, ones: u32, seed: u64) -> Self {
        assert!(ones <= 16, "a 16-bit value has at most 16 one-bits");
        let mut rng = Rng::seed_from_u64(seed);
        let data = (0..n * n)
            .map(|_| {
                // Sample a random 16-bit pattern with the requested popcount.
                let mut bits: [u8; 16] = std::array::from_fn(|i| i as u8);
                for i in (1..16).rev() {
                    let j = rng.gen_range(i + 1);
                    bits.swap(i, j);
                }
                bits[..ones as usize]
                    .iter()
                    .fold(0u16, |acc, &b| acc | (1 << b))
            })
            .collect();
        Matrix { n, data }
    }

    /// Build from a row-major closure.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> u16) -> Self {
        let mut m = Self::zero(n);
        for r in 0..n {
            for c in 0..n {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    /// Element at (row, col).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> u16 {
        self.data[row * self.n + col]
    }

    /// Set element at (row, col).
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, v: u16) {
        self.data[row * self.n + col] = v;
    }

    /// One column as a vector of length n (what a PE stores contiguously).
    pub fn column(&self, col: usize) -> Vec<u16> {
        (0..self.n).map(|r| self.get(r, col)).collect()
    }

    /// Reference product with the experiments' arithmetic: 16-bit unsigned,
    /// overflow ignored (wrapping), exactly what the generated programs compute.
    pub fn multiply(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.n, rhs.n);
        let n = self.n;
        Matrix::from_fn(n, |r, c| {
            let mut acc: u16 = 0;
            for k in 0..n {
                acc = acc.wrapping_add(self.get(r, k).wrapping_mul(rhs.get(k, c)));
            }
            acc
        })
    }

    /// Mean one-bit count of the entries (diagnostic for the timing model).
    pub fn mean_popcount(&self) -> f64 {
        self.data.iter().map(|v| v.count_ones() as f64).sum::<f64>() / self.data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication_is_neutral() {
        let b = Matrix::uniform(8, 42);
        let c = Matrix::identity(8).multiply(&b);
        assert_eq!(c, b);
        let c2 = b.multiply(&Matrix::identity(8));
        assert_eq!(c2, b);
    }

    #[test]
    fn multiply_small_known() {
        let a = Matrix::from_fn(2, |r, c| (r * 2 + c + 1) as u16); // [1 2; 3 4]
        let b = Matrix::from_fn(2, |r, c| (5 + r * 2 + c) as u16); // [5 6; 7 8]
        let c = a.multiply(&b);
        assert_eq!(c.get(0, 0), 19);
        assert_eq!(c.get(0, 1), 22);
        assert_eq!(c.get(1, 0), 43);
        assert_eq!(c.get(1, 1), 50);
    }

    #[test]
    fn multiply_wraps_like_the_hardware() {
        let a = Matrix::from_fn(1, |_, _| 0xFFFF);
        let b = Matrix::from_fn(1, |_, _| 3);
        // 0xFFFF * 3 = 0x2FFFD -> low word 0xFFFD.
        assert_eq!(a.multiply(&b).get(0, 0), 0xFFFD);
    }

    #[test]
    fn uniform_is_seeded_and_deterministic() {
        assert_eq!(Matrix::uniform(16, 7), Matrix::uniform(16, 7));
        assert_ne!(Matrix::uniform(16, 7), Matrix::uniform(16, 8));
        let pop = Matrix::uniform(64, 1).mean_popcount();
        assert!((pop - 8.0).abs() < 0.5, "uniform popcount ~8, got {pop}");
    }

    #[test]
    fn bit_density_is_exact() {
        for ones in [0u32, 1, 8, 15, 16] {
            let m = Matrix::bit_density(16, ones, 3);
            for r in 0..16 {
                for c in 0..16 {
                    assert_eq!(m.get(r, c).count_ones(), ones);
                }
            }
        }
    }

    #[test]
    fn columns_match_elements() {
        let m = Matrix::uniform(8, 9);
        let col = m.column(3);
        for (r, &v) in col.iter().enumerate() {
            assert_eq!(v, m.get(r, 3));
        }
    }
}
