//! Shared code-generation conventions for the experiment programs.
//!
//! Register allocation (identical in every matmul variant, so the variants
//! differ *only* in control placement and synchronization — the quantities
//! under study):
//!
//! | reg | role |
//! |-----|------|
//! | A0  | A-column element walker |
//! | A1  | C element walker |
//! | A2  | B element walker (stride 4n+2 per internal column) |
//! | A3  | TT table walker |
//! | A4  | TT base |
//! | A5  | B row-start pointer (advances 2 bytes per rotation step) |
//! | A6  | C base |
//! | D0  | product scratch |
//! | D1  | the multiplier `bval` (the data-dependent-timing operand) |
//! | D2  | middle loop counter |
//! | D3  | scratch destination of the *added* multiplies |
//! | D4  | transfer word out |
//! | D5  | transfer word in (low byte, then the assembled word) |
//! | D6  | transfer high byte / poll scratch / inner counter |
//! | D7  | outer (rotation-step) counter |

use pasm_isa::{AddrReg, Cond, DataReg, Ea, Instr, ShiftCount, ShiftKind, Size};

/// Phase id of the multiplication section (Figures 8–10 breakdown).
pub const PHASE_MUL: u8 = 1;
/// Phase id of the communication section.
pub const PHASE_COMM: u8 = 2;
/// Phase id of the C-clearing loop (part of the paper's "other" time).
pub const PHASE_CLEAR: u8 = 3;
/// Phase id of the stencil compute loop (image-smoothing kernel).
pub const PHASE_STENCIL: u8 = 4;
/// Phase id of the boundary-sample halo exchange (image-smoothing kernel).
pub const PHASE_HALO: u8 = 5;
/// Phase id of the local bitonic sorting network (bitonic-sort kernel).
pub const PHASE_SORT: u8 = 6;
/// Phase id of the global rank-counting loop (bitonic-sort kernel).
pub const PHASE_RANK: u8 = 7;
/// Phase id of the per-PE local sum (reduction kernel).
pub const PHASE_LSUM: u8 = 8;

/// Stable span name of a phase id (the `name` field of JSONL trace events).
pub fn phase_name(phase: u8) -> &'static str {
    match phase {
        PHASE_MUL => "mac_loop",
        PHASE_COMM => "recirculation_transfer",
        PHASE_CLEAR => "clear_loop",
        PHASE_STENCIL => "stencil_compute",
        PHASE_HALO => "halo_exchange",
        PHASE_SORT => "bitonic_network",
        PHASE_RANK => "rank_count",
        PHASE_LSUM => "local_sum",
        _ => "unknown",
    }
}

pub const A_PTR: AddrReg = AddrReg::A0;
pub const C_PTR: AddrReg = AddrReg::A1;
pub const B_PTR: AddrReg = AddrReg::A2;
pub const TT_PTR: AddrReg = AddrReg::A3;
pub const TT_BASE_R: AddrReg = AddrReg::A4;
pub const B_ROW: AddrReg = AddrReg::A5;
pub const C_BASE_R: AddrReg = AddrReg::A6;

pub const PROD: DataReg = DataReg::D0;
pub const BVAL: DataReg = DataReg::D1;
pub const CNT_MID: DataReg = DataReg::D2;
pub const MUL_SCRATCH: DataReg = DataReg::D3;
pub const XFER_OUT: DataReg = DataReg::D4;
pub const XFER_IN: DataReg = DataReg::D5;
pub const XFER_HI: DataReg = DataReg::D6;
pub const CNT_OUT: DataReg = DataReg::D7;

/// `MOVE.W #imm,Dn` (word immediate loop-count setup).
pub fn movei_w(v: u32, dst: DataReg) -> Instr {
    Instr::Move {
        size: Size::Word,
        src: Ea::Imm(v),
        dst: Ea::D(dst),
    }
}

/// `MOVEA.L #addr,An`.
pub fn lea_abs(addr: u32, dst: AddrReg) -> Instr {
    Instr::Movea {
        size: Size::Long,
        src: Ea::Imm(addr),
        dst,
    }
}

/// `MOVEA.L Asrc,Adst` (pointer copy).
pub fn movea_a(src: AddrReg, dst: AddrReg) -> Instr {
    Instr::Movea {
        size: Size::Long,
        src: Ea::A(src),
        dst,
    }
}

/// The inner-loop body: load an A element, multiply by `bval`, add into C,
/// plus `extra` straight-line multiplies that exercise data-dependent timing
/// without touching the result (paper §6: "added as straight line code in
/// order to prevent skewing of execution time data due to control flow
/// overlap ... and did not affect the values in the C matrix").
pub fn inner_body(extra: usize) -> Vec<Instr> {
    let mut v = Vec::with_capacity(3 + extra);
    v.push(Instr::Move {
        size: Size::Word,
        src: Ea::PostInc(A_PTR),
        dst: Ea::D(PROD),
    });
    v.push(Instr::Mulu {
        src: Ea::D(BVAL),
        dst: PROD,
    });
    for _ in 0..extra {
        v.push(Instr::Mulu {
            src: Ea::D(BVAL),
            dst: MUL_SCRATCH,
        });
    }
    v.push(Instr::AddTo {
        size: Size::Word,
        src: PROD,
        dst: Ea::PostInc(C_PTR),
    });
    v
}

/// Per-internal-column setup: next A-column pointer from TT, load `bval`,
/// advance the B walker by one doubled column plus one row (4n + 2 bytes).
pub fn v_setup(n: usize) -> Vec<Instr> {
    vec![
        Instr::Movea {
            size: Size::Long,
            src: Ea::PostInc(TT_PTR),
            dst: A_PTR,
        },
        Instr::Move {
            size: Size::Word,
            src: Ea::Ind(B_PTR),
            dst: Ea::D(BVAL),
        },
        Instr::Adda {
            size: Size::Word,
            src: Ea::Imm(4 * n as u32 + 2),
            dst: B_PTR,
        },
    ]
}

/// Per-rotation-step setup: reset the three walkers from their bases.
pub fn j_setup() -> Vec<Instr> {
    vec![
        movea_a(TT_BASE_R, TT_PTR),
        movea_a(C_BASE_R, C_PTR),
        movea_a(B_ROW, B_PTR),
    ]
}

/// One element of the 16-bit-over-8-bit column transfer (paper §4: two shift
/// operations, an OR, and two network operations per element). `polls` inserts
/// the MIMD status-polling handshake before every network operation; without
/// it the sequence relies on synchronized execution (SIMD / S-MIMD).
///
/// Reads the outgoing element at `(A0)`, writes the incoming element back to
/// the same slot, and advances `A0`.
pub fn xfer_element(polls: bool, out: &mut ProgSink<'_>) {
    out.emit(Instr::Move {
        size: Size::Word,
        src: Ea::Ind(A_PTR),
        dst: Ea::D(XFER_OUT),
    });
    // The received low byte lands in D5 with MOVE.B, which merges only the low
    // byte — clear the word first or the previous element's high byte survives
    // the OR.
    out.emit(Instr::Clr {
        size: Size::Word,
        dst: Ea::D(XFER_IN),
    });
    if polls {
        emit_poll(out, 1); // transmitter ready
    }
    out.emit(Instr::Move {
        size: Size::Byte,
        src: Ea::D(XFER_OUT),
        dst: pasm_machine::dtr_ea(),
    });
    if polls {
        emit_poll(out, 2); // receive valid
    }
    out.emit(Instr::Move {
        size: Size::Byte,
        src: pasm_machine::drr_ea(),
        dst: Ea::D(XFER_IN),
    });
    out.emit(Instr::Shift {
        kind: ShiftKind::Lsr,
        size: Size::Word,
        count: ShiftCount::Imm(8),
        dst: XFER_OUT,
    });
    if polls {
        emit_poll(out, 1);
    }
    out.emit(Instr::Move {
        size: Size::Byte,
        src: Ea::D(XFER_OUT),
        dst: pasm_machine::dtr_ea(),
    });
    if polls {
        emit_poll(out, 2);
    }
    out.emit(Instr::Move {
        size: Size::Byte,
        src: pasm_machine::drr_ea(),
        dst: Ea::D(XFER_HI),
    });
    out.emit(Instr::Shift {
        kind: ShiftKind::Lsl,
        size: Size::Word,
        count: ShiftCount::Imm(8),
        dst: XFER_HI,
    });
    out.emit(Instr::Or {
        size: Size::Word,
        src: Ea::D(XFER_HI),
        dst: XFER_IN,
    });
    out.emit(Instr::Move {
        size: Size::Word,
        src: Ea::D(XFER_IN),
        dst: Ea::PostInc(A_PTR),
    });
}

/// Status-register poll loop: spin until `bit` (1 = tx ready, 2 = rx valid) is
/// set. This is the MIMD handshake the S/MIMD version replaces with a barrier.
fn emit_poll(out: &mut ProgSink<'_>, bit: u32) {
    let top = out.here();
    out.emit(Instr::Move {
        size: Size::Byte,
        src: pasm_machine::status_ea(),
        dst: Ea::D(XFER_HI),
    });
    out.emit(Instr::And {
        size: Size::Word,
        src: Ea::Imm(bit),
        dst: XFER_HI,
    });
    out.branch_back(
        Instr::Bcc {
            cond: Cond::Eq,
            target: 0,
        },
        top,
    );
}

/// A thin sink over `ProgramBuilder` that lets shared emitters create local
/// back-branches without owning the builder.
pub struct ProgSink<'b> {
    pub b: &'b mut pasm_isa::ProgramBuilder,
}

impl ProgSink<'_> {
    pub fn emit(&mut self, i: Instr) {
        self.b.emit(i);
    }
    pub fn here(&mut self) -> pasm_isa::Label {
        self.b.here(format!("L{}", self.b.position()))
    }
    pub fn branch_back(&mut self, i: Instr, l: pasm_isa::Label) {
        self.b.branch(i, l);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inner_body_length_scales_with_extras() {
        assert_eq!(inner_body(0).len(), 3);
        assert_eq!(inner_body(14).len(), 17);
        // All added multiplies target the scratch register, never the product.
        for i in &inner_body(5)[2..7] {
            assert_eq!(
                *i,
                Instr::Mulu {
                    src: Ea::D(BVAL),
                    dst: MUL_SCRATCH
                }
            );
        }
    }

    #[test]
    fn xfer_sequence_matches_paper_shape() {
        // Without polls: 2 network writes, 2 network reads, 2 shifts, 1 OR.
        let mut b = pasm_isa::ProgramBuilder::new();
        {
            let mut s = ProgSink { b: &mut b };
            xfer_element(false, &mut s);
        }
        b.emit(Instr::Halt);
        let p = b.build().unwrap();
        let writes = p
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Move { dst, .. } if *dst == pasm_machine::dtr_ea()))
            .count();
        let reads = p
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Move { src, .. } if *src == pasm_machine::drr_ea()))
            .count();
        let shifts = p
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Shift { .. }))
            .count();
        let ors = p
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Or { .. }))
            .count();
        assert_eq!((writes, reads, shifts, ors), (2, 2, 2, 1));
    }

    #[test]
    fn polled_xfer_adds_four_poll_loops() {
        let mut b = pasm_isa::ProgramBuilder::new();
        {
            let mut s = ProgSink { b: &mut b };
            xfer_element(true, &mut s);
        }
        b.emit(Instr::Halt);
        let p = b.build().unwrap();
        let polls = p
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Move { src, .. } if *src == pasm_machine::status_ea()))
            .count();
        assert_eq!(polls, 4);
    }
}
