//! Raw-performance microbenchmarks (paper Table 1).
//!
//! The prototype's instruction rate was measured "with repeated blocks of
//! straight line code which were large enough to make the loop control
//! overlap insignificant", for two instruction classes, in both modes. These
//! generators produce exactly that: `unroll` copies of the measured
//! instruction inside a `reps`-iteration loop, either fetched from PE memory
//! (MIMD) or broadcast through the Fetch Unit queue (SIMD).

use crate::codegen::{lea_abs, movei_w};
use pasm_isa::{DataReg, Ea, Instr, Program, ProgramBuilder, Size};

/// The two instruction classes of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MipsKind {
    /// Register-to-register `ADD.W D1,D0` (4 cycles core).
    AddRegister,
    /// Memory-to-register `MOVE.W (A0),D0` (8 cycles core + a data access).
    MoveMemory,
}

impl MipsKind {
    fn instr(self) -> Instr {
        match self {
            MipsKind::AddRegister => Instr::Add {
                size: Size::Word,
                src: Ea::D(DataReg::D1),
                dst: DataReg::D0,
            },
            MipsKind::MoveMemory => Instr::Move {
                size: Size::Word,
                src: Ea::Ind(pasm_isa::AddrReg::A0),
                dst: Ea::D(DataReg::D0),
            },
        }
    }

    /// Human-readable mnemonic for result tables.
    pub fn name(self) -> &'static str {
        match self {
            MipsKind::AddRegister => "ADD.W Dn,Dn",
            MipsKind::MoveMemory => "MOVE.W (An),Dn",
        }
    }
}

/// Scratch address the memory variant reads from.
const SCRATCH: u32 = 0x1000;

/// Number of measured (straight-line) instructions the programs execute.
pub fn measured_instrs(unroll: usize, reps: usize) -> u64 {
    (unroll * reps) as u64
}

/// MIMD version: the PE runs the unrolled loop from its own memory.
pub fn mimd_program(kind: MipsKind, unroll: usize, reps: usize) -> Program {
    let mut b = ProgramBuilder::new();
    b.emit(lea_abs(SCRATCH, pasm_isa::AddrReg::A0));
    b.emit(movei_w(reps as u32 - 1, DataReg::D7));
    let top = b.here("top");
    for _ in 0..unroll {
        b.emit(kind.instr());
    }
    b.branch(
        Instr::Dbra {
            dst: DataReg::D7,
            target: 0,
        },
        top,
    );
    b.emit(Instr::Halt);
    b.build().expect("MIPS MIMD program")
}

/// SIMD version: the MC loops and broadcasts the unrolled block.
/// Returns `(pe_bootstrap, mc_program)`.
pub fn simd_programs(kind: MipsKind, unroll: usize, reps: usize, mask: u16) -> (Program, Program) {
    let mut pe = ProgramBuilder::new();
    pe.emit(Instr::JmpSimd);
    pe.emit(Instr::Halt);
    let pe = pe.build().expect("MIPS PE bootstrap");

    let mut b = ProgramBuilder::new();
    let init = b.begin_block();
    b.emit(lea_abs(SCRATCH, pasm_isa::AddrReg::A0));
    b.end_block();
    let body = b.begin_block();
    for _ in 0..unroll {
        b.emit(kind.instr());
    }
    b.end_block();
    let done = b.begin_block();
    b.emit(Instr::JmpMimd { target: 1 });
    b.end_block();

    b.emit(Instr::SetMask { mask });
    b.emit(Instr::StartPes);
    b.emit(Instr::Enqueue { block: init.0 });
    b.emit(movei_w(reps as u32 - 1, DataReg::D7));
    let top = b.here("top");
    b.emit(Instr::Enqueue { block: body.0 });
    b.branch(
        Instr::Dbra {
            dst: DataReg::D7,
            target: 0,
        },
        top,
    );
    b.emit(Instr::Enqueue { block: done.0 });
    b.emit(Instr::Halt);
    (pe, b.build().expect("MIPS MC program"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mimd_program_shape() {
        let p = mimd_program(MipsKind::AddRegister, 16, 10);
        p.validate().unwrap();
        let adds = p
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Add { .. }))
            .count();
        assert_eq!(adds, 16);
        assert_eq!(measured_instrs(16, 10), 160);
    }

    #[test]
    fn simd_program_shape() {
        let (pe, mc) = simd_programs(MipsKind::MoveMemory, 16, 10, 0xF);
        assert_eq!(pe.instrs.len(), 2);
        mc.validate().unwrap();
        let moves = mc.blocks[1]
            .iter()
            .filter(|i| matches!(i, Instr::Move { .. }))
            .count();
        assert_eq!(moves, 16);
    }

    #[test]
    fn kinds_have_names() {
        assert!(MipsKind::AddRegister.name().contains("ADD"));
        assert!(MipsKind::MoveMemory.name().contains("MOVE"));
    }
}
