//! Global-sum reduction: a second, communication-dominated workload.
//!
//! Each PE holds a block of 16-bit values; after a local sum, the partial
//! results travel around the same `PE i → PE (i−1)` ring the matrix multiply
//! uses, with every PE forwarding what it received and accumulating — after
//! p−1 steps every PE holds the global (wrapping) sum.
//!
//! Where the matrix multiplication is compute-dominated (O(n³/p) multiply vs
//! O(n²) transfer), the reduction inverts the ratio: O(K) local adds against
//! O(p) synchronized transfers. It therefore isolates the paper's
//! *communication* comparison — polled MIMD handshakes vs barrier-synchronized
//! moves vs SIMD lockstep — with almost no multiply-variance in the way.

use crate::codegen::*;
use crate::matmul::CommSync;
use pasm_isa::{DataReg, Ea, Instr, Program, ProgramBuilder, Size};

/// Base address of each PE's input block.
pub const VEC_BASE: u32 = 0x2000;
/// Status-register bit *positions* (BTST takes positions, not masks).
const TX_READY_BIT: u8 = 0;
const RX_VALID_BIT: u8 = 1;
/// Address where each PE stores the final global sum.
pub const RESULT_ADDR: u32 = 0x0200;

/// Parameters of a reduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReduceParams {
    /// Elements per PE.
    pub k: usize,
    /// Number of PEs in the ring.
    pub p: usize,
}

/// Host reference: wrapping 16-bit sum of all blocks.
pub fn reference_sum(blocks: &[Vec<u16>]) -> u16 {
    blocks
        .iter()
        .flatten()
        .fold(0u16, |a, &v| a.wrapping_add(v))
}

/// Emit the two-byte ring transfer of `D4`, receiving into `D5`
/// (shared by the MIMD/S-MIMD PE program and the SIMD block).
fn emit_exchange(sink: &mut ProgSink<'_>, polls: bool) {
    // Reuse the matmul element protocol but on a register, not memory:
    // send low, receive low, send high, receive high, reassemble.
    use pasm_machine::{drr_ea, dtr_ea};
    sink.emit(Instr::Clr {
        size: Size::Word,
        dst: Ea::D(XFER_IN),
    });
    if polls {
        emit_status_poll(sink, TX_READY_BIT);
    }
    sink.emit(Instr::Move {
        size: Size::Byte,
        src: Ea::D(XFER_OUT),
        dst: dtr_ea(),
    });
    if polls {
        emit_status_poll(sink, RX_VALID_BIT);
    }
    sink.emit(Instr::Move {
        size: Size::Byte,
        src: drr_ea(),
        dst: Ea::D(XFER_IN),
    });
    sink.emit(Instr::Shift {
        kind: pasm_isa::ShiftKind::Lsr,
        size: Size::Word,
        count: pasm_isa::ShiftCount::Imm(8),
        dst: XFER_OUT,
    });
    if polls {
        emit_status_poll(sink, TX_READY_BIT);
    }
    sink.emit(Instr::Move {
        size: Size::Byte,
        src: Ea::D(XFER_OUT),
        dst: dtr_ea(),
    });
    if polls {
        emit_status_poll(sink, RX_VALID_BIT);
    }
    sink.emit(Instr::Move {
        size: Size::Byte,
        src: drr_ea(),
        dst: Ea::D(XFER_HI),
    });
    sink.emit(Instr::Shift {
        kind: pasm_isa::ShiftKind::Lsl,
        size: Size::Word,
        count: pasm_isa::ShiftCount::Imm(8),
        dst: XFER_HI,
    });
    sink.emit(Instr::Or {
        size: Size::Word,
        src: Ea::D(XFER_HI),
        dst: XFER_IN,
    });
}

/// Status poll using `BTST` (tighter than the AND/BEQ idiom of the matmul —
/// both protocols existed on the prototype).
fn emit_status_poll(sink: &mut ProgSink<'_>, bit: u8) {
    let top = sink.here();
    sink.emit(Instr::Btst {
        bit,
        dst: pasm_machine::status_ea(),
    });
    sink.branch_back(
        Instr::Bcc {
            cond: pasm_isa::Cond::Eq,
            target: 0,
        },
        top,
    );
}

/// PE program for the MIMD (polling) and S/MIMD (barrier) variants.
pub fn pe_program(params: ReduceParams, sync: CommSync) -> Program {
    let ReduceParams { k, p } = params;
    assert!(p >= 2 && k >= 1);
    let mut b = ProgramBuilder::new();

    // Local sum.
    b.emit(Instr::Mark {
        begin: true,
        phase: PHASE_LSUM,
    });
    b.emit(lea_abs(VEC_BASE, A_PTR));
    b.emit(Instr::Clr {
        size: Size::Word,
        dst: Ea::D(PROD),
    });
    b.emit(movei_w(k as u32 - 1, CNT_MID));
    let lsum = b.here("lsum");
    b.emit(Instr::Add {
        size: Size::Word,
        src: Ea::PostInc(A_PTR),
        dst: PROD,
    });
    b.branch(
        Instr::Dbra {
            dst: CNT_MID,
            target: 0,
        },
        lsum,
    );

    // Ring accumulation: forward what arrived, add it, p-1 times.
    b.emit(Instr::Mark {
        begin: false,
        phase: PHASE_LSUM,
    });
    b.emit(Instr::Mark {
        begin: true,
        phase: PHASE_COMM,
    });
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::D(PROD),
        dst: Ea::D(XFER_OUT),
    });
    b.emit(movei_w(p as u32 - 2, CNT_OUT));
    let step = b.here("step");
    if sync == CommSync::Barrier {
        b.emit(Instr::Barrier);
    }
    {
        let mut sink = ProgSink { b: &mut b };
        emit_exchange(&mut sink, sync == CommSync::Polling);
    }
    b.emit(Instr::Add {
        size: Size::Word,
        src: Ea::D(XFER_IN),
        dst: PROD,
    });
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::D(XFER_IN),
        dst: Ea::D(XFER_OUT),
    });
    b.branch(
        Instr::Dbra {
            dst: CNT_OUT,
            target: 0,
        },
        step,
    );

    b.emit(Instr::Mark {
        begin: false,
        phase: PHASE_COMM,
    });
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::D(PROD),
        dst: Ea::AbsW(RESULT_ADDR as u16),
    });
    b.emit(Instr::Halt);
    b.build().expect("reduction PE program")
}

/// MC program for MIMD / S-MIMD reductions (start + barrier words).
pub fn mc_program(params: ReduceParams, sync: CommSync, mask: u16) -> Program {
    let mut b = ProgramBuilder::new();
    b.emit(Instr::SetMask { mask });
    if sync == CommSync::Barrier {
        b.emit(Instr::EnqueueWords {
            count: params.p as u16 - 1,
        });
    }
    b.emit(Instr::StartPes);
    b.emit(Instr::Halt);
    b.build().expect("reduction MC program")
}

/// SIMD variant: the MC drives the local-sum loop and the ring steps.
/// Returns `(pe_bootstrap, mc_program)`.
pub fn simd_programs(params: ReduceParams, mask: u16) -> (Program, Program) {
    let ReduceParams { k, p } = params;
    assert!(p >= 2 && k >= 1);

    let mut pe = ProgramBuilder::new();
    pe.emit(Instr::JmpSimd);
    pe.emit(Instr::Halt);
    let pe = pe.build().expect("SIMD reduction bootstrap");

    let mut b = ProgramBuilder::new();
    let init = b.begin_block();
    b.emit(Instr::Mark {
        begin: true,
        phase: PHASE_LSUM,
    });
    b.emit(lea_abs(VEC_BASE, A_PTR));
    b.emit(Instr::Clr {
        size: Size::Word,
        dst: Ea::D(PROD),
    });
    b.end_block();

    let add = b.begin_block();
    b.emit(Instr::Add {
        size: Size::Word,
        src: Ea::PostInc(A_PTR),
        dst: PROD,
    });
    b.end_block();

    let ring_init = b.begin_block();
    b.emit(Instr::Mark {
        begin: false,
        phase: PHASE_LSUM,
    });
    b.emit(Instr::Mark {
        begin: true,
        phase: PHASE_COMM,
    });
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::D(PROD),
        dst: Ea::D(XFER_OUT),
    });
    b.end_block();

    let exch = b.begin_block();
    {
        let mut sink = ProgSink { b: &mut b };
        emit_exchange(&mut sink, false);
    }
    b.emit(Instr::Add {
        size: Size::Word,
        src: Ea::D(XFER_IN),
        dst: PROD,
    });
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::D(XFER_IN),
        dst: Ea::D(XFER_OUT),
    });
    b.end_block();

    let done = b.begin_block();
    b.emit(Instr::Mark {
        begin: false,
        phase: PHASE_COMM,
    });
    b.emit(Instr::Move {
        size: Size::Word,
        src: Ea::D(PROD),
        dst: Ea::AbsW(RESULT_ADDR as u16),
    });
    b.emit(Instr::JmpMimd { target: 1 });
    b.end_block();

    b.emit(Instr::SetMask { mask });
    b.emit(Instr::StartPes);
    b.emit(Instr::Enqueue { block: init.0 });
    b.emit(movei_w(k as u32 - 1, DataReg::D6));
    let l = b.here("mcsum");
    b.emit(Instr::Enqueue { block: add.0 });
    b.branch(
        Instr::Dbra {
            dst: DataReg::D6,
            target: 0,
        },
        l,
    );
    b.emit(Instr::Enqueue { block: ring_init.0 });
    b.emit(movei_w(p as u32 - 2, DataReg::D7));
    let s = b.here("mcstep");
    b.emit(Instr::Enqueue { block: exch.0 });
    b.branch(
        Instr::Dbra {
            dst: DataReg::D7,
            target: 0,
        },
        s,
    );
    b.emit(Instr::Enqueue { block: done.0 });
    b.emit(Instr::Halt);
    (pe, b.build().expect("SIMD reduction MC program"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_build_for_ring_sizes() {
        for p in [2usize, 4, 8, 16] {
            pe_program(ReduceParams { k: 32, p }, CommSync::Polling)
                .validate()
                .unwrap();
            pe_program(ReduceParams { k: 32, p }, CommSync::Barrier)
                .validate()
                .unwrap();
            let (pe, mc) = simd_programs(ReduceParams { k: 32, p }, 0xF);
            pe.validate().unwrap();
            mc.validate().unwrap();
        }
    }

    #[test]
    fn reference_sum_wraps() {
        let blocks = vec![vec![0xFFFFu16, 2], vec![3]];
        assert_eq!(reference_sum(&blocks), 4);
    }

    #[test]
    fn polling_variant_uses_btst() {
        let p = pe_program(ReduceParams { k: 8, p: 4 }, CommSync::Polling);
        assert!(p.instrs.iter().any(|i| matches!(i, Instr::Btst { .. })));
        let q = pe_program(ReduceParams { k: 8, p: 4 }, CommSync::Barrier);
        assert!(!q.instrs.iter().any(|i| matches!(i, Instr::Btst { .. })));
        assert_eq!(
            q.instrs
                .iter()
                .filter(|i| matches!(i, Instr::Barrier))
                .count(),
            1
        );
    }
}
