//! Block-structure profiles of the generated programs.
//!
//! The block compiler (`pasm_machine::block`) is only worth its table when
//! the programs it compiles spend their time inside long straight-line
//! blocks of statically-timed instructions. This module measures exactly
//! that for any generated [`Program`]: how many basic blocks it splits into,
//! how much of its core cost folds into per-block constants, and how many
//! data-dependent terms and machine-interaction (stop) points remain. The
//! numbers feed `docs/TIMING.md` and the `blockbench` report.

use pasm_isa::Program;
use pasm_machine::block::{compile, CompiledProgram};

/// Static block-structure summary of one program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockProfile {
    /// Instructions in the main stream.
    pub instrs: usize,
    /// Basic blocks the stream splits into.
    pub blocks: usize,
    /// Sum over blocks of the folded static core-cycle constants.
    pub static_cycles: u64,
    /// Instructions whose core time keeps a data-dependent term
    /// (`MULU`/`MULS`/`DIVU`/`DIVS`, register-count shifts, branch arms).
    pub dynamic_terms: usize,
    /// Stop instructions: points where the fast path must return to the
    /// event scheduler (mode switches, Fetch-Unit commands, barriers, halt).
    pub stop_instrs: usize,
    /// Longest block, in instructions.
    pub max_block_len: usize,
}

impl BlockProfile {
    /// Fraction of instructions whose core cost folded fully into a block
    /// constant. High values mean the block table carries the program.
    pub fn static_fraction(&self) -> f64 {
        if self.instrs == 0 {
            return 1.0;
        }
        (self.instrs - self.dynamic_terms) as f64 / self.instrs as f64
    }

    /// Mean block length in instructions.
    pub fn mean_block_len(&self) -> f64 {
        if self.blocks == 0 {
            return 0.0;
        }
        self.instrs as f64 / self.blocks as f64
    }
}

/// Summarize a compiled block table.
pub fn profile_compiled(c: &CompiledProgram) -> BlockProfile {
    BlockProfile {
        instrs: c.meta.len(),
        blocks: c.blocks.len(),
        static_cycles: c.total_static_cycles(),
        dynamic_terms: c.blocks.iter().map(|b| b.dynamic_terms as usize).sum(),
        stop_instrs: c.meta.iter().filter(|m| m.stop).count(),
        max_block_len: c.blocks.iter().map(|b| b.span.len()).max().unwrap_or(0),
    }
}

/// Compile a program's main stream and summarize its block structure.
pub fn profile(prog: &Program) -> BlockProfile {
    profile_compiled(&compile(&prog.instrs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::{mimd, serial, CommSync, MatmulParams};

    #[test]
    fn serial_matmul_is_dominated_by_straight_line_blocks() {
        let p = profile(&serial::pe_program(MatmulParams::new(16, 1)));
        assert!(p.blocks >= 3, "triple loop nest: {p:?}");
        assert!(p.static_fraction() > 0.5, "{p:?}");
        assert!(p.mean_block_len() >= 2.0, "{p:?}");
        assert!(p.static_cycles > 0);
    }

    #[test]
    fn mimd_matmul_keeps_few_stop_points() {
        // MIMD PE code interacts with the machine only at HALT (polling uses
        // memory-mapped reads, which escape dynamically, not statically).
        let p = profile(&mimd::pe_program(
            MatmulParams::new(16, 4),
            CommSync::Polling,
        ));
        assert!(p.stop_instrs <= 2, "{p:?}");
        assert!(p.blocks > 4, "{p:?}");
    }

    #[test]
    fn barrier_sync_adds_stop_points() {
        let polling = profile(&mimd::pe_program(
            MatmulParams::new(16, 4),
            CommSync::Polling,
        ));
        let barrier = profile(&mimd::pe_program(
            MatmulParams::new(16, 4),
            CommSync::Barrier,
        ));
        assert!(
            barrier.stop_instrs > polling.stop_instrs,
            "barriers are scheduler interaction points: {barrier:?} vs {polling:?}"
        );
    }

    #[test]
    fn profile_matches_compiled_table() {
        let prog = serial::pe_program(MatmulParams::new(8, 1));
        let c = compile(&prog.instrs);
        assert_eq!(profile(&prog), profile_compiled(&c));
        // Blocks tile the stream: lengths sum to the instruction count.
        let len: usize = c.blocks.iter().map(|b| b.span.len()).sum();
        assert_eq!(len, prog.instrs.len());
    }
}
