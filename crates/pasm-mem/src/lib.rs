//! # pasm-mem — memory subsystem of the PASM prototype simulator
//!
//! The paper attributes the raw SIMD-over-MIMD instruction-rate advantage
//! (its Table 1) to two memory-system properties of the prototype:
//!
//! 1. the Fetch Unit queue "can deliver data with one less wait state than can
//!    the PEs' main memories", because the queue is built from **static RAM**
//!    while PE main memory is **dynamic RAM**, and
//! 2. DRAM **refresh** can still delay a PE access even though refresh cycles
//!    are synchronized across all PEs and largely hidden.
//!
//! This crate provides those pieces:
//!
//! * [`Memory`] — big-endian byte-addressable storage (the MC68000 is
//!   big-endian; matrices are stored as 16-bit words at even addresses),
//! * [`MemTiming`] — wait-state and refresh timing parameters plus the delay
//!   calculators the machine simulator charges per 16-bit bus access,
//! * [`map`] — the PE address map: main memory, the reserved *SIMD instruction
//!   space*, the network transfer registers, and the timer.

pub mod map;
pub mod memory;
pub mod timing;

pub use map::{MemMap, NetReg, Region};
pub use memory::Memory;
pub use timing::{BurstClock, MemTiming};
