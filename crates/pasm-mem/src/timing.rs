//! Memory timing: wait states and DRAM refresh.
//!
//! The MC68000 bus takes a minimum of 4 clock cycles per 16-bit access; the
//! instruction-timing tables of `pasm-isa` already include those minimum
//! cycles. What they do *not* include is prototype-specific slowness:
//!
//! * **wait states** — extra cycles the memory inserts per access. The PASM
//!   prototype's PE dynamic RAM needs one more wait state than the Fetch Unit
//!   queue's static RAM (paper §3), which is the constant part of the SIMD
//!   instruction-fetch advantage;
//! * **refresh** — the PE DRAMs are refreshed simultaneously in all PEs and
//!   mostly invisibly, but an access colliding with a refresh window is
//!   delayed until the window closes.
//!
//! [`MemTiming`] holds these parameters and computes the extra delay for an
//! access at a given cycle time. Refresh windows are global (same clock in all
//! PEs), which mirrors the prototype's synchronized refresh design — and means
//! refresh does **not** add cross-PE variance, only a small uniform slowdown.

/// Timing parameters of a memory technology as seen from the CPU bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemTiming {
    /// Extra cycles inserted per 16-bit access (wait states).
    pub wait_states: u32,
    /// Cycle distance between the starts of consecutive refresh windows.
    /// `0` disables refresh (static RAM).
    pub refresh_interval: u64,
    /// Length of each refresh window in cycles.
    pub refresh_duration: u64,
}

impl MemTiming {
    /// PE main memory on the prototype: dynamic RAM with two wait states and a
    /// periodic refresh. With a 2 ms / 128-row refresh at 8 MHz a row refresh
    /// is due every ~125 cycles; the 10-cycle window models the refresh cycle
    /// plus arbitration. These two constants were *calibrated* (see
    /// EXPERIMENTS.md): together with the queue's one-fewer wait state they
    /// reproduce the paper's Fig. 7 crossover at ~14 added multiplies and the
    /// superlinear SIMD efficiency of Fig. 11.
    pub const PE_DRAM: MemTiming = MemTiming {
        wait_states: 2,
        refresh_interval: 125,
        refresh_duration: 10,
    };

    /// Fetch Unit queue: static RAM, exactly one wait state fewer than the PE
    /// DRAM (paper §3) and no refresh.
    pub const FU_SRAM: MemTiming = MemTiming {
        wait_states: 1,
        refresh_interval: 0,
        refresh_duration: 0,
    };

    /// MC program memory: modeled like the PE DRAM (the MCs use the same
    /// memory technology for their own instruction store).
    pub const MC_DRAM: MemTiming = MemTiming::PE_DRAM;

    /// Ideal zero-wait memory (useful as an ablation baseline).
    pub const IDEAL: MemTiming = MemTiming {
        wait_states: 0,
        refresh_interval: 0,
        refresh_duration: 0,
    };

    /// Extra delay (beyond the CPU-core cycles) for one 16-bit access that
    /// *starts* at absolute cycle `now`: wait states plus any refresh-window
    /// collision.
    #[inline]
    pub fn access_delay(&self, now: u64) -> u64 {
        self.wait_states as u64 + self.refresh_delay(now)
    }

    /// Delay due to refresh only: if `now` falls inside a refresh window, the
    /// access waits until the window ends.
    #[inline]
    pub fn refresh_delay(&self, now: u64) -> u64 {
        if self.refresh_interval == 0 {
            return 0;
        }
        let phase = now % self.refresh_interval;
        self.refresh_duration.saturating_sub(phase)
    }

    /// Total extra delay for `accesses` back-to-back 16-bit accesses starting
    /// at cycle `now`, assuming each access takes the MC68000 minimum of 4
    /// cycles plus its own delay. This is what the machine charges on top of
    /// the core instruction time for instruction fetch and operand traffic.
    pub fn burst_delay(&self, mut now: u64, accesses: u32) -> u64 {
        let start = now;
        for _ in 0..accesses {
            now += self.access_delay(now);
            now += 4; // the access itself, already costed in the core tables
        }
        // Only the *extra* cycles are returned.
        now - start - 4 * accesses as u64
    }

    /// Long-run average extra cycles per access (wait states + expected
    /// refresh collision cost), useful for analytical cross-checks.
    pub fn mean_overhead_per_access(&self) -> f64 {
        let refresh = if self.refresh_interval == 0 {
            0.0
        } else {
            // An access arriving uniformly at random collides with probability
            // duration/interval and waits duration/2 on average.
            let p = self.refresh_duration as f64 / self.refresh_interval as f64;
            p * self.refresh_duration as f64 / 2.0
        };
        self.wait_states as f64 + refresh
    }
}

impl Default for MemTiming {
    fn default() -> Self {
        MemTiming::PE_DRAM
    }
}

/// Incremental refresh-phase tracker for hot simulation loops.
///
/// [`MemTiming::burst_delay`] only ever reads the clock through
/// `now % refresh_interval`, so a loop that advances one component's clock
/// monotonically can carry the phase across instructions instead of
/// re-dividing per access. `BurstClock` does exactly that: it produces
/// **identical** delays to calling `timing.burst_delay(now, accesses)` at
/// the tracked `now` (the equivalence is property-tested below), with the
/// modulo replaced by conditional subtraction on the small per-instruction
/// increments.
#[derive(Debug, Clone, Copy)]
pub struct BurstClock {
    timing: MemTiming,
    /// `now % refresh_interval` of the tracked clock; 0 when refresh is off.
    phase: u64,
}

impl BurstClock {
    /// Track `timing`'s refresh phase starting at absolute cycle `now`.
    pub fn new(timing: MemTiming, now: u64) -> Self {
        let phase = if timing.refresh_interval == 0 {
            0
        } else {
            now % timing.refresh_interval
        };
        BurstClock { timing, phase }
    }

    /// Reduce a phase that may have stepped past the interval. Increments are
    /// at most one instruction's duration — usually far below the interval —
    /// so a subtraction almost always suffices; the modulo is a cold fallback
    /// for pathological configurations.
    #[inline]
    fn wrap(&self, mut phase: u64) -> u64 {
        let interval = self.timing.refresh_interval;
        if phase >= interval {
            phase -= interval;
            if phase >= interval {
                phase %= interval;
            }
        }
        phase
    }

    /// Advance the tracked clock by `cycles` without memory traffic.
    #[inline]
    pub fn advance(&mut self, cycles: u64) {
        if self.timing.refresh_interval != 0 {
            self.phase = self.wrap(self.phase + cycles);
        }
    }

    /// `timing.burst_delay(now + skew, accesses)` for the tracked `now`.
    /// The `skew` covers the machine's charging order, which prices an
    /// instruction's operand burst at `now + fetch_wait` without advancing
    /// the clock in between. Does not advance the tracked clock.
    #[inline]
    pub fn burst_delay(&self, skew: u64, accesses: u32) -> u64 {
        let t = &self.timing;
        if t.refresh_interval == 0 {
            return t.wait_states as u64 * accesses as u64;
        }
        let mut phase = self.wrap(self.phase + skew);
        let mut extra = 0u64;
        for _ in 0..accesses {
            let d = t.wait_states as u64 + t.refresh_duration.saturating_sub(phase);
            extra += d;
            phase = self.wrap(phase + d + 4);
        }
        extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_clock_matches_burst_delay_everywhere() {
        // The fast path's incremental phase tracker must be indistinguishable
        // from the modulo-per-access reference, including pathological
        // timings where one step crosses several refresh intervals.
        let timings = [
            MemTiming::PE_DRAM,
            MemTiming::FU_SRAM,
            MemTiming::IDEAL,
            MemTiming {
                wait_states: 3,
                refresh_interval: 7,
                refresh_duration: 11, // window longer than the interval
            },
        ];
        for t in timings {
            let mut now = 0u64;
            let mut clock = BurstClock::new(t, now);
            let mut rng = 0x2545_F491_4F6C_DD1Du64;
            for _ in 0..2000 {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                let accesses = (rng >> 33) as u32 % 6;
                let skew = (rng >> 49) % 40;
                assert_eq!(
                    clock.burst_delay(skew, accesses),
                    t.burst_delay(now + skew, accesses),
                    "{t:?} now={now} skew={skew} accesses={accesses}"
                );
                let step = (rng >> 21) % 300;
                clock.advance(step);
                now += step;
            }
        }
    }

    #[test]
    fn sram_has_exactly_one_less_wait_state_and_no_refresh() {
        let t = MemTiming::FU_SRAM;
        assert_eq!(t.wait_states + 1, MemTiming::PE_DRAM.wait_states);
        for now in [0u64, 1, 124, 125, 10_000] {
            assert_eq!(
                t.access_delay(now),
                t.wait_states as u64,
                "no refresh component"
            );
        }
        assert_eq!(t.mean_overhead_per_access(), t.wait_states as f64);
    }

    #[test]
    fn dram_wait_state_always_charged() {
        let t = MemTiming::PE_DRAM;
        // Out of any refresh window: exactly the wait states.
        assert_eq!(t.access_delay(20), t.wait_states as u64);
        assert_eq!(t.access_delay(124), t.wait_states as u64);
    }

    #[test]
    fn refresh_window_delays_until_close() {
        let t = MemTiming {
            wait_states: 0,
            refresh_interval: 100,
            refresh_duration: 4,
        };
        assert_eq!(t.refresh_delay(0), 4);
        assert_eq!(t.refresh_delay(1), 3);
        assert_eq!(t.refresh_delay(3), 1);
        assert_eq!(t.refresh_delay(4), 0);
        assert_eq!(t.refresh_delay(100), 4);
        assert_eq!(t.refresh_delay(199), 0);
    }

    #[test]
    fn burst_delay_accumulates() {
        let t = MemTiming {
            wait_states: 1,
            refresh_interval: 0,
            refresh_duration: 0,
        };
        assert_eq!(t.burst_delay(0, 3), 3);
        let t = MemTiming {
            wait_states: 0,
            refresh_interval: 8,
            refresh_duration: 2,
        };
        // First access at 0 hits the window (wait 2), then proceeds.
        assert!(t.burst_delay(0, 1) >= 2);
    }

    #[test]
    fn mean_overhead_formula() {
        let t = MemTiming {
            wait_states: 1,
            refresh_interval: 125,
            refresh_duration: 4,
        };
        let expected = 1.0 + (4.0 / 125.0) * 2.0;
        assert!((t.mean_overhead_per_access() - expected).abs() < 1e-12);
    }

    #[test]
    fn dram_beats_sram_never() {
        // Sanity: DRAM overhead is at least SRAM overhead at every cycle.
        for now in 0..1000u64 {
            assert!(MemTiming::PE_DRAM.access_delay(now) >= MemTiming::FU_SRAM.access_delay(now));
        }
    }
}
