//! Big-endian byte storage for PE and MC memories.

/// A flat, zero-initialized, big-endian memory.
///
/// Addresses are byte addresses; word/long accesses must be even-aligned, as on
/// the MC68000 (odd word access raised an address-error trap on the real CPU —
/// here it panics in debug and is the caller's bug).
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Allocate `size` bytes of zeroed memory.
    pub fn new(size: usize) -> Self {
        Memory {
            bytes: vec![0; size],
        }
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the memory has zero size.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    #[inline]
    fn check(&self, addr: u32, n: u32) {
        assert!(
            (addr as usize) + (n as usize) <= self.bytes.len(),
            "memory access at {:#X}+{} out of bounds ({} bytes)",
            addr,
            n,
            self.bytes.len()
        );
    }

    /// Read one byte.
    #[inline]
    pub fn read_byte(&self, addr: u32) -> u8 {
        self.check(addr, 1);
        self.bytes[addr as usize]
    }

    /// Write one byte.
    #[inline]
    pub fn write_byte(&mut self, addr: u32, v: u8) {
        self.check(addr, 1);
        self.bytes[addr as usize] = v;
    }

    /// Read a big-endian 16-bit word from an even address.
    #[inline]
    pub fn read_word(&self, addr: u32) -> u16 {
        debug_assert!(addr.is_multiple_of(2), "odd word read at {addr:#X}");
        self.check(addr, 2);
        let a = addr as usize;
        u16::from_be_bytes([self.bytes[a], self.bytes[a + 1]])
    }

    /// Write a big-endian 16-bit word to an even address.
    #[inline]
    pub fn write_word(&mut self, addr: u32, v: u16) {
        debug_assert!(addr.is_multiple_of(2), "odd word write at {addr:#X}");
        self.check(addr, 2);
        let a = addr as usize;
        self.bytes[a..a + 2].copy_from_slice(&v.to_be_bytes());
    }

    /// Read a big-endian 32-bit long word from an even address.
    #[inline]
    pub fn read_long(&self, addr: u32) -> u32 {
        debug_assert!(addr.is_multiple_of(2), "odd long read at {addr:#X}");
        self.check(addr, 4);
        let a = addr as usize;
        u32::from_be_bytes([
            self.bytes[a],
            self.bytes[a + 1],
            self.bytes[a + 2],
            self.bytes[a + 3],
        ])
    }

    /// Write a big-endian 32-bit long word to an even address.
    #[inline]
    pub fn write_long(&mut self, addr: u32, v: u32) {
        debug_assert!(addr.is_multiple_of(2), "odd long write at {addr:#X}");
        self.check(addr, 4);
        let a = addr as usize;
        self.bytes[a..a + 4].copy_from_slice(&v.to_be_bytes());
    }

    /// Read a value of `size` bytes (1, 2, or 4) zero-extended to 32 bits.
    pub fn read(&self, addr: u32, size: Size) -> u32 {
        match size {
            Size::Byte => self.read_byte(addr) as u32,
            Size::Word => self.read_word(addr) as u32,
            Size::Long => self.read_long(addr),
        }
    }

    /// Write the low `size` bytes of `v`.
    pub fn write(&mut self, addr: u32, v: u32, size: Size) {
        match size {
            Size::Byte => self.write_byte(addr, v as u8),
            Size::Word => self.write_word(addr, v as u16),
            Size::Long => self.write_long(addr, v),
        }
    }

    /// Bulk-load 16-bit words starting at `addr` (test/workload setup helper).
    pub fn load_words(&mut self, addr: u32, words: &[u16]) {
        for (i, w) in words.iter().enumerate() {
            self.write_word(addr + 2 * i as u32, *w);
        }
    }

    /// Bulk-read `count` 16-bit words starting at `addr`.
    pub fn dump_words(&self, addr: u32, count: usize) -> Vec<u16> {
        (0..count)
            .map(|i| self.read_word(addr + 2 * i as u32))
            .collect()
    }

    /// Zero a byte range.
    pub fn clear_range(&mut self, addr: u32, len: u32) {
        self.check(addr, len);
        self.bytes[addr as usize..(addr + len) as usize].fill(0);
    }
}

pub use pasm_isa::Size;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_layout() {
        let mut m = Memory::new(16);
        m.write_word(0, 0x1234);
        assert_eq!(m.read_byte(0), 0x12);
        assert_eq!(m.read_byte(1), 0x34);
        m.write_long(4, 0xDEADBEEF);
        assert_eq!(m.read_word(4), 0xDEAD);
        assert_eq!(m.read_word(6), 0xBEEF);
        assert_eq!(m.read_long(4), 0xDEADBEEF);
    }

    #[test]
    fn sized_access() {
        let mut m = Memory::new(8);
        m.write(0, 0xAABBCCDD, Size::Long);
        assert_eq!(m.read(0, Size::Byte), 0xAA);
        assert_eq!(m.read(0, Size::Word), 0xAABB);
        assert_eq!(m.read(0, Size::Long), 0xAABBCCDD);
        m.write(2, 0x11, Size::Byte);
        assert_eq!(m.read(0, Size::Long), 0xAABB11DD);
    }

    #[test]
    fn bulk_words_roundtrip() {
        let mut m = Memory::new(64);
        let data = [1u16, 2, 3, 0xFFFF];
        m.load_words(8, &data);
        assert_eq!(m.dump_words(8, 4), data);
        m.clear_range(8, 8);
        assert_eq!(m.dump_words(8, 4), [0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let m = Memory::new(4);
        m.read_long(2);
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(Memory::new(128).len(), 128);
        assert!(Memory::new(0).is_empty());
    }
}
