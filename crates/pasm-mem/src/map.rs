//! The PE address map of the simulated prototype.
//!
//! On the real machine the interesting regions are:
//!
//! * **main memory** — the PE's own DRAM (data always; instructions in MIMD),
//! * **SIMD instruction space** — a reserved area; any instruction fetch or
//!   data read hitting it is converted by PE logic into a request to the MC's
//!   Fetch Unit, released only when all enabled PEs have requested (paper §3),
//! * **network registers** — the transmit register (DTR), receive register
//!   (DRR) and a status register of the circuit-switched network interface,
//! * **timer** — the MC68230 used for the paper's time measurements; modeled
//!   as a read-only cycle counter.
//!
//! The exact base addresses are simulator conventions, not prototype values;
//! nothing in the experiments depends on them.

/// Base of the reserved SIMD instruction space.
pub const SIMD_SPACE_BASE: u32 = 0x00F0_0000;
/// Exclusive end of the SIMD instruction space.
pub const SIMD_SPACE_END: u32 = 0x00F1_0000;

/// Network data transmit register (byte-wide on the prototype).
pub const NET_DTR: u32 = 0x00E0_0000;
/// Network data receive register.
pub const NET_DRR: u32 = 0x00E0_0002;
/// Network status register: bit 0 = transmitter ready, bit 1 = receive valid.
pub const NET_STATUS: u32 = 0x00E0_0004;

/// Timer register: reads return the low 32 bits of the global cycle counter.
pub const TIMER: u32 = 0x00D0_0000;

/// Which network register an address refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetReg {
    /// Data transmit register.
    Dtr,
    /// Data receive register.
    Drr,
    /// Status register.
    Status,
}

/// Classification of a PE bus address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// Ordinary PE main memory (DRAM).
    Main,
    /// The reserved SIMD instruction space (Fetch Unit request).
    SimdSpace,
    /// A network interface register.
    Net(NetReg),
    /// The timer register.
    Timer,
}

/// Address decoder for the PE bus.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemMap;

impl MemMap {
    /// Classify an address.
    #[inline]
    pub fn region(self, addr: u32) -> Region {
        if (SIMD_SPACE_BASE..SIMD_SPACE_END).contains(&addr) {
            Region::SimdSpace
        } else if addr == NET_DTR || addr == NET_DTR + 1 {
            Region::Net(NetReg::Dtr)
        } else if addr == NET_DRR || addr == NET_DRR + 1 {
            Region::Net(NetReg::Drr)
        } else if addr == NET_STATUS || addr == NET_STATUS + 1 {
            Region::Net(NetReg::Status)
        } else if (TIMER..TIMER + 4).contains(&addr) {
            Region::Timer
        } else {
            Region::Main
        }
    }

    /// True if the address is in ordinary main memory.
    #[inline]
    pub fn is_main(self, addr: u32) -> bool {
        matches!(self.region(addr), Region::Main)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_regions() {
        let m = MemMap;
        assert_eq!(m.region(0), Region::Main);
        assert_eq!(m.region(0x1000), Region::Main);
        assert_eq!(m.region(SIMD_SPACE_BASE), Region::SimdSpace);
        assert_eq!(m.region(SIMD_SPACE_END - 2), Region::SimdSpace);
        assert_eq!(m.region(SIMD_SPACE_END), Region::Main);
        assert_eq!(m.region(NET_DTR), Region::Net(NetReg::Dtr));
        assert_eq!(m.region(NET_DRR), Region::Net(NetReg::Drr));
        assert_eq!(m.region(NET_STATUS), Region::Net(NetReg::Status));
        assert_eq!(m.region(TIMER), Region::Timer);
        assert_eq!(m.region(TIMER + 3), Region::Timer);
        assert_eq!(m.region(TIMER + 4), Region::Main);
    }

    #[test]
    fn main_predicate() {
        let m = MemMap;
        assert!(m.is_main(0x42));
        assert!(!m.is_main(NET_STATUS));
        assert!(!m.is_main(SIMD_SPACE_BASE + 100));
    }
}
