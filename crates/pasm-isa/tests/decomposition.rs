//! Pins the static/dynamic cycle decomposition the block compiler folds over:
//! for every opcode and every execution context,
//!
//! ```text
//! base_cycles(i, ctx) == cycle_split(i).static_cycles
//!                      + dynamic_cycles(cycle_split(i).dynamic, ctx)
//! ```
//!
//! This is the contract `docs/TIMING.md` documents and `pasm-machine`'s
//! fast path relies on. Each formula stated there is exercised here, either
//! by the exhaustive opcode sweep or by the operand property sweeps below.

use pasm_isa::instr::Instr;
use pasm_isa::operand::{Ea, Size};
use pasm_isa::reg::{AddrReg::*, DataReg::*};
use pasm_isa::timing::{base_cycles, cycle_split, dynamic_cycles, DynTerm, ExecCtx};
use pasm_isa::{Cond, ShiftCount, ShiftKind};

/// One representative per `Ea` addressing mode (the timing tables key on the
/// mode, not the register number).
fn ea_modes() -> Vec<Ea> {
    vec![
        Ea::D(D3),
        Ea::A(A2),
        Ea::Ind(A1),
        Ea::PostInc(A1),
        Ea::PreDec(A1),
        Ea::Disp(8, A1),
        Ea::AbsW(0x1000),
        Ea::AbsL(0x0010_0000),
        Ea::Imm(0x55AA),
    ]
}

/// At least one instance of every one of the 46 `Instr` variants, several of
/// them in multiple sizes / addressing modes so every arm of `base_cycles`
/// is crossed.
fn all_opcodes() -> Vec<Instr> {
    let mut v = Vec::new();
    for size in [Size::Byte, Size::Word, Size::Long] {
        for src in ea_modes() {
            v.push(Instr::Move {
                size,
                src,
                dst: Ea::D(D0),
            });
            v.push(Instr::Move {
                size,
                src: Ea::D(D1),
                dst: src,
            });
            v.push(Instr::Add { size, src, dst: D0 });
            v.push(Instr::Sub { size, src, dst: D0 });
            v.push(Instr::And { size, src, dst: D0 });
            v.push(Instr::Or { size, src, dst: D0 });
            v.push(Instr::Cmp { size, src, dst: D0 });
            v.push(Instr::Adda { size, src, dst: A0 });
            v.push(Instr::Suba { size, src, dst: A0 });
            v.push(Instr::Cmpa { size, src, dst: A0 });
            v.push(Instr::Movea { size, src, dst: A0 });
            v.push(Instr::AddTo {
                size,
                src: D1,
                dst: src,
            });
            v.push(Instr::SubTo {
                size,
                src: D1,
                dst: src,
            });
            v.push(Instr::OrTo {
                size,
                src: D1,
                dst: src,
            });
            v.push(Instr::Eor {
                size,
                src: D1,
                dst: src,
            });
            v.push(Instr::Addq {
                size,
                value: 4,
                dst: src,
            });
            v.push(Instr::Subq {
                size,
                value: 4,
                dst: src,
            });
            v.push(Instr::Clr { size, dst: src });
            v.push(Instr::Neg { size, dst: src });
            v.push(Instr::Not { size, dst: src });
            v.push(Instr::Cmpi {
                size,
                value: 7,
                dst: src,
            });
            v.push(Instr::Tst { size, dst: src });
        }
        for kind in [ShiftKind::Lsl, ShiftKind::Lsr, ShiftKind::Asr] {
            v.push(Instr::Shift {
                kind,
                size,
                count: ShiftCount::Imm(3),
                dst: D0,
            });
            v.push(Instr::Shift {
                kind,
                size,
                count: ShiftCount::Reg(D2),
                dst: D0,
            });
        }
    }
    for src in ea_modes() {
        v.push(Instr::Mulu { src, dst: D0 });
        v.push(Instr::Muls { src, dst: D0 });
        v.push(Instr::Divu { src, dst: D0 });
        v.push(Instr::Divs { src, dst: D0 });
        v.push(Instr::Lea { src, dst: A0 });
        v.push(Instr::Btst { bit: 3, dst: src });
    }
    for cond in [Cond::True, Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge] {
        v.push(Instr::Bcc { cond, target: 0 });
    }
    v.extend([
        Instr::Moveq { value: -1, dst: D0 },
        Instr::Swap { dst: D0 },
        Instr::Ext {
            size: Size::Word,
            dst: D0,
        },
        Instr::Ext {
            size: Size::Long,
            dst: D0,
        },
        Instr::Dbra { dst: D0, target: 0 },
        Instr::Jmp { target: 0 },
        Instr::Jsr { target: 0 },
        Instr::Rts,
        Instr::Nop,
        Instr::JmpSimd,
        Instr::JmpMimd { target: 0 },
        Instr::Barrier,
        Instr::SetMask { mask: 0xFFFF },
        Instr::Enqueue { block: 1 },
        Instr::EnqueueWords { count: 8 },
        Instr::StartPes,
        Instr::Mark {
            begin: true,
            phase: 1,
        },
        Instr::Mark {
            begin: false,
            phase: 1,
        },
        Instr::Halt,
    ]);
    v
}

/// A deterministic grid of execution contexts covering both branch arms,
/// shift counts 0–64, and a spread of operand values (corner cases plus LCG
/// pseudo-randoms).
fn ctx_grid() -> Vec<ExecCtx> {
    let mut values: Vec<u32> = vec![
        0,
        1,
        2,
        0xFF,
        0x5555,
        0xAAAA,
        0xFFFF,
        0x1_0000,
        0xFFFF_FFFF,
        0x8000_0000,
        123_456_789,
    ];
    let mut x: u32 = 0x1234_5678;
    for _ in 0..8 {
        x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        values.push(x);
    }
    let mut ctxs = Vec::new();
    for &src in &values {
        for &dst in &values {
            for shift in [0u32, 1, 8, 63, 64] {
                for flags in 0..4u8 {
                    ctxs.push(ExecCtx {
                        src_value: src,
                        dst_value: dst,
                        shift_count: shift,
                        branch_taken: flags & 1 != 0,
                        loop_expired: flags & 2 != 0,
                    });
                }
            }
        }
    }
    ctxs
}

fn variant_name(i: &Instr) -> &'static str {
    macro_rules! name_of {
        ($($v:ident),*) => {
            match i { $(Instr::$v { .. } => stringify!($v)),* }
        };
    }
    name_of!(
        Move,
        Movea,
        Moveq,
        Lea,
        Clr,
        Swap,
        Ext,
        Add,
        AddTo,
        Adda,
        Addq,
        Sub,
        SubTo,
        Suba,
        Subq,
        Neg,
        Mulu,
        Muls,
        Divu,
        Divs,
        And,
        Or,
        OrTo,
        Eor,
        Not,
        Shift,
        Btst,
        Cmp,
        Cmpa,
        Cmpi,
        Tst,
        Bcc,
        Dbra,
        Jmp,
        Jsr,
        Rts,
        Nop,
        JmpSimd,
        JmpMimd,
        Barrier,
        SetMask,
        Enqueue,
        EnqueueWords,
        StartPes,
        Mark,
        Halt
    )
}

/// The tentpole invariant: for every opcode × context, the split re-sums to
/// the interpreter's charge.
#[test]
fn split_resums_to_interpreter_charge_for_every_opcode() {
    let opcodes = all_opcodes();
    let ctxs = ctx_grid();
    let mut seen = std::collections::BTreeSet::new();
    for i in &opcodes {
        seen.insert(variant_name(i));
        let split = cycle_split(i);
        for ctx in &ctxs {
            let expect = base_cycles(i, *ctx);
            let got = split.static_cycles + dynamic_cycles(split.dynamic, *ctx);
            assert_eq!(
                got, expect,
                "decomposition mismatch for {i:?} with ctx {ctx:?}: \
                 static {} + dynamic({:?}) = {got}, interpreter charges {expect}",
                split.static_cycles, split.dynamic
            );
        }
    }
    // The sweep really covers the whole ISA: all 46 variants appeared.
    assert_eq!(seen.len(), 46, "opcode sweep missed variants: {seen:?}");
}

/// Instructions whose split claims to be fully static must charge the same
/// number of cycles under *every* context.
#[test]
fn static_split_implies_context_independence() {
    let ctxs = ctx_grid();
    for i in &all_opcodes() {
        let split = cycle_split(i);
        if split.is_static() {
            for ctx in &ctxs {
                assert_eq!(
                    base_cycles(i, *ctx),
                    split.static_cycles,
                    "{i:?} claims static split but charge varies with {ctx:?}"
                );
            }
        }
    }
}

/// MULU property sweep: exhaustive over all 65536 source words, the dynamic
/// term is exactly 2·ones(src).
#[test]
fn mulu_dynamic_term_is_two_cycles_per_set_bit() {
    let i = Instr::Mulu {
        src: Ea::D(D1),
        dst: D0,
    };
    let split = cycle_split(&i);
    assert_eq!(split.dynamic, DynTerm::MuluOnes);
    for src in 0..=0xFFFFu32 {
        let ctx = ExecCtx {
            src_value: src,
            ..Default::default()
        };
        let dynamic = dynamic_cycles(split.dynamic, ctx);
        assert_eq!(dynamic, 2 * src.count_ones(), "MULU src={src:#06x}");
        assert_eq!(split.static_cycles + dynamic, base_cycles(&i, ctx));
    }
}

/// MULS property sweep: exhaustive over all 65536 source words against the
/// interpreter (dynamic term = 2·transitions(src<<1), bounded by 2·16).
#[test]
fn muls_dynamic_term_matches_interpreter_exhaustively() {
    let i = Instr::Muls {
        src: Ea::D(D1),
        dst: D0,
    };
    let split = cycle_split(&i);
    assert_eq!(split.dynamic, DynTerm::MulsTransitions);
    for src in 0..=0xFFFFu32 {
        let ctx = ExecCtx {
            src_value: src,
            ..Default::default()
        };
        let dynamic = dynamic_cycles(split.dynamic, ctx);
        assert!(dynamic <= 32, "MULS src={src:#06x} dynamic {dynamic}");
        assert_eq!(split.static_cycles + dynamic, base_cycles(&i, ctx));
    }
}

/// DIVU property sweep: LCG-driven dividend/divisor pairs including the
/// early-out arms (zero divisor, overflow) re-sum exactly.
#[test]
fn divu_divs_dynamic_terms_cover_early_out_and_overflow() {
    let divu = Instr::Divu {
        src: Ea::D(D1),
        dst: D0,
    };
    let divs = Instr::Divs {
        src: Ea::D(D1),
        dst: D0,
    };
    let (su, ss) = (cycle_split(&divu), cycle_split(&divs));
    assert_eq!(su.dynamic, DynTerm::DivuQuotient);
    assert_eq!(ss.dynamic, DynTerm::DivsQuotient);
    let mut x: u64 = 0x2545_F491_4F6C_DD1D;
    let mut cases: Vec<(u32, u32)> = vec![
        (0, 0),                // zero divisor: trap early-out
        (123, 0),              //
        (0xFFFF_FFFF, 1),      // overflow: quotient does not fit 16 bits
        (0x0001_0000, 1),      // boundary overflow
        (0xFFFF, 0xFFFF),      // quotient 1
        (0, 1),                // quotient 0: worst zero count
        (0xFFFE_0001, 0xFFFF), // maximal in-range quotient
    ];
    for _ in 0..500 {
        x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        cases.push(((x >> 32) as u32, (x & 0xFFFF) as u32));
    }
    for (dst_value, src_value) in cases {
        let ctx = ExecCtx {
            src_value,
            dst_value,
            ..Default::default()
        };
        assert_eq!(
            su.static_cycles + dynamic_cycles(su.dynamic, ctx),
            base_cycles(&divu, ctx),
            "DIVU {dst_value:#x}/{src_value:#x}"
        );
        assert_eq!(
            ss.static_cycles + dynamic_cycles(ss.dynamic, ctx),
            base_cycles(&divs, ctx),
            "DIVS {dst_value:#x}/{src_value:#x}"
        );
    }
}

/// DBRA and Bcc arm sweep: both arms of each branch decompose onto the
/// documented taken/fall-through costs.
#[test]
fn branch_arms_decompose_onto_documented_costs() {
    let dbra = Instr::Dbra { dst: D0, target: 0 };
    let split = cycle_split(&dbra);
    assert_eq!(split.static_cycles, 10);
    assert_eq!(split.dynamic, DynTerm::DbraExpired);
    for expired in [false, true] {
        let ctx = ExecCtx {
            loop_expired: expired,
            ..Default::default()
        };
        let total = split.static_cycles + dynamic_cycles(split.dynamic, ctx);
        assert_eq!(total, if expired { 14 } else { 10 });
        assert_eq!(total, base_cycles(&dbra, ctx));
    }
    // BRA (Bcc with Cond::True) is unconditionally 10 and fully static.
    let bra = Instr::Bcc {
        cond: Cond::True,
        target: 0,
    };
    assert_eq!(cycle_split(&bra).static_cycles, 10);
    assert!(cycle_split(&bra).is_static());
    // Conditional branches: taken 10, fall-through 12.
    let beq = Instr::Bcc {
        cond: Cond::Eq,
        target: 0,
    };
    let split = cycle_split(&beq);
    assert_eq!(split.static_cycles, 10);
    assert_eq!(split.dynamic, DynTerm::BccFallThrough);
    for taken in [false, true] {
        let ctx = ExecCtx {
            branch_taken: taken,
            ..Default::default()
        };
        let total = split.static_cycles + dynamic_cycles(split.dynamic, ctx);
        assert_eq!(total, if taken { 10 } else { 12 });
        assert_eq!(total, base_cycles(&beq, ctx));
    }
}

/// Register-count shifts: dynamic term is exactly 2·count for counts 0–64.
#[test]
fn shift_dynamic_term_is_two_per_count() {
    for size in [Size::Byte, Size::Word, Size::Long] {
        let i = Instr::Shift {
            kind: ShiftKind::Lsl,
            size,
            count: ShiftCount::Reg(D1),
            dst: D0,
        };
        let split = cycle_split(&i);
        assert_eq!(split.dynamic, DynTerm::ShiftCount);
        for count in 0..=64u32 {
            let ctx = ExecCtx {
                shift_count: count,
                ..Default::default()
            };
            assert_eq!(dynamic_cycles(split.dynamic, ctx), 2 * count);
            assert_eq!(
                split.static_cycles + dynamic_cycles(split.dynamic, ctx),
                base_cycles(&i, ctx)
            );
        }
    }
}
