//! Cycle-formula coverage for the instruction paths the `pasm-kernels`
//! workloads lean on — compare-exchange (bitonic sort) and shift-based
//! indexing (image smoothing, sign-mask extraction) — asserting the same
//! MC68000 user's-manual tables the matmul experiments are built on.
//!
//! The sequences below mirror the generated kernel code instruction for
//! instruction (see `pasm-kernels/src/bitonic.rs` and `smooth.rs`), so a
//! timing-model regression that would silently shift the kernelsweep
//! results fails here with the exact formula that moved.

use pasm_isa::analysis::{block_bounds, instr_bounds, is_data_dependent};
use pasm_isa::reg::{AddrReg::*, DataReg::*};
use pasm_isa::timing::{base_cycles, bcc_cycles, dbra_cycles, shift_cycles, ExecCtx};
use pasm_isa::{Cond, Ea, Instr, ShiftCount, ShiftKind, Size};

fn taken() -> ExecCtx {
    ExecCtx {
        branch_taken: true,
        ..Default::default()
    }
}

fn not_taken() -> ExecCtx {
    ExecCtx {
        branch_taken: false,
        ..Default::default()
    }
}

/// The branchy MIMD compare-exchange: fetch both byte addresses from the
/// comparator table, load, compare, and swap through memory only when out
/// of order. Table 8-2/8-4 composition: MOVEA.W (An)+ = 8, MOVE.W (An),Dn
/// = 8, CMP.W Dn,Dm = 4, MOVE.W Dn,(An) = 8.
#[test]
fn branchy_compare_exchange_path_cycles() {
    let ctx = ExecCtx::default();
    let fetch = Instr::Movea {
        size: Size::Word,
        src: Ea::PostInc(A3),
        dst: A0,
    };
    assert_eq!(base_cycles(&fetch, ctx), 8, "MOVEA.W (A3)+,A0");
    let load = Instr::Move {
        size: Size::Word,
        src: Ea::Ind(A0),
        dst: Ea::D(D0),
    };
    assert_eq!(base_cycles(&load, ctx), 8, "MOVE.W (A0),D0");
    let cmp = Instr::Cmp {
        size: Size::Word,
        src: Ea::D(D0),
        dst: D1,
    };
    assert_eq!(base_cycles(&cmp, ctx), 4, "CMP.W D0,D1");
    let skip = Instr::Bcc {
        cond: Cond::Cc,
        target: 0,
    };
    assert_eq!(base_cycles(&skip, taken()), 10, "Bcc taken");
    assert_eq!(base_cycles(&skip, not_taken()), 12, "Bcc not taken");
    let store = Instr::Move {
        size: Size::Word,
        src: Ea::D(D1),
        dst: Ea::Ind(A0),
    };
    assert_eq!(base_cycles(&store, ctx), 8, "MOVE.W D1,(A0)");

    // Whole-comparator asymmetry: the in-order path pays CMP + taken branch
    // (14); the swap path pays CMP + fall-through + two memory stores (32).
    // This 18-cycle data dependence is exactly what MIMD keeps private and
    // SIMD lockstep would equalize at the max.
    let in_order = 4 + bcc_cycles(true);
    let swap = 4 + bcc_cycles(false) + 2 * 8;
    assert_eq!(in_order, 14);
    assert_eq!(swap, 32);
    assert!(is_data_dependent(&skip));
    assert_eq!(instr_bounds(&skip).spread(), 2);
}

/// The branch-free SIMD compare-exchange (sign-mask + XOR swap) must be
/// *constant time over all data*: `block_bounds` min == max, and none of
/// its instructions is data-dependent — that is what makes it broadcastable
/// without per-PE drift.
#[test]
fn branch_free_compare_exchange_is_constant_time() {
    let body = [
        Instr::Movea {
            size: Size::Word,
            src: Ea::PostInc(A3),
            dst: A0,
        },
        Instr::Movea {
            size: Size::Word,
            src: Ea::PostInc(A3),
            dst: A1,
        },
        Instr::Move {
            size: Size::Word,
            src: Ea::Ind(A0),
            dst: Ea::D(D0),
        },
        Instr::Move {
            size: Size::Word,
            src: Ea::Ind(A1),
            dst: Ea::D(D1),
        },
        Instr::Move {
            size: Size::Word,
            src: Ea::D(D1),
            dst: Ea::D(D2),
        },
        Instr::Sub {
            size: Size::Word,
            src: Ea::D(D0),
            dst: D2,
        },
        Instr::Shift {
            kind: ShiftKind::Asr,
            size: Size::Word,
            count: ShiftCount::Imm(8),
            dst: D2,
        },
        Instr::Shift {
            kind: ShiftKind::Asr,
            size: Size::Word,
            count: ShiftCount::Imm(7),
            dst: D2,
        },
        Instr::Move {
            size: Size::Word,
            src: Ea::D(D0),
            dst: Ea::D(D3),
        },
        Instr::Eor {
            size: Size::Word,
            src: D1,
            dst: Ea::D(D3),
        },
        Instr::And {
            size: Size::Word,
            src: Ea::D(D2),
            dst: D3,
        },
        Instr::Eor {
            size: Size::Word,
            src: D3,
            dst: Ea::D(D0),
        },
        Instr::Eor {
            size: Size::Word,
            src: D3,
            dst: Ea::D(D1),
        },
        Instr::Move {
            size: Size::Word,
            src: Ea::D(D0),
            dst: Ea::Ind(A0),
        },
        Instr::Move {
            size: Size::Word,
            src: Ea::D(D1),
            dst: Ea::Ind(A1),
        },
    ];
    for i in &body {
        assert!(
            !is_data_dependent(i),
            "branch-free comparator contains a data-dependent instruction: {i}"
        );
    }
    let b = block_bounds(&body);
    assert_eq!(b.min, b.max, "comparator must be constant-time");
    // Sum of the individual table entries — pinned so any model change that
    // silently moves a kernel's SIMD cost is caught with the exact figure.
    let sum: u32 = body
        .iter()
        .map(|i| base_cycles(i, ExecCtx::default()))
        .sum();
    assert_eq!(b.min, sum);
    assert_eq!(
        sum,
        8 + 8 + 8 + 8 + 4 + 4 + 22 + 20 + 4 + 8 + 4 + 8 + 8 + 8 + 8
    );
}

/// Shift-based indexing and sign extraction: the smoothing kernel's `>> 2`
/// normalization and the sort kernel's two-ASR sign smear. Immediate-form
/// shifts cost 6 + 2n on word operands; the immediate count tops out at 8,
/// which is why a 15-position arithmetic shift is split 8 + 7.
#[test]
fn shift_based_indexing_cycles() {
    let ctx = ExecCtx::default();
    let norm = Instr::Shift {
        kind: ShiftKind::Lsr,
        size: Size::Word,
        count: ShiftCount::Imm(2),
        dst: D0,
    };
    assert_eq!(base_cycles(&norm, ctx), 10, "LSR.W #2 = 6 + 2*2");
    assert_eq!(shift_cycles(Size::Word, 2), 10);

    let asr8 = Instr::Shift {
        kind: ShiftKind::Asr,
        size: Size::Word,
        count: ShiftCount::Imm(8),
        dst: D2,
    };
    let asr7 = Instr::Shift {
        kind: ShiftKind::Asr,
        size: Size::Word,
        count: ShiftCount::Imm(7),
        dst: D2,
    };
    assert_eq!(base_cycles(&asr8, ctx), 22, "ASR.W #8 = 6 + 2*8");
    assert_eq!(base_cycles(&asr7, ctx), 20, "ASR.W #7 = 6 + 2*7");
    assert_eq!(
        base_cycles(&asr8, ctx) + base_cycles(&asr7, ctx),
        shift_cycles(Size::Word, 8) + shift_cycles(Size::Word, 7)
    );

    // Immediate shifts are constant-time; only register-count shifts vary.
    assert!(!is_data_dependent(&asr8));
    let reg_shift = Instr::Shift {
        kind: ShiftKind::Asr,
        size: Size::Word,
        count: ShiftCount::Reg(D1),
        dst: D2,
    };
    assert!(is_data_dependent(&reg_shift));
    assert!(instr_bounds(&reg_shift).spread() > 0);
}

/// The smoothing stencil body: 3-tap read-add-shift-store over (A0) with a
/// displacement for the third tap. Every instruction is fixed-time, so the
/// whole pass is constant — the property that makes smoothing the
/// SIMD-favoring end of the kernelsweep spectrum.
#[test]
fn stencil_body_is_constant_time() {
    let body = [
        Instr::Move {
            size: Size::Word,
            src: Ea::PostInc(A4),
            dst: Ea::D(D0),
        },
        Instr::Move {
            size: Size::Word,
            src: Ea::Ind(A4),
            dst: Ea::D(D1),
        },
        Instr::Add {
            size: Size::Word,
            src: Ea::D(D1),
            dst: D0,
        },
        Instr::Add {
            size: Size::Word,
            src: Ea::D(D1),
            dst: D0,
        },
        Instr::Move {
            size: Size::Word,
            src: Ea::Disp(2, A4),
            dst: Ea::D(D1),
        },
        Instr::Add {
            size: Size::Word,
            src: Ea::D(D1),
            dst: D0,
        },
        Instr::Shift {
            kind: ShiftKind::Lsr,
            size: Size::Word,
            count: ShiftCount::Imm(2),
            dst: D0,
        },
        Instr::Move {
            size: Size::Word,
            src: Ea::D(D0),
            dst: Ea::PostInc(A5),
        },
    ];
    let b = block_bounds(&body);
    assert_eq!(b.min, b.max);
    // MOVE (An)+ 8, MOVE (An) 8, ADD 4, ADD 4, MOVE d16(An) 12, ADD 4,
    // LSR #2 10, MOVE Dn,(An)+ 8.
    assert_eq!(b.min, 8 + 8 + 4 + 4 + 12 + 4 + 10 + 8);
}

/// Loop plumbing shared by every kernel's inner loops: `DBRA` costs 10 while
/// the counter is live and 14 on expiry, and the rank-count conditional
/// increment (`ADDQ.W #1,Dn` = 4) sits between the 10-vs-12 branch arms.
#[test]
fn loop_and_count_plumbing_cycles() {
    assert_eq!(dbra_cycles(false), 10, "DBRA taken (counter live)");
    assert_eq!(dbra_cycles(true), 14, "DBRA expired (fall through)");
    let dbra = Instr::Dbra { dst: D7, target: 0 };
    assert!(is_data_dependent(&dbra));
    let b = instr_bounds(&dbra);
    assert_eq!((b.min, b.max), (10, 14));

    let count = Instr::Addq {
        size: Size::Word,
        value: 1,
        dst: Ea::D(D3),
    };
    assert_eq!(base_cycles(&count, ExecCtx::default()), 4, "ADDQ.W #1,D3");
    // Rank-count inner iteration arms: MOVE (A0)+,D0 (8) + CMP (4) + branch:
    // not-smaller takes 8+4+10 = 22, smaller takes 8+4+12+4 = 28.
    assert_eq!(8 + 4 + bcc_cycles(true), 22);
    assert_eq!(8 + 4 + bcc_cycles(false) + 4, 28);
}
