//! Property test: for the branch-free subset of the ISA, the disassembly
//! (`Display`) of any instruction re-assembles to the same instruction.
//! (Branches print numeric targets rather than label names, so they are
//! exercised by the unit tests instead.)

use pasm_isa::asm::assemble;
use pasm_isa::{AddrReg, DataReg, Ea, Instr, ShiftCount, ShiftKind, Size};
use proptest::prelude::*;

fn data_reg() -> impl Strategy<Value = DataReg> {
    (0usize..8).prop_map(|i| DataReg::from_index(i).unwrap())
}

fn addr_reg() -> impl Strategy<Value = AddrReg> {
    (0usize..8).prop_map(|i| AddrReg::from_index(i).unwrap())
}

/// Any addressing mode the assembler can parse back from its display form.
fn ea() -> impl Strategy<Value = Ea> {
    prop_oneof![
        data_reg().prop_map(Ea::D),
        addr_reg().prop_map(Ea::A),
        addr_reg().prop_map(Ea::Ind),
        addr_reg().prop_map(Ea::PostInc),
        addr_reg().prop_map(Ea::PreDec),
        (any::<i16>(), addr_reg()).prop_map(|(d, a)| Ea::Disp(d, a)),
        (0u16..=0xFFFE).prop_map(|v| Ea::AbsW(v & !1)),
        (0u32..=0x00FF_FFFE).prop_map(|v| Ea::AbsL(v & !1)),
        any::<u16>().prop_map(|v| Ea::Imm(v as u32)),
    ]
}

fn mem_or_reg_writable() -> impl Strategy<Value = Ea> {
    ea().prop_filter("writable", |e| e.is_writable())
}

fn size() -> impl Strategy<Value = Size> {
    prop_oneof![Just(Size::Byte), Just(Size::Word), Just(Size::Long)]
}

fn shift_kind() -> impl Strategy<Value = ShiftKind> {
    prop_oneof![
        Just(ShiftKind::Lsl),
        Just(ShiftKind::Lsr),
        Just(ShiftKind::Asl),
        Just(ShiftKind::Asr),
        Just(ShiftKind::Rol),
        Just(ShiftKind::Ror),
    ]
}

/// Branch-free instructions whose display is assembler-compatible.
fn roundtrippable() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (size(), ea(), mem_or_reg_writable()).prop_map(|(s, src, dst)| {
            match dst {
                // MOVE to An prints as MOVEA and must stay a word/long op.
                Ea::A(a) => Instr::Movea {
                    size: if s == Size::Byte { Size::Word } else { s },
                    src,
                    dst: a,
                },
                _ => Instr::Move { size: s, src, dst },
            }
        }),
        (any::<i8>(), data_reg()).prop_map(|(v, d)| Instr::Moveq { value: v, dst: d }),
        (size(), mem_or_reg_writable()).prop_map(|(s, d)| Instr::Clr { size: s, dst: d }),
        data_reg().prop_map(|d| Instr::Swap { dst: d }),
        (size(), ea(), data_reg()).prop_map(|(s, src, dst)| Instr::Add { size: s, src, dst }),
        (size(), ea(), data_reg()).prop_map(|(s, src, dst)| Instr::Sub { size: s, src, dst }),
        (size(), ea(), addr_reg()).prop_map(|(s, src, dst)| Instr::Adda {
            size: if s == Size::Byte { Size::Word } else { s },
            src,
            dst
        }),
        (size(), 1u8..=8, data_reg())
            .prop_map(|(s, v, d)| Instr::Addq { size: s, value: v, dst: Ea::D(d) }),
        (ea(), data_reg()).prop_map(|(src, dst)| Instr::Mulu { src, dst }),
        (ea(), data_reg()).prop_map(|(src, dst)| Instr::Muls { src, dst }),
        (ea(), data_reg()).prop_map(|(src, dst)| Instr::Divu { src, dst }),
        (ea(), data_reg()).prop_map(|(src, dst)| Instr::Divs { src, dst }),
        (size(), ea(), data_reg()).prop_map(|(s, src, dst)| Instr::And { size: s, src, dst }),
        (size(), ea(), data_reg()).prop_map(|(s, src, dst)| Instr::Or { size: s, src, dst }),
        (size(), mem_or_reg_writable()).prop_map(|(s, d)| Instr::Not { size: s, dst: d }),
        (size(), mem_or_reg_writable()).prop_map(|(s, d)| Instr::Neg { size: s, dst: d }),
        (shift_kind(), size(), 1u8..=8, data_reg()).prop_map(|(k, s, n, d)| Instr::Shift {
            kind: k,
            size: s,
            count: ShiftCount::Imm(n),
            dst: d
        }),
        (shift_kind(), size(), data_reg(), data_reg()).prop_map(|(k, s, c, d)| Instr::Shift {
            kind: k,
            size: s,
            count: ShiftCount::Reg(c),
            dst: d
        }),
        (size(), ea(), data_reg()).prop_map(|(s, src, dst)| Instr::Cmp { size: s, src, dst }),
        (0u8..16, ea().prop_filter("btst dst", |e| !matches!(e, Ea::Imm(_) | Ea::A(_))))
            .prop_map(|(bit, dst)| Instr::Btst { bit, dst }),
        (size(), mem_or_reg_writable()).prop_map(|(s, d)| Instr::Tst { size: s, dst: d }),
        Just(Instr::Nop),
        Just(Instr::Rts),
        Just(Instr::Halt),
        Just(Instr::JmpSimd),
        Just(Instr::Barrier),
        any::<u16>().prop_map(|m| Instr::SetMask { mask: m }),
        Just(Instr::StartPes),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn display_reassembles_to_the_same_instruction(i in roundtrippable()) {
        let text = i.to_string();
        let prog = assemble(&text)
            .unwrap_or_else(|e| panic!("`{text}` failed to assemble: {e}"));
        prop_assert_eq!(prog.instrs.len(), 1, "`{}`", text);
        prop_assert_eq!(prog.instrs[0], i, "`{}`", text);
    }

    #[test]
    fn words_and_bounds_are_consistent(i in roundtrippable()) {
        // Word count is positive for real instructions and bounded by
        // opcode + 4 extension words; static bounds are ordered.
        let w = i.words();
        prop_assert!((1..=6).contains(&w), "{i}: {w} words");
        let b = pasm_isa::analysis::instr_bounds(&i);
        prop_assert!(b.min <= b.max);
        prop_assert!(b.max < 200, "{i}: implausible {b:?}");
    }
}
