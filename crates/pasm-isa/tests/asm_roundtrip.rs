//! Randomized test: for the branch-free subset of the ISA, the disassembly
//! (`Display`) of any instruction re-assembles to the same instruction.
//! (Branches print numeric targets rather than label names, so they are
//! exercised by the unit tests instead.)
//!
//! Formerly a `proptest` suite; rewritten over `pasm_util::Rng` with a fixed
//! seed so the workspace builds offline (ISSUE 2). 2048 random instructions
//! cover every constructor below many times over.

use pasm_isa::asm::assemble;
use pasm_isa::{AddrReg, DataReg, Ea, Instr, ShiftCount, ShiftKind, Size};
use pasm_util::Rng;

fn data_reg(rng: &mut Rng) -> DataReg {
    DataReg::from_index(rng.gen_range(8)).unwrap()
}

fn addr_reg(rng: &mut Rng) -> AddrReg {
    AddrReg::from_index(rng.gen_range(8)).unwrap()
}

/// Any addressing mode the assembler can parse back from its display form.
fn ea(rng: &mut Rng) -> Ea {
    match rng.gen_range(9) {
        0 => Ea::D(data_reg(rng)),
        1 => Ea::A(addr_reg(rng)),
        2 => Ea::Ind(addr_reg(rng)),
        3 => Ea::PostInc(addr_reg(rng)),
        4 => Ea::PreDec(addr_reg(rng)),
        5 => Ea::Disp(rng.gen_u16() as i16, addr_reg(rng)),
        6 => Ea::AbsW(rng.gen_u16() & 0xFFFE),
        7 => Ea::AbsL((rng.gen_u32() & 0x00FF_FFFF) & !1),
        _ => Ea::Imm(rng.gen_u16() as u32),
    }
}

fn writable_ea(rng: &mut Rng) -> Ea {
    loop {
        let e = ea(rng);
        if e.is_writable() {
            return e;
        }
    }
}

fn btst_ea(rng: &mut Rng) -> Ea {
    loop {
        let e = ea(rng);
        if !matches!(e, Ea::Imm(_) | Ea::A(_)) {
            return e;
        }
    }
}

fn size(rng: &mut Rng) -> Size {
    [Size::Byte, Size::Word, Size::Long][rng.gen_range(3)]
}

fn word_or_long(rng: &mut Rng) -> Size {
    [Size::Word, Size::Long][rng.gen_range(2)]
}

fn shift_kind(rng: &mut Rng) -> ShiftKind {
    [
        ShiftKind::Lsl,
        ShiftKind::Lsr,
        ShiftKind::Asl,
        ShiftKind::Asr,
        ShiftKind::Rol,
        ShiftKind::Ror,
    ][rng.gen_range(6)]
}

/// One random branch-free instruction whose display is assembler-compatible.
fn roundtrippable(rng: &mut Rng) -> Instr {
    match rng.gen_range(24) {
        0 => {
            let s = size(rng);
            let src = ea(rng);
            match writable_ea(rng) {
                // MOVE to An prints as MOVEA and must stay a word/long op.
                Ea::A(a) => Instr::Movea {
                    size: if s == Size::Byte { Size::Word } else { s },
                    src,
                    dst: a,
                },
                dst => Instr::Move { size: s, src, dst },
            }
        }
        1 => Instr::Moveq {
            value: rng.gen_u16() as i8,
            dst: data_reg(rng),
        },
        2 => Instr::Clr {
            size: size(rng),
            dst: writable_ea(rng),
        },
        3 => Instr::Swap { dst: data_reg(rng) },
        4 => Instr::Add {
            size: size(rng),
            src: ea(rng),
            dst: data_reg(rng),
        },
        5 => Instr::Sub {
            size: size(rng),
            src: ea(rng),
            dst: data_reg(rng),
        },
        6 => Instr::Adda {
            size: word_or_long(rng),
            src: ea(rng),
            dst: addr_reg(rng),
        },
        7 => Instr::Addq {
            size: size(rng),
            value: 1 + rng.gen_range(8) as u8,
            dst: Ea::D(data_reg(rng)),
        },
        8 => Instr::Mulu {
            src: ea(rng),
            dst: data_reg(rng),
        },
        9 => Instr::Muls {
            src: ea(rng),
            dst: data_reg(rng),
        },
        10 => Instr::Divu {
            src: ea(rng),
            dst: data_reg(rng),
        },
        11 => Instr::Divs {
            src: ea(rng),
            dst: data_reg(rng),
        },
        12 => Instr::And {
            size: size(rng),
            src: ea(rng),
            dst: data_reg(rng),
        },
        13 => Instr::Or {
            size: size(rng),
            src: ea(rng),
            dst: data_reg(rng),
        },
        14 => Instr::Not {
            size: size(rng),
            dst: writable_ea(rng),
        },
        15 => Instr::Neg {
            size: size(rng),
            dst: writable_ea(rng),
        },
        16 => Instr::Shift {
            kind: shift_kind(rng),
            size: size(rng),
            count: if rng.gen_range(2) == 0 {
                ShiftCount::Imm(1 + rng.gen_range(8) as u8)
            } else {
                ShiftCount::Reg(data_reg(rng))
            },
            dst: data_reg(rng),
        },
        17 => Instr::Cmp {
            size: size(rng),
            src: ea(rng),
            dst: data_reg(rng),
        },
        18 => Instr::Btst {
            bit: rng.gen_range(16) as u8,
            dst: btst_ea(rng),
        },
        19 => Instr::Tst {
            size: size(rng),
            dst: writable_ea(rng),
        },
        20 => [Instr::Nop, Instr::Rts, Instr::Halt][rng.gen_range(3)],
        21 => [Instr::JmpSimd, Instr::Barrier, Instr::StartPes][rng.gen_range(3)],
        22 => Instr::SetMask {
            mask: rng.gen_u16(),
        },
        _ => Instr::Moveq {
            value: rng.gen_u16() as i8,
            dst: data_reg(rng),
        },
    }
}

#[test]
fn display_reassembles_to_the_same_instruction() {
    let mut rng = Rng::seed_from_u64(0x5a5a_1988);
    for case in 0..2048 {
        let i = roundtrippable(&mut rng);
        let text = i.to_string();
        let prog = assemble(&text)
            .unwrap_or_else(|e| panic!("case {case}: `{text}` failed to assemble: {e}"));
        assert_eq!(prog.instrs.len(), 1, "`{text}`");
        assert_eq!(prog.instrs[0], i, "`{text}`");
    }
}

#[test]
fn words_and_bounds_are_consistent() {
    let mut rng = Rng::seed_from_u64(0xb0a7_1988);
    for _ in 0..2048 {
        let i = roundtrippable(&mut rng);
        // Word count is positive for real instructions and bounded by
        // opcode + 4 extension words; static bounds are ordered.
        let w = i.words();
        assert!((1..=6).contains(&w), "{i}: {w} words");
        let b = pasm_isa::analysis::instr_bounds(&i);
        assert!(b.min <= b.max);
        assert!(b.max < 200, "{i}: implausible {b:?}");
    }
}
