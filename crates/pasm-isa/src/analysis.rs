//! Static timing analysis: best/worst-case cycle bounds and lockstep-cost
//! estimation for instruction sequences.
//!
//! The paper's subject is the gap between an instruction's *mean* execution
//! time (what an asynchronous MIMD stream pays) and the *maximum across p
//! processors* (what SIMD lockstep pays). This module quantifies that gap
//! statically for the data-dependent instructions of the ISA:
//!
//! * [`instr_bounds`] — min/max core cycles of one instruction over all data,
//! * [`block_bounds`] — bounds of a straight-line block,
//! * [`mulu_mean`], [`mulu_lockstep_mean`] — exact expected `MULU` time under
//!   uniform 16-bit multipliers, alone and under a max-of-p release rule,
//! * [`lockstep_premium`] — expected extra cycles per multiply that SIMD
//!   lockstep costs over asynchronous execution, as a function of p,
//! * [`ProgramStats`] — static instruction-mix summary of a program.

use crate::instr::{Instr, ShiftCount};
use crate::program::Program;
use crate::timing::{self, ExecCtx};

/// Inclusive min/max core-cycle bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingBounds {
    pub min: u32,
    pub max: u32,
}

impl TimingBounds {
    /// Width of the interval — the instruction's timing non-determinism.
    pub fn spread(self) -> u32 {
        self.max - self.min
    }
}

/// True if the instruction's core time depends on operand *values*.
pub fn is_data_dependent(i: &Instr) -> bool {
    matches!(
        i,
        Instr::Mulu { .. }
            | Instr::Muls { .. }
            | Instr::Divu { .. }
            | Instr::Divs { .. }
            | Instr::Shift {
                count: ShiftCount::Reg(_),
                ..
            }
    ) || matches!(i, Instr::Bcc { .. } | Instr::Dbra { .. })
}

/// Core-cycle bounds of a single instruction over all possible data.
///
/// Branches are bounded over taken/not-taken; register-count shifts over
/// counts 0–63; multiplies and divides over their documented envelopes.
pub fn instr_bounds(i: &Instr) -> TimingBounds {
    let at = |ctx: ExecCtx| timing::base_cycles(i, ctx);
    match *i {
        Instr::Mulu { .. } => TimingBounds {
            min: at(ExecCtx {
                src_value: 0,
                ..Default::default()
            }),
            max: at(ExecCtx {
                src_value: 0xFFFF,
                ..Default::default()
            }),
        },
        Instr::Muls { .. } => TimingBounds {
            min: at(ExecCtx {
                src_value: 0,
                ..Default::default()
            }),
            max: at(ExecCtx {
                src_value: 0x5555,
                ..Default::default()
            }),
        },
        Instr::Divu { .. } | Instr::Divs { .. } => TimingBounds {
            // Early-out overflow is the cheapest; an all-zero quotient the dearest.
            min: at(ExecCtx {
                src_value: 0,
                dst_value: 1,
                ..Default::default()
            }),
            max: at(ExecCtx {
                src_value: 0xFFFF,
                dst_value: 0,
                ..Default::default()
            }),
        },
        Instr::Shift {
            count: ShiftCount::Reg(_),
            ..
        } => TimingBounds {
            min: at(ExecCtx {
                shift_count: 0,
                ..Default::default()
            }),
            max: at(ExecCtx {
                shift_count: 63,
                ..Default::default()
            }),
        },
        Instr::Bcc { .. } => {
            let t = at(ExecCtx {
                branch_taken: true,
                ..Default::default()
            });
            let n = at(ExecCtx {
                branch_taken: false,
                ..Default::default()
            });
            TimingBounds {
                min: t.min(n),
                max: t.max(n),
            }
        }
        Instr::Dbra { .. } => {
            let l = at(ExecCtx {
                loop_expired: false,
                ..Default::default()
            });
            let e = at(ExecCtx {
                loop_expired: true,
                ..Default::default()
            });
            TimingBounds {
                min: l.min(e),
                max: l.max(e),
            }
        }
        _ => {
            let c = at(ExecCtx::default());
            TimingBounds { min: c, max: c }
        }
    }
}

/// Bounds of a straight-line block (no control flow inside).
pub fn block_bounds(block: &[Instr]) -> TimingBounds {
    block
        .iter()
        .map(instr_bounds)
        .fold(TimingBounds { min: 0, max: 0 }, |a, b| TimingBounds {
            min: a.min + b.min,
            max: a.max + b.max,
        })
}

/// A basic block of a program's main instruction stream: the half-open
/// instruction-index span `[start, end)` of a maximal straight-line run —
/// control enters only at `start` (a *leader*) and leaves only at the last
/// instruction (a control transfer, or the instruction before the next
/// leader).
///
/// This is the unit the `pasm-machine` block compiler folds static cycle
/// costs over: within a block, every instruction executes exactly once per
/// entry, so the static parts of [`timing::cycle_split`] sum into one
/// per-block constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockSpan {
    /// Index of the block's first instruction (a leader).
    pub start: usize,
    /// Exclusive end index.
    pub end: usize,
}

impl BlockSpan {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True for a degenerate empty span (never produced by [`basic_blocks`]).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Leader flags for an instruction stream: `true` at every index where a
/// basic block begins. Index 0, every branch target, and every instruction
/// following a control transfer (including `JSR` return points and the
/// fall-through of a conditional branch) are leaders.
pub fn block_leaders(instrs: &[Instr]) -> Vec<bool> {
    let mut leader = vec![false; instrs.len()];
    if let Some(l) = leader.first_mut() {
        *l = true;
    }
    for (i, instr) in instrs.iter().enumerate() {
        if instr.is_control_flow() {
            if let Some(t) = instr.target() {
                if t < leader.len() {
                    leader[t] = true;
                }
            }
            if i + 1 < leader.len() {
                leader[i + 1] = true;
            }
        }
    }
    leader
}

/// Partition an instruction stream into basic blocks (see [`BlockSpan`]).
///
/// The returned spans are in program order, non-empty, and tile `[0, len)`
/// exactly: every instruction belongs to exactly one block.
pub fn basic_blocks(instrs: &[Instr]) -> Vec<BlockSpan> {
    let leader = block_leaders(instrs);
    let mut blocks = Vec::new();
    let mut start = 0usize;
    for i in 0..instrs.len() {
        let last_of_block = instrs[i].is_control_flow() || i + 1 == instrs.len() || leader[i + 1];
        if last_of_block {
            blocks.push(BlockSpan { start, end: i + 1 });
            start = i + 1;
        }
    }
    blocks
}

/// Probability mass function of `popcount(U)` for `U ~ Uniform(0..2^16)`:
/// Binomial(16, ½).
fn popcount_pmf() -> [f64; 17] {
    let mut pmf = [0.0; 17];
    let mut c = 1f64;
    for (k, p) in pmf.iter_mut().enumerate() {
        *p = c / 65536.0;
        c = c * (16 - k) as f64 / (k + 1) as f64;
    }
    pmf
}

/// Expected `MULU` core time with a uniform random 16-bit multiplier: exactly
/// 38 + 2·8 = 54 cycles.
pub fn mulu_mean() -> f64 {
    let pmf = popcount_pmf();
    (0..=16)
        .map(|k| pmf[k] * timing::mulu_cycles_from_ones(k as u32) as f64)
        .sum()
}

/// Expected `MULU` time under lockstep with `p` processors drawing i.i.d.
/// uniform multipliers: `38 + 2·E[max of p Binomial(16,½)]`.
pub fn mulu_lockstep_mean(p: usize) -> f64 {
    assert!(p >= 1);
    let pmf = popcount_pmf();
    // CDF of one draw, then E[max] via P(max >= k).
    let mut cdf = [0.0f64; 17];
    let mut acc = 0.0;
    for k in 0..=16 {
        acc += pmf[k];
        cdf[k] = acc;
    }
    let mut e_max = 0.0;
    for k in 1..=16 {
        let below = cdf[k - 1];
        e_max += 1.0 - below.powi(p as i32); // P(max >= k)
    }
    38.0 + 2.0 * e_max
}

/// Expected extra cycles *per multiply* that the SIMD per-instruction barrier
/// costs over a single asynchronous stream: `mulu_lockstep_mean(p) − mulu_mean()`.
///
/// Note this is an upper bound on the *realizable* decoupling benefit: when
/// the multiplier is loop-invariant (as in the paper's inner loop) part of the
/// variance re-appears at the next coarser barrier — see the A1 ablation.
pub fn lockstep_premium(p: usize) -> f64 {
    mulu_lockstep_mean(p) - mulu_mean()
}

/// Static instruction-mix summary of a program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProgramStats {
    /// Instructions in the main stream.
    pub main_instrs: usize,
    /// Instructions across SIMD blocks.
    pub block_instrs: usize,
    /// Static count of data-dependent-time instructions (incl. blocks).
    pub variable_time_instrs: usize,
    /// Static count of multiplies/divides (incl. blocks).
    pub mul_div_instrs: usize,
    /// Static count of control-flow instructions in the main stream.
    pub control_instrs: usize,
    /// Total instruction words of the main stream.
    pub main_words: u32,
}

/// Compute the static summary.
pub fn program_stats(p: &Program) -> ProgramStats {
    let all = p.instrs.iter().chain(p.blocks.iter().flatten());
    let mut s = ProgramStats {
        main_instrs: p.instrs.len(),
        block_instrs: p.blocks.iter().map(Vec::len).sum(),
        main_words: p.words(),
        ..Default::default()
    };
    for i in all {
        if is_data_dependent(i) {
            s.variable_time_instrs += 1;
        }
        if matches!(
            i,
            Instr::Mulu { .. } | Instr::Muls { .. } | Instr::Divu { .. } | Instr::Divs { .. }
        ) {
            s.mul_div_instrs += 1;
        }
    }
    s.control_instrs = p.instrs.iter().filter(|i| i.is_control_flow()).count();
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operand::{Ea, Size};
    use crate::reg::DataReg::*;

    #[test]
    fn mulu_bounds_span_the_envelope() {
        let b = instr_bounds(&Instr::Mulu {
            src: Ea::D(D1),
            dst: D0,
        });
        assert_eq!(b, TimingBounds { min: 38, max: 70 });
        assert_eq!(b.spread(), 32);
    }

    #[test]
    fn divu_bounds_cover_early_out_and_worst_case() {
        let b = instr_bounds(&Instr::Divu {
            src: Ea::D(D1),
            dst: D0,
        });
        assert_eq!(b.min, 10);
        assert_eq!(b.max, 76 + 4 * 16);
    }

    #[test]
    fn fixed_instructions_have_zero_spread() {
        let b = instr_bounds(&Instr::Moveq { value: 1, dst: D0 });
        assert_eq!(b.spread(), 0);
        assert_eq!(b.min, 4);
    }

    #[test]
    fn branch_bounds() {
        let b = instr_bounds(&Instr::Bcc {
            cond: crate::Cond::Ne,
            target: 0,
        });
        assert_eq!(b, TimingBounds { min: 10, max: 12 });
        let b = instr_bounds(&Instr::Dbra { dst: D0, target: 0 });
        assert_eq!(b, TimingBounds { min: 10, max: 14 });
    }

    #[test]
    fn block_bounds_add_up() {
        let blk = [
            Instr::Move {
                size: Size::Word,
                src: Ea::D(D1),
                dst: Ea::D(D0),
            }, // 4
            Instr::Mulu {
                src: Ea::D(D1),
                dst: D0,
            }, // 38..70
        ];
        assert_eq!(block_bounds(&blk), TimingBounds { min: 42, max: 74 });
    }

    #[test]
    fn mulu_mean_is_54() {
        assert!((mulu_mean() - 54.0).abs() < 1e-9);
    }

    #[test]
    fn lockstep_mean_grows_with_p_and_is_bounded() {
        assert!((mulu_lockstep_mean(1) - 54.0).abs() < 1e-9);
        let mut prev = 54.0;
        for p in [2usize, 4, 8, 16, 64] {
            let m = mulu_lockstep_mean(p);
            assert!(m > prev, "p={p}");
            assert!(m < 70.0);
            prev = m;
        }
        // For p=4 the premium is ≈ 2·2.0 ± 0.5 cycles (max of 4 binomials).
        let prem = lockstep_premium(4);
        assert!((3.0..6.0).contains(&prem), "premium {prem}");
    }

    #[test]
    fn data_dependence_classifier() {
        assert!(is_data_dependent(&Instr::Mulu {
            src: Ea::D(D1),
            dst: D0
        }));
        assert!(is_data_dependent(&Instr::Divs {
            src: Ea::D(D1),
            dst: D0
        }));
        assert!(!is_data_dependent(&Instr::Nop));
        assert!(!is_data_dependent(&Instr::Shift {
            kind: crate::ShiftKind::Lsl,
            size: Size::Word,
            count: ShiftCount::Imm(4),
            dst: D0,
        }));
        assert!(is_data_dependent(&Instr::Shift {
            kind: crate::ShiftKind::Lsl,
            size: Size::Word,
            count: ShiftCount::Reg(D1),
            dst: D0,
        }));
    }

    #[test]
    fn basic_blocks_of_a_loop() {
        // 0: MOVEQ          \ block [0,2): falls into the loop head
        // 1: MOVEQ          /
        // 2: ADD            \ block [2,4): loop body, ends at the DBRA
        // 3: DBRA -> 2      /
        // 4: NOP            \ block [4,6): DBRA fall-through, ends at HALT
        // 5: HALT           /
        let instrs = [
            Instr::Moveq { value: 0, dst: D0 },
            Instr::Moveq { value: 7, dst: D1 },
            Instr::Add {
                size: Size::Word,
                src: Ea::D(D1),
                dst: D0,
            },
            Instr::Dbra { dst: D1, target: 2 },
            Instr::Nop,
            Instr::Halt,
        ];
        let blocks = basic_blocks(&instrs);
        assert_eq!(
            blocks,
            vec![
                BlockSpan { start: 0, end: 2 },
                BlockSpan { start: 2, end: 4 },
                BlockSpan { start: 4, end: 6 },
            ]
        );
        for b in &blocks {
            assert!(!b.is_empty());
        }
        assert_eq!(blocks[1].len(), 2);
    }

    #[test]
    fn basic_blocks_tile_the_stream_exactly() {
        // A branch target mid-stream splits the fall-through block.
        let instrs = [
            Instr::Nop,
            Instr::Bcc {
                cond: crate::Cond::Eq,
                target: 3,
            },
            Instr::Nop, // leader: Bcc fall-through
            Instr::Nop, // leader: Bcc target
            Instr::Halt,
        ];
        let blocks = basic_blocks(&instrs);
        assert_eq!(
            blocks,
            vec![
                BlockSpan { start: 0, end: 2 },
                BlockSpan { start: 2, end: 3 },
                BlockSpan { start: 3, end: 5 },
            ]
        );
        // Tiling invariant: consecutive, non-empty, covering [0, len).
        let mut next = 0;
        for b in &blocks {
            assert_eq!(b.start, next);
            assert!(b.end > b.start);
            next = b.end;
        }
        assert_eq!(next, instrs.len());
        // Interior instructions are never control flow and never leaders.
        let leaders = block_leaders(&instrs);
        for b in &blocks {
            for i in b.start..b.end - 1 {
                assert!(!instrs[i].is_control_flow());
                if i > b.start {
                    assert!(!leaders[i]);
                }
            }
        }
    }

    #[test]
    fn basic_blocks_of_empty_and_straight_line_streams() {
        assert!(basic_blocks(&[]).is_empty());
        let instrs = [Instr::Nop, Instr::Nop, Instr::Nop];
        assert_eq!(basic_blocks(&instrs), vec![BlockSpan { start: 0, end: 3 }]);
    }

    #[test]
    fn stats_of_a_small_program() {
        let p = crate::asm::assemble(
            "
            t:  MULU D1,D0
                DIVU D2,D0
                LSR.W #1,D0
                DBRA D7,t
                HALT
            ",
        )
        .unwrap();
        let s = program_stats(&p);
        assert_eq!(s.main_instrs, 5);
        assert_eq!(s.mul_div_instrs, 2);
        assert_eq!(s.variable_time_instrs, 3); // MULU, DIVU, DBRA
        assert_eq!(s.control_instrs, 2); // DBRA, HALT
        assert!(s.main_words >= 5);
    }
}
