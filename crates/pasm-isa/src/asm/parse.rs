//! Parser internals of the text assembler.

use crate::instr::{Cond, Instr, ShiftCount, ShiftKind};
use crate::operand::{Ea, Size};
use crate::program::{Program, ProgramBuilder};
use crate::reg::{AddrReg, DataReg};
use std::collections::HashMap;
use std::fmt;

/// Assembly error with a 1-based source line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

/// Assemble source text into a [`Program`].
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    let mut b = ProgramBuilder::new();
    let mut labels: HashMap<String, crate::program::Label> = HashMap::new();
    let mut in_block = false;

    let mut get_label = |b: &mut ProgramBuilder, name: &str| {
        labels
            .entry(name.to_string())
            .or_insert_with(|| b.new_label(name))
            .to_owned()
    };

    for (lineno, raw) in src.lines().enumerate() {
        let lineno = lineno + 1;
        let line = match raw.find(';') {
            Some(i) => &raw[..i],
            None => raw,
        };
        let mut rest = line.trim();
        if rest.is_empty() {
            continue;
        }

        // Leading label(s): `name:`.
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let name = head.trim();
            if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                break;
            }
            if in_block {
                return err(lineno, "labels are not allowed inside .block");
            }
            let l = get_label(&mut b, name);
            b.bind(l);
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }

        // Directives.
        if rest.eq_ignore_ascii_case(".block") {
            if in_block {
                return err(lineno, ".block cannot nest");
            }
            b.begin_block();
            in_block = true;
            continue;
        }
        if rest.eq_ignore_ascii_case(".endblock") {
            if !in_block {
                return err(lineno, ".endblock without .block");
            }
            b.end_block();
            in_block = false;
            continue;
        }

        parse_instr(&mut b, &mut get_label, rest, lineno)?;
    }

    if in_block {
        return err(src.lines().count(), "unterminated .block");
    }
    b.build().map_err(|e| AsmError {
        line: 0,
        message: e.to_string(),
    })
}

/// Split a mnemonic into (opcode, optional size suffix).
fn split_mnemonic(m: &str) -> (String, Option<Size>) {
    let upper = m.to_ascii_uppercase();
    if let Some(stem) = upper.strip_suffix(".B") {
        (stem.to_string(), Some(Size::Byte))
    } else if let Some(stem) = upper.strip_suffix(".W") {
        (stem.to_string(), Some(Size::Word))
    } else if let Some(stem) = upper.strip_suffix(".L") {
        (stem.to_string(), Some(Size::Long))
    } else {
        (upper, None)
    }
}

fn parse_number(s: &str, line: usize) -> Result<i64, AsmError> {
    let s = s.trim();
    let (neg, s) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = s.strip_prefix('$') {
        i64::from_str_radix(hex, 16)
    } else if let Some(bin) = s.strip_prefix('%') {
        i64::from_str_radix(bin, 2)
    } else {
        s.parse::<i64>()
    };
    match v {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => err(line, format!("bad number `{s}`")),
    }
}

fn parse_data_reg(s: &str) -> Option<DataReg> {
    let s = s.trim();
    let rest = s.strip_prefix('D').or_else(|| s.strip_prefix('d'))?;
    let n: usize = rest.parse().ok()?;
    DataReg::from_index(n)
}

fn parse_addr_reg(s: &str) -> Option<AddrReg> {
    let s = s.trim();
    if s.eq_ignore_ascii_case("SP") {
        return Some(AddrReg::A7);
    }
    let rest = s.strip_prefix('A').or_else(|| s.strip_prefix('a'))?;
    let n: usize = rest.parse().ok()?;
    AddrReg::from_index(n)
}

fn parse_ea(s: &str, line: usize) -> Result<Ea, AsmError> {
    let s = s.trim();
    if let Some(d) = parse_data_reg(s) {
        return Ok(Ea::D(d));
    }
    if let Some(a) = parse_addr_reg(s) {
        return Ok(Ea::A(a));
    }
    if let Some(imm) = s.strip_prefix('#') {
        let v = parse_number(imm, line)?;
        return Ok(Ea::Imm(v as u32));
    }
    if let Some(body) = s.strip_prefix("-(") {
        let body = body
            .strip_suffix(')')
            .ok_or(())
            .or_else(|_| err::<&str>(line, format!("bad operand `{s}`")))?;
        let a = parse_addr_reg(body)
            .ok_or(())
            .or_else(|_| err::<AddrReg>(line, format!("bad register in `{s}`")))?;
        return Ok(Ea::PreDec(a));
    }
    if let Some(stripped) = s.strip_suffix('+') {
        if let Some(body) = stripped.strip_prefix('(').and_then(|b| b.strip_suffix(')')) {
            let a = parse_addr_reg(body)
                .ok_or(())
                .or_else(|_| err::<AddrReg>(line, format!("bad register in `{s}`")))?;
            return Ok(Ea::PostInc(a));
        }
    }
    if let Some(open) = s.find('(') {
        if s.ends_with(')') {
            let disp_str = &s[..open];
            let reg_str = &s[open + 1..s.len() - 1];
            let a = parse_addr_reg(reg_str)
                .ok_or(())
                .or_else(|_| err::<AddrReg>(line, format!("bad register in `{s}`")))?;
            if disp_str.trim().is_empty() {
                return Ok(Ea::Ind(a));
            }
            let d = parse_number(disp_str, line)?;
            if d < i16::MIN as i64 || d > i16::MAX as i64 {
                return err(line, format!("displacement out of range in `{s}`"));
            }
            return Ok(Ea::Disp(d as i16, a));
        }
    }
    // Absolute: `$addr.W` / `$addr.L` (or bare number => abs.W).
    let (body, long) = if let Some(b) = s.strip_suffix(".L").or_else(|| s.strip_suffix(".l")) {
        (b, true)
    } else if let Some(b) = s.strip_suffix(".W").or_else(|| s.strip_suffix(".w")) {
        (b, false)
    } else {
        (s, false)
    };
    if body.starts_with('$') || body.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        let v = parse_number(body, line)?;
        return if long {
            Ok(Ea::AbsL(v as u32))
        } else if (0..=0xFFFF).contains(&v) {
            Ok(Ea::AbsW(v as u16))
        } else {
            err(
                line,
                format!("absolute short address out of range in `{s}`"),
            )
        };
    }
    err(line, format!("unrecognized operand `{s}`"))
}

/// Split the operand field on top-level commas (commas inside parens stay).
fn split_operands(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = s[start..].trim();
    if !last.is_empty() {
        out.push(last);
    }
    out
}

fn cond_from_mnemonic(m: &str) -> Option<Cond> {
    Some(match m {
        "BRA" => Cond::True,
        "BNE" => Cond::Ne,
        "BEQ" => Cond::Eq,
        "BCC" | "BHS" => Cond::Cc,
        "BCS" | "BLO" => Cond::Cs,
        "BPL" => Cond::Pl,
        "BMI" => Cond::Mi,
        "BGE" => Cond::Ge,
        "BGT" => Cond::Gt,
        "BLE" => Cond::Le,
        "BLT" => Cond::Lt,
        "BHI" => Cond::Hi,
        "BLS" => Cond::Ls,
        "BVC" => Cond::Vc,
        "BVS" => Cond::Vs,
        _ => return None,
    })
}

fn parse_instr(
    b: &mut ProgramBuilder,
    get_label: &mut impl FnMut(&mut ProgramBuilder, &str) -> crate::program::Label,
    text: &str,
    line: usize,
) -> Result<(), AsmError> {
    let (mnemonic, operands) = match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], text[i..].trim()),
        None => (text, ""),
    };
    let (op, size) = split_mnemonic(mnemonic);
    let sz = size.unwrap_or(Size::Word);
    let ops = split_operands(operands);

    let need = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            err(
                line,
                format!("{op} expects {n} operand(s), got {}", ops.len()),
            )
        }
    };

    // Branch family first (label operand).
    if let Some(cond) = cond_from_mnemonic(&op) {
        need(1)?;
        let l = get_label(b, ops[0]);
        b.branch(Instr::Bcc { cond, target: 0 }, l);
        return Ok(());
    }

    match op.as_str() {
        "MOVE" => {
            need(2)?;
            let src = parse_ea(ops[0], line)?;
            let dst = parse_ea(ops[1], line)?;
            match dst {
                Ea::A(a) => b.emit(Instr::Movea {
                    size: sz,
                    src,
                    dst: a,
                }),
                _ if !dst.is_writable() => return err(line, "MOVE destination not writable"),
                _ => b.emit(Instr::Move { size: sz, src, dst }),
            }
        }
        "MOVEA" => {
            need(2)?;
            let src = parse_ea(ops[0], line)?;
            let Some(a) = parse_addr_reg(ops[1]) else {
                return err(line, "MOVEA destination must be An");
            };
            b.emit(Instr::Movea {
                size: sz,
                src,
                dst: a,
            });
        }
        "MOVEQ" => {
            need(2)?;
            let Ea::Imm(v) = parse_ea(ops[0], line)? else {
                return err(line, "MOVEQ source must be immediate");
            };
            let Some(d) = parse_data_reg(ops[1]) else {
                return err(line, "MOVEQ destination must be Dn");
            };
            b.emit(Instr::Moveq {
                value: v as i8,
                dst: d,
            });
        }
        "LEA" => {
            need(2)?;
            let src = parse_ea(ops[0], line)?;
            let Some(a) = parse_addr_reg(ops[1]) else {
                return err(line, "LEA destination must be An");
            };
            b.emit(Instr::Lea { src, dst: a });
        }
        "CLR" => {
            need(1)?;
            b.emit(Instr::Clr {
                size: sz,
                dst: parse_ea(ops[0], line)?,
            });
        }
        "SWAP" => {
            need(1)?;
            let Some(d) = parse_data_reg(ops[0]) else {
                return err(line, "SWAP operand must be Dn");
            };
            b.emit(Instr::Swap { dst: d });
        }
        "EXT" => {
            need(1)?;
            let Some(d) = parse_data_reg(ops[0]) else {
                return err(line, "EXT operand must be Dn");
            };
            b.emit(Instr::Ext { size: sz, dst: d });
        }
        "ADD" | "SUB" | "AND" | "OR" | "EOR" => {
            need(2)?;
            let src = parse_ea(ops[0], line)?;
            let dst = parse_ea(ops[1], line)?;
            match (src, dst, op.as_str()) {
                (_, Ea::D(d), "ADD") => b.emit(Instr::Add {
                    size: sz,
                    src,
                    dst: d,
                }),
                (_, Ea::D(d), "SUB") => b.emit(Instr::Sub {
                    size: sz,
                    src,
                    dst: d,
                }),
                (_, Ea::D(d), "AND") => b.emit(Instr::And {
                    size: sz,
                    src,
                    dst: d,
                }),
                (_, Ea::D(d), "OR") => b.emit(Instr::Or {
                    size: sz,
                    src,
                    dst: d,
                }),
                (Ea::D(s), _, "ADD") => b.emit(Instr::AddTo {
                    size: sz,
                    src: s,
                    dst,
                }),
                (Ea::D(s), _, "SUB") => b.emit(Instr::SubTo {
                    size: sz,
                    src: s,
                    dst,
                }),
                (Ea::D(s), _, "OR") => b.emit(Instr::OrTo {
                    size: sz,
                    src: s,
                    dst,
                }),
                (Ea::D(s), _, "EOR") => b.emit(Instr::Eor {
                    size: sz,
                    src: s,
                    dst,
                }),
                _ => return err(line, format!("{op}: one operand must be a data register")),
            }
        }
        "ADDA" | "SUBA" | "CMPA" => {
            need(2)?;
            let src = parse_ea(ops[0], line)?;
            let Some(a) = parse_addr_reg(ops[1]) else {
                return err(line, format!("{op} destination must be An"));
            };
            // ADDA defaults to word on the 68000 assembler when unsuffixed; we
            // keep the explicit/default-word convention for all three.
            match op.as_str() {
                "ADDA" => b.emit(Instr::Adda {
                    size: sz,
                    src,
                    dst: a,
                }),
                "SUBA" => b.emit(Instr::Suba {
                    size: sz,
                    src,
                    dst: a,
                }),
                _ => b.emit(Instr::Cmpa {
                    size: sz,
                    src,
                    dst: a,
                }),
            }
        }
        "ADDQ" | "SUBQ" => {
            need(2)?;
            let Ea::Imm(v) = parse_ea(ops[0], line)? else {
                return err(line, format!("{op} source must be #1-8"));
            };
            if !(1..=8).contains(&v) {
                return err(line, format!("{op} immediate must be 1-8"));
            }
            let dst = parse_ea(ops[1], line)?;
            if op == "ADDQ" {
                b.emit(Instr::Addq {
                    size: sz,
                    value: v as u8,
                    dst,
                });
            } else {
                b.emit(Instr::Subq {
                    size: sz,
                    value: v as u8,
                    dst,
                });
            }
        }
        "NEG" => {
            need(1)?;
            b.emit(Instr::Neg {
                size: sz,
                dst: parse_ea(ops[0], line)?,
            });
        }
        "NOT" => {
            need(1)?;
            b.emit(Instr::Not {
                size: sz,
                dst: parse_ea(ops[0], line)?,
            });
        }
        "MULU" | "MULS" | "DIVU" | "DIVS" => {
            need(2)?;
            let src = parse_ea(ops[0], line)?;
            let Some(d) = parse_data_reg(ops[1]) else {
                return err(line, format!("{op} destination must be Dn"));
            };
            b.emit(match op.as_str() {
                "MULU" => Instr::Mulu { src, dst: d },
                "MULS" => Instr::Muls { src, dst: d },
                "DIVU" => Instr::Divu { src, dst: d },
                _ => Instr::Divs { src, dst: d },
            });
        }
        "BTST" => {
            need(2)?;
            let Ea::Imm(v) = parse_ea(ops[0], line)? else {
                return err(line, "BTST bit number must be immediate");
            };
            b.emit(Instr::Btst {
                bit: v as u8,
                dst: parse_ea(ops[1], line)?,
            });
        }
        "LSL" | "LSR" | "ASL" | "ASR" | "ROL" | "ROR" => {
            need(2)?;
            let kind = match op.as_str() {
                "LSL" => ShiftKind::Lsl,
                "LSR" => ShiftKind::Lsr,
                "ASL" => ShiftKind::Asl,
                "ROL" => ShiftKind::Rol,
                "ROR" => ShiftKind::Ror,
                _ => ShiftKind::Asr,
            };
            let count = match parse_ea(ops[0], line)? {
                Ea::Imm(v) if (1..=8).contains(&v) => ShiftCount::Imm(v as u8),
                Ea::Imm(_) => return err(line, "shift immediate must be 1-8"),
                Ea::D(d) => ShiftCount::Reg(d),
                _ => return err(line, "shift count must be #imm or Dn"),
            };
            let Some(d) = parse_data_reg(ops[1]) else {
                return err(line, "shift destination must be Dn");
            };
            b.emit(Instr::Shift {
                kind,
                size: sz,
                count,
                dst: d,
            });
        }
        "CMP" => {
            need(2)?;
            let src = parse_ea(ops[0], line)?;
            match parse_ea(ops[1], line)? {
                Ea::D(d) => b.emit(Instr::Cmp {
                    size: sz,
                    src,
                    dst: d,
                }),
                Ea::A(a) => b.emit(Instr::Cmpa {
                    size: sz,
                    src,
                    dst: a,
                }),
                _ => return err(line, "CMP destination must be a register"),
            }
        }
        "CMPI" => {
            need(2)?;
            let Ea::Imm(v) = parse_ea(ops[0], line)? else {
                return err(line, "CMPI source must be immediate");
            };
            b.emit(Instr::Cmpi {
                size: sz,
                value: v,
                dst: parse_ea(ops[1], line)?,
            });
        }
        "TST" => {
            need(1)?;
            b.emit(Instr::Tst {
                size: sz,
                dst: parse_ea(ops[0], line)?,
            });
        }
        "DBRA" | "DBF" => {
            need(2)?;
            let Some(d) = parse_data_reg(ops[0]) else {
                return err(line, "DBRA counter must be Dn");
            };
            let l = get_label(b, ops[1]);
            b.branch(Instr::Dbra { dst: d, target: 0 }, l);
        }
        "JMP" => {
            need(1)?;
            let l = get_label(b, ops[0]);
            b.branch(Instr::Jmp { target: 0 }, l);
        }
        "JSR" => {
            need(1)?;
            let l = get_label(b, ops[0]);
            b.branch(Instr::Jsr { target: 0 }, l);
        }
        "RTS" => {
            need(0)?;
            b.emit(Instr::Rts);
        }
        "NOP" => {
            need(0)?;
            b.emit(Instr::Nop);
        }
        "JMPSIMD" => {
            need(0)?;
            b.emit(Instr::JmpSimd);
        }
        "JMPMIMD" => {
            need(1)?;
            let l = get_label(b, ops[0]);
            b.branch(Instr::JmpMimd { target: 0 }, l);
        }
        "BARRIER" => {
            need(0)?;
            b.emit(Instr::Barrier);
        }
        "SETMASK" => {
            need(1)?;
            let Ea::Imm(v) = parse_ea(ops[0], line)? else {
                return err(line, "SETMASK operand must be immediate");
            };
            b.emit(Instr::SetMask { mask: v as u16 });
        }
        "ENQUEUE" => {
            need(1)?;
            let Ea::Imm(v) = parse_ea(ops[0], line)? else {
                return err(line, "ENQUEUE operand must be immediate");
            };
            b.emit(Instr::Enqueue { block: v as u16 });
        }
        "ENQWORDS" => {
            need(1)?;
            let Ea::Imm(v) = parse_ea(ops[0], line)? else {
                return err(line, "ENQWORDS operand must be immediate");
            };
            b.emit(Instr::EnqueueWords { count: v as u16 });
        }
        "STARTPES" => {
            need(0)?;
            b.emit(Instr::StartPes);
        }
        "MARKB" | "MARKE" => {
            need(1)?;
            let Ea::Imm(v) = parse_ea(ops[0], line)? else {
                return err(line, "MARK operand must be immediate");
            };
            b.emit(Instr::Mark {
                begin: op == "MARKB",
                phase: v as u8,
            });
        }
        "HALT" => {
            need(0)?;
            b.emit(Instr::Halt);
        }
        other => return err(line, format!("unknown mnemonic `{other}`")),
    }
    Ok(())
}
