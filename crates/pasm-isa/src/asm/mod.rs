//! A small two-pass text assembler for the reduced instruction set.
//!
//! The experiment programs are generated programmatically (see `pasm-prog`),
//! but a textual form is invaluable for tests, examples, and exploration:
//!
//! ```
//! let src = "
//!     ; sum 10 words starting at (A0) into D0
//!         MOVEQ   #0,D0
//!         MOVEQ   #9,D1
//! loop:   ADD.W   (A0)+,D0
//!         DBRA    D1,loop
//!         HALT
//! ";
//! let prog = pasm_isa::asm::assemble(src).unwrap();
//! assert_eq!(prog.instrs.len(), 5);
//! assert_eq!(prog.symbols["loop"], 2);
//! ```
//!
//! ## Syntax
//!
//! * one instruction per line; `;` starts a comment,
//! * labels are `name:` (alone or before an instruction on the same line),
//! * size suffixes `.B`, `.W`, `.L` (default `.W`),
//! * operands: `Dn`, `An`, `(An)`, `(An)+`, `-(An)`, `d(An)`, `$addr.W`,
//!   `$addr.L`, `#imm` (decimal, `$hex`, or `%binary`),
//! * SIMD blocks are bracketed by `.block`/`.endblock`; `ENQUEUE #n` refers to
//!   the n-th block in order of appearance,
//! * PASM ops: `JMPSIMD`, `JMPMIMD label`, `BARRIER`, `SETMASK #m`,
//!   `ENQUEUE #b`, `ENQWORDS #n`, `STARTPES`, `MARKB #p`, `MARKE #p`, `HALT`.

mod parse;

pub use parse::{assemble, AsmError};

use crate::program::Program;

/// Disassemble a program back to assembler-like text (one instruction per
/// line, numeric branch targets, blocks appended). The output is accepted by
/// [`assemble`] only up to label naming; it is intended for inspection.
pub fn disassemble(p: &Program) -> String {
    p.listing()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Cond, Instr};
    use crate::operand::{Ea, Size};
    use crate::reg::{AddrReg::*, DataReg::*};

    #[test]
    fn assembles_basic_program() {
        let p = assemble(
            "
            start:  MOVE.W  #42,D0
                    MOVE.W  D0,(A0)+
                    BRA     start
            ",
        )
        .unwrap();
        assert_eq!(
            p.instrs[0],
            Instr::Move {
                size: Size::Word,
                src: Ea::Imm(42),
                dst: Ea::D(D0)
            }
        );
        assert_eq!(
            p.instrs[1],
            Instr::Move {
                size: Size::Word,
                src: Ea::D(D0),
                dst: Ea::PostInc(A0)
            }
        );
        assert_eq!(
            p.instrs[2],
            Instr::Bcc {
                cond: Cond::True,
                target: 0
            }
        );
    }

    #[test]
    fn assembles_addressing_modes() {
        let p = assemble(
            "
            MOVE.B  -(A1),D1
            MOVE.L  8(A2),D2
            MOVE.W  -6(A3),D3
            MOVE.W  $1F00.W,D4
            MOVE.W  $00FF0000.L,D5
            MOVE.W  #$FF,D6
            MOVE.W  #%1010,D7
            ",
        )
        .unwrap();
        assert_eq!(
            p.instrs[0],
            Instr::Move {
                size: Size::Byte,
                src: Ea::PreDec(A1),
                dst: Ea::D(D1)
            }
        );
        assert_eq!(
            p.instrs[1],
            Instr::Move {
                size: Size::Long,
                src: Ea::Disp(8, A2),
                dst: Ea::D(D2)
            }
        );
        assert_eq!(
            p.instrs[2],
            Instr::Move {
                size: Size::Word,
                src: Ea::Disp(-6, A3),
                dst: Ea::D(D3)
            }
        );
        assert_eq!(
            p.instrs[3],
            Instr::Move {
                size: Size::Word,
                src: Ea::AbsW(0x1F00),
                dst: Ea::D(D4)
            }
        );
        assert_eq!(
            p.instrs[4],
            Instr::Move {
                size: Size::Word,
                src: Ea::AbsL(0xFF0000),
                dst: Ea::D(D5)
            }
        );
        assert_eq!(
            p.instrs[5],
            Instr::Move {
                size: Size::Word,
                src: Ea::Imm(0xFF),
                dst: Ea::D(D6)
            }
        );
        assert_eq!(
            p.instrs[6],
            Instr::Move {
                size: Size::Word,
                src: Ea::Imm(0b1010),
                dst: Ea::D(D7)
            }
        );
    }

    #[test]
    fn assembles_arith_and_mul() {
        let p = assemble(
            "
            ADD.W   (A0)+,D0
            ADD.W   D0,(A1)
            ADDA.L  D1,A2
            ADDQ.W  #4,D3
            SUBQ.L  #1,A4
            MULU    D1,D0
            MULS    (A0),D2
            LSR.W   #8,D4
            LSL.L   D5,D6
            SWAP    D7
            ",
        )
        .unwrap();
        assert_eq!(
            p.instrs[0],
            Instr::Add {
                size: Size::Word,
                src: Ea::PostInc(A0),
                dst: D0
            }
        );
        assert_eq!(
            p.instrs[1],
            Instr::AddTo {
                size: Size::Word,
                src: D0,
                dst: Ea::Ind(A1)
            }
        );
        assert_eq!(
            p.instrs[2],
            Instr::Adda {
                size: Size::Long,
                src: Ea::D(D1),
                dst: A2
            }
        );
        assert_eq!(
            p.instrs[3],
            Instr::Addq {
                size: Size::Word,
                value: 4,
                dst: Ea::D(D3)
            }
        );
        assert_eq!(
            p.instrs[4],
            Instr::Subq {
                size: Size::Long,
                value: 1,
                dst: Ea::A(A4)
            }
        );
        assert_eq!(
            p.instrs[5],
            Instr::Mulu {
                src: Ea::D(D1),
                dst: D0
            }
        );
        assert_eq!(
            p.instrs[6],
            Instr::Muls {
                src: Ea::Ind(A0),
                dst: D2
            }
        );
        assert!(matches!(p.instrs[7], Instr::Shift { .. }));
        assert!(matches!(p.instrs[8], Instr::Shift { .. }));
        assert_eq!(p.instrs[9], Instr::Swap { dst: D7 });
    }

    #[test]
    fn assembles_blocks_and_pasm_ops() {
        let p = assemble(
            "
                    SETMASK #$000F
            .block
                    NOP
                    JMPMIMD done
            .endblock
                    ENQUEUE #0
                    ENQWORDS #16
                    STARTPES
            done:   HALT
            ",
        )
        .unwrap();
        assert_eq!(p.blocks.len(), 1);
        assert_eq!(p.blocks[0][0], Instr::Nop);
        assert_eq!(p.blocks[0][1].target(), Some(4)); // `done` follows STARTPES
        assert_eq!(p.instrs[0], Instr::SetMask { mask: 0x000F });
        assert_eq!(p.instrs[1], Instr::Enqueue { block: 0 });
        assert_eq!(p.instrs[2], Instr::EnqueueWords { count: 16 });
        assert_eq!(p.instrs[3], Instr::StartPes);
    }

    #[test]
    fn errors_are_reported_with_line_numbers() {
        let err = assemble("  BOGUS D0\n").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        let err = assemble("\n MOVE.W D9,D0\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = assemble(" BRA nowhere\n").unwrap_err();
        assert!(err.to_string().contains("nowhere"), "{err}");
    }

    #[test]
    fn roundtrip_display_of_each_parsed_instruction() {
        // Every parsed instruction must render through Display without panicking.
        let p = assemble(
            "
            x:  MOVEQ #-3,D0
                CLR.W (A0)
                NOT.W D1
                NEG.B D2
                EXT.L D3
                CMP.W (A0)+,D4
                CMPA.L A1,A2
                CMPI.W #7,D5
                TST.W (A6)
                BNE x
                BEQ x
                BGT x
                JSR x
                RTS
                NOP
                JMPSIMD
                BARRIER
                MARKB #1
                MARKE #1
                HALT
            ",
        )
        .unwrap();
        for i in &p.instrs {
            let _ = i.to_string();
        }
        assert_eq!(p.instrs.len(), 20);
    }
}
