//! The instruction enumeration: a reduced MC68000 subset plus the handful of
//! PASM-specific operations that on the real prototype were memory-mapped
//! register writes or jumps to reserved address spaces.
//!
//! Branch targets are *instruction indices* into a [`crate::Program`], resolved
//! from labels by [`crate::ProgramBuilder`]. The simulator's program counter is
//! an instruction index, not a byte address; byte-level instruction length is
//! still tracked via [`Instr::words`] because the number of instruction words
//! determines how many bus fetch cycles an instruction needs (and therefore how
//! much the slower PE DRAM hurts MIMD mode relative to the Fetch Unit's static
//! RAM queue in SIMD mode — a key effect in the paper).

use crate::operand::{Ea, Size};
use crate::reg::{AddrReg, Ccr, DataReg};
use std::fmt;

/// Branch condition codes for `Bcc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Always (i.e. `BRA`).
    True,
    /// Not equal (`Z` clear).
    Ne,
    /// Equal (`Z` set).
    Eq,
    /// Carry clear (unsigned higher-or-same).
    Cc,
    /// Carry set (unsigned lower).
    Cs,
    /// Plus (`N` clear).
    Pl,
    /// Minus (`N` set).
    Mi,
    /// Greater or equal (signed).
    Ge,
    /// Greater than (signed).
    Gt,
    /// Less or equal (signed).
    Le,
    /// Less than (signed).
    Lt,
    /// Unsigned higher.
    Hi,
    /// Unsigned lower or same.
    Ls,
    /// Overflow clear.
    Vc,
    /// Overflow set.
    Vs,
}

impl Cond {
    /// Evaluate the condition against a condition-code register.
    pub fn eval(self, ccr: Ccr) -> bool {
        let Ccr { n, z, v, c, .. } = ccr;
        match self {
            Cond::True => true,
            Cond::Ne => !z,
            Cond::Eq => z,
            Cond::Cc => !c,
            Cond::Cs => c,
            Cond::Pl => !n,
            Cond::Mi => n,
            Cond::Ge => n == v,
            Cond::Gt => !z && n == v,
            Cond::Le => z || n != v,
            Cond::Lt => n != v,
            Cond::Hi => !c && !z,
            Cond::Ls => c || z,
            Cond::Vc => !v,
            Cond::Vs => v,
        }
    }

    /// Assembler mnemonic suffix.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::True => "RA",
            Cond::Ne => "NE",
            Cond::Eq => "EQ",
            Cond::Cc => "CC",
            Cond::Cs => "CS",
            Cond::Pl => "PL",
            Cond::Mi => "MI",
            Cond::Ge => "GE",
            Cond::Gt => "GT",
            Cond::Le => "LE",
            Cond::Lt => "LT",
            Cond::Hi => "HI",
            Cond::Ls => "LS",
            Cond::Vc => "VC",
            Cond::Vs => "VS",
        }
    }
}

/// Shift direction/kind for the shift/rotate group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftKind {
    /// Logical shift left.
    Lsl,
    /// Logical shift right.
    Lsr,
    /// Arithmetic shift left (same bit motion as LSL, different `V` semantics).
    Asl,
    /// Arithmetic shift right (sign-propagating).
    Asr,
    /// Rotate left (bits wrap around; carry = last bit rotated out).
    Rol,
    /// Rotate right.
    Ror,
}

impl ShiftKind {
    pub fn mnemonic(self) -> &'static str {
        match self {
            ShiftKind::Lsl => "LSL",
            ShiftKind::Lsr => "LSR",
            ShiftKind::Asl => "ASL",
            ShiftKind::Asr => "ASR",
            ShiftKind::Rol => "ROL",
            ShiftKind::Ror => "ROR",
        }
    }
}

/// Shift count: a 3-bit immediate (1–8, as in the 68000 quick form) or a data
/// register whose value modulo 64 is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftCount {
    Imm(u8),
    Reg(DataReg),
}

impl fmt::Display for ShiftCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShiftCount::Imm(n) => write!(f, "#{n}"),
            ShiftCount::Reg(d) => write!(f, "{d}"),
        }
    }
}

/// A single instruction of the reduced PASM/MC68000 instruction set.
///
/// The final group (`JmpSimd` onward) are PASM-prototype operations. On the real
/// machine these are ordinary 68000 instructions hitting reserved address spaces
/// or Fetch Unit registers; they are modeled as dedicated variants so the
/// machine simulator can implement their interaction semantics directly:
///
/// * [`Instr::JmpSimd`] — a jump into the reserved *SIMD instruction space*;
///   the PE's instruction requests are served by its MC's Fetch Unit queue from
///   then on (MIMD → SIMD switch, paper §3).
/// * [`Instr::JmpMimd`] — broadcast through the queue; returns the PE to
///   fetching from its own memory at the given instruction index (SIMD → MIMD).
/// * [`Instr::Barrier`] — a read from SIMD space used as the paper's barrier
///   synchronization trick: it completes only when every enabled PE of the
///   virtual machine has issued its read (paper §3, used by the S/MIMD version).
/// * [`Instr::SetMask`], [`Instr::Enqueue`], [`Instr::EnqueueWords`],
///   [`Instr::StartPes`] — MC-side Fetch-Unit and orchestration operations.
/// * [`Instr::Mark`] — zero-cost instrumentation delimiting the measured phases
///   (multiplication / communication / other) used for the Fig. 8–10 breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    // --- data movement ---
    Move {
        size: Size,
        src: Ea,
        dst: Ea,
    },
    Movea {
        size: Size,
        src: Ea,
        dst: AddrReg,
    },
    Moveq {
        value: i8,
        dst: DataReg,
    },
    Lea {
        src: Ea,
        dst: AddrReg,
    },
    Clr {
        size: Size,
        dst: Ea,
    },
    Swap {
        dst: DataReg,
    },
    /// Sign-extend byte→word (`size == Word`) or word→long (`size == Long`).
    Ext {
        size: Size,
        dst: DataReg,
    },

    // --- integer arithmetic ---
    Add {
        size: Size,
        src: Ea,
        dst: DataReg,
    },
    AddTo {
        size: Size,
        src: DataReg,
        dst: Ea,
    },
    Adda {
        size: Size,
        src: Ea,
        dst: AddrReg,
    },
    Addq {
        size: Size,
        value: u8,
        dst: Ea,
    },
    Sub {
        size: Size,
        src: Ea,
        dst: DataReg,
    },
    SubTo {
        size: Size,
        src: DataReg,
        dst: Ea,
    },
    Suba {
        size: Size,
        src: Ea,
        dst: AddrReg,
    },
    Subq {
        size: Size,
        value: u8,
        dst: Ea,
    },
    Neg {
        size: Size,
        dst: Ea,
    },
    /// Unsigned 16×16→32 multiply. Execution time is 38 + 2·ones(src): the
    /// *non-deterministic instruction time* the paper's experiments revolve around.
    Mulu {
        src: Ea,
        dst: DataReg,
    },
    /// Signed 16×16→32 multiply; time is 38 + 2·(bit transitions of src<<1).
    Muls {
        src: Ea,
        dst: DataReg,
    },
    /// Unsigned 32÷16 divide (quotient in the low word, remainder in the high
    /// word of `dst`). The other famously data-dependent MC68000 instruction:
    /// its microcoded non-restoring divider takes 76–140 cycles depending on
    /// the quotient bit pattern (modeled as 76 + 4·zeros(quotient)).
    Divu {
        src: Ea,
        dst: DataReg,
    },
    /// Signed 32÷16 divide; sign fix-ups add to the data-dependent core time.
    Divs {
        src: Ea,
        dst: DataReg,
    },

    // --- logic & shifts ---
    And {
        size: Size,
        src: Ea,
        dst: DataReg,
    },
    Or {
        size: Size,
        src: Ea,
        dst: DataReg,
    },
    OrTo {
        size: Size,
        src: DataReg,
        dst: Ea,
    },
    Eor {
        size: Size,
        src: DataReg,
        dst: Ea,
    },
    Not {
        size: Size,
        dst: Ea,
    },
    Shift {
        kind: ShiftKind,
        size: Size,
        count: ShiftCount,
        dst: DataReg,
    },
    /// Bit test: set `Z` from bit `bit` of `dst` (long for registers, byte for
    /// memory, as on the 68000). A tighter status-poll idiom than `AND`.
    Btst {
        bit: u8,
        dst: Ea,
    },

    // --- compares ---
    Cmp {
        size: Size,
        src: Ea,
        dst: DataReg,
    },
    Cmpa {
        size: Size,
        src: Ea,
        dst: AddrReg,
    },
    Cmpi {
        size: Size,
        value: u32,
        dst: Ea,
    },
    Tst {
        size: Size,
        dst: Ea,
    },

    // --- control flow (targets are instruction indices) ---
    Bcc {
        cond: Cond,
        target: usize,
    },
    /// `DBRA Dn,label`: decrement the low word of `Dn`; branch unless it becomes −1.
    Dbra {
        dst: DataReg,
        target: usize,
    },
    Jmp {
        target: usize,
    },
    Jsr {
        target: usize,
    },
    Rts,
    Nop,

    // --- PASM prototype operations ---
    /// PE only: enter SIMD mode (jump into the SIMD instruction space).
    JmpSimd,
    /// Broadcast only: leave SIMD mode and resume the PE program at `target`.
    JmpMimd {
        target: usize,
    },
    /// PE only: barrier-synchronizing read of one word from SIMD space.
    Barrier,
    /// MC only: write the Fetch Unit mask register (bit *k* enables PE *k* of the group).
    SetMask {
        mask: u16,
    },
    /// MC only: command the Fetch Unit controller to enqueue SIMD block `block`.
    Enqueue {
        block: u16,
    },
    /// MC only: enqueue `count` arbitrary data words for barrier synchronization.
    EnqueueWords {
        count: u16,
    },
    /// MC only: release the (stopped) PEs of this group to run their MIMD programs.
    StartPes,
    /// Zero-cost instrumentation marker (phase accounting).
    Mark {
        begin: bool,
        phase: u8,
    },
    /// Stop this processor.
    Halt,
}

impl Instr {
    /// Length of the instruction in 16-bit instruction words.
    ///
    /// This is the number of bus accesses needed to *fetch* the instruction,
    /// which is what differs between MIMD mode (PE dynamic RAM, extra wait
    /// state, refresh interference) and SIMD mode (Fetch Unit static-RAM queue).
    pub fn words(&self) -> u32 {
        match *self {
            Instr::Move { size, src, dst } => 1 + src.ext_words(size) + dst.ext_words(size),
            Instr::Movea { size, src, .. } => 1 + src.ext_words(size),
            Instr::Moveq { .. } => 1,
            Instr::Lea { src, .. } => 1 + src.ext_words(Size::Long),
            Instr::Clr { size, dst } => 1 + dst.ext_words(size),
            Instr::Swap { .. } | Instr::Ext { .. } => 1,
            Instr::Add { size, src, .. }
            | Instr::Sub { size, src, .. }
            | Instr::And { size, src, .. }
            | Instr::Or { size, src, .. }
            | Instr::Cmp { size, src, .. } => 1 + src.ext_words(size),
            Instr::AddTo { size, dst, .. }
            | Instr::SubTo { size, dst, .. }
            | Instr::OrTo { size, dst, .. }
            | Instr::Eor { size, dst, .. } => 1 + dst.ext_words(size),
            Instr::Adda { size, src, .. }
            | Instr::Suba { size, src, .. }
            | Instr::Cmpa { size, src, .. } => 1 + src.ext_words(size),
            Instr::Addq { size, dst, .. } | Instr::Subq { size, dst, .. } => {
                1 + dst.ext_words(size)
            }
            Instr::Neg { size, dst } | Instr::Not { size, dst } => 1 + dst.ext_words(size),
            Instr::Mulu { src, .. }
            | Instr::Muls { src, .. }
            | Instr::Divu { src, .. }
            | Instr::Divs { src, .. } => 1 + src.ext_words(Size::Word),
            Instr::Shift { .. } => 1,
            // Static bit number travels in an extension word.
            Instr::Btst { dst, .. } => 2 + dst.ext_words(Size::Byte),
            Instr::Cmpi { size, dst, .. } => 1 + Ea::Imm(0).ext_words(size) + dst.ext_words(size),
            Instr::Tst { size, dst } => 1 + dst.ext_words(size),
            // Word-displacement forms.
            Instr::Bcc { .. } | Instr::Dbra { .. } => 2,
            // JMP/JSR through an absolute word address.
            Instr::Jmp { .. } | Instr::Jsr { .. } => 2,
            Instr::Rts | Instr::Nop => 1,
            // JMP to the (short) SIMD space address.
            Instr::JmpSimd => 2,
            // Broadcast long jump back into PE memory.
            Instr::JmpMimd { .. } => 3,
            // MOVE from an absolute SIMD-space address to a scratch register.
            Instr::Barrier => 2,
            // MOVE #imm,FU-register forms.
            Instr::SetMask { .. } => 3,
            Instr::Enqueue { .. } | Instr::EnqueueWords { .. } => 4,
            Instr::StartPes => 3,
            // Pure simulator instrumentation: occupies no memory, costs nothing.
            Instr::Mark { .. } => 0,
            Instr::Halt => 1,
        }
    }

    /// True for the operations only meaningful on a Micro Controller.
    pub fn is_mc_only(&self) -> bool {
        matches!(
            self,
            Instr::SetMask { .. }
                | Instr::Enqueue { .. }
                | Instr::EnqueueWords { .. }
                | Instr::StartPes
        )
    }

    /// True for control-transfer instructions (used by the assembler/analyzer).
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Instr::Bcc { .. }
                | Instr::Dbra { .. }
                | Instr::Jmp { .. }
                | Instr::Jsr { .. }
                | Instr::Rts
                | Instr::JmpSimd
                | Instr::JmpMimd { .. }
                | Instr::Halt
        )
    }

    /// The branch-target instruction index, if this instruction has one.
    pub fn target(&self) -> Option<usize> {
        match *self {
            Instr::Bcc { target, .. }
            | Instr::Dbra { target, .. }
            | Instr::Jmp { target }
            | Instr::Jsr { target }
            | Instr::JmpMimd { target } => Some(target),
            _ => None,
        }
    }

    /// Rewrite the branch target (used by the program builder when resolving labels).
    pub(crate) fn set_target(&mut self, t: usize) {
        match self {
            Instr::Bcc { target, .. }
            | Instr::Dbra { target, .. }
            | Instr::Jmp { target }
            | Instr::Jsr { target }
            | Instr::JmpMimd { target } => *target = t,
            _ => panic!("set_target on non-branch instruction {self:?}"),
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Move { size, src, dst } => write!(f, "MOVE{size} {src},{dst}"),
            Instr::Movea { size, src, dst } => write!(f, "MOVEA{size} {src},{dst}"),
            Instr::Moveq { value, dst } => write!(f, "MOVEQ #{value},{dst}"),
            Instr::Lea { src, dst } => write!(f, "LEA {src},{dst}"),
            Instr::Clr { size, dst } => write!(f, "CLR{size} {dst}"),
            Instr::Swap { dst } => write!(f, "SWAP {dst}"),
            Instr::Ext { size, dst } => write!(f, "EXT{size} {dst}"),
            Instr::Add { size, src, dst } => write!(f, "ADD{size} {src},{dst}"),
            Instr::AddTo { size, src, dst } => write!(f, "ADD{size} {src},{dst}"),
            Instr::Adda { size, src, dst } => write!(f, "ADDA{size} {src},{dst}"),
            Instr::Addq { size, value, dst } => write!(f, "ADDQ{size} #{value},{dst}"),
            Instr::Sub { size, src, dst } => write!(f, "SUB{size} {src},{dst}"),
            Instr::SubTo { size, src, dst } => write!(f, "SUB{size} {src},{dst}"),
            Instr::Suba { size, src, dst } => write!(f, "SUBA{size} {src},{dst}"),
            Instr::Subq { size, value, dst } => write!(f, "SUBQ{size} #{value},{dst}"),
            Instr::Neg { size, dst } => write!(f, "NEG{size} {dst}"),
            Instr::Mulu { src, dst } => write!(f, "MULU {src},{dst}"),
            Instr::Muls { src, dst } => write!(f, "MULS {src},{dst}"),
            Instr::Divu { src, dst } => write!(f, "DIVU {src},{dst}"),
            Instr::Divs { src, dst } => write!(f, "DIVS {src},{dst}"),
            Instr::Btst { bit, dst } => write!(f, "BTST #{bit},{dst}"),
            Instr::And { size, src, dst } => write!(f, "AND{size} {src},{dst}"),
            Instr::Or { size, src, dst } => write!(f, "OR{size} {src},{dst}"),
            Instr::OrTo { size, src, dst } => write!(f, "OR{size} {src},{dst}"),
            Instr::Eor { size, src, dst } => write!(f, "EOR{size} {src},{dst}"),
            Instr::Not { size, dst } => write!(f, "NOT{size} {dst}"),
            Instr::Shift {
                kind,
                size,
                count,
                dst,
            } => {
                write!(f, "{}{size} {count},{dst}", kind.mnemonic())
            }
            Instr::Cmp { size, src, dst } => write!(f, "CMP{size} {src},{dst}"),
            Instr::Cmpa { size, src, dst } => write!(f, "CMPA{size} {src},{dst}"),
            Instr::Cmpi { size, value, dst } => write!(f, "CMPI{size} #{value},{dst}"),
            Instr::Tst { size, dst } => write!(f, "TST{size} {dst}"),
            Instr::Bcc { cond, target } => write!(f, "B{} @{target}", cond.mnemonic()),
            Instr::Dbra { dst, target } => write!(f, "DBRA {dst},@{target}"),
            Instr::Jmp { target } => write!(f, "JMP @{target}"),
            Instr::Jsr { target } => write!(f, "JSR @{target}"),
            Instr::Rts => write!(f, "RTS"),
            Instr::Nop => write!(f, "NOP"),
            Instr::JmpSimd => write!(f, "JMPSIMD"),
            Instr::JmpMimd { target } => write!(f, "JMPMIMD @{target}"),
            Instr::Barrier => write!(f, "BARRIER"),
            Instr::SetMask { mask } => write!(f, "SETMASK #${mask:04X}"),
            Instr::Enqueue { block } => write!(f, "ENQUEUE #{block}"),
            Instr::EnqueueWords { count } => write!(f, "ENQWORDS #{count}"),
            Instr::StartPes => write!(f, "STARTPES"),
            Instr::Mark { begin, phase } => {
                write!(f, "{} #{phase}", if begin { "MARKB" } else { "MARKE" })
            }
            Instr::Halt => write!(f, "HALT"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{AddrReg::*, DataReg::*};

    #[test]
    fn cond_eval_truth_table() {
        let mut ccr = Ccr::CLEAR;
        assert!(Cond::True.eval(ccr));
        assert!(Cond::Ne.eval(ccr));
        assert!(!Cond::Eq.eval(ccr));
        ccr.z = true;
        assert!(Cond::Eq.eval(ccr));
        assert!(Cond::Le.eval(ccr));
        assert!(!Cond::Gt.eval(ccr));
        ccr = Ccr {
            n: true,
            v: false,
            ..Ccr::CLEAR
        };
        assert!(Cond::Lt.eval(ccr));
        assert!(!Cond::Ge.eval(ccr));
        ccr = Ccr {
            n: true,
            v: true,
            ..Ccr::CLEAR
        };
        assert!(Cond::Ge.eval(ccr));
        ccr = Ccr {
            c: true,
            ..Ccr::CLEAR
        };
        assert!(Cond::Cs.eval(ccr) && Cond::Ls.eval(ccr) && !Cond::Hi.eval(ccr));
    }

    #[test]
    fn word_counts_follow_extension_words() {
        let i = Instr::Move {
            size: Size::Word,
            src: Ea::PostInc(A0),
            dst: Ea::D(D0),
        };
        assert_eq!(i.words(), 1);
        let i = Instr::Move {
            size: Size::Word,
            src: Ea::Imm(7),
            dst: Ea::AbsL(0x1000),
        };
        assert_eq!(i.words(), 4); // op + imm + 2 abs.L words
        let i = Instr::Mulu {
            src: Ea::D(D1),
            dst: D0,
        };
        assert_eq!(i.words(), 1);
        assert_eq!(
            Instr::Bcc {
                cond: Cond::Ne,
                target: 0
            }
            .words(),
            2
        );
        assert_eq!(
            Instr::Mark {
                begin: true,
                phase: 0
            }
            .words(),
            0
        );
    }

    #[test]
    fn classification() {
        assert!(Instr::SetMask { mask: 0xF }.is_mc_only());
        assert!(!Instr::Nop.is_mc_only());
        assert!(Instr::Jmp { target: 3 }.is_control_flow());
        assert_eq!(Instr::Jmp { target: 3 }.target(), Some(3));
        assert_eq!(Instr::Nop.target(), None);
    }

    #[test]
    fn set_target_rewrites() {
        let mut i = Instr::Bcc {
            cond: Cond::Eq,
            target: 0,
        };
        i.set_target(42);
        assert_eq!(i.target(), Some(42));
    }

    #[test]
    #[should_panic(expected = "set_target")]
    fn set_target_panics_on_non_branch() {
        let mut i = Instr::Nop;
        i.set_target(1);
    }

    #[test]
    fn display_smoke() {
        let i = Instr::Mulu {
            src: Ea::D(D1),
            dst: D0,
        };
        assert_eq!(i.to_string(), "MULU D1,D0");
        let i = Instr::Move {
            size: Size::Word,
            src: Ea::PostInc(A0),
            dst: Ea::D(D2),
        };
        assert_eq!(i.to_string(), "MOVE.W (A0)+,D2");
    }
}
