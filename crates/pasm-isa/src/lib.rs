//! # pasm-isa — reduced MC68000-style instruction set for the PASM prototype simulator
//!
//! The PASM prototype at Purdue used 8 MHz Motorola MC68000 processors for both
//! its Processing Elements (PEs) and its Micro Controllers (MCs). The experiments
//! in Fineberg et al., *Non-Deterministic Instruction Time Experiments on the
//! PASM System Prototype* (ICPP 1988), hinge on one property of that processor:
//! **the multiply instruction has a data-dependent execution time** (38 + 2·*n*
//! cycles for `MULU`, where *n* is the number of one-bits in the source operand).
//!
//! This crate defines a faithful, reduced subset of the MC68000 instruction set
//! together with its documented cycle-timing model:
//!
//! * [`Instr`] — the instruction enumeration (moves, arithmetic, logic, shifts,
//!   compares, branches, `DBRA` loops, jumps, and the variable-time `MULU`/`MULS`),
//! * [`Ea`] — the supported effective-address (addressing) modes,
//! * [`timing`] — per-instruction base cycle counts, per-addressing-mode
//!   effective-address calculation times, and the data-dependent multiply
//!   formulas, all taken from the M68000 user's manual,
//! * [`Program`] and [`ProgramBuilder`] — label-resolved instruction sequences,
//! * [`asm`] — a small two-pass text assembler and disassembler for the subset.
//!
//! The crate is purely architectural: it knows how long an instruction takes on
//! the CPU core and how many instruction words it occupies, but nothing about
//! memory wait states, the Fetch Unit queue, or the interconnection network.
//! Those belong to `pasm-mem`, `pasm-net` and `pasm-machine`.
//!
//! ## Example
//!
//! ```
//! use pasm_isa::{timing, Instr, DataReg, Ea, Size};
//!
//! // MULU D1,D0 — the data-dependent instruction at the center of the paper.
//! let mulu = Instr::Mulu { src: Ea::D(DataReg::D1), dst: DataReg::D0 };
//! // With a multiplier of 0xFFFF (sixteen one-bits) the instruction takes
//! // 38 + 2*16 = 70 cycles; with 0 it takes the minimum 38.
//! assert_eq!(timing::mulu_cycles(0xFFFF), 70);
//! assert_eq!(timing::mulu_cycles(0x0000), 38);
//! assert_eq!(mulu.words(), 1);
//! ```

pub mod analysis;
pub mod asm;
pub mod instr;
pub mod operand;
pub mod program;
pub mod reg;
pub mod timing;

pub use instr::{Cond, Instr, ShiftCount, ShiftKind};
pub use operand::{Ea, Size};
pub use program::{Label, Program, ProgramBuilder};
pub use reg::{AddrReg, Ccr, DataReg};

/// Clock frequency of the PASM prototype CPUs (8 MHz MC68000s).
pub const CLOCK_HZ: u64 = 8_000_000;

/// Convert a cycle count on the 8 MHz prototype to seconds.
#[inline]
pub fn cycles_to_seconds(cycles: u64) -> f64 {
    cycles as f64 / CLOCK_HZ as f64
}

/// Convert a cycle count to milliseconds on the 8 MHz prototype.
#[inline]
pub fn cycles_to_ms(cycles: u64) -> f64 {
    cycles_to_seconds(cycles) * 1e3
}
