//! Cycle-timing model of the reduced instruction set.
//!
//! All numbers follow the M68000 8-/16-/32-bit Microprocessors User's Manual
//! (instruction execution time tables). They assume **zero-wait-state memory**;
//! the machine simulator adds per-bus-access wait states for the PE dynamic
//! RAM, refresh interference, and Fetch-Unit-queue effects on top of these
//! figures, because those are properties of the PASM prototype's memory system
//! rather than of the CPU core.
//!
//! The two functions at the heart of the reproduced experiments are
//! [`mulu_cycles`] and [`muls_cycles`]: the MC68000 multiplier is microcoded
//! with an early-out per-bit algorithm, so
//!
//! * `MULU` takes `38 + 2·n` cycles where `n` is the number of **one-bits** in
//!   the source operand (38–70 cycles), and
//! * `MULS` takes `38 + 2·n` cycles where `n` is the number of **10 or 01
//!   patterns** in the source operand appended with a zero (i.e. bit
//!   transitions of `src << 1` viewed as 17 bits).
//!
//! With uniformly random 16-bit data the `MULU` time is `38 + 2·B` with
//! `B ~ Binomial(16, ½)`: mean 54 cycles, but a *maximum over p processors*
//! that grows with p — exactly the SIMD lockstep penalty the paper measures.

use crate::instr::{Cond, Instr, ShiftCount};
use crate::operand::{Ea, Size};

/// Runtime facts the CPU interpreter must supply for data-dependent timings.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecCtx {
    /// Source operand value (required for `MULU`/`MULS`/`DIVU`/`DIVS`).
    pub src_value: u32,
    /// Destination operand value before execution (required for the divides).
    pub dst_value: u32,
    /// Effective shift count (required for register-count shifts).
    pub shift_count: u32,
    /// Whether a conditional branch was taken.
    pub branch_taken: bool,
    /// Whether a `DBRA` loop counter expired (fell through).
    pub loop_expired: bool,
}

/// Effective-address calculation + operand fetch time for a *source* operand.
///
/// Manual Table 8-2 ("effective address calculation times").
pub fn ea_fetch_cycles(ea: Ea, size: Size) -> u32 {
    let long = matches!(size, Size::Long);
    match ea {
        Ea::D(_) | Ea::A(_) => 0,
        Ea::Ind(_) | Ea::PostInc(_) => {
            if long {
                8
            } else {
                4
            }
        }
        Ea::PreDec(_) => {
            if long {
                10
            } else {
                6
            }
        }
        Ea::Disp(..) | Ea::AbsW(_) => {
            if long {
                12
            } else {
                8
            }
        }
        Ea::AbsL(_) => {
            if long {
                16
            } else {
                12
            }
        }
        Ea::Imm(_) => {
            if long {
                8
            } else {
                4
            }
        }
    }
}

/// Destination penalty of a `MOVE` (manual Table 8-4, destination column,
/// relative to the register-destination case).
pub fn move_dst_cycles(ea: Ea, size: Size) -> u32 {
    let long = matches!(size, Size::Long);
    match ea {
        Ea::D(_) | Ea::A(_) => 0,
        // Writing through -(An) costs the same as (An) on MOVE (the decrement
        // overlaps the write), unlike its use as a source.
        Ea::Ind(_) | Ea::PostInc(_) | Ea::PreDec(_) => {
            if long {
                8
            } else {
                4
            }
        }
        Ea::Disp(..) | Ea::AbsW(_) => {
            if long {
                12
            } else {
                8
            }
        }
        Ea::AbsL(_) => {
            if long {
                16
            } else {
                12
            }
        }
        Ea::Imm(_) => 0, // not writable; caught elsewhere
    }
}

/// `LEA` timing (manual Table 8-6).
pub fn lea_cycles(ea: Ea) -> u32 {
    match ea {
        Ea::Ind(_) => 4,
        Ea::Disp(..) | Ea::AbsW(_) => 8,
        Ea::AbsL(_) => 12,
        // Other modes are illegal for LEA on the 68000; charge the cheapest
        // legal mode so accidental use in generated code stays conservative.
        _ => 4,
    }
}

/// Number of one-bits in a 16-bit multiplier.
#[inline]
pub fn ones(v: u16) -> u32 {
    v.count_ones()
}

/// `MULU <ea>,Dn` core time: 38 + 2·ones(src), excluding the source EA time.
///
/// Minimum 38 (multiplier 0), maximum 70 (multiplier 0xFFFF).
#[inline]
pub fn mulu_cycles(src: u16) -> u32 {
    mulu_cycles_from_ones(ones(src))
}

/// `MULU` core time as a function of the multiplier's popcount directly.
#[inline]
pub fn mulu_cycles_from_ones(ones: u32) -> u32 {
    38 + 2 * ones
}

/// `MULS <ea>,Dn` core time: 38 + 2·n where n is the number of `01`/`10`
/// patterns in the 17-bit value `src << 1` — i.e. the number of bit transitions
/// when scanning the source with an appended low zero.
#[inline]
pub fn muls_cycles(src: u16) -> u32 {
    let v = (src as u32) << 1; // 17 significant bits, bit 0 = appended zero
    let transitions = (v ^ (v >> 1)) & 0xFFFF; // pairs (b1,b0), (b2,b1), ... (b16,b15)
    38 + 2 * transitions.count_ones()
}

/// `DIVU <ea>,Dn` core time, excluding the source EA time.
///
/// The 68000 divider is a microcoded non-restoring loop whose per-iteration
/// cost depends on the developing quotient; published exact timings range
/// from 76 to 140 cycles plus a 10-cycle early-out when the quotient would
/// overflow 16 bits. We model the data dependence as `76 + 4·zeros(quotient)`
/// (each zero quotient bit takes the longer microcode path), which spans the
/// documented envelope, and 10 cycles for the overflow early-out. A divide by
/// zero is charged like an overflow (the real CPU traps; the experiments
/// never divide by zero).
#[inline]
pub fn divu_cycles(dividend: u32, divisor: u16) -> u32 {
    if divisor == 0 || (dividend >> 16) >= divisor as u32 {
        return 10; // overflow / zero-divide early-out
    }
    let q = dividend / divisor as u32;
    76 + 4 * (16 - (q as u16).count_ones())
}

/// `DIVS <ea>,Dn` core time: the unsigned core on the magnitudes plus sign
/// fix-up overhead (constant 8 cycles, plus 2 when the dividend is negative).
#[inline]
pub fn divs_cycles(dividend: u32, divisor: u16) -> u32 {
    let dd = (dividend as i32).unsigned_abs();
    let dv = (divisor as i16).unsigned_abs();
    let neg_fix = if (dividend as i32) < 0 { 2 } else { 0 };
    divu_cycles(dd, dv) + 8 + neg_fix
}

/// Shift/rotate register form: 6 + 2n (byte/word), 8 + 2n (long).
#[inline]
pub fn shift_cycles(size: Size, count: u32) -> u32 {
    let base = if matches!(size, Size::Long) { 8 } else { 6 };
    base + 2 * count
}

/// Conditional-branch timing (word displacement): taken 10, not taken 12.
#[inline]
pub fn bcc_cycles(taken: bool) -> u32 {
    if taken {
        10
    } else {
        12
    }
}

/// `DBRA` timing: branch taken (counter live) 10, expired (fall through) 14.
#[inline]
pub fn dbra_cycles(expired: bool) -> u32 {
    if expired {
        14
    } else {
        10
    }
}

/// The data-dependent part of an instruction's core time, as a *term* the
/// block compiler can evaluate at run time against an [`ExecCtx`].
///
/// [`cycle_split`] decomposes every instruction into a static constant plus
/// exactly one of these terms, with the invariant (pinned by the
/// `decomposition` tests)
///
/// ```text
/// base_cycles(i, ctx) == cycle_split(i).static_cycles
///                      + dynamic_cycles(cycle_split(i).dynamic, ctx)
/// ```
///
/// for every instruction and every context. Most instructions carry
/// [`DynTerm::None`]; the exceptions are the paper's non-deterministic-time
/// instructions (multiplies, divides, register-count shifts) and the two
/// branch forms whose arms differ in cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DynTerm {
    /// Fully static: the instruction's cost never depends on data.
    #[default]
    None,
    /// `MULU`: `2·ones(src)` — 0 to 32 extra cycles over the 38-cycle floor.
    MuluOnes,
    /// `MULS`: `2·transitions(src << 1)` over the same 38-cycle floor.
    MulsTransitions,
    /// `DIVU`: `divu_cycles(dst, src) − 10`; the static part is the 10-cycle
    /// overflow early-out, the term spans 0 and 66–130.
    DivuQuotient,
    /// `DIVS`: `divs_cycles(dst, src) − 18`; the static part is the early-out
    /// plus the constant 8-cycle sign fix-up.
    DivsQuotient,
    /// Register-count shifts: `2·count` over the 6/8-cycle base.
    ShiftCount,
    /// Conditional `Bcc` (not `BRA`): `+2` on fall-through (taken = 10,
    /// not taken = 12).
    BccFallThrough,
    /// `DBRA`: `+4` when the counter expires (taken = 10, expired = 14).
    DbraExpired,
}

/// An instruction's core time split into a compile-time constant and a
/// run-time term (see [`cycle_split`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CycleSplit {
    /// Cycles charged regardless of data: the instruction's minimum core
    /// time, including all effective-address fetch cost.
    pub static_cycles: u32,
    /// The data-dependent remainder, evaluated via [`dynamic_cycles`].
    pub dynamic: DynTerm,
    /// [`Instr::words`], folded at split time: instruction words fetched,
    /// a pure function of the encoding.
    pub fetch_words: u32,
    /// [`data_accesses`], folded at split time: 16-bit operand bus accesses,
    /// likewise static per instruction.
    pub data_accesses: u32,
}

impl CycleSplit {
    /// True when the instruction's core time is a compile-time constant.
    pub fn is_static(&self) -> bool {
        self.dynamic == DynTerm::None
    }
}

/// Decompose an instruction's [`base_cycles`] into `static + dynamic(ctx)`.
///
/// This is the per-opcode table the `pasm-machine` block compiler folds over
/// a basic block: the static parts sum into one per-block constant, the
/// dynamic terms remain to be evaluated against each execution's [`ExecCtx`].
pub fn cycle_split(instr: &Instr) -> CycleSplit {
    let (static_cycles, dynamic) = match *instr {
        Instr::Mulu { src, .. } => (38 + ea_fetch_cycles(src, Size::Word), DynTerm::MuluOnes),
        Instr::Muls { src, .. } => (
            38 + ea_fetch_cycles(src, Size::Word),
            DynTerm::MulsTransitions,
        ),
        Instr::Divu { src, .. } => (10 + ea_fetch_cycles(src, Size::Word), DynTerm::DivuQuotient),
        Instr::Divs { src, .. } => (18 + ea_fetch_cycles(src, Size::Word), DynTerm::DivsQuotient),
        Instr::Shift {
            size,
            count: ShiftCount::Reg(_),
            ..
        } => (shift_cycles(size, 0), DynTerm::ShiftCount),
        Instr::Bcc {
            cond: Cond::True, ..
        } => (10, DynTerm::None),
        Instr::Bcc { .. } => (10, DynTerm::BccFallThrough),
        Instr::Dbra { .. } => (10, DynTerm::DbraExpired),
        // Everything else ignores the context entirely.
        _ => (base_cycles(instr, ExecCtx::default()), DynTerm::None),
    };
    CycleSplit {
        static_cycles,
        dynamic,
        fetch_words: instr.words(),
        data_accesses: data_accesses(instr),
    }
}

/// Evaluate a [`DynTerm`] against the run-time facts of one execution.
#[inline]
pub fn dynamic_cycles(term: DynTerm, ctx: ExecCtx) -> u32 {
    match term {
        DynTerm::None => 0,
        DynTerm::MuluOnes => 2 * ones(ctx.src_value as u16),
        DynTerm::MulsTransitions => muls_cycles(ctx.src_value as u16) - 38,
        DynTerm::DivuQuotient => divu_cycles(ctx.dst_value, ctx.src_value as u16) - 10,
        DynTerm::DivsQuotient => divs_cycles(ctx.dst_value, ctx.src_value as u16) - 18,
        DynTerm::ShiftCount => 2 * ctx.shift_count,
        DynTerm::BccFallThrough => {
            if ctx.branch_taken {
                0
            } else {
                2
            }
        }
        DynTerm::DbraExpired => {
            if ctx.loop_expired {
                4
            } else {
                0
            }
        }
    }
}

fn alu_to_reg(size: Size, src: Ea) -> u32 {
    // ADD/SUB/AND/OR/CMP <ea>,Dn
    let ea = ea_fetch_cycles(src, size);
    match size {
        Size::Byte | Size::Word => 4 + ea,
        Size::Long => {
            if src.is_register() || matches!(src, Ea::Imm(_)) {
                8 + ea
            } else {
                6 + ea
            }
        }
    }
}

fn alu_to_mem(size: Size, dst: Ea) -> u32 {
    // ADD/SUB/OR/EOR Dn,<ea> (read-modify-write on memory)
    let ea = ea_fetch_cycles(dst, size);
    match size {
        Size::Byte | Size::Word => 8 + ea,
        Size::Long => 12 + ea,
    }
}

fn single_operand(size: Size, dst: Ea, reg_b_w: u32, reg_l: u32) -> u32 {
    // CLR/NEG/NOT/TST-style single-operand forms.
    if dst.is_register() {
        if matches!(size, Size::Long) {
            reg_l
        } else {
            reg_b_w
        }
    } else {
        let ea = ea_fetch_cycles(dst, size);
        match size {
            Size::Byte | Size::Word => 8 + ea,
            Size::Long => 12 + ea,
        }
    }
}

/// Core execution time of an instruction in CPU cycles, assuming zero-wait
/// memory. The machine simulator layers memory wait states on top.
pub fn base_cycles(instr: &Instr, ctx: ExecCtx) -> u32 {
    match *instr {
        Instr::Move { size, src, dst } => {
            4 + ea_fetch_cycles(src, size) + move_dst_cycles(dst, size)
        }
        Instr::Movea { size, src, .. } => 4 + ea_fetch_cycles(src, size),
        Instr::Moveq { .. } => 4,
        Instr::Lea { src, .. } => lea_cycles(src),
        Instr::Clr { size, dst } => single_operand(size, dst, 4, 6),
        Instr::Swap { .. } => 4,
        Instr::Ext { .. } => 4,
        Instr::Add { size, src, .. } | Instr::Sub { size, src, .. } => alu_to_reg(size, src),
        Instr::AddTo { size, dst, .. } | Instr::SubTo { size, dst, .. } => alu_to_mem(size, dst),
        Instr::Adda { size, src, .. } | Instr::Suba { size, src, .. } => {
            // ADDA.W = 8+ea (source is sign-extended through the ALU twice);
            // ADDA.L = 6+ea for memory sources, 8+ea register/immediate.
            match size {
                Size::Long => {
                    if src.is_register() || matches!(src, Ea::Imm(_)) {
                        8 + ea_fetch_cycles(src, size)
                    } else {
                        6 + ea_fetch_cycles(src, size)
                    }
                }
                _ => 8 + ea_fetch_cycles(src, size),
            }
        }
        Instr::Addq { size, dst, .. } | Instr::Subq { size, dst, .. } => {
            if dst.is_register() {
                match dst {
                    // ADDQ to an address register is always a long operation: 8.
                    Ea::A(_) => 8,
                    _ => {
                        if matches!(size, Size::Long) {
                            8
                        } else {
                            4
                        }
                    }
                }
            } else {
                let ea = ea_fetch_cycles(dst, size);
                match size {
                    Size::Byte | Size::Word => 8 + ea,
                    Size::Long => 12 + ea,
                }
            }
        }
        Instr::Neg { size, dst } | Instr::Not { size, dst } => single_operand(size, dst, 4, 6),
        Instr::Mulu { src, .. } => {
            mulu_cycles(ctx.src_value as u16) + ea_fetch_cycles(src, Size::Word)
        }
        Instr::Muls { src, .. } => {
            muls_cycles(ctx.src_value as u16) + ea_fetch_cycles(src, Size::Word)
        }
        Instr::Divu { src, .. } => {
            divu_cycles(ctx.dst_value, ctx.src_value as u16) + ea_fetch_cycles(src, Size::Word)
        }
        Instr::Divs { src, .. } => {
            divs_cycles(ctx.dst_value, ctx.src_value as u16) + ea_fetch_cycles(src, Size::Word)
        }
        Instr::And { size, src, .. } | Instr::Or { size, src, .. } => alu_to_reg(size, src),
        Instr::OrTo { size, dst, .. } | Instr::Eor { size, dst, .. } => alu_to_mem(size, dst),
        Instr::Btst { dst, .. } => {
            if dst.is_register() {
                10
            } else {
                8 + ea_fetch_cycles(dst, Size::Byte)
            }
        }
        Instr::Shift { size, count, .. } => {
            let n = match count {
                ShiftCount::Imm(n) => n as u32,
                ShiftCount::Reg(_) => ctx.shift_count,
            };
            shift_cycles(size, n)
        }
        Instr::Cmp { size, src, .. } => match size {
            Size::Byte | Size::Word => 4 + ea_fetch_cycles(src, size),
            Size::Long => 6 + ea_fetch_cycles(src, size),
        },
        Instr::Cmpa { size, src, .. } => 6 + ea_fetch_cycles(src, size),
        Instr::Cmpi { size, dst, .. } => {
            if dst.is_register() {
                if matches!(size, Size::Long) {
                    14
                } else {
                    8
                }
            } else {
                let ea = ea_fetch_cycles(dst, size);
                match size {
                    Size::Byte | Size::Word => 8 + ea,
                    Size::Long => 12 + ea,
                }
            }
        }
        Instr::Tst { size, dst } => {
            4 + if dst.is_register() {
                0
            } else {
                ea_fetch_cycles(dst, size)
            }
        }
        Instr::Bcc {
            cond: Cond::True, ..
        } => 10, // BRA
        Instr::Bcc { .. } => bcc_cycles(ctx.branch_taken),
        Instr::Dbra { .. } => dbra_cycles(ctx.loop_expired),
        Instr::Jmp { .. } => 10,
        Instr::Jsr { .. } => 18,
        Instr::Rts => 16,
        Instr::Nop => 4,
        // PASM operations: costs of the underlying 68000 operations.
        Instr::JmpSimd => 10,        // JMP abs.W into the SIMD space
        Instr::JmpMimd { .. } => 12, // JMP abs.L back into PE memory
        Instr::Barrier => 8,         // MOVE.W abs.W,Dscratch (release wait added by machine)
        Instr::SetMask { .. } => 16, // MOVE.W #imm,FU-mask
        Instr::Enqueue { .. } | Instr::EnqueueWords { .. } => 20, // MOVE.L #ctl,FU-ctl
        Instr::StartPes => 16,
        Instr::Mark { .. } => 0,
        Instr::Halt => 4,
    }
}

/// Number of 16-bit **data** bus accesses to memory the instruction performs
/// (operand reads + writes, excluding instruction fetch). The machine uses this
/// to charge DRAM wait states on operand traffic.
pub fn data_accesses(instr: &Instr) -> u32 {
    fn rd(ea: Ea, size: Size) -> u32 {
        if ea.is_memory() {
            size.bus_accesses()
        } else {
            0
        }
    }
    fn rmw(ea: Ea, size: Size) -> u32 {
        if ea.is_memory() {
            2 * size.bus_accesses()
        } else {
            0
        }
    }
    match *instr {
        Instr::Move { size, src, dst } => rd(src, size) + rd(dst, size),
        Instr::Movea { size, src, .. } => rd(src, size),
        Instr::Lea { .. } | Instr::Moveq { .. } | Instr::Swap { .. } | Instr::Ext { .. } => 0,
        Instr::Clr { size, dst } => rd(dst, size), // write only
        Instr::Add { size, src, .. }
        | Instr::Sub { size, src, .. }
        | Instr::And { size, src, .. }
        | Instr::Or { size, src, .. }
        | Instr::Cmp { size, src, .. } => rd(src, size),
        Instr::AddTo { size, dst, .. }
        | Instr::SubTo { size, dst, .. }
        | Instr::OrTo { size, dst, .. }
        | Instr::Eor { size, dst, .. } => rmw(dst, size),
        Instr::Adda { size, src, .. }
        | Instr::Suba { size, src, .. }
        | Instr::Cmpa { size, src, .. } => rd(src, size),
        Instr::Addq { size, dst, .. } | Instr::Subq { size, dst, .. } => rmw(dst, size),
        Instr::Neg { size, dst } | Instr::Not { size, dst } => rmw(dst, size),
        Instr::Mulu { src, .. }
        | Instr::Muls { src, .. }
        | Instr::Divu { src, .. }
        | Instr::Divs { src, .. } => rd(src, Size::Word),
        Instr::Shift { .. } => 0,
        Instr::Btst { dst, .. } => rd(dst, Size::Byte),
        Instr::Cmpi { size, dst, .. } | Instr::Tst { size, dst } => rd(dst, size),
        Instr::Jsr { .. } => 2, // push return address (long)
        Instr::Rts => 2,        // pop return address
        Instr::Barrier => 1,    // one word read from SIMD space
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::ShiftKind;
    use crate::reg::{AddrReg::*, DataReg::*};

    #[test]
    fn mulu_bounds_and_formula() {
        assert_eq!(mulu_cycles(0), 38);
        assert_eq!(mulu_cycles(0xFFFF), 70);
        assert_eq!(mulu_cycles(0b1010_1010_1010_1010), 38 + 2 * 8);
        assert_eq!(mulu_cycles(1), 40);
        // Mean over all 16-bit values is 38 + 2*8 = 54.
        let mean: f64 = (0..=u16::MAX).map(|v| mulu_cycles(v) as f64).sum::<f64>() / 65536.0;
        assert!((mean - 54.0).abs() < 1e-9);
    }

    #[test]
    fn muls_transition_count() {
        // 0 has no transitions: minimum 38.
        assert_eq!(muls_cycles(0), 38);
        // 0xFFFF << 1 = 1_1111_1111_1111_1110: one 01 boundary at the bottom,
        // and the implicit sign bit run: transitions of v^(v>>1) & 0xFFFF.
        assert_eq!(muls_cycles(0xFFFF), 38 + 2);
        // Alternating bits maximize transitions: 0x5555 -> sixteen transitions.
        assert_eq!(muls_cycles(0x5555), 38 + 2 * 16);
        assert!(muls_cycles(0xAAAA) >= muls_cycles(0));
    }

    #[test]
    fn move_timing_matches_manual_examples() {
        let ctx = ExecCtx::default();
        // MOVE.W D0,D1 = 4
        let i = Instr::Move {
            size: Size::Word,
            src: Ea::D(D0),
            dst: Ea::D(D1),
        };
        assert_eq!(base_cycles(&i, ctx), 4);
        // MOVE.W (A0),D1 = 8
        let i = Instr::Move {
            size: Size::Word,
            src: Ea::Ind(A0),
            dst: Ea::D(D1),
        };
        assert_eq!(base_cycles(&i, ctx), 8);
        // MOVE.W (A0)+,(A1)+ = 12
        let i = Instr::Move {
            size: Size::Word,
            src: Ea::PostInc(A0),
            dst: Ea::PostInc(A1),
        };
        assert_eq!(base_cycles(&i, ctx), 12);
        // MOVE.L d(A0),d(A1) = 4 + 12 + 12 = 28
        let i = Instr::Move {
            size: Size::Long,
            src: Ea::Disp(4, A0),
            dst: Ea::Disp(8, A1),
        };
        assert_eq!(base_cycles(&i, ctx), 28);
    }

    #[test]
    fn alu_timing_examples() {
        let ctx = ExecCtx::default();
        // ADD.W (A0)+,D0 = 8
        let i = Instr::Add {
            size: Size::Word,
            src: Ea::PostInc(A0),
            dst: D0,
        };
        assert_eq!(base_cycles(&i, ctx), 8);
        // ADD.W D0,(A1) = 12 (read-modify-write)
        let i = Instr::AddTo {
            size: Size::Word,
            src: D0,
            dst: Ea::Ind(A1),
        };
        assert_eq!(base_cycles(&i, ctx), 12);
        // ADDQ.W #1,D0 = 4; ADDQ to An = 8
        let i = Instr::Addq {
            size: Size::Word,
            value: 1,
            dst: Ea::D(D0),
        };
        assert_eq!(base_cycles(&i, ctx), 4);
        let i = Instr::Addq {
            size: Size::Word,
            value: 1,
            dst: Ea::A(A0),
        };
        assert_eq!(base_cycles(&i, ctx), 8);
        // ADDA.W D0,A0 = 8
        let i = Instr::Adda {
            size: Size::Word,
            src: Ea::D(D0),
            dst: A0,
        };
        assert_eq!(base_cycles(&i, ctx), 8);
    }

    #[test]
    fn shift_and_branch_timing() {
        let ctx = ExecCtx {
            shift_count: 8,
            ..Default::default()
        };
        let i = Instr::Shift {
            kind: ShiftKind::Lsr,
            size: Size::Word,
            count: ShiftCount::Imm(8),
            dst: D0,
        };
        assert_eq!(base_cycles(&i, ctx), 6 + 16);
        let i = Instr::Shift {
            kind: ShiftKind::Lsl,
            size: Size::Long,
            count: ShiftCount::Reg(D1),
            dst: D0,
        };
        assert_eq!(base_cycles(&i, ctx), 8 + 16);

        assert_eq!(bcc_cycles(true), 10);
        assert_eq!(bcc_cycles(false), 12);
        assert_eq!(dbra_cycles(false), 10);
        assert_eq!(dbra_cycles(true), 14);
    }

    #[test]
    fn mulu_timing_includes_ea() {
        // MULU (A0),D0 with source value 0xF = 38 + 8 + 4(ea) = 50.
        let ctx = ExecCtx {
            src_value: 0xF,
            ..Default::default()
        };
        let i = Instr::Mulu {
            src: Ea::Ind(A0),
            dst: D0,
        };
        assert_eq!(base_cycles(&i, ctx), 38 + 8 + 4);
    }

    #[test]
    fn data_access_counts() {
        let i = Instr::Move {
            size: Size::Word,
            src: Ea::PostInc(A0),
            dst: Ea::PostInc(A1),
        };
        assert_eq!(data_accesses(&i), 2);
        let i = Instr::AddTo {
            size: Size::Word,
            src: D0,
            dst: Ea::Ind(A1),
        };
        assert_eq!(data_accesses(&i), 2); // read + write
        let i = Instr::Move {
            size: Size::Long,
            src: Ea::Ind(A0),
            dst: Ea::D(D0),
        };
        assert_eq!(data_accesses(&i), 2); // two bus accesses for a long read
        let i = Instr::Mulu {
            src: Ea::D(D1),
            dst: D0,
        };
        assert_eq!(data_accesses(&i), 0);
    }

    #[test]
    fn mark_is_free() {
        let i = Instr::Mark {
            begin: true,
            phase: 1,
        };
        assert_eq!(base_cycles(&i, ExecCtx::default()), 0);
        assert_eq!(i.words(), 0);
        assert_eq!(data_accesses(&i), 0);
    }
}
