//! Register file definitions: data registers, address registers, condition codes.

use std::fmt;

/// One of the eight MC68000 data registers `D0`–`D7`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DataReg {
    D0,
    D1,
    D2,
    D3,
    D4,
    D5,
    D6,
    D7,
}

impl DataReg {
    /// All data registers in numeric order.
    pub const ALL: [DataReg; 8] = [
        DataReg::D0,
        DataReg::D1,
        DataReg::D2,
        DataReg::D3,
        DataReg::D4,
        DataReg::D5,
        DataReg::D6,
        DataReg::D7,
    ];

    /// Register number 0–7.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Register from a number 0–7; `None` otherwise.
    pub fn from_index(i: usize) -> Option<DataReg> {
        Self::ALL.get(i).copied()
    }
}

impl fmt::Display for DataReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.index())
    }
}

/// One of the eight MC68000 address registers `A0`–`A7` (`A7` is the stack pointer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AddrReg {
    A0,
    A1,
    A2,
    A3,
    A4,
    A5,
    A6,
    A7,
}

impl AddrReg {
    /// All address registers in numeric order.
    pub const ALL: [AddrReg; 8] = [
        AddrReg::A0,
        AddrReg::A1,
        AddrReg::A2,
        AddrReg::A3,
        AddrReg::A4,
        AddrReg::A5,
        AddrReg::A6,
        AddrReg::A7,
    ];

    /// Register number 0–7.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Register from a number 0–7; `None` otherwise.
    pub fn from_index(i: usize) -> Option<AddrReg> {
        Self::ALL.get(i).copied()
    }

    /// The stack pointer alias.
    pub const SP: AddrReg = AddrReg::A7;
}

impl fmt::Display for AddrReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.index())
    }
}

/// The MC68000 condition-code register (the user byte of the status register).
///
/// * `x` — extend: carry for multi-precision arithmetic,
/// * `n` — negative: most significant bit of the result,
/// * `z` — zero: result was zero,
/// * `v` — overflow: signed arithmetic overflow,
/// * `c` — carry/borrow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ccr {
    pub x: bool,
    pub n: bool,
    pub z: bool,
    pub v: bool,
    pub c: bool,
}

impl Ccr {
    /// All flags cleared.
    pub const CLEAR: Ccr = Ccr {
        x: false,
        n: false,
        z: false,
        v: false,
        c: false,
    };

    /// Set `N` and `Z` from a result value of the given size; clear `V` and `C`.
    /// This is the flag behaviour of `MOVE`, `AND`, `OR`, `EOR`, `MULU`, `CLR`, `TST`.
    pub fn set_logic(&mut self, value: u32, size: crate::Size) {
        self.n = size.msb(value);
        self.z = size.truncate(value) == 0;
        self.v = false;
        self.c = false;
    }
}

impl fmt::Display for Ccr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "X={} N={} Z={} V={} C={}",
            self.x as u8, self.n as u8, self.z as u8, self.v as u8, self.c as u8
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Size;

    #[test]
    fn data_reg_roundtrip() {
        for (i, r) in DataReg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(DataReg::from_index(i), Some(*r));
        }
        assert_eq!(DataReg::from_index(8), None);
    }

    #[test]
    fn addr_reg_roundtrip() {
        for (i, r) in AddrReg::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(AddrReg::from_index(i), Some(*r));
        }
        assert_eq!(AddrReg::from_index(9), None);
        assert_eq!(AddrReg::SP, AddrReg::A7);
    }

    #[test]
    fn ccr_logic_flags() {
        let mut ccr = Ccr::CLEAR;
        ccr.set_logic(0x8000, Size::Word);
        assert!(ccr.n && !ccr.z && !ccr.v && !ccr.c);
        ccr.set_logic(0x0001_0000, Size::Word); // truncates to 0
        assert!(!ccr.n && ccr.z);
        ccr.set_logic(0x80, Size::Byte);
        assert!(ccr.n && !ccr.z);
        ccr.set_logic(0x8000_0000, Size::Long);
        assert!(ccr.n && !ccr.z);
    }

    #[test]
    fn display_forms() {
        assert_eq!(DataReg::D3.to_string(), "D3");
        assert_eq!(AddrReg::A6.to_string(), "A6");
        assert!(Ccr::CLEAR.to_string().contains("Z=0"));
    }
}
