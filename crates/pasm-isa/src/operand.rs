//! Operand sizes and effective-address (addressing) modes.

use crate::reg::{AddrReg, DataReg};
use std::fmt;

/// Operation size: byte, word (16-bit, the natural size of the experiments'
/// integer data), or long (32-bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Size {
    Byte,
    Word,
    Long,
}

impl Size {
    /// Number of bytes moved by an access of this size.
    #[inline]
    pub fn bytes(self) -> u32 {
        match self {
            Size::Byte => 1,
            Size::Word => 2,
            Size::Long => 4,
        }
    }

    /// Number of 16-bit bus accesses a data transfer of this size needs.
    /// The MC68000 has a 16-bit data bus, so a long word takes two accesses.
    #[inline]
    pub fn bus_accesses(self) -> u32 {
        match self {
            Size::Byte | Size::Word => 1,
            Size::Long => 2,
        }
    }

    /// Mask keeping only the bits covered by this size.
    #[inline]
    pub fn mask(self) -> u32 {
        match self {
            Size::Byte => 0xFF,
            Size::Word => 0xFFFF,
            Size::Long => 0xFFFF_FFFF,
        }
    }

    /// Truncate a value to this size.
    #[inline]
    pub fn truncate(self, v: u32) -> u32 {
        v & self.mask()
    }

    /// Most significant bit of a value of this size (the `N` flag source).
    #[inline]
    pub fn msb(self, v: u32) -> bool {
        match self {
            Size::Byte => v & 0x80 != 0,
            Size::Word => v & 0x8000 != 0,
            Size::Long => v & 0x8000_0000 != 0,
        }
    }

    /// Sign-extend a value of this size to 32 bits (as `MOVEA`/`ADDA` do for words).
    #[inline]
    pub fn sign_extend(self, v: u32) -> u32 {
        match self {
            Size::Byte => v as u8 as i8 as i32 as u32,
            Size::Word => v as u16 as i16 as i32 as u32,
            Size::Long => v,
        }
    }

    /// Merge `new` into `old`, replacing only the bits covered by this size.
    /// This is how a sub-long write updates a 32-bit register.
    #[inline]
    pub fn merge(self, old: u32, new: u32) -> u32 {
        (old & !self.mask()) | (new & self.mask())
    }

    /// Assembler suffix (`.B`, `.W`, `.L`).
    pub fn suffix(self) -> &'static str {
        match self {
            Size::Byte => ".B",
            Size::Word => ".W",
            Size::Long => ".L",
        }
    }
}

impl fmt::Display for Size {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// Effective address: the subset of MC68000 addressing modes used by the
/// experiment programs.
///
/// The address-register indirect modes with post-increment are the workhorses of
/// the matrix-multiplication inner loop: the paper notes that index calculation
/// was done with "the MC68000's auto-increment mode", which adds no extra
/// execution time over the plain indirect mode on stores (and 4 cycles on loads,
/// already included in the timing tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ea {
    /// Data register direct: `Dn`.
    D(DataReg),
    /// Address register direct: `An`.
    A(AddrReg),
    /// Address register indirect: `(An)`.
    Ind(AddrReg),
    /// Indirect with post-increment: `(An)+`.
    PostInc(AddrReg),
    /// Indirect with pre-decrement: `-(An)`.
    PreDec(AddrReg),
    /// Indirect with 16-bit signed displacement: `d16(An)`.
    Disp(i16, AddrReg),
    /// Absolute short address: `addr.W` (sign-extended 16-bit address).
    AbsW(u16),
    /// Absolute long address: `addr.L`.
    AbsL(u32),
    /// Immediate: `#imm`.
    Imm(u32),
}

impl Ea {
    /// Number of extension words this addressing mode appends to the opcode word.
    pub fn ext_words(self, size: Size) -> u32 {
        match self {
            Ea::D(_) | Ea::A(_) | Ea::Ind(_) | Ea::PostInc(_) | Ea::PreDec(_) => 0,
            Ea::Disp(..) | Ea::AbsW(_) => 1,
            Ea::AbsL(_) => 2,
            Ea::Imm(_) => match size {
                Size::Byte | Size::Word => 1,
                Size::Long => 2,
            },
        }
    }

    /// True if this mode references memory (as opposed to a register or immediate).
    #[inline]
    pub fn is_memory(self) -> bool {
        !matches!(self, Ea::D(_) | Ea::A(_) | Ea::Imm(_))
    }

    /// True if the mode can be the destination of a write.
    #[inline]
    pub fn is_writable(self) -> bool {
        !matches!(self, Ea::Imm(_))
    }

    /// True if the mode is a plain register (no bus traffic at all).
    #[inline]
    pub fn is_register(self) -> bool {
        matches!(self, Ea::D(_) | Ea::A(_))
    }
}

impl fmt::Display for Ea {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ea::D(d) => write!(f, "{d}"),
            Ea::A(a) => write!(f, "{a}"),
            Ea::Ind(a) => write!(f, "({a})"),
            Ea::PostInc(a) => write!(f, "({a})+"),
            Ea::PreDec(a) => write!(f, "-({a})"),
            Ea::Disp(d, a) => write!(f, "{d}({a})"),
            Ea::AbsW(x) => write!(f, "${x:04X}.W"),
            Ea::AbsL(x) => write!(f, "${x:08X}.L"),
            Ea::Imm(v) => write!(f, "#{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_arithmetic() {
        assert_eq!(Size::Byte.bytes(), 1);
        assert_eq!(Size::Word.bytes(), 2);
        assert_eq!(Size::Long.bytes(), 4);
        assert_eq!(Size::Long.bus_accesses(), 2);
        assert_eq!(Size::Word.truncate(0x12345), 0x2345);
        assert_eq!(Size::Byte.merge(0xAABBCCDD, 0x11), 0xAABBCC11);
        assert_eq!(Size::Word.sign_extend(0x8000), 0xFFFF_8000);
        assert_eq!(Size::Byte.sign_extend(0x7F), 0x7F);
    }

    #[test]
    fn ext_word_counts() {
        use crate::reg::AddrReg::*;
        assert_eq!(Ea::Ind(A0).ext_words(Size::Word), 0);
        assert_eq!(Ea::Disp(4, A1).ext_words(Size::Word), 1);
        assert_eq!(Ea::AbsL(0x10000).ext_words(Size::Byte), 2);
        assert_eq!(Ea::Imm(5).ext_words(Size::Word), 1);
        assert_eq!(Ea::Imm(5).ext_words(Size::Long), 2);
    }

    #[test]
    fn memory_classification() {
        use crate::reg::{AddrReg::*, DataReg::*};
        assert!(!Ea::D(D0).is_memory());
        assert!(!Ea::Imm(1).is_memory());
        assert!(Ea::PostInc(A2).is_memory());
        assert!(Ea::AbsW(0x100).is_memory());
        assert!(!Ea::Imm(1).is_writable());
        assert!(Ea::Ind(A0).is_writable());
        assert!(Ea::A(A3).is_register());
    }

    #[test]
    fn display_forms() {
        use crate::reg::{AddrReg::*, DataReg::*};
        assert_eq!(Ea::PostInc(A1).to_string(), "(A1)+");
        assert_eq!(Ea::PreDec(A7).to_string(), "-(A7)");
        assert_eq!(Ea::Disp(-4, A2).to_string(), "-4(A2)");
        assert_eq!(Ea::Imm(42).to_string(), "#42");
        assert_eq!(Ea::D(D5).to_string(), "D5");
    }
}
