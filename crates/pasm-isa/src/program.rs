//! Programs and the label-resolving program builder.
//!
//! A [`Program`] is a sequence of instructions addressed by instruction index,
//! plus a set of *SIMD blocks*. On the real prototype, blocks of SIMD
//! instructions live in the Fetch Unit RAM of each MC; the MC commands the
//! Fetch Unit Controller to enqueue a block, and the controller streams it into
//! the FIFO queue word by word while the MC proceeds (paper §3). Here a block
//! is simply an indexed `Vec<Instr>` referenced by [`crate::Instr::Enqueue`].

use crate::instr::Instr;
use std::collections::BTreeMap;
use std::fmt;

/// An opaque label handle issued by [`ProgramBuilder::new_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Identifier of a SIMD instruction block within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockId(pub u16);

/// Errors surfaced when finalizing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A label was referenced by a branch but never bound to a position.
    UnboundLabel(String),
    /// A label was bound twice.
    DuplicateLabel(String),
    /// A branch target index is outside the program.
    TargetOutOfRange { instr: usize, target: usize },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnboundLabel(n) => write!(f, "label `{n}` referenced but never bound"),
            BuildError::DuplicateLabel(n) => write!(f, "label `{n}` bound more than once"),
            BuildError::TargetOutOfRange { instr, target } => {
                write!(
                    f,
                    "instruction {instr} branches to out-of-range index {target}"
                )
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// A finalized program: main instruction stream + SIMD blocks + debug symbols.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The main instruction stream (a PE's MIMD program, or an MC's control program).
    pub instrs: Vec<Instr>,
    /// SIMD instruction blocks (the Fetch Unit RAM contents), indexed by [`BlockId`].
    pub blocks: Vec<Vec<Instr>>,
    /// Bound label positions, for listings and debugging.
    pub symbols: BTreeMap<String, usize>,
}

impl Program {
    /// Number of instructions in the main stream.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// True if the main stream is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Total static instruction count including all SIMD blocks.
    pub fn total_instrs(&self) -> usize {
        self.instrs.len() + self.blocks.iter().map(Vec::len).sum::<usize>()
    }

    /// Total static size in 16-bit instruction words (main stream only).
    pub fn words(&self) -> u32 {
        self.instrs.iter().map(Instr::words).sum()
    }

    /// Check structural invariants: branch targets in range, `Enqueue` block ids
    /// valid, and no MC-only operations inside SIMD blocks.
    pub fn validate(&self) -> Result<(), BuildError> {
        for (i, ins) in self.instrs.iter().enumerate() {
            if let Some(t) = ins.target() {
                // `JmpMimd` in the main stream would also be odd, but harmless.
                if t > self.instrs.len() {
                    return Err(BuildError::TargetOutOfRange {
                        instr: i,
                        target: t,
                    });
                }
            }
            if let Instr::Enqueue { block } = ins {
                if *block as usize >= self.blocks.len() {
                    return Err(BuildError::TargetOutOfRange {
                        instr: i,
                        target: *block as usize,
                    });
                }
            }
        }
        for blk in &self.blocks {
            for (i, ins) in blk.iter().enumerate() {
                debug_assert!(!ins.is_mc_only(), "MC-only op inside SIMD block at {i}");
                // `JmpMimd` targets inside a block index the *PE* program (the
                // block lives in an MC program but is executed by PEs), so its
                // range cannot be checked here. Other branches are meaningless
                // in a broadcast stream.
                debug_assert!(
                    matches!(ins, Instr::JmpMimd { .. }) || ins.target().is_none(),
                    "branch other than JMPMIMD inside SIMD block: {ins}"
                );
            }
        }
        Ok(())
    }

    /// Render an assembly-style listing (instruction indices, symbols, blocks).
    pub fn listing(&self) -> String {
        use fmt::Write as _;
        let mut by_index: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
        for (name, &idx) in &self.symbols {
            by_index.entry(idx).or_default().push(name);
        }
        let mut out = String::new();
        for (i, ins) in self.instrs.iter().enumerate() {
            if let Some(names) = by_index.get(&i) {
                for n in names {
                    let _ = writeln!(out, "{n}:");
                }
            }
            let _ = writeln!(out, "  {i:5}  {ins}");
        }
        for (b, blk) in self.blocks.iter().enumerate() {
            let _ = writeln!(out, "block {b}:");
            for ins in blk {
                let _ = writeln!(out, "         {ins}");
            }
        }
        out
    }
}

/// Where an emitted instruction lives (main stream or a SIMD block).
#[derive(Debug, Clone, Copy)]
enum Loc {
    Main(usize),
    Block(usize, usize),
}

/// Incremental program builder with forward-referencing labels.
///
/// ```
/// use pasm_isa::{Instr, ProgramBuilder, DataReg, Cond};
///
/// let mut b = ProgramBuilder::new();
/// let top = b.new_label("top");
/// b.bind(top);
/// b.emit(Instr::Nop);
/// b.branch(Instr::Dbra { dst: DataReg::D0, target: 0 }, top);
/// b.emit(Instr::Halt);
/// let p = b.build().unwrap();
/// assert_eq!(p.instrs.len(), 3);
/// assert_eq!(p.instrs[1].target(), Some(0));
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    blocks: Vec<Vec<Instr>>,
    label_names: Vec<String>,
    bound: Vec<Option<usize>>,
    fixups: Vec<(Loc, Label)>,
    /// If set, emission goes into this block instead of the main stream.
    current_block: Option<usize>,
}

impl ProgramBuilder {
    /// Fresh, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a new, yet-unbound label.
    pub fn new_label(&mut self, name: impl Into<String>) -> Label {
        self.label_names.push(name.into());
        self.bound.push(None);
        Label(self.label_names.len() - 1)
    }

    /// Bind a label to the *next* main-stream instruction position.
    ///
    /// Labels always denote main-stream positions (a `JmpMimd` inside a block
    /// targets the PE's own program), so binding while inside a block is a bug.
    pub fn bind(&mut self, l: Label) {
        assert!(
            self.current_block.is_none(),
            "cannot bind a label inside a SIMD block"
        );
        assert!(
            self.bound[l.0].is_none(),
            "label `{}` bound twice",
            self.label_names[l.0]
        );
        self.bound[l.0] = Some(self.instrs.len());
    }

    /// Create and immediately bind a label at the current position.
    pub fn here(&mut self, name: impl Into<String>) -> Label {
        let l = self.new_label(name);
        self.bind(l);
        l
    }

    /// Emit one instruction into the current stream (main or open block).
    pub fn emit(&mut self, i: Instr) {
        match self.current_block {
            None => self.instrs.push(i),
            Some(b) => self.blocks[b].push(i),
        }
    }

    /// Emit a sequence of instructions.
    pub fn emit_all(&mut self, instrs: impl IntoIterator<Item = Instr>) {
        for i in instrs {
            self.emit(i);
        }
    }

    /// Emit a branch-family instruction whose target will be patched to `l`.
    /// The `target` field of the passed instruction is ignored.
    pub fn branch(&mut self, i: Instr, l: Label) {
        assert!(
            i.target().is_some(),
            "branch() needs an instruction with a target: {i}"
        );
        let loc = match self.current_block {
            None => Loc::Main(self.instrs.len()),
            Some(b) => Loc::Block(b, self.blocks[b].len()),
        };
        self.emit(i);
        self.fixups.push((loc, l));
    }

    /// Open a new SIMD block; subsequent `emit`s go into it until [`Self::end_block`].
    pub fn begin_block(&mut self) -> BlockId {
        assert!(self.current_block.is_none(), "SIMD blocks cannot nest");
        self.blocks.push(Vec::new());
        let id = self.blocks.len() - 1;
        self.current_block = Some(id);
        BlockId(id as u16)
    }

    /// Close the currently open SIMD block.
    pub fn end_block(&mut self) {
        assert!(
            self.current_block.is_some(),
            "end_block without begin_block"
        );
        self.current_block = None;
    }

    /// Current instruction index of the main stream (where the next `emit` lands).
    pub fn position(&self) -> usize {
        self.instrs.len()
    }

    /// Finalize: resolve all label fixups and validate.
    pub fn build(mut self) -> Result<Program, BuildError> {
        assert!(
            self.current_block.is_none(),
            "unclosed SIMD block at build()"
        );
        for (loc, l) in self.fixups.drain(..) {
            let target = self.bound[l.0]
                .ok_or_else(|| BuildError::UnboundLabel(self.label_names[l.0].clone()))?;
            match loc {
                Loc::Main(i) => self.instrs[i].set_target(target),
                Loc::Block(b, i) => self.blocks[b][i].set_target(target),
            }
        }
        let symbols = self
            .label_names
            .iter()
            .zip(&self.bound)
            .filter_map(|(n, b)| b.map(|idx| (n.clone(), idx)))
            .collect();
        let p = Program {
            instrs: self.instrs,
            blocks: self.blocks,
            symbols,
        };
        p.validate()?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Cond;

    #[test]
    fn forward_and_backward_labels() {
        let mut b = ProgramBuilder::new();
        let fwd = b.new_label("fwd");
        let back = b.here("back");
        b.emit(Instr::Nop);
        b.branch(
            Instr::Bcc {
                cond: Cond::Eq,
                target: 0,
            },
            fwd,
        );
        b.branch(
            Instr::Bcc {
                cond: Cond::True,
                target: 0,
            },
            back,
        );
        b.bind(fwd);
        b.emit(Instr::Halt);
        let p = b.build().unwrap();
        assert_eq!(p.instrs[1].target(), Some(3));
        assert_eq!(p.instrs[2].target(), Some(0));
        assert_eq!(p.symbols["fwd"], 3);
        assert_eq!(p.symbols["back"], 0);
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label("nowhere");
        b.branch(Instr::Jmp { target: 0 }, l);
        assert_eq!(
            b.build().unwrap_err(),
            BuildError::UnboundLabel("nowhere".into())
        );
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label("x");
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn blocks_with_branch_into_main() {
        let mut b = ProgramBuilder::new();
        let resume = b.new_label("resume");
        let blk = b.begin_block();
        b.emit(Instr::Nop);
        b.branch(Instr::JmpMimd { target: 0 }, resume);
        b.end_block();
        b.emit(Instr::Enqueue { block: blk.0 });
        b.bind(resume);
        b.emit(Instr::Halt);
        let p = b.build().unwrap();
        assert_eq!(p.blocks.len(), 1);
        assert_eq!(p.blocks[0][1].target(), Some(1));
        p.validate().unwrap();
    }

    #[test]
    fn enqueue_of_missing_block_fails_validation() {
        let p = Program {
            instrs: vec![Instr::Enqueue { block: 3 }],
            blocks: vec![],
            symbols: BTreeMap::new(),
        };
        assert!(matches!(
            p.validate(),
            Err(BuildError::TargetOutOfRange { .. })
        ));
    }

    #[test]
    fn listing_contains_symbols_and_blocks() {
        let mut b = ProgramBuilder::new();
        b.here("entry");
        b.emit(Instr::Nop);
        let blk = b.begin_block();
        b.emit(Instr::Nop);
        b.end_block();
        b.emit(Instr::Enqueue { block: blk.0 });
        b.emit(Instr::Halt);
        let p = b.build().unwrap();
        let txt = p.listing();
        assert!(txt.contains("entry:"));
        assert!(txt.contains("block 0:"));
        assert!(txt.contains("ENQUEUE"));
        assert_eq!(p.total_instrs(), 4);
        assert!(p.words() > 0);
    }

    #[test]
    fn counts() {
        let p = Program::default();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }
}
