#!/bin/sh
# Regenerate every paper artifact. Build first:
#   cargo build --release -p bench
set -x
cd "$(dirname "$0")/.."
B=target/release
for bin in table1 fig6 fig7 fig8_9_10 fig11 fig12 ablations; do
  $B/$bin > bench-results/$bin.txt 2>&1
  echo "DONE $bin"
done
echo ALL_FIGURES_DONE
