#!/usr/bin/env bash
# Local CI: formatting, lints, release build, full test suite.
# Run from the repository root. Any failure aborts the script.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --locked"
cargo build --release --locked

echo "==> cargo test -q"
cargo test -q

echo "==> ci.sh: all green"
