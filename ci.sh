#!/usr/bin/env bash
# Local CI: formatting, lints, release build, full test suite.
# Run from the repository root. Any failure aborts the script.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --locked"
cargo build --release --locked

echo "==> cargo test -q"
cargo test -q

echo "==> cargo doc --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "==> breakdown smoke-run (n=4 cycle-accounting signatures)"
cargo run --release -q -p bench --bin breakdown -- --quick >/dev/null

echo "==> faultsweep smoke-run (4-PE single-fault theorem, all 14 faults)"
cargo run --release -q -p bench --bin faultsweep -- --quick >/dev/null

echo "==> kernelsweep smoke-run (per-kernel mode placement, p=4)"
cargo run --release -q -p bench --bin kernelsweep -- --quick >/dev/null

echo "==> blockbench smoke-run (fast path byte-identical to interpreter)"
cargo run --release -q -p bench --bin blockbench -- --quick >/dev/null

echo "==> fast-path equivalence tests (kernels x modes x fault plans)"
cargo test -q -p pasm --test integration_fastpath

echo "==> kernel registry integration tests (all kernels x modes x p)"
cargo test -q -p pasm --test integration_kernels --test integration_determinism

echo "==> worker panic quarantine + cancel-while-running integration test"
cargo test -q -p pasm-server --test integration_server_faults

echo "==> crash-injection recovery tests (seeded kill points, bit flips, readiness)"
cargo test -q -p pasm-server --test integration_recovery

echo "==> durabench smoke-run (fsync policies + restart-serves-cached gate)"
cargo run --release -q -p bench --bin durabench -- --quick >/dev/null

echo "==> query-tier tests (byte-identical spans, zero re-simulation, crash recovery)"
cargo test -q -p pasm-server --test integration_query

echo "==> querybench smoke-run (cold/warm query latency + span-store recovery gate)"
cargo run --release -q -p bench --bin querybench -- --quick >/dev/null

echo "==> ci.sh: all green"
