//! The Extra-Stage Cube's reason for existing: tolerate any single interchange
//! box fault. This example breaks boxes in each kind of stage, applies the ESC
//! reconfiguration rules, and shows the network still routes every pair — then
//! runs a full matrix multiplication over a degraded network and reports the
//! measured price of the fault (see `docs/FAULTS.md`).
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use pasm::{ExperimentKey, FaultPlan, Machine, MachineConfig, Params};
use pasm_net::EscNetwork;
use pasm_prog::matmul::{mimd, select_vm};
use pasm_prog::{CommSync, Layout, Matrix};

fn demonstrate(stage: u32, box_idx: usize, label: &str) {
    let mut net = EscNetwork::new(16);
    net.set_fault(stage, box_idx, true);
    net.reconfigure_for_faults();
    let mut ok = 0;
    for s in 0..16 {
        for d in 0..16 {
            if let Ok(id) = net.establish(s, d) {
                ok += 1;
                net.release(id).unwrap();
            }
        }
    }
    println!(
        "{label}: fault at (stage {stage}, box {box_idx}) -> extra stage {}, output stage {}; {ok}/256 pairs routable",
        if net.extra_enabled() { "ENABLED" } else { "bypassed" },
        if net.output_enabled() { "enabled" } else { "BYPASSED" },
    );
}

fn main() {
    println!("Extra-Stage Cube single-fault tolerance (N=16: 5 stages x 8 boxes)\n");
    demonstrate(0, 2, "extra-stage fault   ");
    demonstrate(2, 5, "interior-stage fault");
    demonstrate(4, 1, "output-stage fault  ");

    // Full application run over a network with an interior fault.
    println!("\nRunning S/MIMD matrix multiplication (n=16, p=4) over the degraded network...");
    let cfg = MachineConfig::prototype();
    let mut machine = Machine::new(cfg.clone());
    machine.network_mut().set_fault(2, 5, true);
    machine.network_mut().reconfigure_for_faults();

    let params = Params::new(16, 4);
    let a = Matrix::uniform(16, 1);
    let b = Matrix::uniform(16, 2);
    let vm = select_vm(&cfg, 4);
    let layout = Layout::parallel(16, 4);
    layout.load(&mut machine, &vm.pes, &a, &b);
    machine
        .connect_ring(&vm.pes)
        .expect("ring routed around the fault");
    for &pe in &vm.pes {
        machine.load_pe_program(pe, mimd::pe_program(params, CommSync::Barrier));
    }
    machine.load_mc_program(
        vm.mcs[0],
        mimd::mc_program(params, CommSync::Barrier, vm.mask),
    );
    let run = machine.run().expect("run");
    let correct = layout.read_c(&machine, &vm.pes) == a.multiply(&b);
    println!(
        "completed in {:.2} ms of machine time; result {} against the host reference.",
        pasm_isa::cycles_to_ms(run.makespan),
        if correct { "VERIFIED" } else { "WRONG" }
    );
    assert!(correct);

    // The same experiment through the keyed runner: a `FaultPlan` in the key
    // makes `run_keyed` also run the fault-free twin and report the price.
    println!("\nMeasured cost of the fault (keyed runner, `fault` in the key):");
    let key = ExperimentKey {
        config: cfg,
        mode: pasm::Mode::Smimd,
        params,
        seed: 1988,
        fault: FaultPlan::parse("box:2:5").unwrap(),
        workload: pasm::MATMUL,
    };
    let result = pasm::run_keyed(&key).expect("faulted keyed run");
    println!(
        "fault {}: {} cycles vs {} fault-free -> slowdown {:.4}, {} cycles in the fault_detour bucket",
        result.fault,
        result.cycles,
        result.baseline_cycles,
        result.slowdown,
        result.pe_buckets[pasm_machine::Bucket::FaultDetour as usize],
    );
    assert!(result.slowdown >= 1.0);
}
