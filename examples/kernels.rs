//! Tour the kernel registry: run every registered workload in all three
//! parallel modes on the 16-PE prototype and print where each one lands on
//! the SIMD ↔ MIMD spectrum, verified against the scalar host reference.
//!
//! ```sh
//! cargo run --release --example kernels [n] [p]
//! ```
//!
//! (`n` is scaled per kernel when the given value does not satisfy the
//! kernel's shape constraints — bitonic needs power-of-two blocks, smoothing
//! a multiple of the partition size.)

use pasm::{run_kernel, MachineConfig, Mode, Params};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let p: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let cfg = MachineConfig::prototype();
    let seed = pasm::figures::DEFAULT_SEED;

    println!(
        "kernel registry on the {}-PE prototype, p={p}:\n",
        cfg.n_pes
    );
    println!(
        "{:<10} {:<42} {:>10} {:>10} {:>10}  winner",
        "kernel", "description", "SIMD", "MIMD", "S/MIMD"
    );
    for kernel in pasm::kernels::kernels().iter().copied() {
        // Walk n down until the kernel's shape constraints accept it.
        let mut kn = n;
        while kn >= p * 2 && kernel.validate(kn, p).is_err() {
            kn /= 2;
        }
        if kernel.validate(kn, p).is_err() {
            println!("{:<10} skipped: no valid n near {n}", kernel.name());
            continue;
        }
        let input = kernel.generate(kn, seed);
        let mut cycles = Vec::new();
        for mode in [Mode::Simd, Mode::Mimd, Mode::Smimd] {
            let out = run_kernel(&cfg, kernel, mode, Params::new(kn, p), &input)
                .unwrap_or_else(|e| panic!("{} {mode}: {e}", kernel.name()));
            out.verify(&input)
                .unwrap_or_else(|e| panic!("{} {mode}: {e}", kernel.name()));
            cycles.push(out.cycles);
        }
        let winner = match cycles
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
        {
            Some(0) => "SIMD",
            Some(1) => "MIMD",
            _ => "S/MIMD",
        };
        println!(
            "{:<10} {:<42} {:>10} {:>10} {:>10}  {winner} (n={kn})",
            kernel.name(),
            kernel.description(),
            cycles[0],
            cycles[1],
            cycles[2],
        );
    }
    println!(
        "\nFixed-time stencils broadcast well (SIMD); data-dependent comparators\n\
         want private control flow (MIMD); S/MIMD buys back synchronization\n\
         only at the phase boundaries. See docs/KERNELS.md."
    );
}
