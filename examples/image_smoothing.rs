//! An image-processing style workload — the application domain PASM was
//! designed for. A 1-D scanline is block-partitioned over 4 PEs; each PE
//! smooths its chunk with a two-point moving average and fetches the one
//! boundary sample it needs from its right ring neighbour over the
//! circuit-switched network (the same `PE i → PE (i−1)` ring as the matrix
//! multiplication).
//!
//! The PE program is written in the crate's MC68000-style *text assembly* to
//! show that workflow; the MIMD polling handshake is the paper's §5.2
//! protocol.
//!
//! ```sh
//! cargo run --release --example image_smoothing
//! ```

use pasm::{Machine, MachineConfig};
use pasm_isa::asm::assemble;
use pasm_prog::matmul::select_vm;

const K: usize = 64; // samples per PE
const IN_BASE: u32 = 0x2000;
const OUT_BASE: u32 = 0x3000;

fn pe_source() -> String {
    // The exchange interleaves sends and receives byte-by-byte: the network
    // transfer register holds a single byte, so sending both bytes before
    // receiving anything would leave every PE waiting on its left neighbour
    // (all-blocked cycle). Interleaving is the protocol the paper's matrix
    // multiply uses, for the same reason.
    format!(
        "
        ; ---- exchange boundary samples: my x[0] goes left, the right
        ; ---- neighbour's x[0] arrives (16 bits over the 8-bit network)
            MOVE.W  ${in_base:X}.W,D4
            CLR.W   D5
        ptx1: BTST  #0,$00E00004.L        ; poll: transmitter ready
            BEQ     ptx1
            MOVE.B  D4,$00E00000.L        ; send low byte
        prx1: BTST  #1,$00E00004.L        ; poll: receive valid
            BEQ     prx1
            MOVE.B  $00E00002.L,D5        ; receive low byte
            LSR.W   #8,D4
        ptx2: BTST  #0,$00E00004.L
            BEQ     ptx2
            MOVE.B  D4,$00E00000.L        ; send high byte
        prx2: BTST  #1,$00E00004.L
            BEQ     prx2
            MOVE.B  $00E00002.L,D6        ; receive high byte
            LSL.W   #8,D6
            OR.W    D6,D5                 ; D5 = neighbour's first sample

        ; ---- smooth the local pairs: out[i] = (x[i] + x[i+1]) / 2
            LEA     ${in_base:X}.W,A0
            LEA     ${out_base:X}.W,A1
            MOVE.W  #{pairs},D2
        loop: MOVE.W (A0)+,D0
            ADD.W   (A0),D0
            LSR.W   #1,D0
            MOVE.W  D0,(A1)+
            DBRA    D2,loop

        ; ---- the last output pairs my last sample with the boundary sample
            MOVE.W  (A0),D0
            ADD.W   D5,D0
            LSR.W   #1,D0
            MOVE.W  D0,(A1)
            HALT
        ",
        in_base = IN_BASE,
        out_base = OUT_BASE,
        pairs = K - 2, // DBRA runs count+1 times = K-1 local pairs
    )
}

fn main() {
    let cfg = MachineConfig::prototype();
    let mut machine = Machine::new(cfg.clone());
    let vm = select_vm(&cfg, 4);
    machine.connect_ring(&vm.pes).expect("ring");

    // A synthetic noisy scanline, partitioned in logical ring order.
    let signal: Vec<u16> = (0..4 * K)
        .map(|i| (500.0 + 400.0 * (i as f64 / 9.0).sin()) as u16 + ((i * 37) % 23) as u16)
        .collect();
    let program = assemble(&pe_source()).expect("assemble PE program");
    for (l, &pe) in vm.pes.iter().enumerate() {
        machine
            .pe_mem_mut(pe)
            .load_words(IN_BASE, &signal[l * K..(l + 1) * K]);
        machine.load_pe_program(pe, program.clone());
        machine.start_pe(pe, 0);
    }

    let run = machine.run().expect("run");

    // Gather and verify against the host reference (circular smoothing).
    let mut out = Vec::with_capacity(4 * K);
    for &pe in &vm.pes {
        out.extend(machine.pe_mem(pe).dump_words(OUT_BASE, K));
    }
    let reference: Vec<u16> = (0..4 * K)
        .map(|i| (signal[i] as u32 + signal[(i + 1) % (4 * K)] as u32) as u16 >> 1)
        .collect();
    assert_eq!(
        out, reference,
        "smoothed scanline must match the host reference"
    );

    println!(
        "smoothed {} samples on 4 PEs in {:.3} ms of machine time",
        4 * K,
        pasm_isa::cycles_to_ms(run.makespan)
    );
    println!("first 12 in : {:?}", &signal[..12]);
    println!("first 12 out: {:?}", &out[..12]);
    println!("result verified against the host reference.");
    let max_pe = run.pe.iter().map(|t| t.instrs).max().unwrap();
    println!(
        "per-PE instructions: {max_pe}; network bytes/PE: {}",
        run.pe.iter().map(|t| t.net_bytes_sent).max().unwrap()
    );
}
