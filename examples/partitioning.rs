//! PASM = *Partitionable* SIMD/MIMD: carve the 16-PE prototype into
//! independent virtual machines and run different jobs — in different
//! parallelism modes — at the same time.
//!
//! ```sh
//! cargo run --release --example partitioning
//! ```

use pasm::{run_concurrent, run_matmul, Job, Mode, Params};
use pasm_machine::MachineConfig;
use pasm_prog::Matrix;

fn main() {
    let cfg = MachineConfig::prototype();

    // Three-way partition: an 8-PE SIMD job, a 4-PE S/MIMD job, and a serial
    // job, each on its own MC group(s).
    let jobs = [
        Job {
            mode: Mode::Simd,
            params: Params::new(32, 8),
            mcs: vec![0, 1],
            a: Matrix::identity(32),
            b: Matrix::uniform(32, 1),
        },
        Job {
            mode: Mode::Smimd,
            params: Params::new(16, 4),
            mcs: vec![2],
            a: Matrix::uniform(16, 2),
            b: Matrix::uniform(16, 3),
        },
        Job {
            mode: Mode::Serial,
            params: Params::new(16, 1),
            mcs: vec![3],
            a: Matrix::uniform(16, 4),
            b: Matrix::uniform(16, 5),
        },
    ];

    println!(
        "running {} jobs simultaneously on one 16-PE prototype:\n",
        jobs.len()
    );
    let outcomes = run_concurrent(&cfg, &jobs).expect("partitioned run");

    for (job, out) in jobs.iter().zip(&outcomes) {
        let correct = out.c == job.a.multiply(&job.b);
        println!(
            "  {:<7} n={:<3} p={:<2} on MCs {:?}: {:>9.2} ms  result {}",
            job.mode.to_string(),
            job.params.n,
            job.params.p,
            job.mcs,
            pasm_isa::cycles_to_ms(out.cycles),
            if correct { "VERIFIED" } else { "WRONG" }
        );
        assert!(correct);
    }

    // Timing isolation: the S/MIMD job takes exactly as long as it would alone.
    let solo = run_matmul(
        &cfg,
        Mode::Smimd,
        Params::new(16, 4),
        &jobs[1].a,
        &jobs[1].b,
    )
    .expect("solo run");
    println!(
        "\ntiming isolation: S/MIMD job solo {} cycles, partitioned {} cycles ({})",
        solo.cycles,
        outcomes[1].cycles,
        if solo.cycles == outcomes[1].cycles {
            "identical"
        } else {
            "DIFFERENT!"
        }
    );
    assert_eq!(solo.cycles, outcomes[1].cycles);
}
