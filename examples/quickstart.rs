//! Quickstart: multiply two matrices on the simulated PASM prototype in all
//! four of the paper's modes and compare their timing.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pasm::{paper_workload, run_matmul_verified, Breakdown, Mode, Params};
use pasm_machine::MachineConfig;

fn main() {
    // The 16-PE / 4-MC prototype with the calibrated memory timings.
    let cfg = MachineConfig::prototype();

    // The paper's workload: identity in A (the multiplicand value does not
    // affect MULU timing), seeded uniform-random 16-bit data in B.
    let n = 64;
    let (a, b) = paper_workload(n, 1988);

    println!("matrix multiplication, n={n}, p=4, one multiply per inner loop\n");
    println!("mode     time(ms)   multiply   comm     other    PE instrs");

    let serial = run_matmul_verified(&cfg, Mode::Serial, Params::new(n, 1), &a, &b).unwrap();
    for mode in Mode::ALL {
        let p = if mode == Mode::Serial { 1 } else { 4 };
        let out = run_matmul_verified(&cfg, mode, Params::new(n, p), &a, &b).unwrap();
        let br = Breakdown::of(&out);
        println!(
            "{:<8} {:>8.2} {:>9.2} {:>8.2} {:>8.2} {:>11}",
            mode.to_string(),
            out.millis(),
            pasm_isa::cycles_to_ms(br.multiply),
            pasm_isa::cycles_to_ms(br.communication),
            pasm_isa::cycles_to_ms(br.other),
            out.run.pe_instrs(),
        );
        if mode != Mode::Serial {
            println!(
                "         speed-up {:.2}, efficiency {:.3}{}",
                pasm::speedup(serial.cycles, out.cycles),
                pasm::efficiency(serial.cycles, out.cycles, p),
                if pasm::efficiency(serial.cycles, out.cycles, p) > 1.0 {
                    "  <- superlinear (control flow hidden on the MCs)"
                } else {
                    ""
                }
            );
        }
    }
    println!("\nEvery run's product was verified against a host-side reference multiply.");
}
