; Sum the words 1..100 with a DBRA loop (quickstart for the assembler).
;
;   cargo run -p pasm --bin pasm-run -- examples/programs/sum.s
;
; D0 ends at 5050.

        MOVEQ   #0,D0          ; accumulator
        MOVE.W  #100,D1        ; next value to add
        MOVE.W  #99,D7         ; loop counter (DBRA runs count+1 times)
loop:   ADD.W   D1,D0
        SUBQ.W  #1,D1
        DBRA    D7,loop
        HALT
