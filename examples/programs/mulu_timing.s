; Demonstrates the non-deterministic MC68000 multiply timing the paper's
; experiments are built on: 1000 multiplies by a zero multiplier, then 1000 by
; an all-ones multiplier. Run both halves and compare cycle counts:
;
;   cargo run -p pasm --bin pasm-run -- examples/programs/mulu_timing.s --stats
;
; Expected: the second loop takes 2*16 = 32 more cycles per multiply
; (38 vs 70 core cycles per MULU).

        MOVE.W  #0,D1          ; multiplier with popcount 0
        MOVE.W  #999,D7
l1:     MULU    D1,D0          ; 38 cycles each
        DBRA    D7,l1

        MOVE.W  #$FFFF,D1      ; multiplier with popcount 16
        MOVEQ   #1,D0
        MOVE.W  #999,D7
l2:     MULU    D1,D2          ; 70 cycles each
        DBRA    D7,l2

        HALT
