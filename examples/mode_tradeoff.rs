//! Reproduce the paper's headline phenomenon at small scale: as data-dependent
//! multiplies are added to the inner loop, the S/MIMD hybrid overtakes pure
//! SIMD — the point at which *decoupling variable-time operations into
//! asynchronous streams* pays for the loss of SIMD's fixed advantages.
//!
//! ```sh
//! cargo run --release --example mode_tradeoff [n]
//! ```

use pasm::figures::{fig7, fig7_crossover};
use pasm::report::render_fig7;
use pasm_machine::MachineConfig;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let cfg = MachineConfig::prototype();
    let extras: Vec<usize> = (0..=20).collect();

    println!("SIMD vs S/MIMD, n={n}, p=4, sweeping added inner-loop multiplies\n");
    let rows = fig7(&cfg, n, 4, &extras, 1988);
    print!("{}", render_fig7(&rows));

    match fig7_crossover(&rows) {
        Some(x) => println!(
            "\nWith {x} added multiplies the per-instruction lockstep maximum\n\
             outweighs SIMD's control-flow overlap and faster queue fetches.\n\
             (The paper measured this crossover at ~14 for n=64 on the prototype.)"
        ),
        None => println!("\nNo crossover at this n — try a larger matrix."),
    }
}
