//! Query-tier tests of the cross-run span store behind `pasm-server`
//! (ISSUE 10): completed jobs are queryable — full phase breakdowns by
//! fingerprint, filtered/paginated listings, cross-run phase aggregation —
//! without ever re-entering the simulator, and the store recovers every
//! durably indexed fingerprint across seeded crashes.
//!
//! The acceptance gates:
//!
//! * `GET /spans/<fp>` is **byte-identical** to a direct traced run of the
//!   same key — the stored record is the run's timing payload, not a
//!   re-derivation;
//! * serving queries never simulates (`sim_runs` in `/stats` is the proof);
//! * after a seeded crash (`CrashFuse`) and restart, every span record that
//!   reached disk is indexed and served, and idempotent re-ingest keeps the
//!   listing duplicate-free.

use pasm::{ExperimentKey, Mode};
use pasm_server::store::read_records;
use pasm_server::{CrashFuse, FsyncPolicy, Server, ServerConfig};
use pasm_store::{RunSummary, SpanRecord};
use pasm_util::{json, Json, ToJson};
use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- helpers

fn request_raw(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line: {raw:?}"));
    let (_, payload) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    (status, payload.to_string())
}

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, Json) {
    let (status, payload) = request_raw(addr, method, path, body);
    let parsed = json::parse(&payload).unwrap_or_else(|e| panic!("bad JSON body {payload:?}: {e}"));
    (status, parsed)
}

fn get(addr: SocketAddr, path: &str) -> (u16, Json) {
    request(addr, "GET", path, None)
}

fn submit(addr: SocketAddr, body: &str) -> (u16, Json) {
    request(addr, "POST", "/submit", Some(body))
}

/// Submit, await `done`, return the job's content fingerprint (16 hex).
fn run_to_done(addr: SocketAddr, body: &str) -> String {
    let (code, resp) = submit(addr, body);
    assert!(code == 202 || code == 200, "{resp:?}");
    let id = resp.get("job_id").and_then(Json::as_u64).expect("job_id");
    let fp = resp
        .get("key")
        .and_then(Json::as_str)
        .expect("key")
        .to_string();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (code, status) = get(addr, &format!("/status/{id}"));
        assert_eq!(code, 200, "{status:?}");
        match status.get("status").and_then(Json::as_str).unwrap_or("") {
            "queued" | "running" => {
                assert!(Instant::now() < deadline, "job {id} did not finish");
                std::thread::sleep(Duration::from_millis(5));
            }
            "done" => return fp,
            other => panic!("job {id} ended {other}: {status:?}"),
        }
    }
}

fn await_ready(addr: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (code, _) = get(addr, "/healthz");
        if code == 200 {
            return;
        }
        assert!(Instant::now() < deadline, "server never became ready");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn stat_u64(addr: SocketAddr, path: &[&str]) -> u64 {
    let (code, mut v) = get(addr, "/stats");
    assert_eq!(code, 200);
    for key in path {
        v = v.get(key).cloned().unwrap_or(Json::Null);
    }
    v.as_u64()
        .unwrap_or_else(|| panic!("{} missing from /stats", path.join(".")))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pasm-query-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_memory() -> Server {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 64,
        ..ServerConfig::default()
    })
    .expect("server starts");
    await_ready(server.addr());
    server
}

fn start_durable(dir: &Path, fuse: Option<Arc<CrashFuse>>) -> Server {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 64,
        data_dir: Some(dir.to_path_buf()),
        fsync: FsyncPolicy::Always,
        test_fuse: fuse,
        ..ServerConfig::default()
    })
    .expect("server starts");
    await_ready(server.addr());
    server
}

/// Ground truth for one fault-free matmul job: the exact bytes
/// `GET /spans/<fp>` must serve, built from a direct [`pasm::run_keyed_traced`]
/// of the same key — the same packaging the server's ingest performs.
fn expected_span_dump(mode: Mode, n: usize, p: usize, seed: u64) -> (String, String) {
    let key = ExperimentKey {
        config: pasm_machine::MachineConfig::prototype(),
        mode,
        params: pasm::Params::new(n, p),
        seed,
        fault: Default::default(),
        workload: pasm::MATMUL,
    };
    let fingerprint = key.fingerprint();
    let trace = pasm::run_keyed_traced(&key, None).expect("traced run succeeds");
    let r = &trace.result;
    let mode_label = match r.mode.to_json() {
        Json::Str(s) => s,
        _ => unreachable!("mode serializes to a string"),
    };
    let record = SpanRecord {
        fingerprint,
        summary: RunSummary {
            workload: r.workload.to_string(),
            mode: mode_label,
            n: r.n as u64,
            p: r.p as u64,
            seed: r.seed,
            cycles: r.cycles,
            fault: r.fault.clone(),
        },
        bucket_names: pasm_machine::BUCKET_NAMES
            .iter()
            .map(|s| s.to_string())
            .collect(),
        pe_buckets: trace.pe_buckets.iter().map(|row| row.to_vec()).collect(),
        mc_buckets: trace.mc_buckets.iter().map(|row| row.to_vec()).collect(),
        spans: trace.spans,
    };
    (format!("{fingerprint:016x}"), record.to_json().dump())
}

// ------------------------------------------------------------------ tests

/// The core query-tier contract: `/spans/<fp>` serves the run's full timing
/// payload byte-identical to a direct traced run of the same key, and the
/// whole query surface is served from the store — the `sim_runs` counter
/// does not move under query load.
#[test]
fn span_payload_is_byte_identical_to_a_direct_traced_run() {
    let (fp, expected) = expected_span_dump(Mode::Simd, 8, 4, 4242);
    let mut server = start_memory();
    let addr = server.addr();

    let served_fp = run_to_done(addr, r#"{"mode":"simd","n":8,"p":4,"seed":4242}"#);
    assert_eq!(
        served_fp, fp,
        "server and test agree on the key fingerprint"
    );
    assert_eq!(stat_u64(addr, &["sim_runs"]), 1, "one job, one simulation");

    let (code, payload) = request_raw(addr, "GET", &format!("/spans/{fp}"), None);
    assert_eq!(code, 200, "{payload}");
    assert_eq!(payload, expected, "span record drifted from the traced run");

    // Hammer every query endpoint, then resubmit the same job (cache hit):
    // none of it may reach the simulator.
    for _ in 0..3 {
        let (code, _) = request_raw(addr, "GET", &format!("/spans/{fp}"), None);
        assert_eq!(code, 200);
        let (code, _) = get(addr, "/results?workload=matmul&mode=simd&p=4");
        assert_eq!(code, 200);
        let (code, _) = get(addr, "/sweep/phases?workload=matmul");
        assert_eq!(code, 200);
    }
    let (code, resp) = submit(addr, r#"{"mode":"simd","n":8,"p":4,"seed":4242}"#);
    assert_eq!(code, 200, "cache answers at submit: {resp:?}");
    assert_eq!(resp.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        stat_u64(addr, &["sim_runs"]),
        1,
        "queries and cache hits never re-simulate"
    );
    assert_eq!(stat_u64(addr, &["queries", "spans"]), 4);
    assert_eq!(stat_u64(addr, &["queries", "results"]), 3);
    assert_eq!(stat_u64(addr, &["queries", "sweeps"]), 3);
    server.shutdown();
}

/// `/results`: filtering on workload/mode/p (mode in any accepted
/// spelling), deterministic ordering, offset/limit pagination with a stable
/// pre-pagination total, and 400s on malformed parameters.
#[test]
fn results_listing_filters_and_paginates() {
    let mut server = start_memory();
    let addr = server.addr();
    for body in [
        r#"{"mode":"simd","n":8,"p":2,"seed":51}"#,
        r#"{"mode":"simd","n":8,"p":4,"seed":51}"#,
        r#"{"mode":"mimd","n":8,"p":4,"seed":51}"#,
        r#"{"mode":"mimd","n":8,"p":4,"seed":52}"#,
    ] {
        run_to_done(addr, body);
    }

    let total = |path: &str| {
        let (code, body) = get(addr, path);
        assert_eq!(code, 200, "{body:?}");
        body.get("total").and_then(Json::as_u64).unwrap()
    };
    assert_eq!(total("/results"), 4);
    assert_eq!(total("/results?workload=matmul"), 4);
    assert_eq!(total("/results?workload=nosuch"), 0);
    assert_eq!(total("/results?mode=simd"), 2);
    assert_eq!(total("/results?mode=MIMD"), 2, "mode spelling is forgiving");
    assert_eq!(total("/results?p=4"), 3);
    assert_eq!(total("/results?mode=mimd&p=4"), 2);

    // Pagination: second row only, total still reports the full match.
    let (code, page) = get(addr, "/results?mode=mimd&offset=1&limit=1");
    assert_eq!(code, 200);
    assert_eq!(page.get("total").and_then(Json::as_u64), Some(2));
    assert_eq!(page.get("count").and_then(Json::as_u64), Some(1));
    let rows = page.get("rows").and_then(Json::as_arr).unwrap();
    assert_eq!(rows.len(), 1);
    // Deterministic order: (workload, mode, p, n, seed) — the mimd pair
    // differs only in seed, so offset=1 is the seed-52 run.
    assert_eq!(rows[0].get("seed").and_then(Json::as_u64), Some(52));
    assert_eq!(
        rows[0].get("fp").and_then(Json::as_str).map(|fp| fp.len()),
        Some(16),
        "rows lead with the span fingerprint"
    );

    for bad in [
        "/results?mode=warp9",
        "/results?p=many",
        "/results?offset=-1",
        "/results?limit=x",
    ] {
        let (code, body) = get(addr, bad);
        assert_eq!(code, 400, "{bad}: {body:?}");
        assert_eq!(
            body.get("error").and_then(Json::as_str),
            Some("bad_request")
        );
    }
    server.shutdown();
}

/// `/sweep/phases`: groups by `(mode, p)` with per-phase shares summing to
/// one, excludes fault-injected runs from the clean sweep, and rejects
/// requests without a workload.
#[test]
fn sweep_phases_groups_runs_and_excludes_faulted_ones() {
    let mut server = start_memory();
    let addr = server.addr();
    for body in [
        r#"{"mode":"simd","n":8,"p":4,"seed":61}"#,
        r#"{"mode":"simd","n":8,"p":4,"seed":62}"#,
        r#"{"mode":"mimd","n":8,"p":4,"seed":61}"#,
        // Faulted run: present in `/results`, excluded from the sweep.
        r#"{"mode":"simd","n":8,"p":4,"seed":61,"fault":"box:1:0"}"#,
    ] {
        run_to_done(addr, body);
    }

    let (code, body) = get(addr, "/sweep/phases?workload=matmul");
    assert_eq!(code, 200, "{body:?}");
    let groups = body.get("groups").and_then(Json::as_arr).unwrap();
    assert_eq!(groups.len(), 2, "one group per (mode, p): {body:?}");
    for group in groups {
        let mode = group.get("mode").and_then(Json::as_str).unwrap();
        let runs = group.get("runs").and_then(Json::as_u64).unwrap();
        let expected_runs = if mode == "Simd" { 2 } else { 1 };
        assert_eq!(runs, expected_runs, "faulted run must not be aggregated");
        let phases = group.get("phases").and_then(Json::as_arr).unwrap();
        assert!(!phases.is_empty(), "phase totals present: {group:?}");
        let share_sum: f64 = phases
            .iter()
            .map(|p| p.get("share").and_then(Json::as_f64).unwrap())
            .sum();
        assert!(
            (share_sum - 1.0).abs() < 1e-9,
            "phase shares sum to 1, got {share_sum}"
        );
    }
    // But the faulted run is listed — exclusion is sweep-only.
    let (_, listing) = get(addr, "/results?mode=simd&p=4");
    assert_eq!(listing.get("total").and_then(Json::as_u64), Some(3));

    let (code, body) = get(addr, "/sweep/phases?workload=matmul&mode=mimd");
    assert_eq!(code, 200);
    assert_eq!(
        body.get("groups").and_then(Json::as_arr).map(|g| g.len()),
        Some(1)
    );
    let (code, _) = get(addr, "/sweep/phases");
    assert_eq!(code, 400, "workload is required");
    let (code, _) = get(addr, "/sweep/phases?workload=matmul&mode=warp9");
    assert_eq!(code, 400, "unknown mode is rejected");
    server.shutdown();
}

/// Misses are JSON, not empty 404s: unknown fingerprints on `/spans/<fp>`
/// and `/result/<fp>` answer structured `not_found` bodies, malformed
/// fingerprints answer 400, and span misses are counted.
#[test]
fn unknown_fingerprints_answer_structured_json() {
    let mut server = start_memory();
    let addr = server.addr();
    run_to_done(addr, r#"{"mode":"simd","n":8,"p":4,"seed":71}"#);

    let (code, body) = get(addr, "/spans/00000000000000aa");
    assert_eq!(code, 404, "{body:?}");
    assert_eq!(body.get("error").and_then(Json::as_str), Some("not_found"));
    let (code, body) = get(addr, "/result/00000000000000aa");
    assert_eq!(code, 404, "{body:?}");
    assert_eq!(body.get("error").and_then(Json::as_str), Some("not_found"));
    for bad in ["/spans/xyz", "/spans/123", "/spans/00000000000000aa00"] {
        let (code, body) = get(addr, bad);
        assert_eq!(code, 400, "{bad}: {body:?}");
        assert_eq!(
            body.get("error").and_then(Json::as_str),
            Some("bad_request")
        );
    }
    assert_eq!(stat_u64(addr, &["queries", "span_misses"]), 1);
    server.shutdown();
}

/// The crash gate: after a seeded kill at each byte budget, a restart
/// recovers **every** span record that reached disk — each is indexed and
/// served byte-identical to ground truth — and resubmitting the full job
/// set heals the missing ones with no duplicate listings (idempotent
/// re-ingest, content-addressed index).
#[test]
fn seeded_crashes_recover_every_indexed_fingerprint() {
    let jobs: [(Mode, usize, usize, u64, &str); 4] = [
        (
            Mode::Simd,
            8,
            4,
            81,
            r#"{"mode":"simd","n":8,"p":4,"seed":81}"#,
        ),
        (
            Mode::Mimd,
            8,
            4,
            81,
            r#"{"mode":"mimd","n":8,"p":4,"seed":81}"#,
        ),
        (
            Mode::Smimd,
            8,
            8,
            81,
            r#"{"mode":"smimd","n":8,"p":8,"seed":81}"#,
        ),
        (
            Mode::Simd,
            4,
            4,
            82,
            r#"{"mode":"simd","n":4,"p":4,"seed":82}"#,
        ),
    ];
    let truth: Vec<(String, String, &str)> = jobs
        .iter()
        .map(|&(mode, n, p, seed, body)| {
            let (fp, dump) = expected_span_dump(mode, n, p, seed);
            (fp, dump, body)
        })
        .collect();

    // Kill points spread from "nothing landed" through the span records'
    // own bytes to "most of the run survived".
    let budgets: [u64; 8] = [0, 10, 60, 300, 1200, 4000, 12000, 40000];
    for (i, &budget) in budgets.iter().enumerate() {
        let dir = tmpdir(&format!("crash-{i}"));

        // Victim run: writes past `budget` bytes silently vanish.
        {
            let mut server = start_durable(&dir, Some(CrashFuse::new(budget)));
            let addr = server.addr();
            for (fp, _, body) in &truth {
                assert_eq!(&run_to_done(addr, body), fp, "budget {budget}");
            }
            server.shutdown();
        }

        // Ground truth of the damage: the fingerprints whose span records
        // actually reached disk intact.
        let (records, _) = read_records(&dir.join("spans")).expect("read spans log");
        let durable: HashSet<String> = records
            .iter()
            .map(|payload| {
                let text = std::str::from_utf8(payload).expect("span record is UTF-8");
                let record = json::parse(text).expect("span record is JSON");
                record
                    .get("fp")
                    .and_then(Json::as_str)
                    .expect("span record carries its fingerprint")
                    .to_string()
            })
            .collect();

        let mut server = start_durable(&dir, None);
        let addr = server.addr();
        assert_eq!(
            stat_u64(addr, &["durability", "spans_replayed"]),
            durable.len() as u64,
            "budget {budget}: every surviving span record is replayed"
        );
        for (fp, expected, _) in &truth {
            if !durable.contains(fp) {
                continue;
            }
            let (code, payload) = request_raw(addr, "GET", &format!("/spans/{fp}"), None);
            assert_eq!(code, 200, "budget {budget}: indexed span {fp} lost");
            assert_eq!(
                &payload, expected,
                "budget {budget}: recovered span record drifted"
            );
        }

        // Heal: resubmit everything. Recovered results answer from cache,
        // the rest recompute; either way every span ends up queryable
        // exactly once.
        for (fp, expected, body) in &truth {
            assert_eq!(&run_to_done(addr, body), fp, "budget {budget}");
            let (code, payload) = request_raw(addr, "GET", &format!("/spans/{fp}"), None);
            assert_eq!(code, 200, "budget {budget}: span {fp} missing after heal");
            assert_eq!(
                &payload, expected,
                "budget {budget}: healed span record drifted"
            );
        }
        let (code, listing) = get(addr, "/results");
        assert_eq!(code, 200);
        assert_eq!(
            listing.get("total").and_then(Json::as_u64),
            Some(truth.len() as u64),
            "budget {budget}: re-ingest must not duplicate listings: {listing:?}"
        );
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
