//! Cross-crate functional test: every program variant computes the correct
//! product on the simulated prototype, for random (not just identity) data.

use pasm::{paper_workload, run_matmul_verified, Matrix, Mode, Params};
use pasm_machine::MachineConfig;

fn cfg() -> MachineConfig {
    MachineConfig::prototype()
}

#[test]
fn serial_matches_reference() {
    for n in [4usize, 8, 16] {
        let a = Matrix::uniform(n, 10 + n as u64);
        let b = Matrix::uniform(n, 20 + n as u64);
        run_matmul_verified(&cfg(), Mode::Serial, Params::new(n, 1), &a, &b).unwrap();
    }
}

#[test]
fn mimd_matches_reference_random_data() {
    for (n, p) in [(8usize, 4usize), (16, 4), (16, 8), (16, 16)] {
        let a = Matrix::uniform(n, 1);
        let b = Matrix::uniform(n, 2);
        run_matmul_verified(&cfg(), Mode::Mimd, Params::new(n, p), &a, &b).unwrap();
    }
}

#[test]
fn smimd_matches_reference_random_data() {
    for (n, p) in [(8usize, 4usize), (16, 4), (16, 8)] {
        let a = Matrix::uniform(n, 3);
        let b = Matrix::uniform(n, 4);
        run_matmul_verified(&cfg(), Mode::Smimd, Params::new(n, p), &a, &b).unwrap();
    }
}

#[test]
fn simd_matches_reference_random_data() {
    for (n, p) in [(8usize, 4usize), (16, 4), (16, 8), (16, 16)] {
        let a = Matrix::uniform(n, 5);
        let b = Matrix::uniform(n, 6);
        run_matmul_verified(&cfg(), Mode::Simd, Params::new(n, p), &a, &b).unwrap();
    }
}

#[test]
fn all_modes_agree_on_the_paper_workload() {
    let n = 16;
    let (a, b) = paper_workload(n, 7);
    let expect = a.multiply(&b); // = b, since A is the identity
    assert_eq!(expect, b);
    for mode in Mode::ALL {
        let p = if mode == Mode::Serial { 1 } else { 4 };
        let out = run_matmul_verified(&cfg(), mode, Params::new(n, p), &a, &b).unwrap();
        assert_eq!(out.c, expect, "{mode}");
        assert!(out.cycles > 0);
    }
}

#[test]
fn extra_multiplies_do_not_change_the_result() {
    let n = 8;
    let a = Matrix::uniform(n, 8);
    let b = Matrix::uniform(n, 9);
    for mode in [Mode::Simd, Mode::Smimd, Mode::Mimd] {
        let base = run_matmul_verified(&cfg(), mode, Params::new(n, 4), &a, &b).unwrap();
        let extra =
            run_matmul_verified(&cfg(), mode, Params::new(n, 4).with_extra(5), &a, &b).unwrap();
        assert_eq!(base.c, extra.c, "{mode}");
        assert!(
            extra.cycles > base.cycles,
            "{mode}: added multiplies must cost time ({} vs {})",
            extra.cycles,
            base.cycles
        );
    }
}

#[test]
fn smaller_machine_configs_work_too() {
    // The simulator is not hard-wired to the 16-PE prototype.
    let cfg = MachineConfig {
        n_pes: 8,
        n_mcs: 2,
        ..MachineConfig::prototype()
    };
    let a = Matrix::uniform(8, 11);
    let b = Matrix::uniform(8, 12);
    for mode in [Mode::Simd, Mode::Mimd, Mode::Smimd] {
        run_matmul_verified(&cfg, mode, Params::new(8, 8), &a, &b).unwrap();
    }
}
