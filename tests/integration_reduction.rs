//! Global-sum reduction across the ring: correctness in every mode and the
//! communication-protocol cost ordering on a communication-dominated workload.

use pasm::{run_reduction, MachineConfig, Mode};
use pasm_prog::reduction::reference_sum;
use pasm_util::Rng;

fn cfg() -> MachineConfig {
    MachineConfig::prototype()
}

fn blocks(k: usize, p: usize, seed: u64) -> Vec<Vec<u16>> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..p)
        .map(|_| (0..k).map(|_| rng.gen_u16()).collect())
        .collect()
}

#[test]
fn all_modes_compute_the_global_sum() {
    for p in [2usize, 4, 8, 16] {
        let data = blocks(32, p, p as u64);
        let expect = reference_sum(&data);
        for mode in [Mode::Simd, Mode::Mimd, Mode::Smimd] {
            let out = run_reduction(&cfg(), mode, 32, p, &data)
                .unwrap_or_else(|e| panic!("{mode} p={p}: {e}"));
            assert!(
                out.sums.iter().all(|&s| s == expect),
                "{mode} p={p}: {:?} != {expect}",
                out.sums
            );
        }
    }
}

#[test]
fn communication_protocol_cost_ordering() {
    // With a tiny local block the run is dominated by the p−1 ring exchanges:
    // polled MIMD must cost the most; barrier S/MIMD and lockstep SIMD are
    // both cheap.
    let p = 16;
    let data = blocks(4, p, 9);
    let t = |mode| run_reduction(&cfg(), mode, 4, p, &data).unwrap().cycles;
    let (simd, mimd, smimd) = (t(Mode::Simd), t(Mode::Mimd), t(Mode::Smimd));
    assert!(
        mimd > smimd,
        "polling ({mimd}) must cost more than barriers ({smimd})"
    );
    assert!(
        mimd > simd,
        "polling ({mimd}) must cost more than lockstep ({simd})"
    );
}

#[test]
fn reduction_scales_with_block_size() {
    let p = 4;
    let small = blocks(8, p, 1);
    let large = blocks(256, p, 1);
    let ts = run_reduction(&cfg(), Mode::Mimd, 8, p, &small)
        .unwrap()
        .cycles;
    let tl = run_reduction(&cfg(), Mode::Mimd, 256, p, &large)
        .unwrap()
        .cycles;
    assert!(tl > ts);
    // The local-sum section is O(k); 32x the data should be >5x the time even
    // with the fixed ring cost.
    assert!(tl as f64 > 5.0 * ts as f64, "{tl} vs {ts}");
}

#[test]
fn single_element_blocks_work() {
    let p = 4;
    let data = vec![vec![1u16], vec![2], vec![3], vec![4]];
    let out = run_reduction(&cfg(), Mode::Smimd, 1, p, &data).unwrap();
    assert!(out.sums.iter().all(|&s| s == 10));
}
