//! Fast-vs-interpreter equivalence (ISSUE 8): the block-compiled fast path
//! must be an optimization of the *scheduler*, never of the timing model.
//! Every test here runs the same experiment twice — once on the fast path,
//! once forced onto the per-instruction interpreter — and demands the full
//! [`pasm::ExperimentResult`]s be equal: simulated makespan, per-bucket
//! cycle totals (Compute, MultiplyVariance, Fetch, MemoryWait, …),
//! instruction counts, output checksums.
//!
//! The sweep here uses the 4-PE machine so the suite stays fast;
//! `bench --bin blockbench` runs the same equality on the 16-PE prototype
//! at paper scale (n up to 1024) and also times the two paths.

use pasm::{
    run_kernel_opts, ExperimentResult, FaultPlan, MachineConfig, Mode, Params, PeFault, RunOptions,
};

/// A 4-PE machine whose half-machine partition spreads across two MCs —
/// the smallest machine with a fault-tolerant p=2 partition.
fn small_cfg() -> MachineConfig {
    MachineConfig {
        n_mcs: 2,
        ..MachineConfig::small()
    }
}

const SEED: u64 = 4242;

/// Run one kernel cell twice (fast path on / off) and return both
/// outcomes. Errors count as outcomes too: a fault that deadlocks the
/// machine must deadlock *identically* on both paths, so failures are
/// compared by their rendered message.
fn both_paths(
    cfg: &MachineConfig,
    kernel: &'static dyn pasm::Kernel,
    mode: Mode,
    n: usize,
    p: usize,
    fault: FaultPlan,
) -> (
    Result<ExperimentResult, String>,
    Result<ExperimentResult, String>,
) {
    let input = kernel.generate(n, SEED);
    let run = |fast_path: bool| {
        let opts = RunOptions {
            fault: fault.clone(),
            fast_path,
            ..RunOptions::default()
        };
        run_kernel_opts(cfg, kernel, mode, Params::new(n, p), &input, &opts)
            .map(|out| ExperimentResult::from_kernel_outcome(&out, SEED))
            .map_err(|e| e.to_string())
    };
    (run(true), run(false))
}

fn assert_identical_on(
    cfg: &MachineConfig,
    kernel: &str,
    mode: Mode,
    n: usize,
    p: usize,
    fault: &FaultPlan,
) {
    let k = pasm::kernels::find(kernel).expect("registered kernel");
    let (fast, interp) = both_paths(cfg, k, mode, n, p, fault.clone());
    assert_eq!(
        fast, interp,
        "{kernel} {mode} n={n} p={p} fault={fault:?}: fast path diverged from interpreter"
    );
}

fn assert_identical(kernel: &str, mode: Mode, n: usize, p: usize, fault: &FaultPlan) {
    assert_identical_on(&small_cfg(), kernel, mode, n, p, fault);
}

#[test]
fn every_kernel_and_mode_is_identical_on_both_paths() {
    for kernel in pasm::kernels::kernels() {
        // n=16 suits all four kernels' validators on a p∈{2,4} machine.
        for n in [16, 32] {
            for p in [2, 4] {
                if kernel.validate(n, p).is_err() {
                    continue;
                }
                for mode in [Mode::Simd, Mode::Mimd, Mode::Smimd] {
                    assert_identical(kernel.name(), mode, n, p, &FaultPlan::default());
                }
            }
        }
    }
}

#[test]
fn network_faults_are_identical_on_both_paths() {
    // A rerouted interior fault makes every circuit pay a detour; the
    // timing perturbation must land identically on both paths.
    for fault in pasm::single_faults(small_cfg().n_pes) {
        for mode in [Mode::Simd, Mode::Mimd, Mode::Smimd] {
            assert_identical("matmul", mode, 4, 2, &FaultPlan::net_single(fault));
        }
    }
}

#[test]
fn pe_faults_invalidate_blocks_identically_on_both_paths() {
    // PE faults disable the faulty PE's fast path (the compiled program is
    // dropped for it); the degraded run must match the interpreter even in
    // how it *fails*. A dead ring neighbor starves `smooth`: in SIMD that
    // is a detected deadlock, in MIMD/S-MIMD the survivors busy-poll the
    // network register, so the run must hit the cycle limit — at the same
    // limit, on both paths (bounded, as in `integration_faults`).
    let mut cfg = small_cfg();
    cfg.max_cycles = 2_000_000;
    for kind in [PeFault::Dead, PeFault::Slow { extra_wait: 3 }] {
        for mode in [Mode::Simd, Mode::Mimd, Mode::Smimd] {
            assert_identical_on(&cfg, "smooth", mode, 16, 4, &FaultPlan::pe_single(1, kind));
        }
    }
}

#[test]
fn fast_path_default_matches_explicit_interpreter_on_prototype() {
    // One paper-scale spot check on the full 16-PE prototype: the
    // defaults (fast path on) equal the forced interpreter.
    let cfg = MachineConfig::prototype();
    let k = pasm::kernels::find("bitonic").expect("registered kernel");
    let (fast, interp) = both_paths(&cfg, k, Mode::Smimd, 128, 16, FaultPlan::default());
    assert_eq!(fast, interp);
    assert!(fast.expect("fault-free run completes").cycles > 0);
}
